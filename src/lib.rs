//! # tse — Tuple Space Explosion, reproduced in Rust
//!
//! A from-scratch reproduction of *"Tuple Space Explosion: A Denial-of-Service Attack
//! Against a Software Packet Classifier"* (Csikor et al., ACM CoNEXT 2019): the Tuple
//! Space Search (TSS) classifier of Open vSwitch, the OVS-like datapath around it, the
//! Co-located and General TSE attacks, the analytic mask-expectation model, the
//! Theorem 4.1/4.2 bounds, and the MFCGuard mitigation — plus a simulation substrate
//! that regenerates every figure of the paper's evaluation.
//!
//! This facade crate re-exports the public API of the workspace crates so downstream
//! users can depend on a single crate.
//!
//! ## The pluggable fast path
//!
//! The datapath is generic over a [`prelude::FastPathBackend`]: the TSS megaflow cache
//! ([`prelude::TupleSpace`], the default — the structure the attack explodes) or any of
//! the §7 attack-immune baselines (linear search, hierarchical tries, HyperCuts)
//! wrapped in [`prelude::BaselineBackend`]. Construction goes through the fluent
//! [`prelude::DatapathBuilder`]:
//!
//! ```
//! use tse::prelude::*;
//!
//! // Build the Fig. 6 ACL, attack it with the co-located trace, count the masks.
//! let schema = FieldSchema::ovs_ipv4();
//! let table = Scenario::SipDp.flow_table(&schema);
//! let mut dp = Datapath::builder(table).build();
//! for key in scenario_trace(&schema, Scenario::SipDp, &schema.zero_value()) {
//!     dp.process_key(&key, 64, 0.0);
//! }
//! assert!(dp.mask_count() > 400);
//!
//! // The same attack against a hierarchical-trie fast path grows nothing.
//! let table = Scenario::SipDp.flow_table(&schema);
//! let mut trie_dp = Datapath::builder(table).backend_fresh::<TrieBackend>().build();
//! for key in scenario_trace(&schema, Scenario::SipDp, &schema.zero_value()) {
//!     trie_dp.process_key(&key, 64, 0.0);
//! }
//! assert_eq!(trie_dp.mask_count(), 0);
//! ```
//!
//! ## Batched processing
//!
//! [`prelude::Datapath::process_batch`] pushes a slice of `(header, wire_bytes)` pairs
//! through the datapath at a single timestamp, amortising the idle-expiry check and
//! stats bookkeeping over the whole batch and short-circuiting runs of identical
//! headers. Packets are processed in order; per-packet verdicts are identical to a
//! [`prelude::Datapath::process_key`] loop at the same time, while per-entry hit
//! counters advance once per run of identical headers (see
//! [`prelude::BatchReport`] for the full semantics).
//! [`prelude::Datapath::process_timed_batch`] is the timestamped variant the
//! event-driven runner uses: each event processed at its own time, verdicts and cache
//! evolution identical to a `process_key` loop.
//!
//! ## Streaming experiment construction
//!
//! Experiments are composed from pull-based [`prelude::TrafficSource`]s — lazily
//! yielded, timestamped `(key, bytes)` events — merged by a [`prelude::TrafficMix`]
//! and drained through the event-driven [`prelude::ExperimentRunner`]. An
//! [`prelude::AttackTrace`] is one source, the lazy [`prelude::AttackGenerator`]
//! synthesizes explosion traffic on the fly (no materialised packet vector, so a
//! 100M-packet run is O(1) memory), and [`prelude::VictimSource`] wraps a
//! [`prelude::VictimFlow`] as per-interval measurement probes. Multi-attacker,
//! staggered-onset or background-churn scenarios are just more sources:
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use tse::prelude::*;
//!
//! let schema = FieldSchema::ovs_ipv4();
//! let table = Scenario::SipSpDp.flow_table(&schema);
//! let mix = TrafficMix::new()
//!     .with(VictimSource::new(
//!         VictimFlow::iperf_tcp("Victim", 0x0a000005, 0x0a000063, 10.0),
//!         &schema,
//!         1.0,
//!     ))
//!     // A lazy SipDp attacker from t=5 s — keys synthesized on the fly.
//!     .with(AttackGenerator::new(
//!         "Attacker 1",
//!         &schema,
//!         Scenario::SipDp.key_iter(&schema, &schema.zero_value()).cycle(),
//!         StdRng::seed_from_u64(1),
//!         100.0,
//!         5.0,
//!     ).with_limit(1500));
//! let mut runner = ExperimentRunner::new(Datapath::new(table), vec![], OffloadConfig::gro_off());
//! let timeline = runner.run_mix(mix, 30.0);
//! assert_eq!(timeline.samples.len(), 30);
//! assert!(timeline.mean_total_between(20.0, 29.0) < timeline.mean_total_between(0.0, 5.0));
//! ```
//!
//! ## Wire-level ingestion & overlay scenarios
//!
//! The same pipeline can be driven from raw Ethernet bytes instead of pre-parsed
//! keys. [`prelude::WireTrace`] is a pcap-style frame buffer (timestamped frames
//! packed into one contiguous allocation); [`prelude::extract_trace_into`] /
//! [`prelude::extract_keys_into`] run the real header parser over a whole batch into
//! a reusable [`prelude::ExtractScratch`] — zero per-frame heap allocations in
//! steady state (pinned by `tests/alloc_audit.rs`) with per-batch
//! [`prelude::DecodeError`] accounting. On the traffic side,
//! [`prelude::WireSource`] replays a trace (or an [`prelude::AttackTrace`], via
//! `WireSource::from_attack_trace`) as serialized frames — producing the identical
//! event stream as its key-level twin — and the lazy [`prelude::WireGenerator`]
//! crafts, serializes and re-parses explosion traffic on the fly, optionally inside
//! an [`prelude::Encap`] envelope (802.1Q VLAN tag or VXLAN tunnel). The overlay is
//! no defense: the decoder strips the envelope and classifies the attacker's inner
//! header, so the explosion passes through untouched (`fig_overlay_explosion`),
//! while undecodable frames are charged to shard 0 — the ingestion point — and
//! surface as per-kind counters and the telemetry store's malformed-frame series.
//!
//! ```
//! use tse::prelude::*;
//!
//! let schema = FieldSchema::ovs_ipv4();
//! // Serialise a packet inside a VXLAN tunnel; the parser recovers the inner key.
//! let pkt = PacketBuilder::tcp_v4([10, 0, 0, 5], [10, 0, 0, 99], 40_000, 80).build();
//! let mut trace = WireTrace::new();
//! trace.push_packet(0.0, &pkt, Encap::Vxlan { outer_src: 1, outer_dst: 2, vni: 42 });
//! trace.push(0.1, &[0xDE; 9]); // garbage: accounted for, never panics
//!
//! let mut scratch = ExtractScratch::new();
//! extract_trace_into(&trace, &mut scratch);
//! assert_eq!(scratch.counts().decoded, 1);
//! assert_eq!(scratch.counts().truncated, 1);
//! assert_eq!(scratch.keys()[0], Ok(FlowKey::from_packet(&pkt)));
//!
//! // Raw frames drive the sharded datapath directly: classification is steered by
//! // the extracted key, decode errors are charged to shard 0.
//! let mut sharded = ShardedDatapath::from_builder(
//!     Datapath::builder(Scenario::SipDp.flow_table(&schema)),
//!     4,
//!     Steering::Rss,
//! );
//! let frames: Vec<&[u8]> = trace.frames().collect();
//! sharded.process_wire_batch(&frames, &mut scratch, 0.2);
//! assert_eq!(sharded.shard(0).stats().truncated, 1);
//! ```
//!
//! ## Sharded multi-PMD datapath
//!
//! [`prelude::ShardedDatapath`] models OVS-DPDK's one-megaflow-cache-per-PMD-thread
//! architecture: N per-shard datapaths behind a [`prelude::Steering`] policy (RSS
//! 5-tuple hash, per-tenant, or pinned), each with private cache state, statistics and
//! — in the experiment runner ([`prelude::ExperimentRunner::sharded`]) — a private CPU
//! budget. The attack side can aim at it: [`prelude::pin_to_shard`] retags a key
//! stream's free field so the whole explosion lands on one chosen shard, while
//! [`prelude::spray_shards`] poisons every shard round-robin.
//!
//! ```
//! use tse::prelude::*;
//!
//! let schema = FieldSchema::ovs_ipv4();
//! let table = Scenario::SipDp.flow_table(&schema);
//! let mut sharded = ShardedDatapath::from_builder(Datapath::builder(table), 4, Steering::Rss);
//! // Pin the co-located explosion to shard 0 by retagging the attacker's free ip_dst.
//! let mut base = schema.zero_value();
//! base.set(schema.field_index("ip_proto").unwrap(), 6);
//! let ip_dst = schema.field_index("ip_dst").unwrap();
//! for key in pin_to_shard(&schema, Scenario::SipDp.key_iter(&schema, &base), ip_dst, 4, 0) {
//!     sharded.process_key(&key, 64, 0.0);
//! }
//! let masks = sharded.shard_mask_counts();
//! assert!(masks[0] > 400, "targeted shard explodes: {masks:?}");
//! assert!(masks[1..].iter().all(|&m| m == 0), "other shards stay clean");
//! ```
//!
//! ## Execution models
//!
//! The sharded datapath's per-shard fan-out runs through a pluggable
//! [`prelude::ShardExecutor`]: the default [`prelude::SequentialExecutor`] walks the
//! shards in order, [`prelude::PersistentPoolExecutor`] feeds long-lived parked
//! workers — the paper's actual hardware model of core-pinned PMD threads whose spawn
//! cost is paid once per process, not per batch — and [`prelude::ThreadPoolExecutor`]
//! spawns scoped threads per batch. Steering is an allocation-free pre-partition pass
//! (a reusable index buffer, no per-event key clones), and on a pooled executor the
//! experiment runner pipelines its hot loop: interval *k + 1* is drained and
//! pre-partitioned on a spare worker while the shards chew interval *k*. Because
//! shards share nothing and results are always collected in shard order, executor
//! choice changes wall-clock time only: timelines, stats and mitigation action logs
//! are bit-for-bit identical (asserted by `tests/executor_parity.rs`). Select the
//! executor on the builder, the sharded datapath or the runner:
//!
//! ```
//! use tse::prelude::*;
//!
//! let schema = FieldSchema::ovs_ipv4();
//! let table = Scenario::SipDp.flow_table(&schema);
//! let mut sequential = ShardedDatapath::from_builder(
//!     Datapath::builder(table.clone()),
//!     8,
//!     Steering::Rss,
//! );
//! let mut threaded = ShardedDatapath::from_builder(
//!     Datapath::builder(table).with_executor(PersistentPoolExecutor::new(8)),
//!     8,
//!     Steering::Rss,
//! );
//! let batch: Vec<(Key, usize, f64)> = Scenario::SipDp
//!     .key_iter(&schema, &schema.zero_value())
//!     .take(500)
//!     .enumerate()
//!     .map(|(i, k)| (k, 64, i as f64 * 1e-3))
//!     .collect();
//! // Same reports, same stats — the thread pool only buys wall-clock time.
//! assert_eq!(
//!     sequential.process_timed_batch(&batch),
//!     threaded.process_timed_batch(&batch)
//! );
//! assert_eq!(sequential.stats(), threaded.stats());
//! ```
//!
//! ## Composable mitigations
//!
//! Defenses plug into the runner as an ordered [`prelude::MitigationStack`] of
//! [`prelude::Mitigation`] stages, each invoked once per sample interval with
//! per-shard telemetry and reporting what it did as [`prelude::MitigationAction`]s in
//! every [`prelude::TimelineSample`]. Four stages ship: [`prelude::GuardMitigation`]
//! (MFCGuard per shard, with per-shard config overrides),
//! [`prelude::RssKeyRandomizer`] (hash-key rotation that defeats shard-pinned
//! explosions), [`prelude::UpcallLimiter`] (per-shard megaflow-install quotas) and
//! [`prelude::MaskCap`] (per-shard mask ceilings):
//!
//! ```
//! use tse::prelude::*;
//!
//! let schema = FieldSchema::ovs_ipv4();
//! let table = Scenario::SipDp.flow_table(&schema);
//! let sharded = ShardedDatapath::from_builder(Datapath::builder(table), 4, Steering::Rss);
//! let mut runner = ExperimentRunner::sharded(sharded, vec![], OffloadConfig::gro_off())
//!     .with_mitigation(GuardMitigation::new(GuardConfig::default()))
//!     .with_mitigation(RssKeyRandomizer::new(10.0, 0xC0FFEE));
//! assert_eq!(runner.mitigations.names(), vec!["mfcguard", "rss-rekey"]);
//! let timeline = runner.run_mix(TrafficMix::new(), 12.0);
//! // The rekey at t=10 is attributed in the timeline.
//! assert!(timeline.samples[9]
//!     .mitigation_actions
//!     .iter()
//!     .any(|a| matches!(a, MitigationAction::Rekeyed { .. })));
//! ```
//!
//! ## Tenant-scale telemetry & SLOs
//!
//! For fleet-sized, hour-long runs the unbounded timeline is replaced by the two-tier
//! [`prelude::TelemetryStore`]: a bounded hot ring of recent full-detail
//! [`prelude::TimelineSample`]s plus streaming cold aggregates
//! ([`prelude::SeriesAgg`]: count/sum/min/max and a deterministic log-bucket
//! histogram for p50/p99) covering the *whole* run in memory that never grows with
//! the horizon. Per-tenant [`prelude::SloTracker`]s measure delivered throughput
//! against a floor — violation episodes, time-to-detect, time-to-recover.
//! [`prelude::TenantFleet`] builds the whole multi-tenant gateway scenario (per-tenant
//! ACLs, iperf-like victims, Poisson background churn via [`prelude::ChurnSource`],
//! staggered mid-run attackers armed by scheduled ACL updates), and the runner
//! replays it with bounded memory:
//!
//! ```
//! use tse::prelude::*;
//!
//! let schema = FieldSchema::ovs_ipv4();
//! let fleet = TenantFleet::new(&schema, FleetConfig {
//!     tenants: 12,
//!     attackers: 1,
//!     offered_gbps: 0.01,
//!     attack_rate_pps: 400.0,
//!     duration: 20.0,
//!     churn: Some(ChurnConfig::default()),
//!     seed: 7,
//! });
//! let sharded = ShardedDatapath::from_builder(
//!     Datapath::builder(fleet.table()),
//!     2,
//!     Steering::PerTenant,
//! );
//! let mut runner = ExperimentRunner::sharded(sharded, vec![], OffloadConfig::gro_off())
//!     .with_telemetry(TelemetryConfig::with_hot_capacity(8).with_slo_floor(0.005))
//!     .with_table_updates(fleet.table_updates());
//! let recent = runner.run_mix(fleet.mix(1.0), 20.0);
//! assert_eq!(recent.samples.len(), 8); // hot ring: only the last 8 s in full detail...
//! let store = runner.take_telemetry().unwrap();
//! assert_eq!(store.samples_recorded(), 20); // ...but the cold tier folded every interval
//! assert_eq!(store.slo_trackers().len(), 11); // one SLO tracker per benign tenant
//! assert!(store.footprint_units() <= store.footprint_ceiling(4)); // bounded, provably
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tse_attack as attack;
pub use tse_classifier as classifier;
pub use tse_mitigation as mitigation;
pub use tse_packet as packet;
pub use tse_simnet as simnet;
pub use tse_switch as switch;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use tse_attack::bounds::{multi_field_bound, single_field_curve};
    pub use tse_attack::colocated::{
        bit_inversion_keys, bit_inversion_list, bit_inversion_trace, scenario_key_iter,
        scenario_trace, BitInversionKeys,
    };
    pub use tse_attack::expectation::ExpectationModel;
    pub use tse_attack::general::{random_trace, RandomKeys};
    pub use tse_attack::scenarios::Scenario;
    pub use tse_attack::sharding::{
        pin_to_shard, retag_key_to_shard, spray_shards, ShardSteeredKeys,
    };
    pub use tse_attack::source::{
        AttackGenerator, EventPayload, SourceRole, TraceSource, TrafficEvent, TrafficMix,
        TrafficSource,
    };
    pub use tse_attack::trace::AttackTrace;
    pub use tse_attack::wire::{wire_trace, WireGenerator, WireSource};
    pub use tse_classifier::backend::{
        BaselineBackend, FastPathBackend, HyperCutsBackend, LinearSearchBackend, TableBacked,
        TrieBackend,
    };
    pub use tse_classifier::baseline::{Classifier, HierarchicalTrie, HyperCuts, LinearSearch};
    pub use tse_classifier::flowtable::FlowTable;
    pub use tse_classifier::rule::{Action, Rule};
    pub use tse_classifier::strategy::{generate_megaflow, FieldStrategy, MegaflowStrategy};
    pub use tse_classifier::tss::{MaskOrdering, TupleSpace};
    pub use tse_mitigation::defenses::{AdaptiveRekey, MaskCap, RssKeyRandomizer, UpcallLimiter};
    pub use tse_mitigation::guard::{GuardConfig, GuardMitigation, GuardReport, MfcGuard};
    pub use tse_mitigation::stack::{
        Mitigation, MitigationAction, MitigationCtx, MitigationStack, PressureWindow,
    };
    pub use tse_packet::builder::PacketBuilder;
    pub use tse_packet::extract::{
        extract_keys_into, extract_trace_into, ExtractCounts, ExtractScratch,
    };
    pub use tse_packet::fields::{FieldDef, FieldSchema, Key, Mask};
    pub use tse_packet::flowkey::FlowKey;
    pub use tse_packet::wire::{DecodeError, Encap, WireFault, WireTrace};
    pub use tse_packet::Packet;
    pub use tse_simnet::cloud::CloudPlatform;
    pub use tse_simnet::fleet::{ChurnConfig, ChurnSource, FleetConfig, TenantFleet};
    pub use tse_simnet::offload::OffloadConfig;
    pub use tse_simnet::runner::{ExperimentRunner, Timeline, TimelineSample};
    pub use tse_simnet::telemetry::{
        LogHistogram, SeriesAgg, SloConfig, SloTracker, TelemetryConfig, TelemetryStore,
    };
    pub use tse_simnet::traffic::{VictimFlow, VictimSource};
    pub use tse_switch::cost::CostModel;
    pub use tse_switch::datapath::{BatchReport, Datapath, DatapathBuilder, DatapathConfig};
    pub use tse_switch::exec::{
        ChaosExecutor, PersistentPoolExecutor, SequentialExecutor, ShardExecutor, ShardExecutorExt,
        ThreadPoolExecutor,
    };
    pub use tse_switch::pmd::{
        Prepartition, ShardedBatchReport, ShardedDatapath, Steering, SteeringView,
    };
    pub use tse_switch::tenant::{merge_tenant_acls, AclField, AllowClause, TenantAcl};
}
