//! Cross-crate integration tests: classifier invariants exercised through the full
//! datapath (packet -> flow key -> caches -> verdict).

use proptest::prelude::*;
use tse::prelude::*;

/// Every packet gets the same verdict from the datapath (whatever cache level answers)
/// as from a direct slow-path lookup of the flow table.
#[test]
fn datapath_never_misclassifies() {
    let schema = FieldSchema::ovs_ipv4();
    let table = Scenario::SipSpDp.flow_table(&schema);
    let reference = table.clone();
    let mut dp = Datapath::new(table);
    let mut rng_state = 0x12345678u64;
    for i in 0..2000u32 {
        rng_state = rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let src = (rng_state >> 32) as u32;
        let sport = (rng_state >> 16) as u16;
        let dport = rng_state as u16;
        let pkt = PacketBuilder::tcp_v4(src.to_be_bytes(), [10, 0, 0, 99], sport, dport).build();
        let key = FlowKey::from_packet(&pkt).to_key(&schema);
        let expected = reference.lookup(&key).unwrap().action;
        let got = dp.process_packet(&pkt, i as f64 * 1e-3).action;
        assert_eq!(got, expected, "packet {i} misclassified");
    }
    assert!(dp.megaflow().check_independence());
}

// The megaflow cache stays independent (Inv 2) under arbitrary traffic mixes.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn independence_invariant_holds(headers in proptest::collection::vec((0u32..4096, 0u16..512, 0u16..512), 1..80)) {
        let schema = FieldSchema::ovs_ipv4();
        let table = Scenario::SpDp.flow_table(&schema);
        let mut dp = Datapath::new(table);
        for (i, (src, sport, dport)) in headers.iter().enumerate() {
            let pkt = PacketBuilder::udp_v4(src.to_be_bytes(), [10, 0, 0, 99], *sport, *dport).build();
            dp.process_packet(&pkt, i as f64 * 1e-3);
        }
        prop_assert!(dp.megaflow().check_independence());
        prop_assert!(dp.mask_count() <= dp.entry_count());
    }
}

/// Baseline classifiers agree with TSS on the verdict for every packet of a random mix,
/// while their lookup work stays bounded by the rule set.
#[test]
fn baselines_agree_with_tss_and_stay_flat() {
    let schema = FieldSchema::ovs_ipv4();
    let table = Scenario::SipDp.flow_table(&schema);
    let linear = LinearSearch::build(&table);
    let trie = HierarchicalTrie::build(&table);
    let hc = HyperCuts::build(&table);
    let mut dp = Datapath::new(table);

    let mut max_work = 0;
    let mut state = 99u64;
    for i in 0..1500u32 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let src = (state >> 32) as u32;
        let dport = state as u16;
        let pkt = PacketBuilder::tcp_v4(src.to_be_bytes(), [10, 0, 0, 99], 4000, dport).build();
        let key = FlowKey::from_packet(&pkt).to_key(&schema);
        let tss_verdict = dp.process_packet(&pkt, i as f64 * 1e-3).action;
        for c in [&linear as &dyn Classifier, &trie, &hc] {
            let r = c.classify(&key);
            assert_eq!(r.action, Some(tss_verdict), "{} disagrees", c.name());
            max_work = max_work.max(r.work);
        }
    }
    // The attack exploded the TSS mask count, but the baselines' work is unchanged by
    // traffic — it only depends on the 3-rule table.
    assert!(
        dp.mask_count() > 50,
        "TSS should have exploded: {}",
        dp.mask_count()
    );
    assert!(
        max_work < 200,
        "baseline lookup work must stay small: {max_work}"
    );
}
