//! Steady-state allocation audit of the sharded batch fan-out.
//!
//! The steering pre-partition pass (`PartitionScratch` / `Prepartition` in
//! `tse-switch`) promises **zero per-event heap allocations** once its scratch
//! buffers are warm: partitioning writes event indices into reusable buffers and each
//! shard processes one contiguous index run against the shared event slice — no
//! per-shard `Vec<(Key, bytes, t)>`, no per-event `Key` clones. This test pins that
//! with a counting global allocator: after a warm-up batch, fanning out a batch of N
//! events costs exactly as many allocations as a batch of 2N (the per-*batch*
//! constant — report vectors and executor slots — not per-event), on the sequential
//! walk and on the persistent worker pool alike.
//!
//! The per-event *classification* path is excluded by construction: the TSS backend
//! allocates per lookup (`apply_mask` builds a masked key), which is classifier work,
//! not fan-out work. A stub backend with an allocation-free lookup isolates the
//! machinery under audit.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use tse::classifier::backend::FastPathBackend;
use tse::classifier::tss::{InsertError, LookupOutcome};
use tse::prelude::*;

/// Forwards to the system allocator, counting every allocation (and reallocation —
/// a `Vec` growing in place is still heap traffic we claim not to produce).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// The test's own bookkeeping (building batches, report vectors) also counts; the
// assertions only ever compare *deltas* around the calls under audit.
//
// SAFETY: every method forwards `ptr`/`layout` unchanged to `System`, which upholds
// the `GlobalAlloc` contract; the only addition is a relaxed atomic counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: same forwarding argument as above for the remaining two methods.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(mut f: impl FnMut()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// A fast-path backend whose lookup is allocation-free (constant Allow verdict, one
/// mask scanned): every event terminates at level 2 without touching the slow path,
/// so any allocation observed during a batch belongs to the fan-out machinery.
#[derive(Debug, Clone)]
struct NoAllocBackend {
    schema: FieldSchema,
}

impl FastPathBackend for NoAllocBackend {
    fn fresh(schema: &FieldSchema) -> Self {
        NoAllocBackend {
            schema: schema.clone(),
        }
    }

    fn name(&self) -> &'static str {
        "no-alloc-stub"
    }

    fn schema(&self) -> &FieldSchema {
        &self.schema
    }

    fn lookup(&mut self, _header: &Key, _now: f64) -> LookupOutcome {
        LookupOutcome {
            action: Some(Action::Allow),
            masks_scanned: 1,
        }
    }

    fn insert_megaflow(
        &mut self,
        _key: Key,
        _mask: Mask,
        _action: Action,
        _now: f64,
    ) -> Result<(), InsertError> {
        Ok(())
    }

    fn clear(&mut self) {}

    fn mask_count(&self) -> usize {
        0
    }

    fn entry_count(&self) -> usize {
        0
    }
}

fn stub_datapath(
    schema: &FieldSchema,
    executor: impl ShardExecutor + 'static,
) -> ShardedDatapath<NoAllocBackend> {
    let tp_dst = schema.field_index("tp_dst").unwrap();
    let table = FlowTable::whitelist_default_deny(schema, &[(tp_dst, 80)]);
    ShardedDatapath::from_builder(
        Datapath::builder(table).backend_fresh::<NoAllocBackend>(),
        4,
        Steering::Rss,
    )
    .with_executor(executor)
}

fn spread_batch(schema: &FieldSchema, n: usize) -> Vec<(Key, usize, f64)> {
    let tp_dst = schema.field_index("tp_dst").unwrap();
    let ip_src = schema.field_index("ip_src").unwrap();
    (0..n)
        .map(|i| {
            let mut k = schema.zero_value();
            k.set(tp_dst, (i % 400) as u128);
            k.set(ip_src, 0x0a00_0000 + (i / 3) as u128);
            (k, 64usize, i as f64 * 1e-4)
        })
        .collect()
}

// One test function on purpose: the counter is process-global, and the deltas stay
// meaningful only while no sibling test allocates concurrently.
#[test]
fn steady_state_fan_out_allocates_independently_of_batch_size() {
    let schema = FieldSchema::ovs_ipv4();
    let small = spread_batch(&schema, 600);
    let big = spread_batch(&schema, 1200);

    // --- Sequential executor: the pure scratch-reuse claim. ---
    let mut dp = stub_datapath(&schema, SequentialExecutor);
    // Warm up with the *largest* batch so every scratch buffer reaches its final
    // capacity, then with the small one so nothing below depends on first-touch costs.
    dp.process_timed_batch(&big);
    dp.process_timed_batch(&small);

    let d_small = allocations_during(|| {
        dp.process_timed_batch(&small);
    });
    let d_big = allocations_during(|| {
        dp.process_timed_batch(&big);
    });
    assert_eq!(
        d_small, d_big,
        "fan-out allocations must not scale with batch size \
         (600 events: {d_small} allocs, 1200 events: {d_big})"
    );
    // The per-batch constant is the dispatch overhead (executor slots, report
    // vectors) — a handful, never hundreds.
    assert!(
        d_big <= 32,
        "per-batch dispatch overhead exploded: {d_big} allocations"
    );

    // --- The pre-partition pass itself reuses its buffers completely. ---
    let view = dp.steering_view();
    let mut prep = Prepartition::default();
    prep.compute(&view, &big); // warm
    prep.compute(&view, &small);
    let d_prep = allocations_during(|| {
        prep.compute(&view, &big);
        prep.compute(&view, &small);
    });
    assert_eq!(
        d_prep, 0,
        "warm Prepartition::compute must be allocation-free, saw {d_prep}"
    );

    // --- Consuming a precomputed partition allocates no more than computing one. ---
    let d_preparted = allocations_during(|| {
        prep.compute(&view, &big);
        dp.process_timed_batch_prepartitioned(&big, &mut prep);
    });
    assert!(
        d_preparted <= d_big,
        "prepartitioned dispatch ({d_preparted}) must not out-allocate \
         the inline pass ({d_big})"
    );

    // --- Persistent pool: same independence with the fan-out on live workers. ---
    let mut pooled = stub_datapath(&schema, PersistentPoolExecutor::new(2));
    pooled.process_timed_batch(&big);
    pooled.process_timed_batch(&small);
    let p_small = allocations_during(|| {
        pooled.process_timed_batch(&small);
    });
    let p_big = allocations_during(|| {
        pooled.process_timed_batch(&big);
    });
    assert_eq!(
        p_small, p_big,
        "pooled fan-out allocations must not scale with batch size \
         (600 events: {p_small} allocs, 1200 events: {p_big})"
    );

    // --- Wire ingestion: batched header extraction is allocation-free when warm. ---
    // Frames live in two contiguous WireTraces; the scratch's result buffer is the
    // only state the extractor touches, and after one warm pass over the *largest*
    // batch it never grows again — decode itself builds `Packet`s entirely on the
    // stack, so a warm `extract_keys_into` performs literally zero heap allocations,
    // batch size notwithstanding.
    let wire_small: Vec<Vec<u8>> = (0..600)
        .map(|i: u32| {
            tse::packet::wire::encode(
                &PacketBuilder::tcp_v4(
                    [10, (i >> 8) as u8, i as u8, 7],
                    [10, 0, 0, 99],
                    1024 + (i % 400) as u16,
                    80,
                )
                .build(),
            )
        })
        .collect();
    let frames_small: Vec<&[u8]> = wire_small.iter().map(Vec::as_slice).collect();
    let frames_big: Vec<&[u8]> = wire_small
        .iter()
        .chain(wire_small.iter())
        .map(Vec::as_slice)
        .collect();
    let mut scratch = ExtractScratch::new();
    extract_keys_into(&frames_big, &mut scratch); // warm to final capacity
    extract_keys_into(&frames_small, &mut scratch);
    let w_small = allocations_during(|| extract_keys_into(&frames_small, &mut scratch));
    let w_big = allocations_during(|| extract_keys_into(&frames_big, &mut scratch));
    assert_eq!(
        (w_small, w_big),
        (0, 0),
        "warm batched extraction must be allocation-free \
         (600 frames: {w_small} allocs, 1200 frames: {w_big})"
    );

    // On the full wire → steer → classify path, the *only* per-frame allocation is
    // materialising each decoded frame's schema `Key` for the classifier — the very
    // allocation a key-level caller performs when building its input batch, so wire
    // ingestion adds nothing on top: the delta between a 1200- and a 600-frame batch
    // is exactly the 600 extra keys.
    let mut wire_dp = stub_datapath(&schema, SequentialExecutor);
    wire_dp.process_wire_batch(&frames_big, &mut scratch, 0.0);
    wire_dp.process_wire_batch(&frames_small, &mut scratch, 0.0);
    let dw_small =
        allocations_during(|| drop(wire_dp.process_wire_batch(&frames_small, &mut scratch, 0.0)));
    let dw_big =
        allocations_during(|| drop(wire_dp.process_wire_batch(&frames_big, &mut scratch, 0.0)));
    assert_eq!(
        dw_big - dw_small,
        frames_small.len() as u64,
        "wire ingestion must add exactly one key materialisation per extra frame \
         (600 frames: {dw_small} allocs, 1200 frames: {dw_big})"
    );
}
