//! Golden parity: the event-driven `ExperimentRunner` must reproduce the
//! pre-streaming-redesign runner's `Timeline` **bit-for-bit** for single-source runs.
//!
//! `reference_run` below is a frozen, verbatim copy of the old `ExperimentRunner::run`
//! loop (pre `TrafficSource` redesign), expressed against the public datapath API. It
//! is the ground truth the redesigned runner (trace + victims wrapped in a
//! `TrafficMix`, drained through `Datapath::process_timed_batch`) is compared against:
//! every sample of every scenario must match exactly, down to the f64 bits.
//!
//! `reference_guarded_run` is a second frozen copy: the pre-mitigation-stack runner's
//! `run_mix` loop with its hard-wired `Option<MfcGuard>` (the `guard.maybe_run_sharded`
//! call after throughput accounting). It is the ground truth the `with_guard` shim —
//! now a `GuardMitigation` stage on the composable `MitigationStack` — is compared
//! against, on every scenario, single- and multi-shard, down to the f64 bits.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse::prelude::*;
use tse::switch::stats::PathTaken;

/// One sample of the frozen reference runner (the old `TimelineSample` fields).
struct RefSample {
    time: f64,
    victim_gbps: Vec<f64>,
    attacker_pps: f64,
    mask_count: usize,
    entry_count: usize,
    victim_masks_scanned: usize,
}

/// Frozen copy of the pre-redesign `ExperimentRunner::run` (TSS backend, no guard).
fn reference_run(
    datapath: &mut Datapath,
    victims: &[VictimFlow],
    offload: &OffloadConfig,
    attack: &AttackTrace,
    duration: f64,
) -> Vec<RefSample> {
    let dt = 1.0; // the old default sample interval
    let mut samples = Vec::new();
    let mut attack_iter = attack.packets().iter().peekable();
    let steps = (duration / dt).ceil() as usize;
    for step in 0..steps {
        let t = step as f64 * dt;
        let t_end = t + dt;

        // 1. Replay the attack packets that fall into this interval.
        let mut attack_packets = 0u64;
        let mut attack_busy = 0.0f64;
        while let Some(tp) = attack_iter.peek() {
            if tp.time >= t_end {
                break;
            }
            let tp = attack_iter.next().expect("peeked");
            if tp.time >= t {
                let outcome = datapath.process_packet(&tp.packet, tp.time);
                attack_packets += 1;
                attack_busy += outcome.cost;
            }
        }
        datapath.maybe_expire(t_end);

        // 2. Probe each active victim flow once.
        let mut victim_costs = Vec::with_capacity(victims.len());
        let mut victim_masks_scanned = 0;
        for flow in victims {
            if !flow.is_active(t) {
                victim_costs.push(None);
                continue;
            }
            let probe = flow.representative_packet();
            let outcome = datapath.process_packet(&probe, t + dt * 0.5);
            victim_masks_scanned = victim_masks_scanned.max(outcome.masks_scanned);
            let units = datapath.megaflow().cost_units(outcome.masks_scanned);
            let cost = match outcome.path {
                PathTaken::SlowPath => offload.cost.slow_path(units),
                PathTaken::Microflow => offload.cost.microflow(),
                _ => offload.cost.fast_path(units),
            };
            victim_costs.push(Some(cost));
        }

        // 3. Convert the CPU left after attack processing into victim throughput.
        let available_cpu = (dt - attack_busy).max(0.0);
        let active: Vec<usize> = victim_costs
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|_| i))
            .collect();
        let mut victim_gbps = vec![0.0; victims.len()];
        if !active.is_empty() {
            let share = available_cpu / active.len() as f64;
            let mut leftover = 0.0;
            for &i in &active {
                let cost = victim_costs[i].expect("active flow has a cost");
                let offered_pps =
                    victims[i].offered_gbps * 1e9 / 8.0 / offload.bytes_per_invocation as f64;
                let achievable_pps = share / cost / dt;
                let pps = achievable_pps.min(offered_pps);
                leftover += (achievable_pps - pps).max(0.0) * cost * dt;
                victim_gbps[i] = pps * offload.bytes_per_invocation as f64 * 8.0 / 1e9;
            }
            if leftover > 1e-12 {
                let limited: Vec<usize> = active
                    .iter()
                    .copied()
                    .filter(|&i| {
                        victim_gbps[i] + 1e-9 < victims[i].offered_gbps.min(offload.line_rate_gbps)
                    })
                    .collect();
                if !limited.is_empty() {
                    let extra = leftover / limited.len() as f64;
                    for &i in &limited {
                        let cost = victim_costs[i].expect("active");
                        let extra_gbps =
                            extra / cost / dt * offload.bytes_per_invocation as f64 * 8.0 / 1e9;
                        victim_gbps[i] = (victim_gbps[i] + extra_gbps).min(victims[i].offered_gbps);
                    }
                }
            }
            let total: f64 = victim_gbps.iter().sum();
            if total > offload.line_rate_gbps {
                let scale = offload.line_rate_gbps / total;
                for v in &mut victim_gbps {
                    *v *= scale;
                }
            }
        }

        samples.push(RefSample {
            time: t,
            victim_gbps,
            attacker_pps: attack_packets as f64 / dt,
            mask_count: datapath.mask_count(),
            entry_count: datapath.entry_count(),
            victim_masks_scanned,
        });
    }
    samples
}

fn assert_bit_for_bit(reference: &[RefSample], timeline: &Timeline, context: &str) {
    assert_eq!(reference.len(), timeline.samples.len(), "{context}: length");
    for (r, s) in reference.iter().zip(&timeline.samples) {
        let ctx = format!("{context} @ t={}", r.time);
        assert_eq!(r.time.to_bits(), s.time.to_bits(), "{ctx}: time");
        assert_eq!(
            r.victim_gbps.len(),
            s.victim_gbps.len(),
            "{ctx}: victim arity"
        );
        for (i, (a, b)) in r.victim_gbps.iter().zip(&s.victim_gbps).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{ctx}: victim {i} gbps {a} vs {b}"
            );
        }
        assert_eq!(
            r.attacker_pps.to_bits(),
            s.attacker_pps.to_bits(),
            "{ctx}: attacker pps"
        );
        assert_eq!(r.mask_count, s.mask_count, "{ctx}: masks");
        assert_eq!(r.entry_count, s.entry_count, "{ctx}: entries");
        assert_eq!(
            r.victim_masks_scanned, s.victim_masks_scanned,
            "{ctx}: victim masks scanned"
        );
    }
}

/// The canonical Fig. 8a-style setup, per scenario: three victims with staggered
/// activity windows, a cyclic co-located attack at 100 pps from t=30 s.
fn scenario_fixture(scenario: Scenario) -> (FlowTable, Vec<VictimFlow>, AttackTrace) {
    let schema = FieldSchema::ovs_ipv4();
    let table = scenario.flow_table(&schema);
    let victims = vec![
        VictimFlow::iperf_tcp("Victim 1", 0x0a000005, 0x0a000063, 10.0).with_src_port(40001),
        VictimFlow::iperf_tcp("Victim 2", 0x0a000006, 0x0a000063, 6.0).with_src_port(40002),
        VictimFlow::iperf_udp("Victim 3", 0x0a000007, 0x0a000063, 3.0).active_between(20.0, 70.0),
    ];
    let keys = scenario_trace(&schema, scenario, &schema.zero_value());
    let attack = if keys.is_empty() {
        AttackTrace::default()
    } else {
        let mut rng = StdRng::seed_from_u64(99);
        AttackTrace::from_keys_cyclic(&mut rng, &schema, &keys, 100.0, 30.0, 3000)
    };
    (table, victims, attack)
}

#[test]
fn event_driven_runner_matches_frozen_reference_for_every_scenario() {
    for scenario in Scenario::ALL {
        let (table, victims, attack) = scenario_fixture(scenario);
        let offload = OffloadConfig::gro_off();

        let mut ref_dp = Datapath::new(table.clone());
        let reference = reference_run(&mut ref_dp, &victims, &offload, &attack, 90.0);

        let mut runner = ExperimentRunner::new(Datapath::new(table), victims.clone(), offload);
        let timeline = runner.run(&attack, 90.0);

        assert_eq!(
            timeline.victim_names,
            victims.iter().map(|v| v.name.clone()).collect::<Vec<_>>()
        );
        assert_bit_for_bit(&reference, &timeline, scenario.name());
    }
}

#[test]
fn one_shard_sharded_runner_matches_frozen_reference_for_every_scenario() {
    // The multi-PMD refactor must be invisible at one shard: an ExperimentRunner over
    // a 1-shard ShardedDatapath (any steering policy — with one shard they are all the
    // same total partition) reproduces the frozen pre-sharding runner bit-for-bit.
    for scenario in Scenario::ALL {
        let (table, victims, attack) = scenario_fixture(scenario);
        let offload = OffloadConfig::gro_off();

        let mut ref_dp = Datapath::new(table.clone());
        let reference = reference_run(&mut ref_dp, &victims, &offload, &attack, 90.0);

        let sharded = ShardedDatapath::from_builder(Datapath::builder(table), 1, Steering::Rss);
        let mut runner = ExperimentRunner::sharded(sharded, victims.clone(), offload);
        let timeline = runner.run(&attack, 90.0);

        assert_eq!(timeline.shard_count, 1);
        for s in &timeline.samples {
            assert_eq!(
                s.shard_masks,
                vec![s.mask_count],
                "per-shard masks aggregate"
            );
            assert_eq!(s.shard_entries, vec![s.entry_count]);
            assert_eq!(s.shard_attacker_pps, vec![s.attacker_pps]);
        }
        assert_bit_for_bit(&reference, &timeline, &format!("sharded(1)/{}", scenario));
    }
}

/// One sample of the frozen pre-mitigation-stack guarded runner (the PR 3
/// `TimelineSample` fields, before `mitigation_actions` existed).
struct RefGuardedSample {
    time: f64,
    victim_gbps: Vec<f64>,
    attacker_pps: f64,
    mask_count: usize,
    entry_count: usize,
    victim_masks_scanned: usize,
    shard_masks: Vec<usize>,
    shard_entries: Vec<usize>,
    shard_attacker_pps: Vec<f64>,
}

/// Frozen copy of the pre-mitigation-stack `ExperimentRunner::run` path: the event
/// loop over a `TrafficMix` of victims plus one attack trace, with the hard-wired
/// `Option<MfcGuard>` swept via `maybe_run_sharded` after throughput accounting —
/// exactly the runner this PR redesigned away.
fn reference_guarded_run(
    datapath: &mut ShardedDatapath,
    victims: &[VictimFlow],
    offload: &OffloadConfig,
    attack: &AttackTrace,
    mut guard: Option<MfcGuard>,
    duration: f64,
) -> Vec<RefGuardedSample> {
    let dt = 1.0;
    let schema = datapath.table().schema().clone();
    let mut mix = TrafficMix::new();
    for flow in victims {
        mix.push(Box::new(VictimSource::new(flow.clone(), &schema, dt)));
    }
    mix.push(Box::new(attack.source("Attacker", &schema)));

    let roles = mix.roles();
    let mut victim_slot = vec![usize::MAX; roles.len()];
    let mut attacker_slot = vec![usize::MAX; roles.len()];
    let mut n_victims = 0;
    let mut n_attackers = 0;
    for (i, role) in roles.iter().enumerate() {
        match role {
            SourceRole::Victim => {
                victim_slot[i] = n_victims;
                n_victims += 1;
            }
            SourceRole::Attacker => {
                attacker_slot[i] = n_attackers;
                n_attackers += 1;
            }
            SourceRole::Background => {
                unreachable!("the frozen reference mixes have no background sources")
            }
        }
    }
    let n_shards = datapath.shard_count();
    let mut samples = Vec::new();
    let steps = (duration / dt).ceil() as usize;
    let mut chunk: Vec<(Key, usize, f64)> = Vec::new();
    let mut probes: Vec<(usize, TrafficEvent)> = Vec::new();
    for step in 0..steps {
        let t = step as f64 * dt;
        let t_end = t + dt;

        let mut attack_packets = 0u64;
        let mut shard_busy = vec![0.0f64; n_shards];
        let mut shard_packets = vec![0u64; n_shards];
        let mut per_attacker = vec![0u64; n_attackers];
        let mut chunk_src = usize::MAX;
        chunk.clear();
        probes.clear();
        let flush = |datapath: &mut ShardedDatapath,
                     chunk: &mut Vec<(Key, usize, f64)>,
                     src: usize,
                     shard_busy: &mut [f64],
                     shard_packets: &mut [u64],
                     per_attacker: &mut [u64]| {
            if chunk.is_empty() {
                return 0u64;
            }
            let report = datapath.process_timed_batch(chunk);
            for (s, r) in report.per_shard.iter().enumerate() {
                shard_busy[s] += r.total_cost;
                shard_packets[s] += r.processed as u64;
            }
            let n = chunk.len() as u64;
            if attacker_slot[src] != usize::MAX {
                per_attacker[attacker_slot[src]] += n;
            }
            chunk.clear();
            n
        };
        while let Some((src, ev)) = mix.next_before(t_end) {
            match ev.payload {
                EventPayload::Packet => {
                    if ev.time < t {
                        continue;
                    }
                    if src != chunk_src {
                        attack_packets += flush(
                            datapath,
                            &mut chunk,
                            chunk_src,
                            &mut shard_busy,
                            &mut shard_packets,
                            &mut per_attacker,
                        );
                        chunk_src = src;
                    }
                    chunk.push((ev.key, ev.bytes, ev.time));
                }
                EventPayload::Probe { .. } => probes.push((src, ev)),
                EventPayload::Malformed { .. } => {
                    unreachable!("the frozen reference mixes are key-level only")
                }
            }
        }
        attack_packets += flush(
            datapath,
            &mut chunk,
            chunk_src,
            &mut shard_busy,
            &mut shard_packets,
            &mut per_attacker,
        );
        datapath.maybe_expire(t_end);

        let mut victim_costs: Vec<Option<f64>> = vec![None; n_victims];
        let mut victim_offered = vec![0.0f64; n_victims];
        let mut victim_shard = vec![0usize; n_victims];
        let mut victim_masks_scanned = 0;
        for (src, ev) in &probes {
            let EventPayload::Probe { offered_gbps } = ev.payload else {
                continue;
            };
            if victim_slot[*src] == usize::MAX {
                continue;
            }
            let slot = victim_slot[*src];
            let shard = datapath.shard_of_key(&ev.key);
            let outcome = datapath
                .shard_mut(shard)
                .process_key(&ev.key, ev.bytes, ev.time);
            victim_masks_scanned = victim_masks_scanned.max(outcome.masks_scanned);
            let units = datapath
                .shard(shard)
                .megaflow()
                .cost_units(outcome.masks_scanned);
            let cost = match outcome.path {
                PathTaken::SlowPath => offload.cost.slow_path(units),
                PathTaken::Microflow => offload.cost.microflow(),
                _ => offload.cost.fast_path(units),
            };
            victim_costs[slot] = Some(cost);
            victim_offered[slot] = offered_gbps;
            victim_shard[slot] = shard;
        }

        let mut victim_gbps = vec![0.0; n_victims];
        for (shard, busy) in shard_busy.iter().enumerate() {
            let available_cpu = (dt - busy).max(0.0);
            let active: Vec<usize> = victim_costs
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.map(|_| i))
                .filter(|&i| victim_shard[i] == shard)
                .collect();
            if active.is_empty() {
                continue;
            }
            let share = available_cpu / active.len() as f64;
            let mut leftover = 0.0;
            for &i in &active {
                let cost = victim_costs[i].expect("active flow has a cost");
                let offered_pps =
                    victim_offered[i] * 1e9 / 8.0 / offload.bytes_per_invocation as f64;
                let achievable_pps = share / cost / dt;
                let pps = achievable_pps.min(offered_pps);
                leftover += (achievable_pps - pps).max(0.0) * cost * dt;
                victim_gbps[i] = pps * offload.bytes_per_invocation as f64 * 8.0 / 1e9;
            }
            if leftover > 1e-12 {
                let limited: Vec<usize> = active
                    .iter()
                    .copied()
                    .filter(|&i| {
                        victim_gbps[i] + 1e-9 < victim_offered[i].min(offload.line_rate_gbps)
                    })
                    .collect();
                if !limited.is_empty() {
                    let extra = leftover / limited.len() as f64;
                    for &i in &limited {
                        let cost = victim_costs[i].expect("active");
                        let extra_gbps =
                            extra / cost / dt * offload.bytes_per_invocation as f64 * 8.0 / 1e9;
                        victim_gbps[i] = (victim_gbps[i] + extra_gbps).min(victim_offered[i]);
                    }
                }
            }
        }
        let total: f64 = victim_gbps.iter().sum();
        if total > offload.line_rate_gbps {
            let scale = offload.line_rate_gbps / total;
            for v in &mut victim_gbps {
                *v *= scale;
            }
        }

        // The pre-redesign guard hook: one shared-config sweep per shard whenever the
        // shared interval elapses.
        if let Some(guard) = &mut guard {
            let per_shard_pps: Vec<f64> = shard_packets.iter().map(|&c| c as f64 / dt).collect();
            guard.maybe_run_sharded(datapath, t_end, &per_shard_pps);
        }

        samples.push(RefGuardedSample {
            time: t,
            victim_gbps,
            attacker_pps: attack_packets as f64 / dt,
            mask_count: datapath.mask_count(),
            entry_count: datapath.entry_count(),
            victim_masks_scanned,
            shard_masks: datapath.shard_mask_counts(),
            shard_entries: datapath.shard_entry_counts(),
            shard_attacker_pps: shard_packets.iter().map(|&c| c as f64 / dt).collect(),
        });
    }
    samples
}

fn assert_guarded_bit_for_bit(reference: &[RefGuardedSample], timeline: &Timeline, context: &str) {
    assert_eq!(reference.len(), timeline.samples.len(), "{context}: length");
    for (r, s) in reference.iter().zip(&timeline.samples) {
        let ctx = format!("{context} @ t={}", r.time);
        assert_eq!(r.time.to_bits(), s.time.to_bits(), "{ctx}: time");
        assert_eq!(r.victim_gbps.len(), s.victim_gbps.len(), "{ctx}: arity");
        for (i, (a, b)) in r.victim_gbps.iter().zip(&s.victim_gbps).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{ctx}: victim {i} gbps {a} vs {b}"
            );
        }
        assert_eq!(
            r.attacker_pps.to_bits(),
            s.attacker_pps.to_bits(),
            "{ctx}: attacker pps"
        );
        assert_eq!(r.mask_count, s.mask_count, "{ctx}: masks");
        assert_eq!(r.entry_count, s.entry_count, "{ctx}: entries");
        assert_eq!(
            r.victim_masks_scanned, s.victim_masks_scanned,
            "{ctx}: victim masks scanned"
        );
        assert_eq!(r.shard_masks, s.shard_masks, "{ctx}: shard masks");
        assert_eq!(r.shard_entries, s.shard_entries, "{ctx}: shard entries");
        for (i, (a, b)) in r
            .shard_attacker_pps
            .iter()
            .zip(&s.shard_attacker_pps)
            .enumerate()
        {
            assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: shard {i} attacker pps");
        }
    }
}

/// The guard configuration used for the shim parity runs: thresholds low enough that
/// the guard actually fires and evicts during every scenario's attack phase.
fn parity_guard_config() -> GuardConfig {
    GuardConfig {
        interval: 10.0,
        mask_threshold: 30,
        ..GuardConfig::default()
    }
}

#[test]
fn with_guard_shim_matches_frozen_guarded_reference_for_every_scenario() {
    for scenario in Scenario::ALL {
        let (table, victims, attack) = scenario_fixture(scenario);
        let offload = OffloadConfig::gro_off();

        let mut ref_dp = ShardedDatapath::single(Datapath::new(table.clone()));
        let reference = reference_guarded_run(
            &mut ref_dp,
            &victims,
            &offload,
            &attack,
            Some(MfcGuard::new(parity_guard_config())),
            90.0,
        );

        let mut runner = ExperimentRunner::new(Datapath::new(table), victims, offload)
            .with_guard(MfcGuard::new(parity_guard_config()));
        let timeline = runner.run(&attack, 90.0);
        assert_guarded_bit_for_bit(&reference, &timeline, &format!("guarded/{scenario}"));
    }
}

#[test]
fn with_guard_shim_matches_frozen_guarded_reference_on_a_sharded_datapath() {
    // The same parity on a real multi-PMD datapath: 4 RSS-steered shards, every
    // scenario. The per-shard guards of the shim must fire at exactly the times the
    // old shared gate did and sweep the shards in the same order.
    for scenario in Scenario::ALL {
        let (table, victims, attack) = scenario_fixture(scenario);
        let offload = OffloadConfig::gro_off();

        let mut ref_dp =
            ShardedDatapath::from_builder(Datapath::builder(table.clone()), 4, Steering::Rss);
        let reference = reference_guarded_run(
            &mut ref_dp,
            &victims,
            &offload,
            &attack,
            Some(MfcGuard::new(parity_guard_config())),
            90.0,
        );

        let sharded = ShardedDatapath::from_builder(Datapath::builder(table), 4, Steering::Rss);
        let mut runner = ExperimentRunner::sharded(sharded, victims, offload)
            .with_guard(MfcGuard::new(parity_guard_config()));
        let timeline = runner.run(&attack, 90.0);
        assert_eq!(timeline.shard_count, 4);
        assert_guarded_bit_for_bit(
            &reference,
            &timeline,
            &format!("guarded-sharded(4)/{scenario}"),
        );
    }
}

#[test]
fn unguarded_reference_agrees_with_guardless_frozen_reference() {
    // Internal consistency of the two frozen references: with no guard attached the
    // guarded copy reduces to the original single-shard reference.
    let (table, victims, attack) = scenario_fixture(Scenario::SipDp);
    let offload = OffloadConfig::gro_off();
    let mut a_dp = Datapath::new(table.clone());
    let a = reference_run(&mut a_dp, &victims, &offload, &attack, 60.0);
    let mut b_dp = ShardedDatapath::single(Datapath::new(table));
    let b = reference_guarded_run(&mut b_dp, &victims, &offload, &attack, None, 60.0);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.time.to_bits(), y.time.to_bits());
        for (u, v) in x.victim_gbps.iter().zip(&y.victim_gbps) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
        assert_eq!(x.mask_count, y.mask_count);
        assert_eq!(x.entry_count, y.entry_count);
    }
}

#[test]
fn parity_holds_for_udp_offload_and_partial_duration() {
    // A second configuration axis: UDP offload model, shorter horizon, Dp scenario.
    let (table, victims, attack) = scenario_fixture(Scenario::Dp);
    let offload = OffloadConfig::udp();
    let mut ref_dp = Datapath::new(table.clone());
    let reference = reference_run(&mut ref_dp, &victims, &offload, &attack, 47.0);
    let mut runner = ExperimentRunner::new(Datapath::new(table), victims, offload);
    let timeline = runner.run(&attack, 47.0);
    assert_bit_for_bit(&reference, &timeline, "Dp/udp/47s");
}
