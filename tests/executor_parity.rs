//! Executor parity: thread-parallel shard execution must be bit-for-bit identical to
//! the sequential walk — same `Timeline`s (f64-bit compares), same `DatapathStats`,
//! same `ShardedBatchReport`s, same mitigation action logs — for every scenario,
//! shard count and defense stack. The executor may only change wall-clock time.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tse::prelude::*;
use tse::switch::stats::DatapathStats;

/// Run one full experiment — two victims, a lazy scenario attacker, the full
/// mitigation stack (guard + rekey + upcall quota + mask cap) — on `n_shards` shards
/// under the given executor.
fn run_experiment(
    scenario: Scenario,
    n_shards: usize,
    executor: impl ShardExecutor + 'static,
) -> Timeline {
    let schema = FieldSchema::ovs_ipv4();
    let table = scenario.flow_table(&schema);
    let sharded = ShardedDatapath::from_builder(Datapath::builder(table), n_shards, Steering::Rss)
        .with_executor(executor);
    let mut runner = ExperimentRunner::sharded(sharded, Vec::new(), OffloadConfig::gro_off())
        .with_mitigation(GuardMitigation::new(GuardConfig {
            mask_threshold: 30,
            ..GuardConfig::default()
        }))
        .with_mitigation(RssKeyRandomizer::new(15.0, 0xC0FFEE))
        .with_mitigation(UpcallLimiter::new(200))
        .with_mitigation(MaskCap::new(400));
    let mut mix = TrafficMix::new()
        .with(VictimSource::new(
            VictimFlow::iperf_tcp("Victim 1", 0x0a00_0005, 0x0a00_0063, 10.0),
            &schema,
            1.0,
        ))
        .with(VictimSource::new(
            VictimFlow::iperf_tcp("Victim 2", 0x0a00_0007, 0x0a00_0064, 4.0),
            &schema,
            1.0,
        ));
    mix.push(Box::new(
        AttackGenerator::new(
            "Attacker",
            &schema,
            scenario.key_iter(&schema, &schema.zero_value()).cycle(),
            StdRng::seed_from_u64(42),
            100.0,
            10.0,
        )
        .with_limit(2500),
    ));
    runner.run_mix(mix, 40.0)
}

/// Bitwise f64 slice equality (stricter than `==`: distinguishes -0.0 and would catch
/// a NaN, which `PartialEq` lets slip).
fn assert_bits_eq(a: &[f64], b: &[f64], what: &str, t: f64) {
    assert_eq!(a.len(), b.len(), "{what} arity at t={t}");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}[{i}] diverged at t={t}: {x} vs {y}"
        );
    }
}

fn assert_timelines_identical(seq: &Timeline, par: &Timeline) {
    assert_eq!(seq.victim_names, par.victim_names);
    assert_eq!(seq.attacker_names, par.attacker_names);
    assert_eq!(seq.shard_count, par.shard_count);
    assert_eq!(seq.samples.len(), par.samples.len());
    for (a, b) in seq.samples.iter().zip(&par.samples) {
        // Structural equality first (covers counts and the mitigation action log)...
        assert_eq!(a, b, "samples diverged at t={}", a.time);
        // ...then the f64 series to the bit.
        assert_bits_eq(&a.victim_gbps, &b.victim_gbps, "victim_gbps", a.time);
        assert_bits_eq(
            &a.attacker_pps_by_source,
            &b.attacker_pps_by_source,
            "attacker_pps_by_source",
            a.time,
        );
        assert_bits_eq(
            &a.shard_attacker_pps,
            &b.shard_attacker_pps,
            "shard_attacker_pps",
            a.time,
        );
        assert_eq!(a.attacker_pps.to_bits(), b.attacker_pps.to_bits());
    }
}

#[test]
fn threaded_timelines_match_sequential_on_every_scenario_and_shard_count() {
    for scenario in Scenario::ALL {
        for n_shards in [1usize, 4, 16] {
            let seq = run_experiment(scenario, n_shards, SequentialExecutor);
            let par = run_experiment(scenario, n_shards, ThreadPoolExecutor::new(4));
            assert_timelines_identical(&seq, &par);
        }
    }
}

#[test]
fn persistent_pool_timelines_match_sequential_on_every_scenario_and_shard_count() {
    // Same exhaustive sweep for the long-lived worker pool — and note the pipelined
    // runner actually overlaps the drain of interval k+1 with shard processing here,
    // so this doubles as the determinism proof of the pipeline itself.
    for scenario in Scenario::ALL {
        for n_shards in [1usize, 4, 16] {
            let seq = run_experiment(scenario, n_shards, SequentialExecutor);
            let par = run_experiment(scenario, n_shards, PersistentPoolExecutor::new(4));
            assert_timelines_identical(&seq, &par);
        }
    }
}

#[test]
fn chaos_timelines_match_sequential_across_seeds() {
    // The adversarial executor runs the shards in a seeded permutation with injected
    // yields — if any cross-shard state or order-dependent merge existed, some seed
    // would surface it. Sweep seeds on one scenario and scenarios on one seed.
    let seq = run_experiment(Scenario::SipDp, 8, SequentialExecutor);
    for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
        let chaos = run_experiment(Scenario::SipDp, 8, ChaosExecutor::new(4, seed));
        assert_timelines_identical(&seq, &chaos);
    }
    for scenario in Scenario::ALL {
        for n_shards in [1usize, 4, 16] {
            let seq = run_experiment(scenario, n_shards, SequentialExecutor);
            let chaos = run_experiment(scenario, n_shards, ChaosExecutor::new(4, 7));
            assert_timelines_identical(&seq, &chaos);
        }
    }
}

#[test]
fn one_persistent_pool_is_reusable_across_runs() {
    // A single pool (cloned handles share the workers) driving several full
    // experiments back to back must keep producing the sequential timelines — the
    // long-lived workers carry no state between runs.
    let pool = PersistentPoolExecutor::new(3);
    for scenario in [Scenario::SipDp, Scenario::SpDp, Scenario::SipDp] {
        let seq = run_experiment(scenario, 8, SequentialExecutor);
        let par = run_experiment(scenario, 8, pool.clone());
        assert_timelines_identical(&seq, &par);
    }
}

#[test]
fn threaded_runs_are_reproducible() {
    // Two identical threaded runs agree with each other (no hidden scheduling
    // dependence), not just with the sequential reference.
    let a = run_experiment(Scenario::SipDp, 8, ThreadPoolExecutor::new(3));
    let b = run_experiment(Scenario::SipDp, 8, ThreadPoolExecutor::new(5));
    assert_timelines_identical(&a, &b);
}

/// The raw sharded batch entry points agree across executors, report for report.
#[test]
fn batch_reports_and_stats_match_across_executors() {
    let schema = FieldSchema::ovs_ipv4();
    let events: Vec<(Key, usize, f64)> = Scenario::SipDp
        .key_iter(&schema, &schema.zero_value())
        .take(2000)
        .enumerate()
        .map(|(i, k)| (k, 64usize, 0.01 + i as f64 * 1e-3))
        .collect();
    let table = Scenario::SipDp.flow_table(&schema);
    let mut seq = ShardedDatapath::new(table.clone(), 6, Steering::Rss);
    let mut par =
        ShardedDatapath::new(table, 6, Steering::Rss).with_executor(PersistentPoolExecutor::new(4));
    assert_eq!(par.executor().name(), "persistent-pool");

    let r_seq = seq.process_timed_batch(&events);
    let r_par = par.process_timed_batch(&events);
    assert_eq!(r_seq, r_par);
    assert_eq!(seq.stats(), par.stats());
    assert_eq!(
        seq.stats().busy_seconds.to_bits(),
        par.stats().busy_seconds.to_bits()
    );
    assert_eq!(seq.shard_mask_counts(), par.shard_mask_counts());
    assert_eq!(seq.shard_entry_counts(), par.shard_entry_counts());

    // The single-timestamp form and the expiry sweep too.
    let flat: Vec<(Key, usize)> = events.iter().map(|(k, b, _)| (k.clone(), *b)).collect();
    assert_eq!(seq.process_batch(&flat, 3.0), par.process_batch(&flat, 3.0));
    seq.maybe_expire(60.0);
    par.maybe_expire(60.0);
    assert_eq!(seq.mask_count(), par.mask_count());
    assert_eq!(seq.entry_count(), par.entry_count());
}

/// Satellite: the per-shard reports the executor returns must agree with what the
/// shards themselves recorded — `per_shard[i]` against `shard_stats(i)` and the
/// aggregate against the merged stats, counter for counter and cost bit for bit.
#[test]
fn sharded_batch_report_is_consistent_with_shard_stats() {
    let schema = FieldSchema::ovs_ipv4();
    let events: Vec<(Key, usize, f64)> = Scenario::SpDp
        .key_iter(&schema, &schema.zero_value())
        .take(1500)
        .enumerate()
        .map(|(i, k)| (k, 64usize, 0.01 + i as f64 * 1e-3))
        .collect();
    for executor in [
        Box::new(SequentialExecutor) as Box<dyn ShardExecutor>,
        Box::new(ThreadPoolExecutor::new(4)),
        Box::new(PersistentPoolExecutor::new(4)),
        Box::new(ChaosExecutor::new(4, 0xC0FFEE)),
    ] {
        let mut dp = ShardedDatapath::new(Scenario::SpDp.flow_table(&schema), 4, Steering::Rss)
            .with_executor(executor);
        let report = dp.process_timed_batch(&events);
        assert_eq!(report.per_shard.len(), 4);
        for (i, r) in report.per_shard.iter().enumerate() {
            let stats = dp.shard_stats(i);
            assert_eq!(r.processed as u64, stats.packets(), "shard {i} processed");
            assert_eq!(r.allowed, stats.allowed, "shard {i} allowed");
            assert_eq!(r.denied, stats.denied, "shard {i} denied");
            assert_eq!(r.upcalls, stats.upcalls, "shard {i} upcalls");
            assert_eq!(
                r.fastpath_hits, stats.megaflow_hits,
                "shard {i} fastpath hits"
            );
            assert_eq!(
                r.total_cost.to_bits(),
                stats.busy_seconds.to_bits(),
                "shard {i} cost"
            );
        }
        let agg = report.aggregate();
        let stats = dp.stats();
        assert_eq!(agg.processed as u64, stats.packets());
        assert_eq!(agg.allowed, stats.allowed);
        assert_eq!(agg.denied, stats.denied);
        assert_eq!(agg.upcalls, stats.upcalls);
        assert_eq!(agg.total_cost.to_bits(), stats.busy_seconds.to_bits());
        assert_eq!(agg.processed, events.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Executor choice never changes `DatapathStats`: arbitrary key batches over
    /// arbitrary shard/thread counts produce identical per-shard and aggregate
    /// counters (costs compared to the f64 bit).
    #[test]
    fn executor_choice_never_changes_datapath_stats(
        values in proptest::collection::vec((0u128..1u128 << 32, 0u128..=u16::MAX as u128), 40..60),
        n_shards in 1usize..9,
        threads in 2usize..6,
    ) {
        let schema = FieldSchema::ovs_ipv4();
        let ip_src = schema.field_index("ip_src").unwrap();
        let tp_dst = schema.field_index("tp_dst").unwrap();
        let batch: Vec<(Key, usize, f64)> = values
            .iter()
            .enumerate()
            .map(|(i, (src, port))| {
                let mut k = schema.zero_value();
                k.set(ip_src, *src);
                k.set(tp_dst, *port);
                (k, 64usize, i as f64 * 0.05)
            })
            .collect();
        let table = Scenario::SpDp.flow_table(&schema);
        let mut seq = ShardedDatapath::new(table.clone(), n_shards, Steering::Rss);
        let mut par = ShardedDatapath::new(table.clone(), n_shards, Steering::Rss)
            .with_executor(ThreadPoolExecutor::new(threads));
        let mut pool = ShardedDatapath::new(table.clone(), n_shards, Steering::Rss)
            .with_executor(PersistentPoolExecutor::new(threads));
        let mut chaos = ShardedDatapath::new(table, n_shards, Steering::Rss)
            .with_executor(ChaosExecutor::new(threads, values.len() as u64));
        let r_seq = seq.process_timed_batch(&batch);
        let r_par = par.process_timed_batch(&batch);
        let r_pool = pool.process_timed_batch(&batch);
        let r_chaos = chaos.process_timed_batch(&batch);
        prop_assert_eq!(&r_seq, &r_par);
        prop_assert_eq!(&r_seq, &r_pool);
        prop_assert_eq!(&r_seq, &r_chaos);
        let (a, b): (DatapathStats, DatapathStats) = (seq.stats(), par.stats());
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.busy_seconds.to_bits(), b.busy_seconds.to_bits());
        let c: DatapathStats = pool.stats();
        prop_assert_eq!(&a, &c);
        prop_assert_eq!(a.busy_seconds.to_bits(), c.busy_seconds.to_bits());
        for i in 0..n_shards {
            prop_assert_eq!(seq.shard_stats(i), par.shard_stats(i), "shard {}", i);
            prop_assert_eq!(seq.shard_stats(i), pool.shard_stats(i), "shard {}", i);
        }
    }
}
