//! Acceptance: a multi-attacker scenario — two staggered attack sources plus two
//! victims, composed via `TrafficMix` — runs end-to-end through `ExperimentRunner`
//! on both the TSS fast path and an attack-immune baseline backend.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse::prelude::*;
use tse::simnet::VictimSource;

const VICTIM_IP: u32 = 0x0a00_0063;

/// Two victims (one joining late) and two staggered attackers: a materialised SipDp
/// trace over t=20..60 s and a lazy SpDp generator joining at t=40 s (overlapping
/// onset, both active in 40..60 s).
fn staggered_mix<'a>(schema: &FieldSchema, trace1: &'a AttackTrace) -> TrafficMix<'a> {
    TrafficMix::new()
        .with(VictimSource::new(
            VictimFlow::iperf_tcp("Victim 1", 0x0a000005, VICTIM_IP, 10.0).with_src_port(40001),
            schema,
            1.0,
        ))
        .with(VictimSource::new(
            VictimFlow::iperf_tcp("Victim 2", 0x0a000006, VICTIM_IP, 10.0)
                .with_src_port(40002)
                .active_between(10.0, f64::INFINITY),
            schema,
            1.0,
        ))
        .with(trace1.source("Attacker 1", schema))
        .with(
            AttackGenerator::new(
                "Attacker 2",
                schema,
                Scenario::SpDp
                    .key_iter(schema, &schema.zero_value())
                    .cycle(),
                StdRng::seed_from_u64(5),
                150.0,
                40.0,
            )
            .with_limit(3000),
        )
}

fn attack_trace(schema: &FieldSchema) -> AttackTrace {
    let keys = scenario_trace(schema, Scenario::SipDp, &schema.zero_value());
    AttackTrace::from_keys_cyclic(
        &mut StdRng::seed_from_u64(3),
        schema,
        &keys,
        100.0,
        20.0,
        4000,
    )
}

#[test]
fn staggered_multi_attacker_mix_on_tss() {
    let schema = FieldSchema::ovs_ipv4();
    // The merged ACL: both attackers' scenarios target the same Fig. 6 rules.
    let table = Scenario::SipSpDp.flow_table(&schema);
    let trace1 = attack_trace(&schema);
    let mut runner =
        ExperimentRunner::new(Datapath::new(table), Vec::new(), OffloadConfig::gro_off());
    let tl = runner.run_mix(staggered_mix(&schema, &trace1), 90.0);

    assert_eq!(tl.victim_names, vec!["Victim 1", "Victim 2"]);
    assert_eq!(tl.attacker_names, vec!["Attacker 1", "Attacker 2"]);
    assert_eq!(tl.samples.len(), 90);

    // Victim 2 is inactive before t=10 s and active after.
    assert_eq!(tl.samples[5].victim_gbps[1], 0.0);
    assert!(tl.samples[12].victim_gbps[1] > 1.0);

    // Per-source attribution: attacker 1 delivers in [20, 60), attacker 2 in [40, 60);
    // the per-source series always sums to the total.
    assert_eq!(tl.mean_attacker_pps_between("Attacker 1", 0.0, 20.0), 0.0);
    assert!(tl.mean_attacker_pps_between("Attacker 1", 25.0, 38.0) > 90.0);
    assert_eq!(tl.mean_attacker_pps_between("Attacker 2", 0.0, 40.0), 0.0);
    assert!(tl.mean_attacker_pps_between("Attacker 2", 45.0, 58.0) > 140.0);
    for s in &tl.samples {
        let sum: f64 = s.attacker_pps_by_source.iter().sum();
        assert!((sum - s.attacker_pps).abs() < 1e-9, "t={}", s.time);
    }

    // Staggered onset visible end-to-end on TSS: healthy before any attacker, degraded
    // once attacker 1 is up, degraded further (and more masks) once attacker 2 joins.
    let before = tl.mean_total_between(12.0, 19.0);
    let one_attacker = tl.mean_total_between(30.0, 38.0);
    let two_attackers = tl.mean_total_between(48.0, 58.0);
    assert!(
        before > 9.0,
        "two victims should saturate the shared 10G line rate: {before}"
    );
    assert!(
        one_attacker < before * 0.5,
        "SipDp attacker should degrade the victims: {before} -> {one_attacker}"
    );
    assert!(
        two_attackers < one_attacker,
        "second attacker should bite further: {one_attacker} -> {two_attackers}"
    );
    let masks_one = tl.samples[38].mask_count;
    let masks_two = tl.samples[55].mask_count;
    assert!(masks_one > 100, "SipDp masks: {masks_one}");
    assert!(
        masks_two > masks_one,
        "SpDp adds masks: {masks_one} -> {masks_two}"
    );
}

#[test]
fn staggered_multi_attacker_mix_on_baseline_backend() {
    // Same mix through an attack-immune hierarchical-trie fast path: runs end-to-end
    // and the victims keep (nearly) full throughput through both attack waves.
    let schema = FieldSchema::ovs_ipv4();
    let table = Scenario::SipSpDp.flow_table(&schema);
    let trace1 = attack_trace(&schema);
    let mut runner = ExperimentRunner::new(
        Datapath::builder(table)
            .backend_fresh::<TrieBackend>()
            .build(),
        Vec::new(),
        OffloadConfig::gro_off(),
    );
    let tl = runner.run_mix(staggered_mix(&schema, &trace1), 90.0);
    assert_eq!(tl.samples.len(), 90);
    assert_eq!(tl.attacker_names.len(), 2);

    let before = tl.mean_total_between(12.0, 19.0);
    let during_both = tl.mean_total_between(48.0, 58.0);
    assert!(
        during_both > before * 0.95,
        "trie backend must shrug off both attackers: {before} -> {during_both}"
    );
    // No megaflow state to explode.
    assert!(tl.samples.iter().all(|s| s.mask_count == 0));
    // The attack packets were still delivered (they just cost O(depth) lookups).
    assert!(tl.mean_attacker_pps_between("Attacker 2", 45.0, 58.0) > 140.0);
}
