//! §5.4 / Fig. 9a shape checks: relative victim degradation as the mask count grows,
//! per offload configuration.

use tse::prelude::*;

/// The §5.4 percentages, qualitatively: GRO OFF collapses first, GRO ON survives until
/// the full-blown attack, FHO sits in between, and everything dies at ~8200 masks.
#[test]
fn fig9a_degradation_ordering() {
    let gro_off = OffloadConfig::gro_off();
    let gro_on = OffloadConfig::gro_on();
    let fho = OffloadConfig::full_hw_offload();

    for masks in [17usize, 260, 516] {
        let off = gro_off.degradation_percent(masks);
        let on = gro_on.degradation_percent(masks);
        let hw = fho.degradation_percent(masks);
        assert!(
            on > hw && hw > off,
            "@{masks}: GRO ON {on:.1}% > FHO {hw:.1}% > GRO OFF {off:.1}%"
        );
    }
    for cfg in OffloadConfig::fig9a_set() {
        assert!(
            cfg.degradation_percent(8200) < 6.0,
            "{} must collapse at 8200 masks",
            cfg.name
        );
    }
}

/// End-to-end: measured victim cost through the datapath reproduces the same shape as
/// the analytic curve (victim per-packet cost ~ linear in the mask count).
#[test]
fn measured_victim_cost_tracks_mask_count() {
    let schema = FieldSchema::ovs_ipv4();
    let table = Scenario::SipDp.flow_table(&schema);
    let mut dp = Datapath::new(table);
    let victim = PacketBuilder::tcp_v4([192, 168, 0, 2], [10, 0, 0, 99], 40000, 80).build();
    dp.process_packet(&victim, 0.0);

    let mut samples: Vec<(usize, f64)> = Vec::new();
    let trace = scenario_trace(&schema, Scenario::SipDp, &schema.zero_value());
    for (i, key) in trace.iter().enumerate() {
        dp.process_key(key, 64, 0.01 + i as f64 * 1e-4);
        if i % 100 == 0 {
            let cost = dp.process_packet(&victim, 0.5 + i as f64 * 1e-4).cost;
            samples.push((dp.mask_count(), cost));
        }
    }
    // Cost is (weakly) monotone in the mask count and spans at least an order of
    // magnitude from the first to the last sample.
    let first = samples.first().unwrap().1;
    let last = samples.last().unwrap().1;
    assert!(
        last > 10.0 * first,
        "victim cost should grow >10x: {first} -> {last}"
    );
    for pair in samples.windows(2) {
        assert!(
            pair[1].1 >= pair[0].1 * 0.9,
            "cost should not drop as masks grow"
        );
    }
}

/// Flow-completion time of a 1 GB transfer grows roughly linearly with the mask count
/// (the secondary axis of Fig. 9a).
#[test]
fn flow_completion_time_scales() {
    let cfg = OffloadConfig::gro_off();
    let fct_base = cfg.flow_completion_time(1, 1.0);
    let fct_17 = cfg.flow_completion_time(17, 1.0);
    let fct_8200 = cfg.flow_completion_time(8200, 1.0);
    assert!(fct_17 > 1.5 * fct_base);
    assert!(fct_8200 > 200.0 * fct_base);
    assert!(
        fct_8200 < 1000.0,
        "1 GB should still complete within ~17 minutes: {fct_8200}"
    );
}
