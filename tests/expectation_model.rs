//! The analytic General-TSE model (Eq. 1/2) against brute-force enumeration and against
//! the actual megaflow generation machinery on small schemas.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse::prelude::*;

/// On a small two-field schema, the analytic expectation matches a Monte-Carlo estimate
/// obtained by running the real generation pipeline many times.
#[test]
fn expectation_matches_monte_carlo_on_small_schema() {
    let schema = FieldSchema::new(vec![FieldDef::new("a", 4), FieldDef::new("b", 3)]);
    let table = FlowTable::whitelist_default_deny(&schema, &[(0, 5), (1, 2)]);
    let model = ExpectationModel::new(vec![4, 3]);
    let n_packets = 12u64;
    let runs = 300;
    let mut total_masks = 0usize;
    let mut rng = StdRng::seed_from_u64(4242);
    for _ in 0..runs {
        let mut dp = Datapath::new(table.clone());
        let keys = tse::attack::general::random_trace_on_fields(
            &mut rng,
            &schema,
            &[0, 1],
            &schema.zero_value(),
            n_packets as usize,
        );
        for (i, key) in keys.iter().enumerate() {
            dp.process_key(key, 64, i as f64 * 1e-3);
        }
        total_masks += dp.mask_count();
    }
    let measured = total_masks as f64 / runs as f64;
    let expected = model.expected_masks(n_packets);
    let rel_err = (measured - expected).abs() / expected;
    assert!(
        rel_err < 0.15,
        "analytic {expected:.2} vs monte-carlo {measured:.2} (rel err {rel_err:.2})"
    );
}

/// The model's ceiling equals what the exhaustive co-located trace actually achieves.
#[test]
fn model_ceiling_matches_exhaustive_trace() {
    let schema = FieldSchema::new(vec![FieldDef::new("a", 5), FieldDef::new("b", 4)]);
    let table = FlowTable::whitelist_default_deny(&schema, &[(0, 9), (1, 6)]);
    let model = ExpectationModel::new(vec![5, 4]);
    let mut dp = Datapath::new(table);
    // Exhaustive traffic: every possible header.
    let mut i = 0f64;
    for a in 0..32u128 {
        for b in 0..16u128 {
            dp.process_key(&Key::from_values(&schema, &[a, b]), 64, i);
            i += 1e-4;
        }
    }
    assert_eq!(dp.mask_count(), model.max_masks());
}

/// Theorem 4.1 in executable form: the chunked generation strategies respect the bound.
#[test]
fn chunked_strategies_respect_theorem_bound() {
    use tse::attack::bounds::single_field_entries;
    let width = 10u32;
    let schema = FieldSchema::new(vec![FieldDef::new("f", width)]);
    let table = FlowTable::whitelist_default_deny(&schema, &[(0, 313)]);
    for chunk in [1u32, 2, 5, 10] {
        let strategy = MegaflowStrategy::chunked(&schema, chunk);
        let mut cache = TupleSpace::new(schema.clone());
        for v in 0..(1u128 << width) {
            let h = Key::from_values(&schema, &[v]);
            if cache.lookup(&h, 0.0).action.is_some() {
                continue;
            }
            if let Ok(g) = generate_megaflow(&table, &cache, &h, &strategy) {
                cache.insert(g.key, g.mask, g.action, 0.0).unwrap();
            }
        }
        let k = width.div_ceil(chunk);
        // Deny-side entries must be at least the Theorem 4.1 lower bound for this k.
        let deny_entries = cache.entries().filter(|e| e.action == Action::Deny).count();
        let bound = single_field_entries(width, k);
        assert!(
            deny_entries as f64 >= bound * 0.99,
            "chunk {chunk}: {deny_entries} entries vs bound {bound}"
        );
        // And the number of deny masks is (at most) k.
        assert!(cache.mask_count() <= k as usize + 1);
    }
}
