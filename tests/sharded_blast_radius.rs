//! Acceptance: the shard-local blast radius of the multi-PMD datapath.
//!
//! A SipDp explosion RSS-pinned to one shard must collapse only that shard's victim
//! (the Fig. 8-shaped timeline on the attacked shard) while a victim steered to
//! another shard stays within 5 % of its baseline; spraying the same stream across
//! all shards degrades every victim.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse::prelude::*;

const N_SHARDS: usize = 4;
const ATTACK_START: f64 = 15.0;
const DURATION: f64 = 45.0;

/// A 4 Gbps TCP victim whose source port steers it to `shard` (the 10 Gbps NIC is
/// never the bottleneck, so throughput moves only with the shard's CPU).
fn victim_on_shard(name: &str, src_ip: u32, schema: &FieldSchema, shard: usize) -> VictimFlow {
    VictimFlow::iperf_tcp(name, src_ip, 0x0a00_0063, 4.0).steered_to_shard(
        schema,
        Steering::Rss,
        N_SHARDS,
        shard,
    )
}

/// The SipDp key stream with base fields matching the packets `AttackGenerator`
/// crafts (TCP, attacker-controlled destination = the RSS-free field).
fn attack_keys(schema: &FieldSchema) -> BitInversionKeys {
    let mut base = schema.zero_value();
    base.set(schema.field_index("ip_proto").unwrap(), 6);
    base.set(schema.field_index("ip_dst").unwrap(), 0x0a00_00c8);
    Scenario::SipDp.key_iter(schema, &base)
}

fn run_attack(schema: &FieldSchema, keys: impl Iterator<Item = Key> + Send + 'static) -> Timeline {
    let table = Scenario::SipDp.flow_table(schema);
    let sharded = ShardedDatapath::from_builder(Datapath::builder(table), N_SHARDS, Steering::Rss);
    let mut runner = ExperimentRunner::sharded(sharded, Vec::new(), OffloadConfig::gro_off());
    let mix = TrafficMix::new()
        .with(VictimSource::new(
            victim_on_shard("Victim A", 0x0a00_0005, schema, 0),
            schema,
            runner.sample_interval,
        ))
        .with(VictimSource::new(
            victim_on_shard("Victim B", 0x0a00_0006, schema, 2),
            schema,
            runner.sample_interval,
        ))
        .with(
            AttackGenerator::new(
                "Attacker",
                schema,
                keys,
                StdRng::seed_from_u64(7),
                100.0,
                ATTACK_START,
            )
            .with_limit(((DURATION - ATTACK_START) * 100.0) as usize),
        );
    runner.run_mix(mix, DURATION)
}

fn victim_mean(tl: &Timeline, name: &str, start: f64, stop: f64) -> f64 {
    let idx = tl.victim_names.iter().position(|n| n == name).unwrap();
    let vals: Vec<f64> = tl
        .samples
        .iter()
        .filter(|s| s.time >= start && s.time < stop)
        .map(|s| s.victim_gbps[idx])
        .collect();
    vals.iter().sum::<f64>() / vals.len() as f64
}

#[test]
fn pinned_explosion_collapses_only_the_targeted_shard() {
    let schema = FieldSchema::ovs_ipv4();
    let ip_dst = schema.field_index("ip_dst").unwrap();
    let tl = run_attack(
        &schema,
        pin_to_shard(&schema, attack_keys(&schema).cycle(), ip_dst, N_SHARDS, 0),
    );
    assert_eq!(tl.shard_count, N_SHARDS);

    let (before, during) = (ATTACK_START - 1.0, ATTACK_START + 10.0);
    // Victim A (attacked shard): the Fig. 8 collapse.
    let a_before = victim_mean(&tl, "Victim A", 5.0, before);
    let a_during = victim_mean(&tl, "Victim A", during, DURATION - 1.0);
    assert!(a_before > 3.9, "A baseline ~4 Gbps: {a_before}");
    assert!(
        a_during < a_before * 0.25,
        "pinned SipDp must cut the attacked shard's victim by >75 %: {a_before} -> {a_during}"
    );

    // Victim B (another shard): private cache, private CPU — within 5 % of baseline.
    let b_before = victim_mean(&tl, "Victim B", 5.0, before);
    let b_during = victim_mean(&tl, "Victim B", during, DURATION - 1.0);
    assert!(
        (b_during - b_before).abs() <= 0.05 * b_before,
        "unattacked shard's victim must stay within 5 % of baseline: {b_before} -> {b_during}"
    );

    // The explosion is confined to shard 0: every other shard holds at most the
    // victims' own allow state.
    let peak_masks = |s: usize| tl.samples.iter().map(|x| x.shard_masks[s]).max().unwrap();
    assert!(
        peak_masks(0) > 400,
        "attacked shard explodes: {}",
        peak_masks(0)
    );
    for s in 1..N_SHARDS {
        assert!(
            peak_masks(s) <= 2,
            "shard {s} must stay clean, got {} masks",
            peak_masks(s)
        );
    }

    // Per-shard delivered attack pps confirms the pinning.
    let delivered: f64 = tl.samples.iter().map(|s| s.shard_attacker_pps[0]).sum();
    let elsewhere: f64 = tl
        .samples
        .iter()
        .flat_map(|s| s.shard_attacker_pps[1..].iter())
        .sum();
    assert!(delivered > 0.0 && elsewhere == 0.0);
}

#[test]
fn sprayed_explosion_degrades_every_shard() {
    let schema = FieldSchema::ovs_ipv4();
    let ip_dst = schema.field_index("ip_dst").unwrap();
    let tl = run_attack(
        &schema,
        spray_shards(&schema, attack_keys(&schema).cycle(), ip_dst, N_SHARDS),
    );
    let (before, during) = (ATTACK_START - 1.0, ATTACK_START + 10.0);
    for name in ["Victim A", "Victim B"] {
        let b = victim_mean(&tl, name, 5.0, before);
        let d = victim_mean(&tl, name, during, DURATION - 1.0);
        assert!(
            d < b * 0.5,
            "spray must degrade {name} on its own shard: {b} -> {d}"
        );
    }
    // All shards accumulate attack masks at comparable rates.
    let peak: Vec<usize> = (0..N_SHARDS)
        .map(|s| tl.samples.iter().map(|x| x.shard_masks[s]).max().unwrap())
        .collect();
    assert!(
        peak.iter().all(|&m| m > 50),
        "every shard's cache must be poisoned: {peak:?}"
    );
}
