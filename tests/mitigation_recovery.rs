//! MFCGuard end-to-end: under attack, the guarded datapath keeps the victim's fast path
//! clean while the unguarded one collapses; recovery follows the 10 s idle timeout.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse::prelude::*;

fn build_attack(schema: &FieldSchema, rate: f64, start: f64, count: usize) -> AttackTrace {
    let keys = scenario_trace(schema, Scenario::SipDp, &schema.zero_value());
    let mut rng = StdRng::seed_from_u64(77);
    AttackTrace::from_keys_cyclic(&mut rng, schema, &keys, rate, start, count)
}

// Note: the guard can only evict *drop* entries (requirement (i) of §8), so the scenario
// here is SipDp — the pattern an OpenStack tenant can express. Under SipSpDp the
// attacker's allow-side decomposition (hundreds of allow masks for its own service)
// survives a drop-only clean; see EXPERIMENTS.md "Known divergences".
#[test]
fn guard_preserves_victim_throughput() {
    let schema = FieldSchema::ovs_ipv4();
    let table = Scenario::SipDp.flow_table(&schema);
    let victims = vec![VictimFlow::iperf_tcp(
        "victim", 0x0a000005, 0x0a000063, 10.0,
    )];
    let attack = build_attack(&schema, 500.0, 10.0, 25_000);

    let mut unguarded = ExperimentRunner::new(
        Datapath::new(table.clone()),
        victims.clone(),
        OffloadConfig::gro_off(),
    );
    let unguarded_tl = unguarded.run(&attack, 60.0);

    let mut guarded =
        ExperimentRunner::new(Datapath::new(table), victims, OffloadConfig::gro_off()).with_guard(
            MfcGuard::new(GuardConfig {
                mask_threshold: 50,
                ..GuardConfig::default()
            }),
        );
    let guarded_tl = guarded.run(&attack, 60.0);

    let unguarded_mean = unguarded_tl.mean_total_between(25.0, 59.0);
    let guarded_mean = guarded_tl.mean_total_between(25.0, 59.0);
    assert!(
        guarded_mean > 2.0 * unguarded_mean,
        "guard should at least double throughput under attack: {unguarded_mean:.2} vs {guarded_mean:.2} Gbps"
    );
    assert!(
        guarded_mean > 4.0,
        "guarded victim should keep most of its capacity: {guarded_mean:.2}"
    );
}

#[test]
fn unguarded_datapath_recovers_via_idle_timeout() {
    let schema = FieldSchema::ovs_ipv4();
    let table = Scenario::SipDp.flow_table(&schema);
    let victims = vec![VictimFlow::iperf_tcp(
        "victim", 0x0a000005, 0x0a000063, 10.0,
    )];
    // Attack runs t=10..40 s.
    let keys = scenario_trace(&schema, Scenario::SipDp, &schema.zero_value());
    let mut rng = StdRng::seed_from_u64(3);
    let attack = AttackTrace::from_keys_cyclic(&mut rng, &schema, &keys, 100.0, 10.0, 3000);
    let mut runner = ExperimentRunner::new(Datapath::new(table), victims, OffloadConfig::gro_off());
    let tl = runner.run(&attack, 70.0);
    let during = tl.mean_total_between(20.0, 39.0);
    let after = tl.mean_total_between(55.0, 69.0);
    assert!(
        during < 4.0,
        "during the attack the victim is degraded: {during:.2}"
    );
    assert!(
        after > 8.0,
        "10 s after the attack the victim recovers: {after:.2}"
    );
}

#[test]
fn guard_removes_only_drop_entries() {
    let schema = FieldSchema::ovs_ipv4();
    let table = Scenario::SipSpDp.flow_table(&schema);
    let mut dp = Datapath::new(table);
    // Victim entry plus attack entries.
    let victim = PacketBuilder::tcp_v4([192, 168, 0, 2], [10, 0, 0, 99], 40000, 80).build();
    dp.process_packet(&victim, 0.0);
    for (i, key) in scenario_trace(&schema, Scenario::SpDp, &schema.zero_value())
        .iter()
        .enumerate()
    {
        dp.process_key(key, 64, 0.01 + i as f64 * 1e-4);
    }
    let allows_before = dp
        .megaflow()
        .entries()
        .filter(|e| e.action == Action::Allow)
        .count();
    let mut guard = MfcGuard::new(GuardConfig::default());
    guard.run_once(&mut dp, 1.0, 100.0);
    let allows_after = dp
        .megaflow()
        .entries()
        .filter(|e| e.action == Action::Allow)
        .count();
    let denies_after = dp
        .megaflow()
        .entries()
        .filter(|e| e.action == Action::Deny)
        .count();
    assert_eq!(
        allows_before, allows_after,
        "allow entries must never be deleted"
    );
    assert_eq!(denies_after, 0, "all TSE drop entries must be wiped");
}
