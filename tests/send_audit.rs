//! Compile-time `Send`/`Sync` audit for everything the `ShardExecutor` hands to
//! worker threads.
//!
//! `ThreadPoolExecutor` moves each shard's `&mut Datapath<B>` — backend, slow path,
//! caches, stats — across a thread boundary, and the experiment runner (datapath +
//! mitigation stack) must be free to live on a worker thread too. These assertions
//! pin that down at `cargo test` time: a future `Rc`/`RefCell`/raw-pointer regression
//! in any backend or mitigation fails here, at the type level, instead of surfacing
//! as an inscrutable executor-integration error (or not at all).

use tse::prelude::*;

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[test]
fn fast_path_backends_are_send() {
    // All four backends; `FastPathBackend: Send` is a supertrait, so a non-Send
    // implementation would already fail to compile — these make the guarantee
    // explicit per concrete type.
    assert_send::<TupleSpace>();
    assert_send::<LinearSearchBackend>();
    assert_send::<TrieBackend>();
    assert_send::<HyperCutsBackend>();
}

#[test]
fn datapaths_are_send_for_every_backend() {
    assert_send::<Datapath<TupleSpace>>();
    assert_send::<Datapath<LinearSearchBackend>>();
    assert_send::<Datapath<TrieBackend>>();
    assert_send::<Datapath<HyperCutsBackend>>();
    assert_send::<ShardedDatapath<TupleSpace>>();
    assert_send::<ShardedDatapath<LinearSearchBackend>>();
    assert_send::<ShardedDatapath<TrieBackend>>();
    assert_send::<ShardedDatapath<HyperCutsBackend>>();
}

#[test]
fn mitigation_machinery_is_send() {
    assert_send::<MitigationStack<TupleSpace>>();
    assert_send::<MitigationStack<TrieBackend>>();
    assert_send::<MfcGuard>();
    assert_send::<GuardMitigation>();
    assert_send::<RssKeyRandomizer>();
    assert_send::<UpcallLimiter>();
    assert_send::<MaskCap>();
}

#[test]
fn runner_and_reports_are_send() {
    assert_send::<ExperimentRunner<TupleSpace>>();
    assert_send::<Timeline>();
    assert_send::<TimelineSample>();
    assert_send::<ShardedBatchReport>();
    assert_send::<BatchReport>();
}

#[test]
fn executors_are_send_and_sync() {
    // Executors are shared by reference with every worker they spawn.
    assert_send::<SequentialExecutor>();
    assert_sync::<SequentialExecutor>();
    assert_send::<ThreadPoolExecutor>();
    assert_sync::<ThreadPoolExecutor>();
    assert_send::<PersistentPoolExecutor>();
    assert_sync::<PersistentPoolExecutor>();
    assert_send::<Box<dyn ShardExecutor>>();
    assert_sync::<Box<dyn ShardExecutor>>();
}

#[test]
fn pipelined_drain_payloads_are_send() {
    // The pipelined runner moves the traffic mix and the pre-partition scratch to a
    // spare pool worker while the shards are busy; both must stay `Send` (that is what
    // the `TrafficSource: Send` supertrait buys).
    assert_send::<TrafficMix<'_>>();
    assert_send::<Box<dyn TrafficSource>>();
    assert_send::<Prepartition>();
    assert_send::<SteeringView>();
}
