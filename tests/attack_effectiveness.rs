//! Integration tests for the headline result: the TSE attack explodes the tuple space
//! and degrades victim throughput as §5 reports.

use tse::prelude::*;

/// Co-located TSE reaches (approximately) the per-scenario mask ceilings of §5.2.
#[test]
fn colocated_reaches_paper_mask_counts() {
    let schema = FieldSchema::ovs_ipv4();
    for (scenario, lo, hi) in [
        (Scenario::Dp, 16, 20),
        (Scenario::SpDp, 256, 300),
        (Scenario::SipDp, 512, 560),
    ] {
        let table = scenario.flow_table(&schema);
        let mut dp = Datapath::new(table);
        for (i, key) in scenario_trace(&schema, scenario, &schema.zero_value())
            .iter()
            .enumerate()
        {
            dp.process_key(key, 64, i as f64 * 1e-4);
        }
        let masks = dp.mask_count();
        assert!(
            (lo..=hi).contains(&masks),
            "{}: expected {}..={} masks, got {}",
            scenario.name(),
            lo,
            hi,
            masks
        );
    }
}

/// The full-blown SipSpDp attack lands in the ~8200-mask regime the paper quotes.
#[test]
fn full_blown_attack_is_in_the_8200_mask_regime() {
    let schema = FieldSchema::ovs_ipv4();
    let table = Scenario::SipSpDp.flow_table(&schema);
    let mut dp = Datapath::new(table);
    for (i, key) in scenario_trace(&schema, Scenario::SipSpDp, &schema.zero_value())
        .iter()
        .enumerate()
    {
        dp.process_key(key, 64, i as f64 * 1e-5);
    }
    let masks = dp.mask_count();
    assert!((8192..=8400).contains(&masks), "SipSpDp masks = {masks}");
}

/// General TSE: the measured mask counts track the analytic expectation within a
/// reasonable factor (the Fig. 9b "M" vs "E" agreement).
#[test]
fn general_tse_tracks_expectation() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let schema = FieldSchema::ovs_ipv4();
    for scenario in [Scenario::Dp, Scenario::SipDp] {
        let model = ExpectationModel::for_scenario(&schema, scenario);
        let table = scenario.flow_table(&schema);
        let mut dp = Datapath::new(table);
        let mut rng = StdRng::seed_from_u64(2024);
        let n = 5_000usize;
        let keys = random_trace(&mut rng, &schema, scenario, &schema.zero_value(), n);
        for (i, key) in keys.iter().enumerate() {
            dp.process_key(key, 64, i as f64 * 1e-4);
        }
        let expected = model.expected_masks(n as u64);
        let measured = dp.mask_count() as f64;
        let ratio = measured / expected;
        assert!(
            (0.6..=1.6).contains(&ratio),
            "{}: measured {measured} vs expected {expected:.1}",
            scenario.name()
        );
    }
}

/// The attack needs only a sub-Mbps packet stream (the "low-rate" claim of the title).
#[test]
fn attack_bandwidth_stays_low_rate() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let schema = FieldSchema::ovs_ipv4();
    let keys = scenario_trace(&schema, Scenario::SipSpDp, &schema.zero_value());
    let mut rng = StdRng::seed_from_u64(5);
    let trace = AttackTrace::from_keys(&mut rng, &schema, &keys, 1000.0, 0.0);
    assert!(
        trace.bandwidth_bps() < 1.0e6,
        "attack uses {} bps",
        trace.bandwidth_bps()
    );
}
