//! The composable mitigation pipeline, end to end: RSS rekeying still partitions the
//! flow space (proptest), rotation defeats shard-pinned targeting computed under the
//! old key, stack ordering is observable and deterministic, and the full stack
//! restores a pinned victim the unmitigated run collapses.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tse::packet::rss;
use tse::prelude::*;

const N_SHARDS: usize = 4;

fn tcp_base(schema: &FieldSchema) -> Key {
    let mut base = schema.zero_value();
    base.set(schema.field_index("ip_proto").unwrap(), 6);
    base.set(schema.field_index("ip_dst").unwrap(), 0x0a00_00c8);
    base
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A rekeyed `Steering::Rss` is still a stable, total partition: every key maps to
    /// exactly one in-range shard under any hash key, and repeated evaluations agree.
    #[test]
    fn rekeyed_rss_still_totally_partitions_keys(
        values in proptest::collection::vec((0u32..u32::MAX, 0u16..u16::MAX, 0u16..u16::MAX), 1..40),
        hash_key in 0u64..u64::MAX,
    ) {
        let schema = FieldSchema::ovs_ipv4();
        let ip_src = schema.field_index("ip_src").unwrap();
        let tp_src = schema.field_index("tp_src").unwrap();
        let tp_dst = schema.field_index("tp_dst").unwrap();
        for (src, sport, dport) in values {
            let mut key = tcp_base(&schema);
            key.set(ip_src, src as u128);
            key.set(tp_src, sport as u128);
            key.set(tp_dst, dport as u128);
            let shard = Steering::Rss.shard_of_keyed(&schema, &key, N_SHARDS, hash_key);
            prop_assert!(shard < N_SHARDS);
            prop_assert_eq!(
                shard,
                Steering::Rss.shard_of_keyed(&schema, &key, N_SHARDS, hash_key)
            );
        }
    }

    /// Shard-pinning solved under the *old* hash key no longer aims after a rotation:
    /// the retagged key set scatters (~1/N still land on the target by chance, never
    /// anywhere close to all of them).
    #[test]
    fn stale_pinning_no_longer_lands_on_the_target_after_rotation(
        hash_key in 1u64..u64::MAX,
        target in 0usize..N_SHARDS,
    ) {
        let schema = FieldSchema::ovs_ipv4();
        let ip_dst = schema.field_index("ip_dst").unwrap();
        let fields = rss::rss_fields(&schema);
        let pinned: Vec<Key> = pin_to_shard(
            &schema,
            Scenario::SpDp.key_iter(&schema, &tcp_base(&schema)),
            ip_dst,
            N_SHARDS,
            target,
        )
        .collect();
        // Under the old (default) key the aim is exact...
        for k in &pinned {
            prop_assert_eq!(rss::shard_of(k, &fields, N_SHARDS), target);
        }
        // ...under the rotated key it is gone: the stream scatters pseudo-randomly.
        let still_on_target = pinned
            .iter()
            .filter(|k| rss::shard_of_keyed(k, &fields, N_SHARDS, hash_key) == target)
            .count();
        prop_assert!(
            still_on_target * 2 < pinned.len(),
            "{} of {} stale-pinned keys still hit shard {} under key {:#x}",
            still_on_target, pinned.len(), target, hash_key
        );
    }
}

/// The pinned SipDp blast-radius fixture of `tests/sharded_blast_radius.rs`, with a
/// configurable shard count and mitigation stack.
fn run_pinned_attack(
    n_shards: usize,
    build_stack: impl FnOnce(ExperimentRunner) -> ExperimentRunner,
    duration: f64,
) -> Timeline {
    let schema = FieldSchema::ovs_ipv4();
    let ip_dst = schema.field_index("ip_dst").unwrap();
    let table = Scenario::SipDp.flow_table(&schema);
    let sharded = ShardedDatapath::from_builder(Datapath::builder(table), n_shards, Steering::Rss);
    let mut runner = build_stack(ExperimentRunner::sharded(
        sharded,
        Vec::new(),
        OffloadConfig::gro_off(),
    ));
    let victim = VictimFlow::iperf_tcp("Victim A", 0x0a00_0005, 0x0a00_0063, 4.0).steered_to_shard(
        &schema,
        Steering::Rss,
        n_shards,
        0,
    );
    let keys = pin_to_shard(
        &schema,
        Scenario::SipDp
            .key_iter(&schema, &tcp_base(&schema))
            .cycle(),
        ip_dst,
        n_shards,
        0,
    );
    let mix = TrafficMix::new()
        .with(VictimSource::new(victim, &schema, runner.sample_interval))
        .with(
            AttackGenerator::new(
                "Attacker",
                &schema,
                keys,
                StdRng::seed_from_u64(7),
                100.0,
                15.0,
            )
            .with_limit(((duration - 15.0) * 100.0) as usize),
        );
    runner.run_mix(mix, duration)
}

fn all_actions(tl: &Timeline) -> Vec<MitigationAction> {
    tl.samples
        .iter()
        .flat_map(|s| s.mitigation_actions.iter().cloned())
        .collect()
}

#[test]
fn stack_order_is_observable_and_deterministic() {
    // Guard every 3 s (passes at t = 1, 4, 7, 10, ...), rekey every 10 s (t = 10, 20,
    // ...): at t = 10 both stages fire in the same interval, so their pipeline order
    // is visible in that sample's action log.
    let guard = || {
        GuardMitigation::new(GuardConfig {
            interval: 3.0,
            mask_threshold: 30,
            ..GuardConfig::default()
        })
    };
    let rekey = || RssKeyRandomizer::new(10.0, 0xC0FFEE);
    let guard_then_rekey =
        |r: ExperimentRunner| r.with_mitigation(guard()).with_mitigation(rekey());
    let rekey_then_guard =
        |r: ExperimentRunner| r.with_mitigation(rekey()).with_mitigation(guard());

    let tl_a = run_pinned_attack(N_SHARDS, guard_then_rekey, 45.0);
    let tl_b = run_pinned_attack(N_SHARDS, rekey_then_guard, 45.0);
    let (log_a, log_b) = (all_actions(&tl_a), all_actions(&tl_b));
    // Re-running the same stack reproduces the same log, bit for bit.
    let log_a2 = all_actions(&run_pinned_attack(N_SHARDS, guard_then_rekey, 45.0));
    assert_eq!(log_a, log_a2, "action logs are deterministic");
    // ...but the two orders genuinely differ: within the co-firing interval the
    // actions appear in pipeline order.
    assert_ne!(log_a, log_b, "stack order must be observable");
    assert!(
        log_a
            .iter()
            .any(|a| matches!(a, MitigationAction::GuardSweep(r) if r.entries_removed > 0)),
        "guard sweeps in stack A"
    );
    let co_fire = |tl: &Timeline| {
        tl.samples
            .iter()
            .find(|s| s.time == 9.0)
            .expect("sample at t=9 (interval ending t=10)")
            .mitigation_actions
            .clone()
    };
    let (int_a, int_b) = (co_fire(&tl_a), co_fire(&tl_b));
    assert!(matches!(
        int_a.first(),
        Some(MitigationAction::GuardSweep(_))
    ));
    assert!(matches!(
        int_a.last(),
        Some(MitigationAction::Rekeyed { .. })
    ));
    assert!(matches!(
        int_b.first(),
        Some(MitigationAction::Rekeyed { .. })
    ));
    assert!(matches!(
        int_b.last(),
        Some(MitigationAction::GuardSweep(_))
    ));
}

#[test]
fn rekey_restores_the_pinned_victim_the_unmitigated_run_collapses() {
    // 16 PMD shards, the `fig_mitigation_matrix` configuration: the unmitigated pinned
    // run concentrates the whole explosion on the victim's shard (the PR 3 collapse
    // shape, independent of shard count), while under rotation the stale-pinned stream
    // dilutes to ~1/16 per shard — below the ~83-mask knee where the victim's
    // fast-path scan still sustains half its offered rate.
    let duration = 45.0;
    let n_shards = 16;
    let unmitigated = run_pinned_attack(n_shards, |r| r, duration);
    let rekeyed = run_pinned_attack(
        n_shards,
        |r| r.with_mitigation(RssKeyRandomizer::new(10.0, 0xC0FFEE)),
        duration,
    );
    let mean = |tl: &Timeline, start: f64, stop: f64| tl.mean_total_between(start, stop);
    let baseline = mean(&unmitigated, 5.0, 14.0);
    let collapsed = mean(&unmitigated, 25.0, duration - 1.0);
    let restored = mean(&rekeyed, 25.0, duration - 1.0);
    assert!(baseline > 3.9, "baseline ~4 Gbps: {baseline}");
    assert!(
        collapsed < baseline * 0.25,
        "unmitigated pinned attack collapses the victim: {baseline} -> {collapsed}"
    );
    assert!(
        restored > baseline * 0.5,
        "rekeying must restore the victim to within 2x of baseline: \
         {baseline} -> {restored} (unmitigated: {collapsed})"
    );
}

#[test]
fn full_stack_reports_every_defense_and_bounds_the_masks() {
    let duration = 45.0;
    let tl = run_pinned_attack(
        N_SHARDS,
        |r| {
            r.with_mitigation(GuardMitigation::new(GuardConfig {
                interval: 10.0,
                mask_threshold: 64,
                ..GuardConfig::default()
            }))
            .with_mitigation(RssKeyRandomizer::new(10.0, 0xC0FFEE))
            // After a rotation the stale-pinned stream spreads to ~25 installs per
            // shard per second; a quota of 10 bites every interval.
            .with_mitigation(UpcallLimiter::new(10))
            .with_mitigation(MaskCap::new(64))
        },
        duration,
    );
    let actions = all_actions(&tl);
    assert!(actions
        .iter()
        .any(|a| matches!(a, MitigationAction::GuardSweep(_))));
    assert!(actions
        .iter()
        .any(|a| matches!(a, MitigationAction::Rekeyed { .. })));
    assert!(actions
        .iter()
        .any(|a| matches!(a, MitigationAction::UpcallsClamped { .. })));
    // MaskCap is last: it only acts when the stages before it left a shard above the
    // ceiling, but the ceiling must hold in every sample *after* the stack ran.
    for s in &tl.samples {
        for (shard, &masks) in s.shard_masks.iter().enumerate() {
            assert!(
                masks <= 64,
                "shard {shard} ended t={} above the mask cap: {masks}",
                s.time
            );
        }
    }
    // And the victim does better than the unmitigated collapse.
    let unmitigated = run_pinned_attack(N_SHARDS, |r| r, duration);
    assert!(
        tl.mean_total_between(25.0, duration - 1.0)
            > unmitigated.mean_total_between(25.0, duration - 1.0)
    );
}
