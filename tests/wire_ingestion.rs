//! The wire-ingestion acceptance path, end-to-end: an IPv6 explosion replayed as
//! *raw Ethernet frames* — crafted, serialized and re-parsed per packet by
//! [`WireGenerator`] — through the sharded datapath, with a garbage replay riding
//! along. The timeline must be bit-for-bit identical across all three executors,
//! the attack must degrade the victim, the guard+rekey stack must restore it, and
//! every undecodable frame must be charged to shard 0's per-kind counters.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse::attack::general::random_trace_on_fields;
use tse::prelude::*;

const ATTACK_START: f64 = 15.0;
const ATTACK_PPS: f64 = 400.0;
const DURATION: f64 = 50.0;
const GARBAGE_FRAMES: usize = 120;
const ALLOWED_SRC: u128 = 0xfd00_0000_0000_0000_0000_0000_0000_0001;
const SERVICE_DST: u128 = 0xfd00_0000_0000_0000_0000_0000_0000_0063;

/// One full wire-level experiment: IPv6 victim + serialized random SipDp-over-IPv6
/// explosion + a burst of truncated garbage frames, on 4 shards under `executor`.
/// Returns the timeline and the merged + shard-0 wire counters.
fn run(executor: impl ShardExecutor + 'static, guarded: bool) -> (Timeline, u64, u64) {
    let schema = FieldSchema::ovs_ipv6();
    let tp_dst = schema.field_index("tp_dst").unwrap();
    let ip6_src = schema.field_index("ip6_src").unwrap();
    let table = FlowTable::whitelist_default_deny(&schema, &[(tp_dst, 80), (ip6_src, ALLOWED_SRC)]);
    let sharded = ShardedDatapath::from_builder(
        Datapath::builder(table)
            .strategy(MegaflowStrategy::wildcarding(&schema))
            .with_executor(executor),
        4,
        Steering::Rss,
    );
    let mut runner = ExperimentRunner::sharded(sharded, Vec::new(), OffloadConfig::gro_off());
    if guarded {
        runner = runner
            .with_mitigation(GuardMitigation::new(GuardConfig::default()))
            .with_mitigation(RssKeyRandomizer::new(10.0, 0xC0FFEE));
    }

    let keys = random_trace_on_fields(
        &mut StdRng::seed_from_u64(99),
        &schema,
        &[ip6_src, tp_dst],
        &schema.zero_value(),
        ((DURATION - ATTACK_START) * ATTACK_PPS) as usize,
    );
    let mut garbage = WireTrace::new();
    for i in 0..GARBAGE_FRAMES {
        // 9 bytes: shorter than an Ethernet header, so every frame is Truncated.
        garbage.push(ATTACK_START + i as f64 * 0.05, &[0xDE; 9]);
    }
    let mix = TrafficMix::new()
        .with(VictimSource::new(
            VictimFlow::iperf_tcp_v6("Victim", ALLOWED_SRC, SERVICE_DST, 10.0),
            &schema,
            1.0,
        ))
        .with(WireGenerator::new(
            "Attacker",
            &schema,
            keys.into_iter(),
            StdRng::seed_from_u64(7),
            ATTACK_PPS,
            ATTACK_START,
        ))
        .with(WireSource::replay("Garbage", garbage, &schema));
    let tl = runner.run_mix(mix, DURATION);
    let truncated_shard0 = runner.datapath.shard(0).stats().truncated;
    let truncated_elsewhere: u64 = (1..4)
        .map(|s| runner.datapath.shard(s).stats().truncated)
        .sum();
    (tl, truncated_shard0, truncated_elsewhere)
}

#[test]
fn wire_replay_is_executor_invariant_degrades_and_recovers() {
    for guarded in [false, true] {
        let stack = if guarded { "guard+rekey" } else { "none" };
        let (seq, seq_s0, seq_rest) = run(SequentialExecutor, guarded);
        let (pool, pool_s0, pool_rest) = run(ThreadPoolExecutor::new(4), guarded);
        let (pers, pers_s0, pers_rest) = run(PersistentPoolExecutor::new(4), guarded);

        // Bit-for-bit executor parity, malformed series included: Vec<TimelineSample>
        // equality compares every f64 of every sample.
        assert_eq!(seq.samples, pool.samples, "{stack}: thread-pool diverged");
        assert_eq!(
            seq.samples, pers.samples,
            "{stack}: persistent pool diverged"
        );

        // Every garbage frame is charged to shard 0 — the ingestion point — and
        // nowhere else, under every executor.
        for (who, s0, rest) in [
            ("sequential", seq_s0, seq_rest),
            ("thread-pool", pool_s0, pool_rest),
            ("persistent", pers_s0, pers_rest),
        ] {
            assert_eq!(
                s0, GARBAGE_FRAMES as u64,
                "{stack}/{who}: shard-0 truncated"
            );
            assert_eq!(
                rest, 0,
                "{stack}/{who}: truncated frames leaked off shard 0"
            );
        }
        let malformed: f64 = seq.samples.iter().map(|s| s.malformed_pps).sum();
        assert_eq!(malformed.round() as usize, GARBAGE_FRAMES);

        // The well-formed frames, meanwhile, explode the tuple space.
        let peak_masks = seq.samples.iter().map(|s| s.mask_count).max().unwrap();
        // Baseline window ends before the first rekey (t = 10 s), which re-steers
        // the victim for one interval even with no attack underway.
        let before = seq.mean_total_between(3.0, 9.0);
        let during = seq.mean_total_between(ATTACK_START + 10.0, DURATION - 1.0);
        assert!(
            (before - 10.0).abs() < 0.5,
            "{stack}: victim baseline {before}"
        );
        if guarded {
            assert!(
                during > before * 0.5,
                "guard+rekey must restore the victim: {before} -> {during}"
            );
        } else {
            assert!(peak_masks > 200, "explosion too small: {peak_masks} masks");
            assert!(
                during < before * 0.5,
                "the wire-replayed explosion must degrade the victim: {before} -> {during}"
            );
        }
    }
}
