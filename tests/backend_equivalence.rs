//! Backend equivalence: every fast-path backend, run through the full datapath, must
//! classify every scenario's traffic exactly like the default TSS backend — same
//! verdict per packet, whatever cache level produced it. This is the correctness half
//! of the §7 claim; the performance half (baselines stay flat under attack) is asserted
//! alongside.

use tse::prelude::*;

/// The per-packet workload of one scenario: a victim probe, the whole co-located attack
/// trace, then the victim again.
fn workload(schema: &FieldSchema, scenario: Scenario) -> Vec<Key> {
    let mut victim = schema.zero_value();
    victim.set(schema.field_index("tp_dst").unwrap(), 80);
    let mut keys = vec![victim.clone()];
    keys.extend(scenario_trace(schema, scenario, &schema.zero_value()));
    keys.push(victim);
    keys
}

fn verdicts<B: FastPathBackend>(mut dp: Datapath<B>, keys: &[Key]) -> Vec<Action> {
    keys.iter()
        .enumerate()
        .map(|(i, k)| dp.process_key(k, 64, i as f64 * 1e-4).action)
        .collect()
}

#[test]
fn all_backends_classify_every_scenario_identically() {
    let schema = FieldSchema::ovs_ipv4();
    for scenario in Scenario::ALL {
        let keys = workload(&schema, scenario);
        let table = scenario.flow_table(&schema);
        let reference = verdicts(Datapath::builder(table.clone()).build(), &keys);
        let linear = verdicts(
            Datapath::builder(table.clone())
                .backend_fresh::<LinearSearchBackend>()
                .build(),
            &keys,
        );
        let trie = verdicts(
            Datapath::builder(table.clone())
                .backend_fresh::<TrieBackend>()
                .build(),
            &keys,
        );
        let hypercuts = verdicts(
            Datapath::builder(table)
                .backend_fresh::<HyperCutsBackend>()
                .build(),
            &keys,
        );
        assert_eq!(
            reference,
            linear,
            "{}: linear search diverges from TSS",
            scenario.name()
        );
        assert_eq!(
            reference,
            trie,
            "{}: hierarchical trie diverges from TSS",
            scenario.name()
        );
        assert_eq!(
            reference,
            hypercuts,
            "{}: hypercuts diverges from TSS",
            scenario.name()
        );
    }
}

#[test]
fn baseline_backends_never_grow_under_attack() {
    let schema = FieldSchema::ovs_ipv4();
    let scenario = Scenario::SipSpDp; // the worst-case explosion (8k+ masks on TSS)
    let keys = workload(&schema, scenario);
    let table = scenario.flow_table(&schema);

    let mut tss = Datapath::builder(table.clone()).build();
    let mut trie = Datapath::builder(table)
        .backend_fresh::<TrieBackend>()
        .build();
    let mut trie_work = Vec::new();
    for (i, k) in keys.iter().enumerate() {
        tss.process_key(k, 64, i as f64 * 1e-4);
        trie_work.push(trie.process_key(k, 64, i as f64 * 1e-4).masks_scanned);
    }
    assert!(
        tss.mask_count() > 1000,
        "TSS should have exploded: {}",
        tss.mask_count()
    );
    assert_eq!(trie.mask_count(), 0);
    assert_eq!(trie.entry_count(), 0);
    // The trie's per-lookup work is bounded by the rule set, not the traffic.
    let max_work = trie_work.iter().max().unwrap();
    assert!(
        *max_work < 200,
        "trie work must stay rule-set-bounded: {max_work}"
    );
}

#[test]
fn process_batch_agrees_with_per_key_loop_on_every_backend() {
    let schema = FieldSchema::ovs_ipv4();
    let scenario = Scenario::SipDp;
    let table = scenario.flow_table(&schema);
    let batch: Vec<(Key, usize)> = workload(&schema, scenario)
        .into_iter()
        .map(|k| (k, 64))
        .collect();

    fn check<B: FastPathBackend>(
        mut looped: Datapath<B>,
        mut batched: Datapath<B>,
        batch: &[(Key, usize)],
        name: &str,
    ) {
        for (k, b) in batch {
            looped.process_key(k, *b, 0.25);
        }
        let report = batched.process_batch(batch, 0.25);
        assert_eq!(report.processed, batch.len());
        assert_eq!(
            batched.stats().allowed,
            looped.stats().allowed,
            "{name}: allowed"
        );
        assert_eq!(
            batched.stats().denied,
            looped.stats().denied,
            "{name}: denied"
        );
        assert_eq!(
            batched.stats().upcalls,
            looped.stats().upcalls,
            "{name}: upcalls"
        );
        assert_eq!(batched.mask_count(), looped.mask_count(), "{name}: masks");
        assert_eq!(
            batched.entry_count(),
            looped.entry_count(),
            "{name}: entries"
        );
    }

    check(
        Datapath::builder(table.clone()).build(),
        Datapath::builder(table.clone()).build(),
        &batch,
        "tss",
    );
    check(
        Datapath::builder(table.clone())
            .backend_fresh::<LinearSearchBackend>()
            .build(),
        Datapath::builder(table.clone())
            .backend_fresh::<LinearSearchBackend>()
            .build(),
        &batch,
        "linear",
    );
    check(
        Datapath::builder(table.clone())
            .backend_fresh::<TrieBackend>()
            .build(),
        Datapath::builder(table.clone())
            .backend_fresh::<TrieBackend>()
            .build(),
        &batch,
        "trie",
    );
    check(
        Datapath::builder(table.clone())
            .backend_fresh::<HyperCutsBackend>()
            .build(),
        Datapath::builder(table)
            .backend_fresh::<HyperCutsBackend>()
            .build(),
        &batch,
        "hypercuts",
    );
}

#[test]
fn experiment_runner_produces_timelines_for_non_tss_backends() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let schema = FieldSchema::ovs_ipv4();
    let scenario = Scenario::SipDp;
    let keys = scenario_trace(&schema, scenario, &schema.zero_value());
    let mut rng = StdRng::seed_from_u64(7);
    let attack = AttackTrace::from_keys_cyclic(&mut rng, &schema, &keys, 100.0, 10.0, 2000);
    let victims = vec![VictimFlow::iperf_tcp(
        "victim",
        0x0a000005,
        0x0a00_0063,
        10.0,
    )];

    // TSS reference: the attack visibly degrades the victim.
    let table = scenario.flow_table(&schema);
    let mut tss_runner = ExperimentRunner::new(
        Datapath::builder(table).build(),
        victims.clone(),
        OffloadConfig::default(),
    );
    let tss_tl = tss_runner.run(&attack, 50.0);

    // Fig. 8-style timelines over two attack-immune backends: flat throughput.
    let table = scenario.flow_table(&schema);
    let mut trie_runner = ExperimentRunner::new(
        Datapath::builder(table)
            .backend_fresh::<TrieBackend>()
            .build(),
        victims.clone(),
        OffloadConfig::default(),
    );
    let trie_tl = trie_runner.run(&attack, 50.0);

    let table = scenario.flow_table(&schema);
    let mut hc_runner = ExperimentRunner::new(
        Datapath::builder(table)
            .backend_fresh::<HyperCutsBackend>()
            .build(),
        victims,
        OffloadConfig::default(),
    );
    let hc_tl = hc_runner.run(&attack, 50.0);

    for tl in [&tss_tl, &trie_tl, &hc_tl] {
        assert_eq!(tl.samples.len(), 50);
        assert!(tl.render_table().starts_with("time_s"));
    }
    let tss_drop = tss_tl.mean_total_between(20.0, 39.0) / tss_tl.mean_total_between(2.0, 9.0);
    assert!(
        tss_drop < 0.5,
        "TSS victim should lose >50% during the attack: {tss_drop:.2}"
    );
    for (name, tl) in [("trie", &trie_tl), ("hypercuts", &hc_tl)] {
        let before = tl.mean_total_between(2.0, 9.0);
        let during = tl.mean_total_between(20.0, 39.0);
        assert!(
            during > 0.95 * before,
            "{name} victim must be unaffected by the attack: {before:.2} -> {during:.2} Gbps"
        );
        assert!(tl.samples.iter().all(|s| s.mask_count == 0));
    }
}
