//! Sharded-datapath invariants: a 1-shard [`ShardedDatapath`] is bit-for-bit the plain
//! [`Datapath`] on every scenario, steering is a total stable partition of the key
//! space, and aggregate stats are exactly the merge of the per-shard stats.

use proptest::prelude::*;
use tse::prelude::*;
use tse::switch::stats::DatapathStats;

/// Replay a scenario's co-located trace (capped for the heavy SipSpDp case) as a
/// timed event batch.
fn scenario_events(schema: &FieldSchema, scenario: Scenario) -> Vec<(Key, usize, f64)> {
    scenario
        .key_iter(schema, &schema.zero_value())
        .take(2500)
        .enumerate()
        .map(|(i, k)| (k, 64usize, 0.01 + i as f64 * 1e-3))
        .collect()
}

#[test]
fn one_shard_matches_plain_datapath_on_every_scenario() {
    let schema = FieldSchema::ovs_ipv4();
    for scenario in Scenario::ALL {
        let table = scenario.flow_table(&schema);
        let events = scenario_events(&schema, scenario);

        let mut mono = Datapath::new(table.clone());
        let mono_report = mono.process_timed_batch(&events);
        let mut sharded = ShardedDatapath::new(table, 1, Steering::Rss);
        let sharded_report = sharded.process_timed_batch(&events);

        assert_eq!(
            sharded_report.aggregate(),
            mono_report,
            "{scenario}: batch report"
        );
        assert_eq!(sharded.stats(), *mono.stats(), "{scenario}: stats");
        assert_eq!(
            sharded.stats().busy_seconds.to_bits(),
            mono.stats().busy_seconds.to_bits(),
            "{scenario}: cost must match to the f64 bit"
        );
        assert_eq!(sharded.mask_count(), mono.mask_count(), "{scenario}: masks");
        assert_eq!(
            sharded.entry_count(),
            mono.entry_count(),
            "{scenario}: entries"
        );

        // Per-key verdicts agree after the replay too (including post-expiry state).
        let mut probe = schema.zero_value();
        probe.set(schema.field_index("tp_dst").unwrap(), 80);
        let a = mono.process_key(&probe, 1500, 20.0);
        let b = sharded.process_key(&probe, 1500, 20.0);
        assert_eq!(a, b, "{scenario}: probe outcome");
    }
}

#[test]
fn merged_shard_stats_equal_aggregate_and_monolithic_verdict_counters() {
    // Partitioning traffic over shards must preserve the verdict counters the flow
    // table decides (allowed/denied and their byte counts are per-key properties), and
    // the aggregate must be exactly the merge of the per-shard stats.
    let schema = FieldSchema::ovs_ipv4();
    let scenario = Scenario::SipDp;
    let table = scenario.flow_table(&schema);
    let events = scenario_events(&schema, scenario);

    let mut mono = Datapath::new(table.clone());
    mono.process_timed_batch(&events);
    for n_shards in [2usize, 4] {
        let mut sharded = ShardedDatapath::new(table.clone(), n_shards, Steering::Rss);
        sharded.process_timed_batch(&events);

        let mut merged = DatapathStats::default();
        for i in 0..sharded.shard_count() {
            merged.merge(sharded.shard_stats(i));
        }
        assert_eq!(merged, sharded.stats(), "{n_shards} shards: merge identity");

        // Verdicts are key-local, so the partition cannot change them.
        let agg = sharded.stats();
        assert_eq!(agg.allowed, mono.stats().allowed, "{n_shards} shards");
        assert_eq!(agg.denied, mono.stats().denied, "{n_shards} shards");
        assert_eq!(agg.allowed_bytes, mono.stats().allowed_bytes);
        assert_eq!(agg.packets(), mono.stats().packets());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn steering_is_a_total_stable_partition(
        values in proptest::collection::vec(0u128..u128::MAX, 6..7),
        n_shards in 1usize..9,
        pinned in 0usize..9,
    ) {
        let schema = FieldSchema::ovs_ipv4();
        let key = Key::from_values(&schema, &values);
        for steering in [
            Steering::Rss,
            Steering::PerTenant,
            Steering::Pinned(pinned % n_shards),
        ] {
            // Every key maps to exactly one shard...
            let shard = steering.shard_of(&schema, &key, n_shards);
            prop_assert!(shard < n_shards, "{steering:?}: {shard} out of range");
            // ...stable across calls...
            prop_assert_eq!(shard, steering.shard_of(&schema, &key, n_shards));
            // ...and the datapath's cached steering agrees with the pure function.
            let dp = ShardedDatapath::new(
                Scenario::Dp.flow_table(&schema),
                n_shards,
                steering,
            );
            prop_assert_eq!(shard, dp.shard_of_key(&key));
        }
    }

    #[test]
    fn rss_steering_ignores_noise_fields(
        values in proptest::collection::vec(0u128..u128::MAX, 6..7),
        ttl in 0u128..256,
    ) {
        let schema = FieldSchema::ovs_ipv4();
        let key = Key::from_values(&schema, &values);
        let mut noisy = key.clone();
        noisy.set(schema.field_index("ttl").unwrap(), ttl);
        prop_assert_eq!(
            Steering::Rss.shard_of(&schema, &key, 8),
            Steering::Rss.shard_of(&schema, &noisy, 8),
            "TTL must not move a flow between shards"
        );
    }
}
