//! Properties of the streaming traffic API: `TrafficMix` merge ordering (proptest) and
//! cross-form equivalences between materialised traces and lazy generators.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tse::attack::source::{EventPayload, TrafficEvent, TrafficMix, TrafficSource};
use tse::prelude::*;

/// A scripted source replaying an arbitrary list of timestamps.
struct Scripted {
    label: String,
    times: Vec<f64>,
    at: usize,
}

impl Scripted {
    fn new(label: String, times: Vec<f64>) -> Self {
        Scripted {
            label,
            times,
            at: 0,
        }
    }
}

impl TrafficSource for Scripted {
    fn label(&self) -> &str {
        &self.label
    }

    fn next_event(&mut self) -> Option<TrafficEvent> {
        let t = *self.times.get(self.at)?;
        self.at += 1;
        Some(TrafficEvent {
            time: t,
            key: FieldSchema::hyp().zero_value(),
            bytes: 64,
            payload: EventPayload::Packet,
        })
    }
}

proptest! {
    /// For arbitrary source sets (arbitrary per-source event counts and inter-event
    /// gaps, including zero gaps and empty sources), the merged stream is nondecreasing
    /// in timestamp, loses no events, and preserves each source's own event order.
    #[test]
    fn mix_emits_nondecreasing_timestamps(
        deltas in proptest::collection::vec(
            proptest::collection::vec(0u32..2_000, 0..40),
            1..7,
        )
    ) {
        // Cumulative sums make each source's stream nondecreasing.
        let sources: Vec<Vec<f64>> = deltas
            .iter()
            .map(|ds| {
                let mut t = 0.0f64;
                ds.iter()
                    .map(|&d| {
                        t += d as f64 * 1e-3;
                        t
                    })
                    .collect()
            })
            .collect();
        let mut mix = TrafficMix::new();
        for (i, times) in sources.iter().enumerate() {
            mix.push(Box::new(Scripted::new(format!("s{i}"), times.clone())));
        }
        let mut merged: Vec<(usize, f64)> = Vec::new();
        while let Some((src, ev)) = mix.next() {
            merged.push((src, ev.time));
        }
        let expected_total: usize = sources.iter().map(Vec::len).sum();
        prop_assert_eq!(merged.len(), expected_total);
        // Global nondecreasing order.
        for w in merged.windows(2) {
            prop_assert!(
                w[0].1 <= w[1].1,
                "merged stream regressed: {} then {}",
                w[0].1,
                w[1].1
            );
        }
        // Per-source subsequences are exactly the source's own streams.
        for (i, times) in sources.iter().enumerate() {
            let got: Vec<f64> = merged
                .iter()
                .filter(|(s, _)| *s == i)
                .map(|(_, t)| *t)
                .collect();
            prop_assert_eq!(&got, times, "source {} shuffled", i);
        }
    }
}

#[test]
fn mix_drained_interval_by_interval_loses_nothing() {
    // next_before over successive windows visits every event exactly once, in order —
    // the contract the event-driven runner is built on.
    let schema = FieldSchema::ovs_ipv4();
    let keys = scenario_trace(&schema, Scenario::Dp, &schema.zero_value());
    let mut rng = StdRng::seed_from_u64(11);
    let trace = AttackTrace::from_keys_cyclic(&mut rng, &schema, &keys, 7.0, 0.3, 40);
    let mut mix = TrafficMix::new().with(trace.source("atk", &schema));
    let mut times = Vec::new();
    for step in 0..10 {
        let t_end = (step + 1) as f64;
        while let Some((_, ev)) = mix.next_before(t_end) {
            assert!(ev.time < t_end);
            times.push(ev.time);
        }
    }
    assert_eq!(times.len(), 40);
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn general_tse_generator_streams_unbounded_attacks() {
    // The General TSE as a lazy source: random keys, no materialised trace, throttled
    // only by the pull rate of the consumer.
    let schema = FieldSchema::ovs_ipv4();
    let base = schema.zero_value();
    let mut gen = AttackGenerator::new(
        "general",
        &schema,
        tse::attack::RandomKeys::new(StdRng::seed_from_u64(1), &schema, Scenario::SipSpDp, &base),
        StdRng::seed_from_u64(2),
        10_000.0,
        0.0,
    );
    let mut last = f64::NEG_INFINITY;
    for i in 0..5_000 {
        let ev = gen.next_event().expect("unbounded");
        assert!(ev.time >= last, "event {i} regressed");
        last = ev.time;
    }
}
