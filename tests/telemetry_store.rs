//! The two-tier telemetry store, property-tested: the cold tier's streaming
//! aggregates match an exact in-order fold bit-for-bit however much of the run ages
//! out of the hot ring; the log-bucket histogram's quantile estimate stays inside its
//! documented error bound (the true value is under-estimated by strictly less than
//! 12.5 %, i.e. `est <= v < est * 9/8`); and a fleet run records a bit-identical
//! store whichever shard executor drives it.

use proptest::prelude::*;
use tse::prelude::*;

/// A hand-built single-victim, single-attacker, single-shard sample.
fn sample(time: f64, gbps: f64, pps: f64) -> TimelineSample {
    TimelineSample {
        time,
        victim_gbps: vec![gbps],
        attacker_pps: pps,
        attacker_pps_by_source: vec![pps],
        background_pps: 0.0,
        malformed_pps: 0.0,
        mask_count: 3,
        entry_count: 5,
        victim_masks_scanned: 1,
        shard_masks: vec![3],
        shard_entries: vec![5],
        shard_attacker_pps: vec![pps],
        mitigation_actions: Vec::new(),
    }
}

/// Map integer draws onto a positive float spanning ~14 decades, well inside the
/// histogram's tracked range `[2^-32, 2^32)`.
fn to_value((mantissa, exponent): (u32, u32)) -> f64 {
    (mantissa as f64 + 1.0) * ((exponent as f64) - 16.0).exp2()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever ages out of the hot ring, the cold tier's count/sum/min/max equal the
    /// exact in-order fold over the *whole* stream — bit-for-bit, not approximately.
    #[test]
    fn cold_fold_matches_the_exact_stream_bit_for_bit(
        draws in proptest::collection::vec((0u32..4096, 0u32..33), 1..120),
        hot in 1usize..6,
    ) {
        let values: Vec<f64> = draws.into_iter().map(to_value).collect();
        let mut store = TelemetryStore::new(
            TelemetryConfig::with_hot_capacity(hot),
            1.0,
            vec!["v".into()],
            vec!["a".into()],
            1,
        );
        for (i, &v) in values.iter().enumerate() {
            store.record_sample(sample(i as f64, v, 2.0 * v));
        }
        store.finish();

        let agg = store.victim_series(0).unwrap();
        prop_assert_eq!(agg.count(), values.len() as u64);
        let exact_sum: f64 = values.iter().sum();
        prop_assert_eq!(agg.sum().to_bits(), exact_sum.to_bits());
        let exact_min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let exact_max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(agg.min().to_bits(), exact_min.to_bits());
        prop_assert_eq!(agg.max().to_bits(), exact_max.to_bits());

        // The attacker series folds its own stream the same way.
        let atk = store.attacker_series(0).unwrap();
        let exact_atk: f64 = values.iter().map(|v| 2.0 * v).sum();
        prop_assert_eq!(atk.sum().to_bits(), exact_atk.to_bits());

        // And the ring/ledger arithmetic is consistent with the stream length.
        prop_assert_eq!(store.hot_len(), hot.min(values.len()));
        prop_assert_eq!(store.aged_out() as usize, values.len().saturating_sub(hot));
        prop_assert_eq!(store.samples_recorded() as usize, values.len());
    }

    /// The histogram's quantile estimate is the lower bound of the bucket holding the
    /// exact rank statistic: `est <= exact < est * 9/8` for every in-range input.
    #[test]
    fn histogram_quantile_stays_inside_the_documented_bound(
        draws in proptest::collection::vec((0u32..4096, 0u32..33), 1..200),
        q_pct in 1u32..100,
    ) {
        let values: Vec<f64> = draws.into_iter().map(to_value).collect();
        let mut agg = SeriesAgg::new();
        for &v in &values {
            agg.observe(v);
        }
        let q = q_pct as f64 / 100.0;
        let mut sorted = values;
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let est = agg.quantile(q);
        prop_assert!(
            est <= exact && exact < est * 9.0 / 8.0,
            "q={}: estimate {} vs exact {}",
            q, est, exact
        );
    }
}

/// Run the same small tenant fleet through the runner and return its telemetry store.
fn fleet_store(fleet: &TenantFleet, executor: Box<dyn ShardExecutor>) -> TelemetryStore {
    let sharded = ShardedDatapath::from_builder(
        Datapath::builder(fleet.table()).with_executor(executor),
        4,
        Steering::PerTenant,
    );
    let mut runner = ExperimentRunner::sharded(sharded, Vec::new(), OffloadConfig::gro_off())
        .with_telemetry(TelemetryConfig::with_hot_capacity(6).with_slo_floor(0.005))
        .with_table_updates(fleet.table_updates());
    runner.run_mix(fleet.mix(1.0), fleet.config().duration);
    runner.take_telemetry().expect("run_mix records telemetry")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The executor is a wall-clock choice only: a churning, attacked fleet run
    /// records a bit-identical store under the sequential and thread-pool executors —
    /// hot ring, every cold aggregate, and every SLO tracker.
    #[test]
    fn store_is_bit_identical_across_executors(
        seed in 0u64..1024,
        tenants in 8usize..20,
    ) {
        let schema = FieldSchema::ovs_ipv4();
        let fleet = TenantFleet::new(&schema, FleetConfig {
            tenants,
            attackers: 2,
            offered_gbps: 0.01,
            attack_rate_pps: 400.0,
            duration: 25.0,
            churn: Some(ChurnConfig::default()),
            seed,
        });
        let seq = fleet_store(&fleet, Box::new(SequentialExecutor));
        let par = fleet_store(&fleet, Box::new(ThreadPoolExecutor::new(4)));

        let (a, b) = (seq.recent_timeline(), par.recent_timeline());
        prop_assert_eq!(a.victim_names, b.victim_names);
        prop_assert_eq!(a.attacker_names, b.attacker_names);
        prop_assert_eq!(a.samples, b.samples);
        for i in 0.. {
            match (seq.victim_series(i), par.victim_series(i)) {
                (Some(x), Some(y)) => prop_assert_eq!(x, y),
                (None, None) => break,
                _ => prop_assert!(false, "victim series arity differs"),
            }
        }
        prop_assert_eq!(seq.total_victim_series(), par.total_victim_series());
        prop_assert_eq!(seq.total_attacker_series(), par.total_attacker_series());
        prop_assert_eq!(seq.background_series(), par.background_series());
        prop_assert_eq!(seq.malformed_series(), par.malformed_series());
        prop_assert_eq!(seq.mask_series(), par.mask_series());
        prop_assert_eq!(seq.entry_series(), par.entry_series());
        for s in 0..4 {
            prop_assert_eq!(seq.shard_attack_series(s), par.shard_attack_series(s));
            prop_assert_eq!(seq.shard_mask_series(s), par.shard_mask_series(s));
        }
        prop_assert_eq!(seq.slo_trackers(), par.slo_trackers());
        prop_assert_eq!(seq.samples_recorded(), par.samples_recorded());
        prop_assert_eq!(seq.aged_out(), par.aged_out());
        prop_assert_eq!(seq.footprint_units(), par.footprint_units());
    }
}
