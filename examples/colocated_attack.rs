//! Co-located TSE (§5): the attacker leases a VM next to the victim, installs the Fig. 6
//! ACL for its own service through the CMS, and replays the bit-inversion trace at
//! 100 pps. The victim's iperf throughput collapses and recovers ~10 s after the attack
//! stops (the megaflow idle timeout).
//!
//! Run with: `cargo run --release --example colocated_attack`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse::prelude::*;

const VICTIM_IP: u32 = 0x0a00_0063; // 10.0.0.99
const ATTACKER_IP: u32 = 0x0a00_00c8; // 10.0.0.200

fn main() {
    let schema = FieldSchema::ovs_ipv4();

    // The shared hypervisor switch runs the merged ACLs of both tenants.
    let table = tse::switch::tenant::victim_and_attacker_table(
        &schema,
        u128::from(VICTIM_IP),
        u128::from(ATTACKER_IP),
    );
    let datapath = Datapath::new(table);

    // Victim: a 10 Gbps iperf session towards its web service.
    let victims = vec![VictimFlow::iperf_tcp(
        "victim",
        0x0a00_0005,
        VICTIM_IP,
        10.0,
    )];

    // Attacker: co-located trace against its *own* ACL (destination = attacker's service),
    // 100 pps from t = 30 s for 30 s.
    let mut base = schema.zero_value();
    base.set(
        schema.field_index("ip_dst").unwrap(),
        u128::from(ATTACKER_IP),
    );
    let keys = scenario_trace(&schema, Scenario::SipSpDp, &base);
    let mut rng = StdRng::seed_from_u64(42);
    let attack = AttackTrace::from_keys_cyclic(&mut rng, &schema, &keys, 100.0, 30.0, 3000);
    println!(
        "attack trace: {} packets, {:.2} Mbps on the wire",
        attack.len(),
        attack.bandwidth_bps() / 1e6
    );

    let mut runner = ExperimentRunner::new(datapath, victims, OffloadConfig::gro_off());
    let timeline = runner.run(&attack, 90.0);
    println!("{}", timeline.render_table());
    println!(
        "mean victim throughput: before {:.2} Gbps, under attack {:.2} Gbps, after recovery {:.2} Gbps",
        timeline.mean_total_between(5.0, 29.0),
        timeline.mean_total_between(40.0, 59.0),
        timeline.mean_total_between(75.0, 89.0),
    );
}
