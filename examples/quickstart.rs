//! Quickstart: build the Fig. 6 ACL, run the Co-located TSE attack against a simulated
//! OVS datapath, and watch the tuple space explode — then swap in an attack-immune
//! fast-path backend (§7) and watch nothing happen.
//!
//! Run with: `cargo run --example quickstart`

use tse::prelude::*;

/// Replay a scenario's attack trace through a datapath (any backend) and report the
/// victim's per-packet cost before and after, using the batched entry point.
fn attack_report<B: FastPathBackend>(
    mut dp: Datapath<B>,
    schema: &FieldSchema,
    scenario: Scenario,
) -> (f64, f64, usize, usize) {
    // The victim: a web service reachable on port 80 (rule #1 of Fig. 6).
    let victim = PacketBuilder::tcp_v4([192, 168, 1, 10], [10, 0, 0, 99], 40000, 80).build();
    dp.process_packet(&victim, 0.0);
    let baseline_cost = dp.process_packet(&victim, 0.001).cost;

    // The attacker: the co-located bit-inversion trace, pushed through in one batch.
    let trace: Vec<(Key, usize)> = scenario_trace(schema, scenario, &schema.zero_value())
        .into_iter()
        .map(|key| (key, 64))
        .collect();
    let report = dp.process_batch(&trace, 0.5);

    let attacked_cost = dp.process_packet(&victim, 1.0).cost;
    (
        baseline_cost,
        attacked_cost,
        report.processed,
        dp.mask_count(),
    )
}

fn main() {
    let schema = FieldSchema::ovs_ipv4();

    println!("== Tuple Space Explosion quickstart ==\n");
    println!("-- TSS fast path (the default backend; Observation 1 in action) --");
    for scenario in Scenario::ALL {
        let table = scenario.flow_table(&schema);
        let dp = Datapath::builder(table).build();
        let (base, attacked, packets, masks) = attack_report(dp, &schema, scenario);
        println!(
            "{:9}: {:5} attack packets -> {:5} MFC masks; victim per-packet cost {:6.2} us -> {:8.2} us ({}x)",
            scenario.name(),
            packets,
            masks,
            base * 1e6,
            attacked * 1e6,
            (attacked / base).round()
        );
    }

    println!("\n-- Hierarchical-trie fast path (attack-immune, §7) --");
    for scenario in Scenario::ALL {
        let table = scenario.flow_table(&schema);
        let dp = Datapath::builder(table)
            .backend_fresh::<TrieBackend>()
            .build();
        let (base, attacked, packets, masks) = attack_report(dp, &schema, scenario);
        println!(
            "{:9}: {:5} attack packets -> {:5} masks; victim per-packet cost {:6.2} us -> {:8.2} us ({}x)",
            scenario.name(),
            packets,
            masks,
            base * 1e6,
            attacked * 1e6,
            (attacked / base).round()
        );
    }

    println!("\nSee EXPERIMENTS.md for the full figure reproductions.");
}
