//! Quickstart: build the Fig. 6 ACL, run the Co-located TSE attack against a simulated
//! OVS datapath, and watch the tuple space explode.
//!
//! Run with: `cargo run --example quickstart`

use tse::prelude::*;

fn main() {
    let schema = FieldSchema::ovs_ipv4();

    println!("== Tuple Space Explosion quickstart ==\n");
    for scenario in Scenario::ALL {
        let table = scenario.flow_table(&schema);
        let mut dp = Datapath::new(table);

        // The victim: a web service reachable on port 80 (rule #1 of Fig. 6).
        let victim = PacketBuilder::tcp_v4([192, 168, 1, 10], [10, 0, 0, 99], 40000, 80).build();
        dp.process_packet(&victim, 0.0);
        let baseline_cost = dp.process_packet(&victim, 0.001).cost;

        // The attacker: the co-located bit-inversion trace for this scenario.
        let trace = scenario_trace(&schema, scenario, &schema.zero_value());
        for (i, key) in trace.iter().enumerate() {
            dp.process_key(key, 64, 0.01 + i as f64 * 1e-4);
        }

        let attacked_cost = dp.process_packet(&victim, 1.0).cost;
        println!(
            "{:9}: {:5} attack packets -> {:5} MFC masks; victim per-packet cost {:6.2} us -> {:8.2} us ({}x)",
            scenario.name(),
            trace.len(),
            dp.mask_count(),
            baseline_cost * 1e6,
            attacked_cost * 1e6,
            (attacked_cost / baseline_cost).round()
        );
    }

    println!("\nSee EXPERIMENTS.md for the full figure reproductions.");
}
