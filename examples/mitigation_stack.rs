//! The composable mitigation pipeline: guard + RSS hash-key rotation against a
//! shard-pinned SipDp explosion on a 4-PMD datapath.
//!
//! The attacker retags her free destination field so the whole explosion RSS-targets
//! the victim's shard (computed under the *default* hash key). Undefended, that shard's
//! victim collapses. With a `MitigationStack` of a per-shard `GuardMitigation` and an
//! `RssKeyRandomizer`, the guard sweeps the attacked cache and every rotation strands
//! the attacker's stale targeting — her stream scatters ~evenly, and the victim keeps
//! most of its throughput. Every intervention is attributed in the timeline as a
//! `MitigationAction`.
//!
//! Run with: `cargo run --release --example mitigation_stack`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse::prelude::*;

const N_SHARDS: usize = 4;
const DURATION: f64 = 60.0;

fn main() {
    let schema = FieldSchema::ovs_ipv4();
    let ip_dst = schema.field_index("ip_dst").unwrap();

    for defended in [false, true] {
        let table = Scenario::SipDp.flow_table(&schema);
        let sharded =
            ShardedDatapath::from_builder(Datapath::builder(table), N_SHARDS, Steering::Rss);
        let mut runner = ExperimentRunner::sharded(sharded, vec![], OffloadConfig::gro_off());
        if defended {
            runner = runner
                .with_mitigation(GuardMitigation::new(GuardConfig {
                    mask_threshold: 30,
                    ..GuardConfig::default()
                }))
                .with_mitigation(RssKeyRandomizer::new(10.0, 0xC0FFEE));
        }

        // The victim sits on shard 0; the attacker pins her explosion to it.
        let victim = VictimFlow::iperf_tcp("victim", 0x0a00_0005, 0x0a00_0063, 4.0)
            .steered_to_shard(&schema, Steering::Rss, N_SHARDS, 0);
        let mut base = schema.zero_value();
        base.set(schema.field_index("ip_proto").unwrap(), 6);
        base.set(ip_dst, 0x0a00_00c8);
        let keys = pin_to_shard(
            &schema,
            Scenario::SipDp.key_iter(&schema, &base).cycle(),
            ip_dst,
            N_SHARDS,
            0,
        );
        let mix = TrafficMix::new()
            .with(VictimSource::new(victim, &schema, runner.sample_interval))
            .with(
                AttackGenerator::new(
                    "attacker",
                    &schema,
                    keys,
                    StdRng::seed_from_u64(3),
                    100.0,
                    15.0,
                )
                .with_limit(((DURATION - 15.0) * 100.0) as usize),
            );
        let stack = runner.mitigations.names().join(" -> ");
        let timeline = runner.run_mix(mix, DURATION);

        println!(
            "{}: victim mean under attack = {:.2} Gbps, peak shard masks = {:?}",
            if defended {
                "defended (guard -> rekey)"
            } else {
                "undefended"
            },
            timeline.mean_total_between(25.0, DURATION - 1.0),
            (0..N_SHARDS)
                .map(|s| timeline
                    .samples
                    .iter()
                    .map(|x| x.shard_masks[s])
                    .max()
                    .unwrap())
                .collect::<Vec<_>>(),
        );
        if defended {
            println!("  stack: {stack}");
            for s in &timeline.samples {
                for action in &s.mitigation_actions {
                    match action {
                        MitigationAction::GuardSweep(r) if r.entries_removed > 0 => println!(
                            "  t={:5.1}s shard {}: guard wiped {} entries ({} -> {} masks)",
                            r.time, r.shard, r.entries_removed, r.masks_before, r.masks_after
                        ),
                        MitigationAction::Rekeyed { time, new_key, .. } => {
                            println!("  t={time:5.1}s all shards: RSS key rotated to {new_key:#x}")
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}
