//! The tuple-space explosion replayed as raw Ethernet frames.
//!
//! The same SipDp attack, twice: once as pre-parsed keys (`AttackTrace`) and once
//! serialized to wire bytes and re-parsed per frame (`WireSource`) — the timelines
//! are bit-for-bit identical, so everything proven at the key level holds on the
//! byte level. A burst of truncated garbage rides along: the parser never panics,
//! the frames are charged to shard 0's per-kind decode counters, and the timeline
//! reports them in its own `malformed_pps` series instead of any attacker series.
//!
//! Run with `cargo run --release --example wire_replay`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse::prelude::*;

const N_SHARDS: usize = 4;
const DURATION: f64 = 32.0;

fn runner(schema: &FieldSchema) -> ExperimentRunner {
    let sharded = ShardedDatapath::from_builder(
        Datapath::builder(Scenario::SipDp.flow_table(schema)),
        N_SHARDS,
        Steering::Rss,
    );
    ExperimentRunner::sharded(sharded, vec![], OffloadConfig::gro_off())
}

fn main() {
    let schema = FieldSchema::ovs_ipv4();
    let victim = VictimFlow::iperf_tcp("Victim", 0x0a00_0005, 0x0a00_0063, 10.0);

    // One materialised SipDp attack trace: 2000 packets at 100 pps from t = 10 s.
    let keys: Vec<Key> = Scenario::SipDp
        .key_iter(&schema, &schema.zero_value())
        .take(512)
        .collect();
    let trace = AttackTrace::from_keys_cyclic(
        &mut StdRng::seed_from_u64(42),
        &schema,
        &keys,
        100.0,
        10.0,
        2000,
    );

    // Replay it at the key level...
    let mut by_key = runner(&schema);
    let tl_key = by_key.run_mix(
        TrafficMix::new()
            .with(VictimSource::new(victim.clone(), &schema, 1.0))
            .with(TraceSource::new("Attacker", &trace, &schema)),
        DURATION,
    );

    // ...and as raw frames through the wire parser (VLAN-tagged, for good measure —
    // the decoder strips the envelope and classifies the same inner 5-tuple).
    let frames = wire_trace(&trace, Encap::Vlan { tci: 7 });
    let mut garbled = frames.clone();
    // Truncated junk after the last well-formed frame (trace times are monotonic).
    for i in 0..200 {
        garbled.push(30.0 + i as f64 * 0.004, &[0xDE; 9]);
    }
    let mut by_wire = runner(&schema);
    let tl_wire = by_wire.run_mix(
        TrafficMix::new()
            .with(VictimSource::new(victim.clone(), &schema, 1.0))
            .with(WireSource::replay("Attacker", garbled, &schema)),
        DURATION,
    );

    // The well-formed frames reproduce the key-level run exactly — every f64 of
    // every sample except the malformed series the junk adds.
    for (k, w) in tl_key.samples.iter().zip(&tl_wire.samples) {
        assert_eq!(k.victim_gbps, w.victim_gbps);
        assert_eq!(k.mask_count, w.mask_count);
        assert_eq!(k.attacker_pps, w.attacker_pps);
    }
    let malformed: f64 = tl_wire.samples.iter().map(|s| s.malformed_pps).sum();
    let stats0 = by_wire.datapath.shard(0).stats();
    println!(
        "key-level and wire-level timelines agree over {} samples",
        tl_key.samples.len()
    );
    println!(
        "victim: {:.2} Gbps before, {:.2} Gbps under attack; peak masks {}",
        tl_wire.mean_total_between(2.0, 9.0),
        tl_wire.mean_total_between(20.0, 29.0),
        tl_wire.samples.iter().map(|s| s.mask_count).max().unwrap(),
    );
    println!(
        "garbage: {malformed:.0} malformed frames, all truncated ({}) and charged to \
         shard 0 at microflow cost",
        stats0.truncated,
    );
    assert_eq!(malformed as u64, stats0.truncated);
}
