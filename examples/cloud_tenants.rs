//! Cloud-platform view (§5.5, §5.6, §7): what each orchestrator lets a tenant express,
//! and how many megaflow masks that translates to on the shared hypervisor switch.
//!
//! Run with: `cargo run --example cloud_tenants`

use tse::prelude::*;
use tse::simnet::cloud::section7_mask_ceiling;

fn main() {
    let schema = FieldSchema::ovs_ipv4();
    println!(
        "{:<16} {:>10} {:>22} {:>14}",
        "platform", "line rate", "strongest scenario", "mask ceiling"
    );
    for platform in [
        CloudPlatform::Synthetic,
        CloudPlatform::OpenStack,
        CloudPlatform::Kubernetes,
    ] {
        println!(
            "{:<16} {:>8.1} G {:>22} {:>14}",
            platform.name(),
            platform.line_rate_gbps(),
            platform.max_scenario().name(),
            section7_mask_ceiling(platform, &schema)
        );
    }

    // Show the merged flow table two tenants produce on one hypervisor.
    let victim = TenantAcl::web_service("victim", 0x0a00_0063);
    let attacker = CloudPlatform::Kubernetes.attacker_acl(Scenario::SipSpDp, 0x0a00_00c8);
    let table = merge_tenant_acls(&schema, &[victim, attacker]);
    println!(
        "\nmerged hypervisor flow table ({} rules):\n{}",
        table.len(),
        table.render()
    );
}
