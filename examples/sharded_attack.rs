//! Shard-pinned tuple-space explosion on a multi-PMD datapath.
//!
//! Four PMD shards behind RSS steering, two victims pinned (by source port) to
//! different shards, and a SipDp attacker who retags her free destination address so
//! every packet lands on Victim A's shard. Victim A collapses; Victim B — private
//! cache, private CPU budget — never notices.
//!
//! Run with `cargo run --release --example sharded_attack`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse::prelude::*;

const N_SHARDS: usize = 4;

/// A 4 Gbps victim whose source port steers its 5-tuple to `shard`.
fn victim_on_shard(name: &str, src_ip: u32, schema: &FieldSchema, shard: usize) -> VictimFlow {
    VictimFlow::iperf_tcp(name, src_ip, 0x0a00_0063, 4.0).steered_to_shard(
        schema,
        Steering::Rss,
        N_SHARDS,
        shard,
    )
}

fn main() {
    let schema = FieldSchema::ovs_ipv4();
    let table = Scenario::SipDp.flow_table(&schema);

    // The switch: 4 PMD shards, each with a private TSS megaflow cache, RSS-steered.
    let sharded = ShardedDatapath::from_builder(Datapath::builder(table), N_SHARDS, Steering::Rss);
    let mut runner = ExperimentRunner::sharded(sharded, vec![], OffloadConfig::gro_off());

    let victim_a = victim_on_shard("Victim A", 0x0a00_0005, &schema, 0);
    let victim_b = victim_on_shard("Victim B", 0x0a00_0006, &schema, 2);

    // The attacker's key stream: the SipDp bit-inversion pattern, with the base fields
    // the crafted packets will carry (TCP; ip_dst is her own service — the free field),
    // retagged so every key RSS-targets shard 0. `spray_shards` would hit all four.
    let mut base = schema.zero_value();
    base.set(schema.field_index("ip_proto").unwrap(), 6);
    base.set(schema.field_index("ip_dst").unwrap(), 0x0a00_00c8);
    let pinned_keys = pin_to_shard(
        &schema,
        Scenario::SipDp.key_iter(&schema, &base).cycle(),
        schema.field_index("ip_dst").unwrap(),
        N_SHARDS,
        0,
    );

    let mix = TrafficMix::new()
        .with(VictimSource::new(victim_a, &schema, runner.sample_interval))
        .with(VictimSource::new(victim_b, &schema, runner.sample_interval))
        .with(
            AttackGenerator::new(
                "Attacker",
                &schema,
                pinned_keys,
                StdRng::seed_from_u64(7),
                100.0,
                15.0,
            )
            .with_limit(3000),
        );

    let timeline = runner.run_mix(mix, 50.0);
    println!("{}", timeline.render_table());
    let mean = |idx: usize, start: f64, stop: f64| {
        let vals: Vec<f64> = timeline
            .samples
            .iter()
            .filter(|s| s.time >= start && s.time < stop)
            .map(|s| s.victim_gbps[idx])
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    println!(
        "Victim A (attacked shard): {:.2} Gbps -> {:.2} Gbps",
        mean(0, 5.0, 14.0),
        mean(0, 25.0, 49.0)
    );
    println!(
        "Victim B (other shard):    {:.2} Gbps -> {:.2} Gbps",
        mean(1, 5.0, 14.0),
        mean(1, 25.0, 49.0)
    );
    let last = timeline.samples.last().unwrap();
    println!("masks per shard at t=49s: {:?}", last.shard_masks);
}
