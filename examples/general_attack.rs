//! General TSE (§6): no co-location, no knowledge of the ACL — just random packets
//! towards the victim's address. Compares the measured number of MFC masks against the
//! analytic expectation (Eq. 1/2) for growing trace sizes.
//!
//! Run with: `cargo run --release --example general_attack`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse::prelude::*;

fn main() {
    let schema = FieldSchema::ovs_ipv4();
    let scenario = Scenario::SipDp; // what an OpenStack tenant ACL exposes
    let model = ExpectationModel::for_scenario(&schema, scenario);

    println!("General TSE against an unknown {} ACL", scenario.name());
    println!("{:>10} {:>12} {:>12}", "packets", "expected", "measured");
    for &n in &[100usize, 1_000, 5_000, 20_000] {
        let table = scenario.flow_table(&schema);
        let mut dp = Datapath::new(table);
        let mut rng = StdRng::seed_from_u64(7);
        let keys = random_trace(&mut rng, &schema, scenario, &schema.zero_value(), n);
        for (i, key) in keys.iter().enumerate() {
            dp.process_key(key, 64, i as f64 * 1e-3);
        }
        println!(
            "{:>10} {:>12.1} {:>12}",
            n,
            model.expected_masks(n as u64),
            dp.mask_count()
        );
    }
    println!(
        "\nceiling for this ACL (Co-located attack): {} masks",
        model.max_masks()
    );
}
