//! MFCGuard (§8): the same Co-located attack as `colocated_attack`, but with the guard
//! wiping TSE-patterned drop entries every 10 s. The victim keeps its throughput; the
//! cost is slow-path CPU burned on the attacker's packets.
//!
//! Run with: `cargo run --release --example mfcguard_defense`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tse::mitigation::cpu_model::SlowPathCpuModel;
use tse::prelude::*;

fn main() {
    let schema = FieldSchema::ovs_ipv4();
    let table = Scenario::SipSpDp.flow_table(&schema);

    let victims = vec![VictimFlow::iperf_tcp(
        "victim",
        0x0a00_0005,
        0x0a00_0063,
        10.0,
    )];
    let keys = scenario_trace(&schema, Scenario::SipSpDp, &schema.zero_value());
    let mut rng = StdRng::seed_from_u64(1);
    let attack = AttackTrace::from_keys_cyclic(&mut rng, &schema, &keys, 1000.0, 10.0, 60_000);

    for guarded in [false, true] {
        let datapath = Datapath::new(table.clone());
        let mut runner = ExperimentRunner::new(datapath, victims.clone(), OffloadConfig::gro_off());
        if guarded {
            runner = runner.with_guard(MfcGuard::new(GuardConfig::default()));
        }
        let timeline = runner.run(&attack, 80.0);
        println!(
            "{:9}: victim mean under attack = {:.2} Gbps, peak MFC masks = {}",
            if guarded { "guarded" } else { "unguarded" },
            timeline.mean_total_between(20.0, 69.0),
            timeline.samples.iter().map(|s| s.mask_count).max().unwrap()
        );
    }

    let cpu = SlowPathCpuModel::ovs_vswitchd_default();
    println!("\nMFCGuard cost (slow-path CPU, Fig. 9c):");
    for rate in [100.0, 1_000.0, 10_000.0, 50_000.0] {
        println!(
            "  {:>7.0} pps -> {:>6.1} % CPU",
            rate,
            cpu.utilization_percent(rate)
        );
    }
}
