//! Tenant-scale telemetry: a multi-tenant gateway under a mid-run TSE attack,
//! recorded through the two-tier hot/cold store with per-tenant SLO tracking.
//!
//! A [`TenantFleet`] of 600 tenants (2 turning hostile mid-run) shares a 4-shard
//! switch behind per-tenant steering. The runner records into a bounded
//! [`TelemetryStore`]: only the last 10 s stay in full detail, yet whole-run
//! per-tenant SLO violations, recovery times and delivered-throughput percentiles
//! come out of the streaming cold tier — in memory that would be the same for an
//! hour-long run.
//!
//! Run with: `cargo run --release --example tenant_gateway`

use tse::prelude::*;

fn main() {
    let schema = FieldSchema::ovs_ipv4();
    let fleet = TenantFleet::new(
        &schema,
        FleetConfig {
            tenants: 600,
            attackers: 2,
            offered_gbps: 0.01,
            attack_rate_pps: 1200.0,
            duration: 60.0,
            churn: Some(ChurnConfig::default()),
            seed: 42,
        },
    );
    let sharded =
        ShardedDatapath::from_builder(Datapath::builder(fleet.table()), 4, Steering::PerTenant);
    let mut runner = ExperimentRunner::sharded(sharded, Vec::new(), OffloadConfig::gro_off())
        .with_telemetry(TelemetryConfig::with_hot_capacity(10).with_slo_floor(0.005))
        .with_table_updates(fleet.table_updates());
    runner.run_mix(fleet.mix(1.0), 60.0);
    let store = runner.take_telemetry().expect("telemetry was configured");

    println!(
        "recorded {} intervals; {} kept hot, {} aged into the cold tier",
        store.samples_recorded(),
        store.hot_len(),
        store.aged_out()
    );
    println!(
        "telemetry footprint: {} scalar slots (ceiling {}) — horizon-independent\n",
        store.footprint_units(),
        store.footprint_ceiling(0)
    );

    println!(
        "{:<14} {:>9} {:>12} {:>11} {:>11}",
        "tenant", "episodes", "below-floor", "p50 Gbps", "worst rec."
    );
    let mut shown = 0;
    for slo in store.slo_trackers() {
        if slo.episode_count() == 0 || shown >= 8 {
            continue;
        }
        shown += 1;
        println!(
            "{:<14} {:>9} {:>10.0} s {:>11.4} {:>9.0} s",
            slo.name(),
            slo.episode_count(),
            slo.total_violation_seconds(),
            slo.p50_gbps(),
            slo.longest_episode_seconds()
        );
    }
    let violated = store
        .slo_trackers()
        .iter()
        .filter(|t| t.episode_count() > 0)
        .count();
    println!(
        "\n{} of {} tenants broke the 0.005 Gbps SLO floor at least once",
        violated,
        store.slo_trackers().len()
    );
}
