//! Pluggable shard-execution models for the multi-PMD datapath.
//!
//! In the paper's OVS-DPDK testbed every PMD runs on its own core: the per-shard work
//! of a [`ShardedDatapath`](crate::pmd::ShardedDatapath) — batch classification, idle
//! expiry, guard sweeps — is hardware-parallel by construction, because shards share
//! nothing but the (read-only) flow table. [`ShardExecutor`] is the seam that decides
//! how that per-shard fan-out actually executes:
//!
//! * [`SequentialExecutor`] walks the shards in order on the calling thread — the
//!   default, and the reference behaviour every parallel run must reproduce
//!   bit-for-bit;
//! * [`ThreadPoolExecutor`] drives the same jobs from scoped worker threads
//!   (`std::thread::scope`, no external dependencies), one PMD core per shard up to
//!   the configured thread count.
//!
//! The trait's object-safe core is [`ShardExecutor::run`]: execute a type-erased job
//! once per shard index, in any order, possibly concurrently. The typed entry point
//! everything calls is [`ShardExecutorExt::for_each_shard`], which hands each job
//! exclusive `&mut` access to its shard and collects the per-shard results **in shard
//! order** — so executor choice can never reorder stats merges, timeline columns or
//! mitigation actions. Determinism is asserted end to end by
//! `tests/executor_parity.rs`.
//!
//! ```
//! use tse_switch::exec::{SequentialExecutor, ShardExecutorExt, ThreadPoolExecutor};
//!
//! let mut counters = vec![0u64; 8];
//! let seq = SequentialExecutor.for_each_shard(&mut counters, |i, c| {
//!     *c += i as u64;
//!     *c
//! });
//! let mut counters = vec![0u64; 8];
//! let par = ThreadPoolExecutor::new(4).for_each_shard(&mut counters, |i, c| {
//!     *c += i as u64;
//!     *c
//! });
//! assert_eq!(seq, par, "results are collected in shard order on both executors");
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How the per-shard work of a sharded datapath is executed.
///
/// Implementations receive a job and a shard count and must invoke the job **exactly
/// once** for every shard index in `0..n_shards`, in any order and from any thread;
/// [`ShardExecutorExt::for_each_shard`] (the typed wrapper every call site uses)
/// verifies the exactly-once contract at runtime and re-assembles the results in shard
/// order regardless of execution order.
///
/// The trait is object-safe so the datapath can hold a `Box<dyn ShardExecutor>` and
/// swap execution models at runtime (`with_executor(..)` on the builder, the sharded
/// datapath and the experiment runner).
pub trait ShardExecutor: std::fmt::Debug + Send + Sync {
    /// Short human-readable name for reports and bench labels.
    fn name(&self) -> &'static str;

    /// Invoke `job(i)` exactly once for every `i` in `0..n_shards`, possibly
    /// concurrently. Must not return until every job has finished; a panicking job
    /// propagates the panic to the caller.
    fn run(&self, n_shards: usize, job: &(dyn Fn(usize) + Sync));

    /// Clone into a boxed trait object (what makes `Box<dyn ShardExecutor>` — and
    /// therefore the datapaths holding one — `Clone`).
    fn clone_box(&self) -> Box<dyn ShardExecutor>;
}

impl Clone for Box<dyn ShardExecutor> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl ShardExecutor for Box<dyn ShardExecutor> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn run(&self, n_shards: usize, job: &(dyn Fn(usize) + Sync)) {
        (**self).run(n_shards, job);
    }

    fn clone_box(&self) -> Box<dyn ShardExecutor> {
        (**self).clone_box()
    }
}

/// One shard's hand-off cell: the exclusive `&mut` the job consumes and the result it
/// leaves behind.
type ShardSlot<'a, S, R> = (Option<&'a mut S>, Option<R>);

/// The typed fan-out interface, blanket-implemented for every [`ShardExecutor`].
///
/// Separate from the base trait so [`ShardExecutor`] stays object-safe: `for_each_shard`
/// is generic over the shard and result types, which a `dyn` method cannot be.
pub trait ShardExecutorExt: ShardExecutor {
    /// Run `f(i, &mut shards[i])` once per shard — possibly in parallel — and return
    /// the results **in shard order**.
    ///
    /// Each job gets exclusive mutable access to its own shard (shards are
    /// independent), so parallel execution cannot observe or produce anything a
    /// sequential walk would not: for a deterministic `f` the result vector — and every
    /// per-shard mutation — is identical on every executor.
    ///
    /// # Panics
    /// Panics if the executor violates the exactly-once contract (a shard visited twice
    /// or never), or propagates the panic of a failing job.
    fn for_each_shard<S, R, F>(&self, shards: &mut [S], f: F) -> Vec<R>
    where
        S: Send,
        R: Send,
        F: Fn(usize, &mut S) -> R + Sync,
    {
        let slots: Vec<Mutex<ShardSlot<'_, S, R>>> = shards
            .iter_mut()
            .map(|shard| Mutex::new((Some(shard), None)))
            .collect();
        self.run(slots.len(), &|i| {
            // Uncontended by contract (each index is visited once); the lock exists to
            // hand the `&mut` across the thread boundary without unsafe code.
            let mut slot = slots[i].lock().expect("a sibling shard job panicked");
            let shard = slot
                .0
                .take()
                .unwrap_or_else(|| panic!("executor ran shard {i} twice"));
            slot.1 = Some(f(i, shard));
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                let (_, result) = slot.into_inner().expect("a shard job panicked");
                result.unwrap_or_else(|| panic!("executor never ran shard {i}"))
            })
            .collect()
    }
}

impl<E: ShardExecutor + ?Sized> ShardExecutorExt for E {}

/// Walk the shards in index order on the calling thread — the default execution model
/// and the reference every parallel executor must match bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SequentialExecutor;

impl ShardExecutor for SequentialExecutor {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn run(&self, n_shards: usize, job: &(dyn Fn(usize) + Sync)) {
        for i in 0..n_shards {
            job(i);
        }
    }

    fn clone_box(&self) -> Box<dyn ShardExecutor> {
        Box::new(*self)
    }
}

/// Execute shard jobs from scoped worker threads — the multi-PMD execution model.
///
/// Each call to [`ShardExecutor::run`] spawns up to `threads` workers inside a
/// [`std::thread::scope`] (so borrowed shard state needs no `'static` lifetime and no
/// external thread-pool dependency) which drain the shard indices from a shared atomic
/// counter. Work-stealing order is nondeterministic, but every job owns its shard
/// exclusively and results are re-assembled in shard order, so outputs are identical to
/// [`SequentialExecutor`]'s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPoolExecutor {
    threads: usize,
}

impl ThreadPoolExecutor {
    /// An executor driving at most `threads` concurrent shard jobs.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        ThreadPoolExecutor { threads }
    }

    /// One thread per available core — the "one PMD per core" configuration of the
    /// paper's testbed.
    pub fn per_core() -> Self {
        ThreadPoolExecutor::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The configured maximum number of concurrent shard jobs.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for ThreadPoolExecutor {
    fn default() -> Self {
        ThreadPoolExecutor::per_core()
    }
}

impl ShardExecutor for ThreadPoolExecutor {
    fn name(&self) -> &'static str {
        "thread-pool"
    }

    fn run(&self, n_shards: usize, job: &(dyn Fn(usize) + Sync)) {
        let workers = self.threads.min(n_shards);
        if workers <= 1 {
            // One worker (or one shard): the spawn would buy nothing.
            for i in 0..n_shards {
                job(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_shards {
                        break;
                    }
                    job(i);
                });
            }
            // The scope joins every worker before returning; a panicked job re-panics
            // here, satisfying the propagation contract.
        });
    }

    fn clone_box(&self) -> Box<dyn ShardExecutor> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_visits_every_shard_in_order() {
        let log = Mutex::new(Vec::new());
        SequentialExecutor.run(5, &|i| log.lock().unwrap().push(i));
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn thread_pool_visits_every_shard_exactly_once() {
        let visits: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        ThreadPoolExecutor::new(4).run(32, &|i| {
            visits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, v) in visits.iter().enumerate() {
            assert_eq!(v.load(Ordering::Relaxed), 1, "shard {i}");
        }
    }

    #[test]
    fn for_each_shard_collects_results_in_shard_order() {
        let mut data = vec![10u64, 20, 30, 40];
        let results = ThreadPoolExecutor::new(3).for_each_shard(&mut data, |i, v| *v + i as u64);
        assert_eq!(results, vec![10, 21, 32, 43]);
    }

    #[test]
    fn executors_agree_on_mutations_and_results() {
        let work = |i: usize, v: &mut u64| {
            // Deliberately uneven per-shard work.
            for _ in 0..(i + 1) * 1000 {
                *v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            *v
        };
        let mut a = vec![7u64; 9];
        let ra = SequentialExecutor.for_each_shard(&mut a, work);
        let mut b = vec![7u64; 9];
        let rb = ThreadPoolExecutor::new(4).for_each_shard(&mut b, work);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn empty_shard_list_is_a_no_op() {
        let mut empty: Vec<u64> = Vec::new();
        let r: Vec<u64> = ThreadPoolExecutor::new(2).for_each_shard(&mut empty, |_, v| *v);
        assert!(r.is_empty());
    }

    #[test]
    fn boxed_executor_clones_and_delegates() {
        let boxed: Box<dyn ShardExecutor> = Box::new(ThreadPoolExecutor::new(2));
        let cloned = boxed.clone();
        assert_eq!(cloned.name(), "thread-pool");
        let mut data = vec![1u64, 2];
        assert_eq!(cloned.for_each_shard(&mut data, |_, v| *v * 2), vec![2, 4]);
        assert_eq!(SequentialExecutor.clone_box().name(), "sequential");
    }

    #[test]
    fn per_core_has_at_least_one_thread() {
        assert!(ThreadPoolExecutor::per_core().threads() >= 1);
        assert_eq!(
            ThreadPoolExecutor::default(),
            ThreadPoolExecutor::per_core()
        );
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_is_rejected() {
        ThreadPoolExecutor::new(0);
    }
}
