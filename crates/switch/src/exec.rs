//! Pluggable shard-execution models for the multi-PMD datapath.
//!
//! In the paper's OVS-DPDK testbed every PMD runs on its own core: the per-shard work
//! of a [`ShardedDatapath`](crate::pmd::ShardedDatapath) — batch classification, idle
//! expiry, guard sweeps — is hardware-parallel by construction, because shards share
//! nothing but the (read-only) flow table. [`ShardExecutor`] is the seam that decides
//! how that per-shard fan-out actually executes:
//!
//! * [`SequentialExecutor`] walks the shards in order on the calling thread — the
//!   default, and the reference behaviour every parallel run must reproduce
//!   bit-for-bit;
//! * [`ThreadPoolExecutor`] drives the same jobs from scoped worker threads
//!   (`std::thread::scope`, no external dependencies), one PMD core per shard up to
//!   the configured thread count;
//! * [`PersistentPoolExecutor`] keeps the workers alive across calls — long-lived
//!   parked threads fed per-shard jobs through a shared queue, the moral equivalent of
//!   the paper's core-pinned PMD loops: spawn cost is paid once at construction and
//!   amortised to zero over the run.
//!
//! The trait's object-safe core is [`ShardExecutor::run`]: execute a type-erased job
//! once per shard index, in any order, possibly concurrently. The typed entry point
//! everything calls is [`ShardExecutorExt::for_each_shard`], which hands each job
//! exclusive `&mut` access to its shard and collects the per-shard results **in shard
//! order** — so executor choice can never reorder stats merges, timeline columns or
//! mitigation actions. Determinism is asserted end to end by
//! `tests/executor_parity.rs`.
//!
//! ```
//! use tse_switch::exec::{SequentialExecutor, ShardExecutorExt, ThreadPoolExecutor};
//!
//! let mut counters = vec![0u64; 8];
//! let seq = SequentialExecutor.for_each_shard(&mut counters, |i, c| {
//!     *c += i as u64;
//!     *c
//! });
//! let mut counters = vec![0u64; 8];
//! let par = ThreadPoolExecutor::new(4).for_each_shard(&mut counters, |i, c| {
//!     *c += i as u64;
//!     *c
//! });
//! assert_eq!(seq, par, "results are collected in shard order on both executors");
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How the per-shard work of a sharded datapath is executed.
///
/// Implementations receive a job and a shard count and must invoke the job **exactly
/// once** for every shard index in `0..n_shards`, in any order and from any thread;
/// [`ShardExecutorExt::for_each_shard`] (the typed wrapper every call site uses)
/// verifies the exactly-once contract at runtime and re-assembles the results in shard
/// order regardless of execution order.
///
/// The trait is object-safe so the datapath can hold a `Box<dyn ShardExecutor>` and
/// swap execution models at runtime (`with_executor(..)` on the builder, the sharded
/// datapath and the experiment runner).
pub trait ShardExecutor: std::fmt::Debug + Send + Sync {
    /// Short human-readable name for reports and bench labels.
    fn name(&self) -> &'static str;

    /// Invoke `job(i)` exactly once for every `i` in `0..n_shards`, possibly
    /// concurrently. Must not return until every job has finished; a panicking job
    /// propagates the panic to the caller.
    fn run(&self, n_shards: usize, job: &(dyn Fn(usize) + Sync));

    /// Clone into a boxed trait object (what makes `Box<dyn ShardExecutor>` — and
    /// therefore the datapaths holding one — `Clone`).
    fn clone_box(&self) -> Box<dyn ShardExecutor>;
}

impl Clone for Box<dyn ShardExecutor> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl ShardExecutor for Box<dyn ShardExecutor> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn run(&self, n_shards: usize, job: &(dyn Fn(usize) + Sync)) {
        (**self).run(n_shards, job);
    }

    fn clone_box(&self) -> Box<dyn ShardExecutor> {
        (**self).clone_box()
    }
}

/// One shard's hand-off cell: the exclusive `&mut` the job consumes and the result it
/// leaves behind.
type ShardSlot<'a, S, R> = (Option<&'a mut S>, Option<R>);

/// The typed fan-out interface, blanket-implemented for every [`ShardExecutor`].
///
/// Separate from the base trait so [`ShardExecutor`] stays object-safe: `for_each_shard`
/// is generic over the shard and result types, which a `dyn` method cannot be.
pub trait ShardExecutorExt: ShardExecutor {
    /// Run `f(i, &mut shards[i])` once per shard — possibly in parallel — and return
    /// the results **in shard order**.
    ///
    /// Each job gets exclusive mutable access to its own shard (shards are
    /// independent), so parallel execution cannot observe or produce anything a
    /// sequential walk would not: for a deterministic `f` the result vector — and every
    /// per-shard mutation — is identical on every executor.
    ///
    /// # Panics
    /// Panics if the executor violates the exactly-once contract (a shard visited twice
    /// or never), or propagates the panic of a failing job.
    fn for_each_shard<S, R, F>(&self, shards: &mut [S], f: F) -> Vec<R>
    where
        S: Send,
        R: Send,
        F: Fn(usize, &mut S) -> R + Sync,
    {
        let slots: Vec<Mutex<ShardSlot<'_, S, R>>> = shards
            .iter_mut()
            .map(|shard| Mutex::new((Some(shard), None)))
            .collect();
        self.run(slots.len(), &|i| {
            // Uncontended by contract (each index is visited once); the lock exists to
            // hand the `&mut` across the thread boundary without unsafe code.
            let mut slot = slots[i].lock().expect("a sibling shard job panicked");
            let shard = slot
                .0
                .take()
                .unwrap_or_else(|| panic!("executor ran shard {i} twice"));
            slot.1 = Some(f(i, shard));
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                let (_, result) = slot.into_inner().expect("a shard job panicked");
                result.unwrap_or_else(|| panic!("executor never ran shard {i}"))
            })
            .collect()
    }

    /// Like [`ShardExecutorExt::for_each_shard`], but additionally runs `aux` exactly
    /// once during the same dispatch — the pipelining hook: on an executor with a spare
    /// worker, `aux` (e.g. draining the *next* batch out of a traffic mix) overlaps
    /// with the shard jobs instead of serialising before or after them.
    ///
    /// `aux` is submitted as one extra job ahead of the shard jobs, so a
    /// [`SequentialExecutor`] runs it first and a pooled executor hands it to the first
    /// free worker. Correctness must not depend on *when* it runs within the call: the
    /// closure has to touch state disjoint from the shards (the compiler enforces the
    /// aliasing half of that; determinism of the overall result is on the caller, and
    /// holds trivially when `aux` neither reads nor writes anything `f` does).
    ///
    /// # Panics
    /// Same contract as [`ShardExecutorExt::for_each_shard`]; additionally panics if
    /// the executor never ran (or ran twice) the aux job.
    fn for_each_shard_with_aux<S, R, T, F, A>(&self, shards: &mut [S], f: F, aux: A) -> (Vec<R>, T)
    where
        S: Send,
        R: Send,
        T: Send,
        F: Fn(usize, &mut S) -> R + Sync,
        A: FnOnce() -> T + Send,
    {
        let aux_cell: Mutex<(Option<A>, Option<T>)> = Mutex::new((Some(aux), None));
        let slots: Vec<Mutex<ShardSlot<'_, S, R>>> = shards
            .iter_mut()
            .map(|shard| Mutex::new((Some(shard), None)))
            .collect();
        self.run(slots.len() + 1, &|j| {
            if j == 0 {
                let mut cell = aux_cell.lock().expect("the aux job panicked");
                let aux = cell
                    .0
                    .take()
                    .unwrap_or_else(|| panic!("executor ran the aux job twice"));
                cell.1 = Some(aux());
            } else {
                let i = j - 1;
                let mut slot = slots[i].lock().expect("a sibling shard job panicked");
                let shard = slot
                    .0
                    .take()
                    .unwrap_or_else(|| panic!("executor ran shard {i} twice"));
                slot.1 = Some(f(i, shard));
            }
        });
        let results = slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                let (_, result) = slot.into_inner().expect("a shard job panicked");
                result.unwrap_or_else(|| panic!("executor never ran shard {i}"))
            })
            .collect();
        let aux_result = aux_cell
            .into_inner()
            .expect("the aux job panicked")
            .1
            .unwrap_or_else(|| panic!("executor never ran the aux job"));
        (results, aux_result)
    }
}

impl<E: ShardExecutor + ?Sized> ShardExecutorExt for E {}

/// Walk the shards in index order on the calling thread — the default execution model
/// and the reference every parallel executor must match bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SequentialExecutor;

impl ShardExecutor for SequentialExecutor {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn run(&self, n_shards: usize, job: &(dyn Fn(usize) + Sync)) {
        for i in 0..n_shards {
            job(i);
        }
    }

    fn clone_box(&self) -> Box<dyn ShardExecutor> {
        Box::new(*self)
    }
}

/// Execute shard jobs from scoped worker threads — the multi-PMD execution model.
///
/// Each call to [`ShardExecutor::run`] spawns up to `threads` workers inside a
/// [`std::thread::scope`] (so borrowed shard state needs no `'static` lifetime and no
/// external thread-pool dependency) which drain the shard indices from a shared atomic
/// counter. Work-stealing order is nondeterministic, but every job owns its shard
/// exclusively and results are re-assembled in shard order, so outputs are identical to
/// [`SequentialExecutor`]'s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPoolExecutor {
    threads: usize,
}

impl ThreadPoolExecutor {
    /// An executor driving at most `threads` concurrent shard jobs.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        ThreadPoolExecutor { threads }
    }

    /// One thread per available core — the "one PMD per core" configuration of the
    /// paper's testbed.
    pub fn per_core() -> Self {
        ThreadPoolExecutor::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The configured maximum number of concurrent shard jobs.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for ThreadPoolExecutor {
    fn default() -> Self {
        ThreadPoolExecutor::per_core()
    }
}

impl ShardExecutor for ThreadPoolExecutor {
    fn name(&self) -> &'static str {
        "thread-pool"
    }

    fn run(&self, n_shards: usize, job: &(dyn Fn(usize) + Sync)) {
        let workers = self.threads.min(n_shards);
        if workers <= 1 {
            // One worker (or one shard): the spawn would buy nothing.
            for i in 0..n_shards {
                job(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_shards {
                        break;
                    }
                    job(i);
                });
            }
            // The scope joins every worker before returning; a panicked job re-panics
            // here, satisfying the propagation contract.
        });
    }

    fn clone_box(&self) -> Box<dyn ShardExecutor> {
        Box::new(*self)
    }
}

/// Execute shard jobs in a seeded adversarial order with injected yields — a
/// determinism-stressing executor for parity tests.
///
/// A parity test passing under [`ThreadPoolExecutor`] might still be riding a lucky,
/// mostly in-order schedule: the work-stealing counter hands out indices nearly
/// sequentially when per-shard work is uniform. `ChaosExecutor` removes the luck. It
/// deals the shard indices to its workers from a seeded Fisher–Yates permutation
/// (round-robin, so every worker gets shards from all over the index space) and each
/// worker yields the CPU at seeded points between jobs, coaxing the OS into a
/// different interleaving on every run — while the shard-to-worker *assignment* stays
/// reproducible from the seed. If shard state were not truly shard-exclusive, or any
/// result assembly depended on completion order, parity against
/// [`SequentialExecutor`] would break under some seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosExecutor {
    threads: usize,
    seed: u64,
}

impl ChaosExecutor {
    /// An executor driving at most `threads` workers over a permutation seeded by
    /// `seed`.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn new(threads: usize, seed: u64) -> Self {
        assert!(threads > 0, "thread count must be positive");
        ChaosExecutor { threads, seed }
    }

    /// The permutation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// One step of the splitmix64 generator — the same tiny PRNG the compat `rand` stub
/// builds on, inlined here so `tse-switch` keeps its zero-dependency core.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ShardExecutor for ChaosExecutor {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn run(&self, n_shards: usize, job: &(dyn Fn(usize) + Sync)) {
        if n_shards == 0 {
            return;
        }
        let mut state = self.seed ^ (n_shards as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut order: Vec<usize> = (0..n_shards).collect();
        for i in (1..n_shards).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let workers = self.threads.min(n_shards);
        // Deal the permuted indices round-robin; each worker also draws a 64-bit
        // yield pattern deciding before which of its jobs it yields the CPU.
        let mut plans: Vec<(Vec<usize>, u64)> = (0..workers)
            .map(|_| {
                (
                    Vec::with_capacity(n_shards / workers + 1),
                    splitmix64(&mut state),
                )
            })
            .collect();
        for (k, &shard) in order.iter().enumerate() {
            plans[k % workers].0.push(shard);
        }
        if workers <= 1 {
            // Single worker: still runs the full permutation, minus the yields.
            for i in &plans[0].0 {
                job(*i);
            }
            return;
        }
        std::thread::scope(|scope| {
            for (indices, yields) in plans {
                scope.spawn(move || {
                    for (k, i) in indices.into_iter().enumerate() {
                        if (yields >> (k % 64)) & 1 == 1 {
                            std::thread::yield_now();
                        }
                        job(i);
                    }
                });
            }
            // The scope joins every worker; a panicked job re-panics here.
        });
    }

    fn clone_box(&self) -> Box<dyn ShardExecutor> {
        Box::new(*self)
    }
}

/// The borrowed job of the run in flight, type-erased to a raw pointer so the
/// long-lived workers (which are `'static` threads) can hold it.
///
/// # Safety
/// The pointer is only ever dereferenced between a successful index claim and the
/// recording of that index's completion, and [`PersistentPoolExecutor::run`] does not
/// return (keeping the `&dyn Fn` it erased alive) until every claimed index has
/// recorded completion. Claims are validated against the run's generation under the
/// pool mutex, so a worker can never claim — and therefore never dereference — a job
/// from a run that already finished.
#[derive(Clone, Copy)]
struct RawJob(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (it is a `&(dyn Fn + Sync)` in the caller), so sharing
// the pointer across the pool's worker threads is sound; the lifetime argument is
// covered by the `RawJob` invariant above.
#[allow(unsafe_code)]
unsafe impl Send for RawJob {}

/// Shared pool state, guarded by [`PoolCore::state`].
struct PoolState {
    /// Bumped once per [`PersistentPoolExecutor::run`]; workers use it to tell a fresh
    /// run from the one they last drained.
    generation: u64,
    /// The erased job of the run in flight (`None` between runs).
    job: Option<RawJob>,
    /// Shard count of the run in flight.
    n_shards: usize,
    /// Next shard index to hand out.
    next: usize,
    /// Shard indices whose job has finished (the run is complete at `n_shards`).
    done: usize,
    /// First panic payload caught from a job, re-thrown by the caller.
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// Set once by [`PoolHandle::drop`]; workers exit their loop on observing it.
    shutdown: bool,
}

struct PoolCore {
    state: Mutex<PoolState>,
    /// Workers park here between runs.
    work_ready: Condvar,
    /// The caller parks here until `done == n_shards`.
    run_done: Condvar,
}

impl PoolCore {
    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState> {
        // Jobs run under `catch_unwind`, so a poisoned pool mutex can only come from a
        // panic in the tiny bookkeeping sections — recover rather than cascade.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Claim-and-run loop shared by the workers and the calling thread: repeatedly
    /// claim the next shard index of generation `generation` under the lock, run the
    /// job outside it, and record completion. Returns when the run has no indices left
    /// (or a newer generation started, which implies this run fully completed).
    fn drain_claims(&self, generation: u64, job: RawJob) {
        loop {
            let i = {
                let mut st = self.lock();
                if st.generation != generation || st.next >= st.n_shards {
                    return;
                }
                let i = st.next;
                st.next += 1;
                i
            };
            // SAFETY: we hold a claimed-but-not-completed index of the current
            // generation, so `run` is still blocked and the erased `&dyn Fn` is alive
            // (see `RawJob`).
            #[allow(unsafe_code)]
            let job_ref: &(dyn Fn(usize) + Sync) = unsafe { &*job.0 };
            let result = catch_unwind(AssertUnwindSafe(|| job_ref(i)));
            let mut st = self.lock();
            if let Err(payload) = result {
                if st.panic.is_none() {
                    st.panic = Some(payload);
                }
            }
            st.done += 1;
            if st.done == st.n_shards {
                self.run_done.notify_all();
            }
        }
    }

    fn worker_loop(&self) {
        let mut seen_generation = 0u64;
        loop {
            let (generation, job) = {
                let mut st = self.lock();
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.generation != seen_generation {
                        seen_generation = st.generation;
                        // `job` is cleared once a run completes; a worker waking late
                        // just re-parks on the (already finished) generation.
                        if let Some(job) = st.job {
                            break (seen_generation, job);
                        }
                    }
                    st = self.work_ready.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            self.drain_claims(generation, job);
        }
    }
}

/// Owns the worker threads; dropped when the last executor clone goes away, which
/// signals shutdown and joins every worker (clean `Drop` teardown, no detached
/// threads).
struct PoolHandle {
    core: Arc<PoolCore>,
    threads: usize,
    /// Serialises `run` calls from clones sharing this pool (one run in flight at a
    /// time; the pool state holds exactly one job).
    run_lock: Mutex<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Drop for PoolHandle {
    fn drop(&mut self) {
        {
            let mut st = self.core.lock();
            st.shutdown = true;
        }
        self.core.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Execute shard jobs on long-lived parked worker threads — the persistent form of
/// [`ThreadPoolExecutor`], and the closest software analogue of the paper's testbed
/// where every PMD is a core-pinned loop that lives as long as the switch.
///
/// Construction spawns the workers once; every [`ShardExecutor::run`] call afterwards
/// only takes a lock, bumps a generation counter and wakes them, so the per-batch
/// dispatch cost is independent of thread-spawn cost. Between runs the workers park on
/// a condvar and consume no CPU. The calling thread participates in draining shard
/// indices (it would otherwise idle for the duration of the run), and a panicking job
/// is caught, completes the run's accounting, and is re-thrown to the caller —
/// leaving the pool reusable.
///
/// Clones (including [`ShardExecutor::clone_box`]) share the same workers; concurrent
/// `run` calls from clones serialise. The last clone to drop signals shutdown and
/// joins every worker.
///
/// Outputs are bit-for-bit identical to [`SequentialExecutor`]'s for any conforming
/// job, exactly as for [`ThreadPoolExecutor`] (`tests/executor_parity.rs`).
pub struct PersistentPoolExecutor {
    handle: Arc<PoolHandle>,
}

impl std::fmt::Debug for PersistentPoolExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentPoolExecutor")
            .field("threads", &self.handle.threads)
            .finish()
    }
}

impl Clone for PersistentPoolExecutor {
    /// Clones share the underlying pool (no new threads are spawned).
    fn clone(&self) -> Self {
        PersistentPoolExecutor {
            handle: Arc::clone(&self.handle),
        }
    }
}

impl PersistentPoolExecutor {
    /// Spawn a pool of `threads` parked workers.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        let core = Arc::new(PoolCore {
            state: Mutex::new(PoolState {
                generation: 0,
                job: None,
                n_shards: 0,
                next: 0,
                done: 0,
                panic: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            run_done: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("tse-pmd-{i}"))
                    .spawn(move || core.worker_loop())
                    .expect("spawning a pool worker failed")
            })
            .collect();
        PersistentPoolExecutor {
            handle: Arc::new(PoolHandle {
                core,
                threads,
                run_lock: Mutex::new(()),
                workers,
            }),
        }
    }

    /// One worker per available core — the "one PMD per core" configuration of the
    /// paper's testbed.
    pub fn per_core() -> Self {
        PersistentPoolExecutor::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The number of long-lived worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.handle.threads
    }
}

impl Default for PersistentPoolExecutor {
    fn default() -> Self {
        PersistentPoolExecutor::per_core()
    }
}

impl ShardExecutor for PersistentPoolExecutor {
    fn name(&self) -> &'static str {
        "persistent-pool"
    }

    #[allow(unsafe_code)]
    fn run(&self, n_shards: usize, job: &(dyn Fn(usize) + Sync)) {
        if n_shards == 0 {
            return;
        }
        let serial = self
            .handle
            .run_lock
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let core = &self.handle.core;
        // SAFETY: a lifetime-only transmute (`&'a` → `*const` with the `'static`
        // default bound); the `RawJob` invariant guarantees no dereference outlives
        // this call, and `run` below does not return until `done == n_shards`.
        let raw = RawJob(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), *const (dyn Fn(usize) + Sync)>(
                job,
            )
        });
        let generation = {
            let mut st = core.lock();
            st.job = Some(raw);
            st.n_shards = n_shards;
            st.next = 0;
            st.done = 0;
            st.panic = None;
            st.generation = st.generation.wrapping_add(1);
            core.work_ready.notify_all();
            st.generation
        };
        // The calling thread drains indices alongside the workers.
        core.drain_claims(generation, raw);
        let payload = {
            let mut st = core.lock();
            while st.done < n_shards {
                st = core.run_done.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.job = None;
            st.panic.take()
        };
        drop(serial);
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    fn clone_box(&self) -> Box<dyn ShardExecutor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_visits_every_shard_in_order() {
        let log = Mutex::new(Vec::new());
        SequentialExecutor.run(5, &|i| log.lock().unwrap().push(i));
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn thread_pool_visits_every_shard_exactly_once() {
        let visits: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        ThreadPoolExecutor::new(4).run(32, &|i| {
            visits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, v) in visits.iter().enumerate() {
            assert_eq!(v.load(Ordering::Relaxed), 1, "shard {i}");
        }
    }

    #[test]
    fn for_each_shard_collects_results_in_shard_order() {
        let mut data = vec![10u64, 20, 30, 40];
        let results = ThreadPoolExecutor::new(3).for_each_shard(&mut data, |i, v| *v + i as u64);
        assert_eq!(results, vec![10, 21, 32, 43]);
    }

    #[test]
    fn executors_agree_on_mutations_and_results() {
        let work = |i: usize, v: &mut u64| {
            // Deliberately uneven per-shard work.
            for _ in 0..(i + 1) * 1000 {
                *v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            *v
        };
        let mut a = vec![7u64; 9];
        let ra = SequentialExecutor.for_each_shard(&mut a, work);
        let mut b = vec![7u64; 9];
        let rb = ThreadPoolExecutor::new(4).for_each_shard(&mut b, work);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn empty_shard_list_is_a_no_op() {
        let mut empty: Vec<u64> = Vec::new();
        let r: Vec<u64> = ThreadPoolExecutor::new(2).for_each_shard(&mut empty, |_, v| *v);
        assert!(r.is_empty());
    }

    #[test]
    fn boxed_executor_clones_and_delegates() {
        let boxed: Box<dyn ShardExecutor> = Box::new(ThreadPoolExecutor::new(2));
        let cloned = boxed.clone();
        assert_eq!(cloned.name(), "thread-pool");
        let mut data = vec![1u64, 2];
        assert_eq!(cloned.for_each_shard(&mut data, |_, v| *v * 2), vec![2, 4]);
        assert_eq!(SequentialExecutor.clone_box().name(), "sequential");
    }

    #[test]
    fn per_core_has_at_least_one_thread() {
        assert!(ThreadPoolExecutor::per_core().threads() >= 1);
        assert_eq!(
            ThreadPoolExecutor::default(),
            ThreadPoolExecutor::per_core()
        );
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_is_rejected() {
        ThreadPoolExecutor::new(0);
    }

    #[test]
    fn chaos_visits_every_shard_exactly_once() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let visits: Vec<AtomicUsize> = (0..33).map(|_| AtomicUsize::new(0)).collect();
            ChaosExecutor::new(4, seed).run(33, &|i| {
                visits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, v) in visits.iter().enumerate() {
                assert_eq!(v.load(Ordering::Relaxed), 1, "seed {seed} shard {i}");
            }
        }
    }

    #[test]
    fn chaos_permutes_but_results_stay_in_shard_order() {
        let log = Mutex::new(Vec::new());
        ChaosExecutor::new(1, 7).run(8, &|i| log.lock().unwrap().push(i));
        let order = log.lock().unwrap().clone();
        assert_ne!(order, (0..8).collect::<Vec<_>>(), "seed 7 must shuffle");

        // The same seed replays the same single-worker execution order...
        let log2 = Mutex::new(Vec::new());
        ChaosExecutor::new(1, 7).run(8, &|i| log2.lock().unwrap().push(i));
        assert_eq!(order, *log2.lock().unwrap());

        // ...and result assembly is in shard order regardless.
        let mut data = vec![10u64, 20, 30, 40];
        let results = ChaosExecutor::new(3, 99).for_each_shard(&mut data, |i, v| *v + i as u64);
        assert_eq!(results, vec![10, 21, 32, 43]);
    }

    #[test]
    fn chaos_matches_sequential_on_uneven_work() {
        let work = |i: usize, v: &mut u64| {
            for _ in 0..(i + 1) * 1000 {
                *v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            *v
        };
        let mut a = vec![7u64; 9];
        let ra = SequentialExecutor.for_each_shard(&mut a, work);
        for seed in 0..8u64 {
            let mut b = vec![7u64; 9];
            let rb = ChaosExecutor::new(4, seed).for_each_shard(&mut b, work);
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(ra, rb, "seed {seed}");
        }
    }

    #[test]
    fn persistent_pool_visits_every_shard_exactly_once() {
        let pool = PersistentPoolExecutor::new(4);
        let visits: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        pool.run(32, &|i| {
            visits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, v) in visits.iter().enumerate() {
            assert_eq!(v.load(Ordering::Relaxed), 1, "shard {i}");
        }
    }

    #[test]
    fn persistent_pool_is_reusable_across_many_runs() {
        // The whole point of the pool: one spawn, many dispatches. 200 back-to-back
        // runs on one pool must each satisfy the exactly-once contract.
        let pool = PersistentPoolExecutor::new(3);
        let mut data = vec![0u64; 8];
        for round in 0..200u64 {
            let results = pool.for_each_shard(&mut data, |i, v| {
                *v += i as u64 + round;
                *v
            });
            assert_eq!(results.len(), 8);
        }
        let expected: Vec<u64> = (0..8u64).map(|i| 200 * i + (0..200).sum::<u64>()).collect();
        assert_eq!(data, expected);
    }

    #[test]
    fn persistent_pool_matches_sequential_bitwise() {
        let work = |i: usize, v: &mut u64| {
            for _ in 0..(i + 1) * 1000 {
                *v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            *v
        };
        let mut a = vec![7u64; 9];
        let ra = SequentialExecutor.for_each_shard(&mut a, work);
        let mut b = vec![7u64; 9];
        let rb = PersistentPoolExecutor::new(4).for_each_shard(&mut b, work);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn persistent_pool_clones_share_the_workers() {
        let pool = PersistentPoolExecutor::new(2);
        let boxed: Box<dyn ShardExecutor> = pool.clone_box();
        assert_eq!(boxed.name(), "persistent-pool");
        let mut data = vec![1u64, 2, 3];
        assert_eq!(
            boxed.for_each_shard(&mut data, |_, v| *v * 2),
            vec![2, 4, 6]
        );
        // The original still works after the clone ran (shared state was reset).
        assert_eq!(pool.for_each_shard(&mut data, |_, v| *v), vec![1, 2, 3]);
        drop(boxed);
        // ...and after one of the sharing clones is dropped (workers outlive it).
        assert_eq!(pool.for_each_shard(&mut data, |_, v| *v), vec![1, 2, 3]);
    }

    #[test]
    fn persistent_pool_propagates_job_panics_and_survives_them() {
        let pool = PersistentPoolExecutor::new(2);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, &|i| {
                if i == 2 {
                    panic!("job blew up");
                }
            });
        }));
        let payload = outcome.expect_err("the job panic must propagate to the caller");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "job blew up");
        // The pool's accounting completed despite the panic: it is still usable.
        let mut data = vec![1u64; 4];
        assert_eq!(
            pool.for_each_shard(&mut data, |i, v| *v + i as u64),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn persistent_pool_handles_more_shards_than_threads_and_vice_versa() {
        let pool = PersistentPoolExecutor::new(8);
        let mut two = vec![0u64; 2];
        assert_eq!(pool.for_each_shard(&mut two, |i, _| i), vec![0, 1]);
        let pool = PersistentPoolExecutor::new(1);
        let mut many = vec![0u64; 16];
        let r = pool.for_each_shard(&mut many, |i, _| i);
        assert_eq!(r, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn per_core_pool_has_at_least_one_thread() {
        assert!(PersistentPoolExecutor::per_core().threads() >= 1);
        assert!(PersistentPoolExecutor::default().threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_persistent_threads_is_rejected() {
        PersistentPoolExecutor::new(0);
    }

    #[test]
    fn with_aux_runs_the_aux_job_exactly_once_on_every_executor() {
        let executors: Vec<Box<dyn ShardExecutor>> = vec![
            Box::new(SequentialExecutor),
            Box::new(ThreadPoolExecutor::new(3)),
            Box::new(PersistentPoolExecutor::new(3)),
        ];
        for exec in executors {
            let mut data = vec![10u64, 20, 30];
            let aux_runs = AtomicUsize::new(0);
            let (results, produced) = exec.for_each_shard_with_aux(
                &mut data,
                |i, v| *v + i as u64,
                || {
                    aux_runs.fetch_add(1, Ordering::Relaxed);
                    "next batch"
                },
            );
            assert_eq!(results, vec![10, 21, 32], "{}", exec.name());
            assert_eq!(produced, "next batch");
            assert_eq!(aux_runs.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn with_aux_on_sequential_runs_aux_before_the_shards() {
        // Pinned ordering: the aux job is submitted ahead of the shard jobs, so the
        // sequential executor produces the next batch before chewing the current one —
        // the order the pipelined runner's determinism argument assumes.
        let log = Mutex::new(Vec::new());
        let mut shards = vec![(), ()];
        SequentialExecutor.for_each_shard_with_aux(
            &mut shards,
            |i, ()| log.lock().unwrap().push(format!("shard{i}")),
            || log.lock().unwrap().push("aux".into()),
        );
        assert_eq!(*log.lock().unwrap(), vec!["aux", "shard0", "shard1"]);
    }

    #[test]
    fn with_aux_works_with_zero_shards() {
        let mut none: Vec<u64> = Vec::new();
        let (results, value) =
            PersistentPoolExecutor::new(2).for_each_shard_with_aux(&mut none, |_, v| *v, || 42);
        assert!(results.is_empty());
        assert_eq!(value, 42);
    }
}
