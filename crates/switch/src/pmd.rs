//! The sharded multi-PMD datapath: N per-shard [`Datapath`] instances behind an
//! RSS-style steering policy.
//!
//! In the paper's OVS-DPDK testbed the victim switch is not one cache but one cache
//! **per PMD thread**: the NIC's RSS hash spreads flows across RX queues, each polled
//! by a PMD that owns a *private* megaflow cache and a private CPU budget. The tuple
//! space explosion therefore has a *shard-local blast radius* — an attack whose
//! 5-tuples all hash to one queue saturates that PMD's cache and core while a victim
//! steered to another PMD keeps its fast path and its cycles; an attack sprayed across
//! the hash space poisons every PMD at once.
//!
//! [`ShardedDatapath`] reproduces exactly that: a [`Steering`] policy maps every
//! header key to one shard (a total, stable partition of the flow space), batched
//! entry points fan events out per shard in one pass, and statistics/mask counts are
//! reported both per shard and aggregated via [`DatapathStats::merge`]. A 1-shard
//! `ShardedDatapath` is bit-for-bit identical to the plain [`Datapath`] (asserted by
//! the golden-parity suite), so everything built on the monolithic switch carries
//! over unchanged.
//!
//! *How* the per-shard fan-out executes is pluggable: every batched entry point runs
//! through a [`ShardExecutor`] ([`SequentialExecutor`] by default; swap in a
//! [`ThreadPoolExecutor`](crate::exec::ThreadPoolExecutor) via
//! [`ShardedDatapath::with_executor`] for true thread-parallel shard execution).
//! Results are always collected in shard order, so executor choice never changes a
//! single bit of the outputs (`tests/executor_parity.rs`).

use tse_classifier::backend::FastPathBackend;
use tse_classifier::flowtable::FlowTable;
use tse_classifier::tss::TupleSpace;
use tse_packet::extract::{extract_keys_into, ExtractScratch};
use tse_packet::fields::{FieldSchema, Key};
use tse_packet::flowkey::FlowKey;
use tse_packet::rss;
use tse_packet::wire::WireFault;
use tse_packet::Packet;

use crate::datapath::{BatchReport, Datapath, DatapathBuilder, ProcessOutcome};
use crate::exec::{SequentialExecutor, ShardExecutor, ShardExecutorExt};
use crate::stats::DatapathStats;

/// How packets are distributed over the shards — the model of the NIC's RX-queue
/// assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steering {
    /// Hash the 5-tuple ([`rss::rss_fields`]) — hardware RSS, the paper's testbed
    /// configuration. Noise fields (TTL) do not influence placement.
    Rss,
    /// Steer by source address only: all traffic of one tenant lands on one shard
    /// (a queue-per-tenant isolation policy some deployments use).
    PerTenant,
    /// Send everything to one fixed shard (degenerate policy; also how a 1-shard
    /// datapath behaves under any policy).
    Pinned(usize),
}

impl Steering {
    /// The field indices this policy hashes for `schema` (empty for [`Steering::Pinned`]).
    pub fn steer_fields(&self, schema: &FieldSchema) -> Vec<usize> {
        match self {
            Steering::Rss => rss::rss_fields(schema),
            Steering::PerTenant => {
                let src = schema
                    .field_index("ip_src")
                    .or_else(|| schema.field_index("ip6_src"))
                    .unwrap_or(0);
                vec![src]
            }
            Steering::Pinned(_) => Vec::new(),
        }
    }

    /// The shard `key` is steered to among `n_shards` under the default hash key — a
    /// pure function of the key: every key maps to exactly one shard and repeated calls
    /// always agree.
    ///
    /// # Panics
    /// Panics if `n_shards` is zero or a [`Steering::Pinned`] target is out of range.
    pub fn shard_of(&self, schema: &FieldSchema, key: &Key, n_shards: usize) -> usize {
        self.shard_of_keyed(schema, key, n_shards, rss::DEFAULT_HASH_KEY)
    }

    /// The shard `key` is steered to among `n_shards` under an explicit RSS `hash_key`
    /// (see [`rss::rss_hash_keyed`]) — what a [`ShardedDatapath`] computes after
    /// [`ShardedDatapath::rekey`]. [`Steering::Pinned`] ignores the key (there is no
    /// hash to re-seed).
    ///
    /// # Panics
    /// Panics if `n_shards` is zero or a [`Steering::Pinned`] target is out of range.
    pub fn shard_of_keyed(
        &self,
        schema: &FieldSchema,
        key: &Key,
        n_shards: usize,
        hash_key: u64,
    ) -> usize {
        assert!(n_shards > 0, "shard count must be positive");
        match self {
            Steering::Pinned(i) => {
                assert!(*i < n_shards, "pinned shard {i} out of range 0..{n_shards}");
                *i
            }
            _ => rss::shard_of_keyed(key, &self.steer_fields(schema), n_shards, hash_key),
        }
    }
}

/// Reusable scratch buffers of the steering pre-partition pass: a stable counting
/// sort of event *indices* by destination shard.
///
/// `order` holds `0..n_events` grouped shard-major (events of shard 0 first, then
/// shard 1, …), preserving relative order within each shard — the order the PMD's RX
/// queue would deliver them. `starts[s]..starts[s + 1]` is shard `s`'s contiguous run.
/// All three buffers retain their capacity across batches, so the steady-state pass
/// performs zero heap allocations and zero `Key` clones (asserted by
/// `tests/alloc_audit.rs`).
#[derive(Debug, Clone, Default)]
struct PartitionScratch {
    /// Destination shard of event `e` (pass 1; avoids re-hashing in pass 2).
    shard_of: Vec<u32>,
    /// Event indices grouped by shard, stable within a shard.
    order: Vec<u32>,
    /// Prefix offsets into `order`, length `n_shards + 1`.
    starts: Vec<usize>,
    /// Per-shard write cursors of pass 2.
    cursors: Vec<usize>,
}

impl PartitionScratch {
    /// Recompute the partition of `n_events` events over `n_shards` shards, where
    /// event `e` steers to `shard_of(e)`.
    fn partition(&mut self, n_shards: usize, n_events: usize, shard_of: impl Fn(usize) -> usize) {
        self.shard_of.clear();
        self.starts.clear();
        self.starts.resize(n_shards + 1, 0);
        for e in 0..n_events {
            let s = shard_of(e);
            debug_assert!(s < n_shards, "steering produced shard {s} of {n_shards}");
            self.shard_of.push(s as u32);
            self.starts[s + 1] += 1;
        }
        for s in 0..n_shards {
            self.starts[s + 1] += self.starts[s];
        }
        self.cursors.clear();
        self.cursors.extend_from_slice(&self.starts[..n_shards]);
        self.order.clear();
        self.order.resize(n_events, 0);
        for (e, &s) in self.shard_of.iter().enumerate() {
            let cursor = &mut self.cursors[s as usize];
            self.order[*cursor] = e as u32;
            *cursor += 1;
        }
    }

    /// The contiguous index run of `shard` (empty if the shard received no events).
    fn slice(&self, shard: usize) -> &[u32] {
        &self.order[self.starts[shard]..self.starts[shard + 1]]
    }
}

/// An immutable snapshot of a [`ShardedDatapath`]'s steering function, detached from
/// the datapath so another thread can steer while the shards are busy — what the
/// pipelined experiment runner hands to the job that pre-partitions batch *k + 1*
/// while the shards still chew batch *k*.
///
/// The snapshot answers [`SteeringView::shard_of_key`] exactly as the datapath it was
/// taken from would have at snapshot time. It does *not* track later
/// [`ShardedDatapath::rekey`] calls — consumers detect that through the hash key
/// recorded in a [`Prepartition`] (see
/// [`ShardedDatapath::process_timed_batch_prepartitioned`]).
#[derive(Debug, Clone)]
pub struct SteeringView {
    steering: Steering,
    steer_fields: Vec<usize>,
    n_shards: usize,
    hash_key: u64,
}

impl SteeringView {
    /// The shard `key` steers to under this snapshot.
    pub fn shard_of_key(&self, key: &Key) -> usize {
        if self.n_shards == 1 {
            return 0;
        }
        match self.steering {
            Steering::Pinned(i) => i,
            _ => rss::shard_of_keyed(key, &self.steer_fields, self.n_shards, self.hash_key),
        }
    }

    /// Number of shards in the snapshot.
    pub fn shard_count(&self) -> usize {
        self.n_shards
    }

    /// The RSS hash key in effect at snapshot time.
    pub fn hash_key(&self) -> u64 {
        self.hash_key
    }
}

/// A shard partition of one timed batch computed *ahead* of dispatch — the
/// double-buffering half of the pipelined datapath: while the shards chew batch *k*,
/// a spare worker drains batch *k + 1* and partitions it against a [`SteeringView`];
/// at dispatch the partition is either consumed as-is or transparently recomputed if
/// the steering changed in between (e.g. a mitigation-driven rekey landed at the end
/// of interval *k*).
///
/// The buffers are reused across batches (`Default` starts empty; steady state
/// allocates nothing).
#[derive(Debug, Clone, Default)]
pub struct Prepartition {
    scratch: PartitionScratch,
    hash_key: u64,
    n_shards: usize,
    n_events: usize,
    valid: bool,
}

impl Prepartition {
    /// Partition `batch` against the steering snapshot `view`.
    pub fn compute(&mut self, view: &SteeringView, batch: &[(Key, usize, f64)]) {
        self.compute_with(view.n_shards, view.hash_key, batch.len(), |e| {
            view.shard_of_key(&batch[e].0)
        });
    }

    fn compute_with(
        &mut self,
        n_shards: usize,
        hash_key: u64,
        n_events: usize,
        shard_of: impl Fn(usize) -> usize,
    ) {
        self.scratch.partition(n_shards, n_events, shard_of);
        self.hash_key = hash_key;
        self.n_shards = n_shards;
        self.n_events = n_events;
        self.valid = true;
    }

    /// Invalidate the partition (the next consumer recomputes). Buffers are kept.
    pub fn clear(&mut self) {
        self.valid = false;
    }

    /// Whether the partition would be consumed as-is by a datapath with the given
    /// shard count and hash key for a batch of `n_events` events.
    fn is_current(&self, n_shards: usize, hash_key: u64, n_events: usize) -> bool {
        self.valid
            && self.n_shards == n_shards
            && self.hash_key == hash_key
            && self.n_events == n_events
    }
}

/// Per-shard result of one sharded batch dispatch.
///
/// `per_shard[s]` is the [`BatchReport`] of shard `s`'s sub-batch (zero counters for
/// shards that received no events); [`ShardedBatchReport::aggregate`] folds them into
/// one report equivalent to a monolithic run's.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardedBatchReport {
    /// One report per shard, in shard order.
    pub per_shard: Vec<BatchReport>,
}

impl ShardedBatchReport {
    /// Fold the per-shard reports into one (sums, except `max_masks_scanned` which is
    /// the maximum over shards).
    pub fn aggregate(&self) -> BatchReport {
        let mut total = BatchReport::default();
        // Exhaustive destructuring: a field added to BatchReport fails to compile here
        // instead of being silently dropped from the aggregate.
        for r in &self.per_shard {
            let BatchReport {
                processed,
                allowed,
                denied,
                fastpath_hits,
                upcalls,
                total_cost,
                max_masks_scanned,
            } = r;
            total.processed += processed;
            total.allowed += allowed;
            total.denied += denied;
            total.fastpath_hits += fastpath_hits;
            total.upcalls += upcalls;
            total.total_cost += total_cost;
            total.max_masks_scanned = total.max_masks_scanned.max(*max_masks_scanned);
        }
        total
    }
}

/// N per-shard datapaths behind a [`Steering`] policy — the multi-PMD form of
/// [`Datapath`]. Generic over the same fast-path backend `B`; every shard runs an
/// identical configuration over an identical flow table, but owns private megaflow
/// state, private statistics and (in the experiment runner) a private CPU budget.
#[derive(Debug, Clone)]
pub struct ShardedDatapath<B: FastPathBackend = TupleSpace> {
    shards: Vec<Datapath<B>>,
    steering: Steering,
    /// Field indices the steering policy hashes (cached from the schema at build).
    steer_fields: Vec<usize>,
    /// The RSS hash key in effect (see [`ShardedDatapath::rekey`]);
    /// [`rss::DEFAULT_HASH_KEY`] until rotated.
    hash_key: u64,
    /// Whether the schema is the OVS IPv4 / IPv6 family (cached for the per-packet
    /// family check in [`ShardedDatapath::process_packet`]).
    schema_is_v4: bool,
    schema_is_v6: bool,
    /// The execution model driving the per-shard fan-out (sequential by default).
    executor: Box<dyn ShardExecutor>,
    /// Reusable steering scratch for the batched entry points (not logical state:
    /// fully recomputed per batch, kept only for its capacity).
    partition: PartitionScratch,
}

impl<B: FastPathBackend> ShardedDatapath<B> {
    /// Wrap an existing datapath as a single shard. This is the compatibility form:
    /// every entry point behaves bit-for-bit like the wrapped [`Datapath`].
    pub fn single(datapath: Datapath<B>) -> Self {
        Self::from_shards(vec![datapath], Steering::Rss)
    }

    fn from_shards(shards: Vec<Datapath<B>>, steering: Steering) -> Self {
        let schema = shards[0].table().schema();
        ShardedDatapath {
            steer_fields: steering.steer_fields(schema),
            schema_is_v4: schema.field_index("ip_src").is_some(),
            schema_is_v6: schema.field_index("ip6_src").is_some(),
            hash_key: rss::DEFAULT_HASH_KEY,
            executor: Box::new(SequentialExecutor),
            partition: PartitionScratch::default(),
            shards,
            steering,
        }
    }

    /// Build `n_shards` identical datapaths from one builder (each shard gets its own
    /// fresh backend) behind `steering`.
    ///
    /// # Panics
    /// Panics if `n_shards` is zero or a [`Steering::Pinned`] target is out of range.
    pub fn from_builder(
        mut builder: DatapathBuilder<B>,
        n_shards: usize,
        steering: Steering,
    ) -> Self
    where
        DatapathBuilder<B>: Clone,
    {
        assert!(n_shards > 0, "shard count must be positive");
        if let Steering::Pinned(i) = steering {
            assert!(i < n_shards, "pinned shard {i} out of range 0..{n_shards}");
        }
        let executor = builder.take_executor();
        let shards: Vec<Datapath<B>> = (0..n_shards).map(|_| builder.clone().build()).collect();
        let mut sharded = Self::from_shards(shards, steering);
        if let Some(executor) = executor {
            sharded.executor = executor;
        }
        sharded
    }

    /// Replace the shard-execution model (builder form). The default is
    /// [`SequentialExecutor`]; a
    /// [`ThreadPoolExecutor`](crate::exec::ThreadPoolExecutor) runs the per-shard
    /// fan-out on scoped worker threads with bit-for-bit identical results.
    pub fn with_executor(mut self, executor: impl ShardExecutor + 'static) -> Self {
        self.set_executor(executor);
        self
    }

    /// Replace the shard-execution model in place.
    pub fn set_executor(&mut self, executor: impl ShardExecutor + 'static) {
        self.executor = Box::new(executor);
    }

    /// The execution model currently driving the per-shard fan-out.
    pub fn executor(&self) -> &dyn ShardExecutor {
        &*self.executor
    }

    /// Run `f(i, &mut shard_i)` once per shard through the configured executor and
    /// return the results in shard order — the fan-out primitive behind every batched
    /// entry point, also available to external per-shard machinery (MFCGuard sweeps
    /// run through it).
    pub fn for_each_shard<R: Send>(
        &mut self,
        f: impl Fn(usize, &mut Datapath<B>) -> R + Sync,
    ) -> Vec<R> {
        self.executor.for_each_shard(&mut self.shards, f)
    }

    /// Like [`ShardedDatapath::for_each_shard`], but additionally hands each job
    /// exclusive mutable access to its slot of `per_shard` — for callers that keep
    /// per-shard state outside the datapath (e.g. one independently configured
    /// MFCGuard per shard). `per_shard` must have exactly one element per shard.
    pub fn for_each_shard_with<S: Send, R: Send>(
        &mut self,
        per_shard: &mut [S],
        f: impl Fn(usize, &mut Datapath<B>, &mut S) -> R + Sync,
    ) -> Vec<R> {
        assert_eq!(
            per_shard.len(),
            self.shards.len(),
            "one external state slot per shard"
        );
        let mut pairs: Vec<(&mut Datapath<B>, &mut S)> =
            self.shards.iter_mut().zip(per_shard.iter_mut()).collect();
        self.executor
            .for_each_shard(&mut pairs, |i, (shard, state)| f(i, shard, state))
    }

    /// Number of shards (PMD threads).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The steering policy in effect.
    pub fn steering(&self) -> Steering {
        self.steering
    }

    /// The RSS hash key currently seeding the steering hash
    /// ([`rss::DEFAULT_HASH_KEY`] until [`ShardedDatapath::rekey`] is called).
    pub fn hash_key(&self) -> u64 {
        self.hash_key
    }

    /// Re-seed the steering hash — the RSS hash-key *rotation* countermeasure: an
    /// attacker who crafted her 5-tuples to land on a chosen shard under the old key
    /// finds them scattered pseudo-randomly under the new one, while benign flows keep
    /// a stable, total partition (each flow simply moves to its new home queue).
    ///
    /// Only the placement function changes: megaflow entries already cached on a shard
    /// are left alone, exactly as a real NIC rekey would leave each PMD's cache intact.
    /// Entries stranded on a shard their flow no longer steers to simply stop being
    /// refreshed and age out through the normal idle timeout. [`Steering::Pinned`]
    /// placement ignores the key entirely.
    pub fn rekey(&mut self, hash_key: u64) {
        self.hash_key = hash_key;
    }

    /// The shards, in shard order.
    pub fn shards(&self) -> &[Datapath<B>] {
        &self.shards
    }

    /// Shard `i` (read-only).
    pub fn shard(&self, i: usize) -> &Datapath<B> {
        &self.shards[i]
    }

    /// Mutable access to shard `i` (the per-shard interface MFCGuard sweeps use).
    pub fn shard_mut(&mut self, i: usize) -> &mut Datapath<B> {
        &mut self.shards[i]
    }

    /// The shard `key` is steered to.
    pub fn shard_of_key(&self, key: &Key) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        match self.steering {
            Steering::Pinned(i) => i,
            _ => rss::shard_of_keyed(key, &self.steer_fields, self.shards.len(), self.hash_key),
        }
    }

    /// Snapshot the steering function (policy, hashed fields, shard count, current
    /// hash key) so another thread can compute [`Prepartition`]s while the shards are
    /// busy. Answers [`SteeringView::shard_of_key`] exactly like
    /// [`ShardedDatapath::shard_of_key`] does at snapshot time.
    pub fn steering_view(&self) -> SteeringView {
        SteeringView {
            steering: self.steering,
            steer_fields: self.steer_fields.clone(),
            n_shards: self.shards.len(),
            hash_key: self.hash_key,
        }
    }

    /// The installed flow table (identical on every shard).
    pub fn table(&self) -> &FlowTable {
        self.shards[0].table()
    }

    /// Replace the flow table on every shard (OVS revalidation semantics per shard).
    /// Runs through the executor: table-built backends rebuild their structure once
    /// per shard, which parallelises like any other per-shard work.
    pub fn install_table(&mut self, table: FlowTable) {
        self.for_each_shard(|_, shard| shard.install_table(table.clone()));
    }

    /// Total megaflow masks across all shards.
    pub fn mask_count(&self) -> usize {
        self.shards.iter().map(Datapath::mask_count).sum()
    }

    /// Total megaflow entries across all shards.
    pub fn entry_count(&self) -> usize {
        self.shards.iter().map(Datapath::entry_count).sum()
    }

    /// Megaflow masks per shard, in shard order — the shard-local blast radius metric.
    pub fn shard_mask_counts(&self) -> Vec<usize> {
        self.shards.iter().map(Datapath::mask_count).collect()
    }

    /// Megaflow entries per shard, in shard order.
    pub fn shard_entry_counts(&self) -> Vec<usize> {
        self.shards.iter().map(Datapath::entry_count).collect()
    }

    /// Statistics of shard `i`.
    pub fn shard_stats(&self, i: usize) -> &DatapathStats {
        self.shards[i].stats()
    }

    /// Aggregate statistics: every shard's counters folded with [`DatapathStats::merge`].
    pub fn stats(&self) -> DatapathStats {
        let mut total = DatapathStats::default();
        for shard in &self.shards {
            total.merge(shard.stats());
        }
        total
    }

    /// Total simulated busy time across all shards, in cost-model seconds — the
    /// deterministic per-run cost metric the benchmark reports gate on (same commit,
    /// same flags → same bits, regardless of machine or executor).
    pub fn busy_seconds(&self) -> f64 {
        self.stats().busy_seconds
    }

    /// Reset the statistics of every shard.
    pub fn reset_stats(&mut self) {
        for shard in &mut self.shards {
            shard.reset_stats();
        }
    }

    /// Run the idle-expiry sweep on every shard if its revalidation interval elapsed.
    /// Idle shards expire on the same clock as busy ones — each PMD's revalidator runs
    /// regardless of traffic. Sweeps fan out through the executor (each shard's
    /// revalidator is its own PMD's work).
    pub fn maybe_expire(&mut self, now: f64) {
        self.for_each_shard(|_, shard| shard.maybe_expire(now));
    }

    /// Process one pre-extracted header key on the shard it is steered to.
    pub fn process_key(&mut self, header: &Key, bytes: usize, now: f64) -> ProcessOutcome {
        let shard = self.shard_of_key(header);
        self.shards[shard].process_key(header, bytes, now)
    }

    /// Process a concrete packet on the shard its flow key is steered to.
    ///
    /// Packets whose family does not match the installed schema (an IPv6 packet
    /// against an IPv4 table, or vice versa) cannot be steered — the RSS fields the
    /// policy hashes do not exist in their header — so they are **deterministically
    /// accounted on shard 0**, where the per-shard datapath permits them unclassified
    /// at microflow cost (exactly like non-IP traffic, see
    /// [`Datapath::process_packet`]). This mirrors a NIC delivering non-matching
    /// frames to the default RX queue: such traffic never spreads cache state or cost
    /// across shards, and the choice of shard 0 is stable across runs and executors
    /// (pinned by `schema_mismatch_accounts_on_shard_zero`).
    pub fn process_packet(&mut self, pkt: &Packet, now: f64) -> ProcessOutcome {
        let flow = FlowKey::from_packet(pkt);
        let family_matches =
            (flow.is_v6 && self.schema_is_v6) || (!flow.is_v6 && self.schema_is_v4);
        let shard = if family_matches {
            self.shard_of_key(&flow.to_key(self.shards[0].table().schema()))
        } else {
            0
        };
        self.shards[shard].process_packet(pkt, now)
    }

    /// Fan a timestamped event batch out to the shards in one pass and process each
    /// shard's sub-batch with [`Datapath::process_timed_batch`].
    ///
    /// Events keep their relative order within each shard (the order the PMD's RX
    /// queue would deliver them), and each shard's expiry/entry liveness evolves at the
    /// events' own timestamps. With one shard this is exactly the monolithic
    /// `process_timed_batch`.
    ///
    /// The per-shard sub-batches run through the configured [`ShardExecutor`]; each
    /// shard's [`BatchReport`] is returned directly by its job (no re-derivation) and
    /// collected in shard order, so the report — like every other output — is
    /// executor-independent.
    ///
    /// Steering is a single allocation-free pre-partition pass: `shard_of_key` is
    /// computed for the whole batch into a reusable scratch index buffer (a stable
    /// counting sort), then each shard receives the full slice plus one contiguous
    /// index run via [`Datapath::process_timed_batch_indexed`] — no per-shard `Vec`s,
    /// no per-event [`Key`] clones.
    pub fn process_timed_batch(&mut self, batch: &[(Key, usize, f64)]) -> ShardedBatchReport {
        if self.shards.len() == 1 {
            return ShardedBatchReport {
                per_shard: vec![self.shards[0].process_timed_batch(batch)],
            };
        }
        let mut scratch = std::mem::take(&mut self.partition);
        scratch.partition(self.shards.len(), batch.len(), |e| {
            self.shard_of_key(&batch[e].0)
        });
        let per_shard = Self::dispatch_timed(&self.executor, &mut self.shards, batch, &scratch);
        self.partition = scratch;
        ShardedBatchReport { per_shard }
    }

    /// Like [`ShardedDatapath::process_timed_batch`], but consuming a partition
    /// computed ahead of time against a [`SteeringView`] — the dispatch half of the
    /// pipelined datapath.
    ///
    /// If `prep` no longer matches this datapath (never computed, computed under a
    /// different hash key — a rekey landed in between — or for a different batch
    /// length or shard count), it is transparently recomputed here against the current
    /// steering before dispatch, so results are **always** identical to
    /// `process_timed_batch` on the same batch; staleness can only cost the
    /// pre-computation, never correctness.
    pub fn process_timed_batch_prepartitioned(
        &mut self,
        batch: &[(Key, usize, f64)],
        prep: &mut Prepartition,
    ) -> ShardedBatchReport {
        if self.shards.len() == 1 {
            return ShardedBatchReport {
                per_shard: vec![self.shards[0].process_timed_batch(batch)],
            };
        }
        self.revalidate(prep, batch);
        let per_shard =
            Self::dispatch_timed(&self.executor, &mut self.shards, batch, &prep.scratch);
        ShardedBatchReport { per_shard }
    }

    /// The pipelined entry point: process `batch` (partitioned by `prep`, revalidated
    /// exactly as in [`ShardedDatapath::process_timed_batch_prepartitioned`]) and run
    /// `aux` once *during* the same executor dispatch.
    ///
    /// On an executor with a spare worker — a [`PersistentPoolExecutor`](crate::exec::PersistentPoolExecutor)
    /// (crate::exec::PersistentPoolExecutor) or
    /// [`ThreadPoolExecutor`](crate::exec::ThreadPoolExecutor) with more threads than
    /// busy shards — `aux` overlaps with shard processing; the experiment runner uses
    /// it to drain and pre-partition interval *k + 1* while the shards chew interval
    /// *k*. On a [`SequentialExecutor`] `aux` simply runs first. Because `aux` cannot
    /// touch the datapath (the borrow checker enforces disjointness) the result is
    /// executor-independent whenever `aux` itself is deterministic.
    pub fn process_timed_batch_with<T: Send>(
        &mut self,
        batch: &[(Key, usize, f64)],
        prep: &mut Prepartition,
        aux: impl FnOnce() -> T + Send,
    ) -> (ShardedBatchReport, T) {
        if self.shards.len() == 1 {
            let (per_shard, aux_result) = self.executor.for_each_shard_with_aux(
                &mut self.shards,
                |_, shard| shard.process_timed_batch(batch),
                aux,
            );
            return (ShardedBatchReport { per_shard }, aux_result);
        }
        self.revalidate(prep, batch);
        let scratch = &prep.scratch;
        let (per_shard, aux_result) = self.executor.for_each_shard_with_aux(
            &mut self.shards,
            |i, shard| {
                let idx = scratch.slice(i);
                if idx.is_empty() {
                    BatchReport::default()
                } else {
                    shard.process_timed_batch_indexed(batch, idx)
                }
            },
            aux,
        );
        (ShardedBatchReport { per_shard }, aux_result)
    }

    /// Recompute `prep` against the current steering unless it is already current
    /// (same shard count, same hash key, same batch length).
    fn revalidate(&self, prep: &mut Prepartition, batch: &[(Key, usize, f64)]) {
        if prep.is_current(self.shards.len(), self.hash_key, batch.len()) {
            return;
        }
        prep.compute_with(self.shards.len(), self.hash_key, batch.len(), |e| {
            self.shard_of_key(&batch[e].0)
        });
    }

    /// Fan the partitioned batch out through the executor: shard `i` processes the
    /// contiguous index run `scratch.slice(i)` against the shared event slice.
    fn dispatch_timed(
        executor: &dyn ShardExecutor,
        shards: &mut [Datapath<B>],
        batch: &[(Key, usize, f64)],
        scratch: &PartitionScratch,
    ) -> Vec<BatchReport> {
        executor.for_each_shard(shards, |i, shard| {
            let idx = scratch.slice(i);
            if idx.is_empty() {
                BatchReport::default()
            } else {
                shard.process_timed_batch_indexed(batch, idx)
            }
        })
    }

    /// Process one raw Ethernet frame: parse it (VLAN/VXLAN overlays included), steer
    /// by RSS over the extracted key, and classify on the destination shard — the
    /// sharded form of [`Datapath::process_wire`].
    ///
    /// Wire-ingestion bookkeeping always lands on **shard 0**, the ingestion point:
    /// the `decoded` counter, the per-kind decode-error counters, and the charge for
    /// every unclassifiable frame (decode failure → dropped; family mismatch →
    /// permitted unclassified, exactly like [`ShardedDatapath::process_packet`]'s
    /// schema-mismatch path). Classification work is steered per key as usual.
    pub fn process_wire(&mut self, frame: &[u8], now: f64) -> ProcessOutcome {
        match tse_packet::wire::decode(frame) {
            Ok(pkt) => {
                self.shards[0].stats_mut().record_decoded();
                let flow = FlowKey::from_packet(&pkt);
                let family_matches =
                    (flow.is_v6 && self.schema_is_v6) || (!flow.is_v6 && self.schema_is_v4);
                let shard = if family_matches {
                    self.shard_of_key(&flow.to_key(self.shards[0].table().schema()))
                } else {
                    0
                };
                self.shards[shard].process_packet(&pkt, now)
            }
            Err(e) => self.shards[0].note_wire_fault(WireFault::Decode(e), frame.len(), now),
        }
    }

    /// Charge one unclassifiable frame to shard 0 — the entry point the event-driven
    /// runner uses for `Malformed` traffic events (frames a wire-level source could
    /// not turn into a key). Same semantics as [`Datapath::note_wire_fault`] on the
    /// ingestion shard.
    pub fn note_wire_fault(&mut self, fault: WireFault, bytes: usize, now: f64) -> ProcessOutcome {
        self.shards[0].note_wire_fault(fault, bytes, now)
    }

    /// Batched wire ingestion at a single timestamp: extract keys from `frames`
    /// through the allocation-free batched extractor (reusing `scratch`), steer the
    /// classifiable keys per shard with the ordinary pre-partitioned
    /// [`ShardedDatapath::process_batch`] dispatch, and charge every unclassifiable
    /// frame to shard 0 (see [`ShardedDatapath::process_wire`] for the bookkeeping
    /// invariant). The returned report folds the shard-0 fault charges into
    /// `per_shard[0]`.
    pub fn process_wire_batch(
        &mut self,
        frames: &[&[u8]],
        scratch: &mut ExtractScratch,
        now: f64,
    ) -> ShardedBatchReport {
        extract_keys_into(frames, scratch);
        let mut batch: Vec<(Key, usize)> = Vec::with_capacity(frames.len());
        let mut faults: Vec<(WireFault, usize)> = Vec::new();
        let mut decoded = 0u64;
        {
            let schema = self.shards[0].table().schema();
            for (res, frame) in scratch.keys().iter().zip(frames) {
                match res {
                    Ok(flow) => {
                        decoded += 1;
                        let family_matches =
                            (flow.is_v6 && self.schema_is_v6) || (!flow.is_v6 && self.schema_is_v4);
                        if family_matches {
                            batch.push((flow.to_key(schema), frame.len()));
                        } else {
                            faults.push((WireFault::FamilyMismatch, frame.len()));
                        }
                    }
                    Err(e) => faults.push((WireFault::Decode(*e), frame.len())),
                }
            }
        }
        let mut report = self.process_batch(&batch, now);
        self.shards[0].stats_mut().decoded += decoded;
        for (fault, bytes) in faults {
            let out = self.shards[0].note_wire_fault(fault, bytes, now);
            let r = &mut report.per_shard[0];
            r.processed += 1;
            if out.action.permits() {
                r.allowed += 1;
            } else {
                r.denied += 1;
            }
            r.total_cost += out.cost;
        }
        report
    }

    /// Fan a single-timestamp batch out per shard (the [`Datapath::process_batch`]
    /// semantics — one expiry sweep per shard, consecutive identical headers within a
    /// shard's sub-batch deduplicated). Like [`ShardedDatapath::process_timed_batch`],
    /// steering is an allocation-free indexed pre-partition pass (no `Key` clones),
    /// the sub-batches run through the configured executor and reports come back in
    /// shard order.
    pub fn process_batch(&mut self, batch: &[(Key, usize)], now: f64) -> ShardedBatchReport {
        if self.shards.len() == 1 {
            return ShardedBatchReport {
                per_shard: vec![self.shards[0].process_batch(batch, now)],
            };
        }
        let mut scratch = std::mem::take(&mut self.partition);
        scratch.partition(self.shards.len(), batch.len(), |e| {
            self.shard_of_key(&batch[e].0)
        });
        let per_shard = {
            let scratch = &scratch;
            self.executor.for_each_shard(&mut self.shards, |i, shard| {
                let idx = scratch.slice(i);
                if idx.is_empty() {
                    BatchReport::default()
                } else {
                    shard.process_batch_indexed(batch, idx, now)
                }
            })
        };
        self.partition = scratch;
        ShardedBatchReport { per_shard }
    }
}

impl ShardedDatapath<TupleSpace> {
    /// `n_shards` TSS datapaths over `table` with default configuration behind `steering`
    /// — shorthand for `ShardedDatapath::from_builder(Datapath::builder(table), ..)`.
    pub fn new(table: FlowTable, n_shards: usize, steering: Steering) -> Self {
        ShardedDatapath::from_builder(Datapath::builder(table), n_shards, steering)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PathTaken;
    use tse_classifier::rule::Action;
    use tse_packet::builder::PacketBuilder;

    fn fig6_table(schema: &FieldSchema) -> FlowTable {
        let tp_dst = schema.field_index("tp_dst").unwrap();
        FlowTable::whitelist_default_deny(schema, &[(tp_dst, 80)])
    }

    /// A spread of distinct keys (varying ports/addresses).
    fn key_spread(schema: &FieldSchema, n: usize) -> Vec<Key> {
        let tp_dst = schema.field_index("tp_dst").unwrap();
        let ip_src = schema.field_index("ip_src").unwrap();
        (0..n)
            .map(|i| {
                let mut k = schema.zero_value();
                k.set(tp_dst, (i % 400) as u128);
                k.set(ip_src, 0x0a00_0000 + (i / 7) as u128);
                k
            })
            .collect()
    }

    #[test]
    fn steering_is_a_total_partition() {
        let schema = FieldSchema::ovs_ipv4();
        for steering in [Steering::Rss, Steering::PerTenant, Steering::Pinned(2)] {
            for key in key_spread(&schema, 200) {
                let s = steering.shard_of(&schema, &key, 4);
                assert!(s < 4);
                assert_eq!(s, steering.shard_of(&schema, &key, 4));
            }
        }
    }

    #[test]
    fn per_tenant_groups_by_source_address() {
        let schema = FieldSchema::ovs_ipv4();
        let ip_src = schema.field_index("ip_src").unwrap();
        let tp_dst = schema.field_index("tp_dst").unwrap();
        let mut a = schema.zero_value();
        a.set(ip_src, 0x0a000001);
        a.set(tp_dst, 80);
        let mut b = a.clone();
        b.set(tp_dst, 443);
        assert_eq!(
            Steering::PerTenant.shard_of(&schema, &a, 8),
            Steering::PerTenant.shard_of(&schema, &b, 8),
            "same tenant, different ports, same shard"
        );
    }

    #[test]
    fn one_shard_matches_the_plain_datapath_bitwise() {
        let schema = FieldSchema::ovs_ipv4();
        let table = fig6_table(&schema);
        let batch: Vec<(Key, usize, f64)> = key_spread(&schema, 120)
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, 64usize, i as f64 * 0.2))
            .collect();

        let mut mono = Datapath::new(table.clone());
        let mono_report = mono.process_timed_batch(&batch);
        let mut sharded = ShardedDatapath::new(table, 1, Steering::Rss);
        let report = sharded.process_timed_batch(&batch);

        assert_eq!(report.per_shard.len(), 1);
        assert_eq!(report.aggregate(), mono_report);
        assert_eq!(sharded.stats(), *mono.stats());
        assert_eq!(sharded.mask_count(), mono.mask_count());
        assert_eq!(sharded.entry_count(), mono.entry_count());
        assert_eq!(
            sharded.stats().busy_seconds.to_bits(),
            mono.stats().busy_seconds.to_bits(),
            "costs must match to the f64 bit"
        );
    }

    #[test]
    fn sharded_verdicts_match_the_flow_table() {
        // Sharding must never change a verdict: each key still classifies against the
        // same table, just on its own shard.
        let schema = FieldSchema::ovs_ipv4();
        let table = fig6_table(&schema);
        let mut sharded = ShardedDatapath::new(table.clone(), 4, Steering::Rss);
        for (i, key) in key_spread(&schema, 200).iter().enumerate() {
            let out = sharded.process_key(key, 64, i as f64 * 1e-3);
            let expect = table.lookup(key).unwrap().action;
            assert_eq!(out.action, expect);
        }
        // Aggregate stats account for every packet.
        assert_eq!(sharded.stats().packets(), 200);
        let per_shard: u64 = (0..4).map(|i| sharded.shard_stats(i).packets()).sum();
        assert_eq!(per_shard, 200);
    }

    #[test]
    fn merged_shard_stats_equal_the_aggregate() {
        let schema = FieldSchema::ovs_ipv4();
        let mut sharded = ShardedDatapath::new(fig6_table(&schema), 3, Steering::Rss);
        let batch: Vec<(Key, usize, f64)> = key_spread(&schema, 150)
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, 64usize, i as f64 * 0.01))
            .collect();
        sharded.process_timed_batch(&batch);
        let mut merged = DatapathStats::default();
        for i in 0..sharded.shard_count() {
            merged.merge(sharded.shard_stats(i));
        }
        assert_eq!(merged, sharded.stats());
        assert_eq!(merged.packets(), 150);
    }

    #[test]
    fn pinned_steering_loads_one_shard_only() {
        let schema = FieldSchema::ovs_ipv4();
        let mut sharded = ShardedDatapath::new(fig6_table(&schema), 4, Steering::Pinned(3));
        for (i, key) in key_spread(&schema, 60).iter().enumerate() {
            sharded.process_key(key, 64, i as f64 * 1e-3);
        }
        assert_eq!(sharded.shard_stats(3).packets(), 60);
        for i in 0..3 {
            assert_eq!(sharded.shard_stats(i).packets(), 0);
            assert_eq!(sharded.shard(i).mask_count(), 0);
        }
        assert!(sharded.shard(3).mask_count() > 0);
    }

    #[test]
    fn rss_spreads_attack_state_across_shards() {
        let schema = FieldSchema::ovs_ipv4();
        let mut sharded = ShardedDatapath::new(fig6_table(&schema), 4, Steering::Rss);
        for (i, key) in key_spread(&schema, 400).iter().enumerate() {
            sharded.process_key(key, 64, i as f64 * 1e-4);
        }
        let masks = sharded.shard_mask_counts();
        assert!(
            masks.iter().all(|&m| m > 0),
            "all shards touched: {masks:?}"
        );
        assert_eq!(masks.iter().sum::<usize>(), sharded.mask_count());
        assert_eq!(
            sharded.shard_entry_counts().iter().sum::<usize>(),
            sharded.entry_count()
        );
    }

    #[test]
    fn install_table_flushes_every_shard() {
        let schema = FieldSchema::ovs_ipv4();
        let table = fig6_table(&schema);
        let mut sharded = ShardedDatapath::new(table.clone(), 2, Steering::Rss);
        for (i, key) in key_spread(&schema, 50).iter().enumerate() {
            sharded.process_key(key, 64, i as f64 * 1e-3);
        }
        assert!(sharded.entry_count() > 0);
        sharded.install_table(table);
        assert_eq!(sharded.entry_count(), 0);
        assert_eq!(sharded.mask_count(), 0);
    }

    #[test]
    fn process_packet_routes_by_flow_key() {
        let schema = FieldSchema::ovs_ipv4();
        let mut sharded = ShardedDatapath::new(fig6_table(&schema), 4, Steering::Rss);
        let pkt = PacketBuilder::tcp_v4([10, 0, 0, 9], [10, 0, 0, 99], 5555, 80).build();
        let key = FlowKey::from_packet(&pkt).to_key(&schema);
        let shard = sharded.shard_of_key(&key);
        let out = sharded.process_packet(&pkt, 0.0);
        assert_eq!(out.action, Action::Allow);
        assert_eq!(sharded.shard_stats(shard).packets(), 1);
    }

    #[test]
    fn rekey_moves_flows_but_keeps_a_total_partition() {
        let schema = FieldSchema::ovs_ipv4();
        let mut sharded = ShardedDatapath::new(fig6_table(&schema), 4, Steering::Rss);
        assert_eq!(sharded.hash_key(), rss::DEFAULT_HASH_KEY);
        let keys = key_spread(&schema, 300);
        let before: Vec<usize> = keys.iter().map(|k| sharded.shard_of_key(k)).collect();
        sharded.rekey(0xdead_beef_0bad_cafe);
        assert_eq!(sharded.hash_key(), 0xdead_beef_0bad_cafe);
        let after: Vec<usize> = keys.iter().map(|k| sharded.shard_of_key(k)).collect();
        // Still a stable, total partition...
        for (k, &s) in keys.iter().zip(&after) {
            assert!(s < 4);
            assert_eq!(s, sharded.shard_of_key(k));
        }
        // ...but a large fraction of the flow space moved (~3/4 in expectation).
        let moved = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        assert!(moved > 150, "rekey moved only {moved}/300 keys");
        // Cached state is untouched by the rotation itself.
        assert_eq!(sharded.entry_count(), 0);
        sharded.process_key(&keys[0], 64, 0.0);
        let entries = sharded.entry_count();
        sharded.rekey(7);
        assert_eq!(sharded.entry_count(), entries);
    }

    #[test]
    fn rekey_does_not_move_pinned_steering() {
        let schema = FieldSchema::ovs_ipv4();
        let mut sharded = ShardedDatapath::new(fig6_table(&schema), 4, Steering::Pinned(3));
        sharded.rekey(12345);
        for key in key_spread(&schema, 50) {
            assert_eq!(sharded.shard_of_key(&key), 3);
        }
    }

    #[test]
    fn schema_mismatch_accounts_on_shard_zero() {
        // A v6 frame hitting a v4-schema datapath can't produce a flow key in the
        // table's schema, so steering is impossible: it must land — deterministically —
        // on shard 0, the "default RX queue", as Unclassified/Allow. This pins the
        // behaviour documented on `ShardedDatapath::process_packet`.
        let schema = FieldSchema::ovs_ipv4();
        let mut sharded = ShardedDatapath::new(fig6_table(&schema), 4, Steering::Rss);
        let v6 = PacketBuilder::tcp_v6(
            [0x2001, 0xdb8, 0, 0, 0, 0, 0, 1],
            [0x2001, 0xdb8, 0, 0, 0, 0, 0, 2],
            5555,
            80,
        )
        .build();
        let out = sharded.process_packet(&v6, 0.0);
        assert_eq!(out.path, PathTaken::Unclassified);
        assert_eq!(out.action, Action::Allow);
        assert_eq!(out.masks_scanned, 0);
        assert_eq!(sharded.shard_stats(0).packets(), 1);
        for i in 1..4 {
            assert_eq!(
                sharded.shard_stats(i).packets(),
                0,
                "mismatched frames must never spread beyond shard 0"
            );
        }
        // And it installs no cache state anywhere — not even on shard 0.
        assert_eq!(sharded.entry_count(), 0);
        assert_eq!(sharded.mask_count(), 0);
    }

    /// Build the standard 4-shard parity fixture: a fresh datapath plus a timed batch.
    fn parity_fixture() -> (ShardedDatapath<TupleSpace>, Vec<(Key, usize, f64)>) {
        let schema = FieldSchema::ovs_ipv4();
        let sharded = ShardedDatapath::new(fig6_table(&schema), 4, Steering::Rss);
        let batch: Vec<(Key, usize, f64)> = key_spread(&schema, 240)
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, 64usize, i as f64 * 1e-3))
            .collect();
        (sharded, batch)
    }

    #[test]
    fn prepartitioned_batch_matches_the_inline_partition_bitwise() {
        let (mut inline, batch) = parity_fixture();
        let (mut piped, _) = parity_fixture();

        let expect = inline.process_timed_batch(&batch);

        let mut prep = Prepartition::default();
        prep.compute(&piped.steering_view(), &batch);
        let got = piped.process_timed_batch_prepartitioned(&batch, &mut prep);

        assert_eq!(got, expect);
        assert_eq!(piped.stats(), inline.stats());
        assert_eq!(
            piped.stats().busy_seconds.to_bits(),
            inline.stats().busy_seconds.to_bits()
        );
    }

    #[test]
    fn stale_prepartition_is_transparently_recomputed() {
        // Pre-partition under the default hash key, then rekey before dispatch — the
        // exact race a mitigation-driven rekey creates in the pipelined runner. The
        // stale partition must be recomputed, never consumed.
        let (mut inline, batch) = parity_fixture();
        let (mut piped, _) = parity_fixture();

        let mut prep = Prepartition::default();
        prep.compute(&piped.steering_view(), &batch);
        inline.rekey(0xfeed_f00d_dead_beef);
        piped.rekey(0xfeed_f00d_dead_beef);

        let expect = inline.process_timed_batch(&batch);
        let got = piped.process_timed_batch_prepartitioned(&batch, &mut prep);
        assert_eq!(got, expect);
        assert_eq!(piped.stats(), inline.stats());

        // A cleared partition is likewise recomputed rather than trusted.
        let (mut inline2, _) = parity_fixture();
        let (mut piped2, _) = parity_fixture();
        let mut cleared = Prepartition::default();
        cleared.compute(&piped2.steering_view(), &batch);
        cleared.clear();
        assert_eq!(
            piped2.process_timed_batch_prepartitioned(&batch, &mut cleared),
            inline2.process_timed_batch(&batch)
        );
    }

    #[test]
    fn pipelined_batch_runs_aux_and_matches_bitwise() {
        for executor in [
            Box::new(SequentialExecutor) as Box<dyn ShardExecutor>,
            Box::new(crate::exec::PersistentPoolExecutor::new(2)),
        ] {
            let name = executor.name();
            let (mut inline, batch) = parity_fixture();
            let (mut piped, _) = parity_fixture();
            piped.set_executor(executor);

            let expect = inline.process_timed_batch(&batch);
            let mut prep = Prepartition::default();
            prep.compute(&piped.steering_view(), &batch);
            let (got, aux) = piped.process_timed_batch_with(&batch, &mut prep, || 6 * 7);
            assert_eq!(aux, 42, "[{name}] aux job must run exactly once");
            assert_eq!(got, expect, "[{name}]");
            assert_eq!(piped.stats(), inline.stats(), "[{name}]");
        }
    }

    #[test]
    fn pipelined_single_shard_still_runs_aux() {
        let schema = FieldSchema::ovs_ipv4();
        let table = fig6_table(&schema);
        let batch: Vec<(Key, usize, f64)> = key_spread(&schema, 50)
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, 64usize, i as f64 * 1e-3))
            .collect();
        let mut mono = Datapath::new(table.clone());
        let expect = mono.process_timed_batch(&batch);

        let mut sharded = ShardedDatapath::new(table, 1, Steering::Rss);
        let mut prep = Prepartition::default();
        let (got, aux) = sharded.process_timed_batch_with(&batch, &mut prep, || "drained");
        assert_eq!(aux, "drained");
        assert_eq!(got.aggregate(), expect);
    }

    #[test]
    fn partition_scratch_is_a_stable_total_partition() {
        let mut scratch = PartitionScratch::default();
        let shard_of = |e: usize| e % 3;
        scratch.partition(3, 10, shard_of);
        // Every index appears exactly once, grouped by shard, stable within a shard.
        assert_eq!(scratch.slice(0), &[0, 3, 6, 9]);
        assert_eq!(scratch.slice(1), &[1, 4, 7]);
        assert_eq!(scratch.slice(2), &[2, 5, 8]);
        // Reuse with different geometry: buffers adapt, results stay exact.
        scratch.partition(2, 4, |e| if e < 2 { 1 } else { 0 });
        assert_eq!(scratch.slice(0), &[2, 3]);
        assert_eq!(scratch.slice(1), &[0, 1]);
        // Empty batch: all runs empty, no panic.
        scratch.partition(4, 0, shard_of);
        for s in 0..4 {
            assert!(scratch.slice(s).is_empty());
        }
    }

    #[test]
    fn wire_batch_matches_per_frame_wire_processing() {
        let schema = FieldSchema::ovs_ipv4();
        let table = fig6_table(&schema);
        // 120 distinct frames spread over the shards, plus a truncated frame and a
        // family mismatch in the middle.
        let mut frames: Vec<Vec<u8>> = key_spread(&schema, 120)
            .iter()
            .map(|k| {
                let tp_dst = schema.field_index("tp_dst").unwrap();
                let ip_src = schema.field_index("ip_src").unwrap();
                let pkt = PacketBuilder::from_numeric_v4(
                    k.get(ip_src) as u32,
                    0x0a00_0063,
                    tse_packet::l4::IpProto::Tcp,
                    999,
                    k.get(tp_dst) as u16,
                )
                .build();
                tse_packet::wire::encode(&pkt)
            })
            .collect();
        frames.insert(40, frames[0][..9].to_vec());
        let v6 = PacketBuilder::tcp_v6([1, 0, 0, 0, 0, 0, 0, 2], [3, 0, 0, 0, 0, 0, 0, 4], 1, 80)
            .build();
        frames.insert(80, tse_packet::wire::encode(&v6));
        let views: Vec<&[u8]> = frames.iter().map(Vec::as_slice).collect();

        let mut looped = ShardedDatapath::new(table.clone(), 4, Steering::Rss);
        for frame in &views {
            looped.process_wire(frame, 0.5);
        }
        let mut batched = ShardedDatapath::new(table, 4, Steering::Rss);
        let mut scratch = ExtractScratch::new();
        let report = batched.process_wire_batch(&views, &mut scratch, 0.5);

        let agg = report.aggregate();
        assert_eq!(agg.processed, frames.len());
        assert_eq!(batched.stats().decoded, 121);
        assert_eq!(batched.stats().truncated, 1);
        assert_eq!(batched.stats().packets(), looped.stats().packets());
        assert_eq!(batched.stats().allowed, looped.stats().allowed);
        assert_eq!(batched.stats().denied, looped.stats().denied);
        assert_eq!(batched.stats().decoded, looped.stats().decoded);
        assert_eq!(batched.stats().truncated, looped.stats().truncated);
        assert_eq!(batched.mask_count(), looped.mask_count());
        // Ingestion bookkeeping (decode counters, fault charges) lands on shard 0.
        assert_eq!(batched.shard_stats(0).decoded, 121);
        for i in 1..4 {
            assert_eq!(batched.shard_stats(i).decoded, 0);
            assert_eq!(batched.shard_stats(i).wire_errors(), 0);
        }
        assert_eq!(batched.shard_stats(0).truncated, 1);
        assert_eq!(batched.shard_stats(0).unclassified, 2);
    }

    #[test]
    fn wire_faults_charge_shard_zero_only() {
        let schema = FieldSchema::ovs_ipv4();
        let mut sharded = ShardedDatapath::new(fig6_table(&schema), 4, Steering::Rss);
        let out = sharded.note_wire_fault(
            WireFault::Decode(tse_packet::wire::DecodeError::BadHeader),
            60,
            0.0,
        );
        assert_eq!(out.action, Action::Deny);
        assert_eq!(out.path, PathTaken::Unclassified);
        assert_eq!(sharded.shard_stats(0).bad_header, 1);
        assert_eq!(sharded.shard_stats(0).denied, 1);
        for i in 1..4 {
            assert_eq!(sharded.shard_stats(i).packets(), 0);
        }
        // A family mismatch is permitted, mirroring the schema-mismatch path.
        let out = sharded.note_wire_fault(WireFault::FamilyMismatch, 60, 0.1);
        assert_eq!(out.action, Action::Allow);
        assert_eq!(sharded.stats().unclassified, 2);
        assert_eq!(sharded.entry_count(), 0);
    }

    #[test]
    fn expiry_runs_on_idle_shards_too() {
        let schema = FieldSchema::ovs_ipv4();
        let mut sharded = ShardedDatapath::new(fig6_table(&schema), 2, Steering::Rss);
        for (i, key) in key_spread(&schema, 50).iter().enumerate() {
            sharded.process_key(key, 64, 0.01 + i as f64 * 1e-4);
        }
        assert!(sharded.mask_count() > 0);
        sharded.maybe_expire(30.0);
        assert_eq!(
            sharded.mask_count(),
            0,
            "all shards swept on the same clock"
        );
    }
}
