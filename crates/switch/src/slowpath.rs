//! The slow path: full flow-table processing plus megaflow generation and installation
//! (`ovs-vswitchd`'s upcall handling in the real system).

use tse_classifier::backend::FastPathBackend;
use tse_classifier::flowtable::FlowTable;
use tse_classifier::rule::Action;
use tse_classifier::strategy::{generate_megaflow, GenerationError, MegaflowStrategy};
use tse_packet::fields::Key;

/// Outcome of one slow-path invocation (one upcall).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpcallOutcome {
    /// The verdict for the packet that triggered the upcall.
    pub action: Action,
    /// Index of the flow-table rule that matched.
    pub rule_index: usize,
    /// Whether a new megaflow entry was installed into the fast path.
    pub installed: bool,
    /// Whether installation created a brand-new mask (grew the tuple space).
    pub new_mask: bool,
}

/// The slow path: owns nothing, operates on the flow table and megaflow cache the
/// datapath hands it. Separated out so that MFCGuard and the CPU model can account
/// upcall work precisely.
#[derive(Debug, Clone)]
pub struct SlowPath {
    strategy: MegaflowStrategy,
    /// Rules whose megaflows must *not* be (re-)installed into the fast path. This
    /// models the behaviour the paper observed while building MFCGuard: "once an MFC
    /// entry is deleted it will never be sparked again" — entries MFCGuard wipes stay
    /// out of the fast path and their packets keep hitting the slow path (§8).
    suppressed_rules: Vec<usize>,
    /// Count of upcalls that could not install an entry because the covering rule is
    /// suppressed (these packets will keep coming back).
    suppressed_upcalls: u64,
    /// Remaining megaflow installs allowed before the quota window is re-armed
    /// (`None` = unlimited, the default). See [`SlowPath::set_install_quota`].
    install_quota: Option<u64>,
    /// Cumulative count of upcalls answered without an install because the quota was
    /// exhausted.
    quota_denied_upcalls: u64,
}

impl SlowPath {
    /// Create a slow path with the given megaflow-generation strategy.
    pub fn new(strategy: MegaflowStrategy) -> Self {
        SlowPath {
            strategy,
            suppressed_rules: Vec::new(),
            suppressed_upcalls: 0,
            install_quota: None,
            quota_denied_upcalls: 0,
        }
    }

    /// The generation strategy in use.
    pub fn strategy(&self) -> &MegaflowStrategy {
        &self.strategy
    }

    /// Mark a flow-table rule as suppressed: packets matching it are still classified
    /// correctly, but no megaflow is installed for them (they stay on the slow path).
    pub fn suppress_rule(&mut self, rule_index: usize) {
        if !self.suppressed_rules.contains(&rule_index) {
            self.suppressed_rules.push(rule_index);
        }
    }

    /// Remove a suppression (MFCGuard re-injection, §8).
    pub fn unsuppress_rule(&mut self, rule_index: usize) {
        self.suppressed_rules.retain(|&r| r != rule_index);
    }

    /// Currently suppressed rule indices.
    pub fn suppressed_rules(&self) -> &[usize] {
        &self.suppressed_rules
    }

    /// Number of upcalls answered without a fast-path install because of suppression.
    pub fn suppressed_upcalls(&self) -> u64 {
        self.suppressed_upcalls
    }

    /// (Re-)arm the megaflow-install quota: at most `quota` installs are performed
    /// until the next call; further upcalls are still classified correctly but no
    /// entry is installed for them (they stay on the slow path) and
    /// [`SlowPath::quota_denied_upcalls`] advances. `None` removes the limit.
    ///
    /// This models OVS's upcall governance (bounded `ovs-vswitchd` handler/flow-put
    /// budget per revalidation interval): a caller that re-arms the quota once per
    /// measurement interval gets a per-interval install ceiling, which is exactly how
    /// the `UpcallLimiter` mitigation drives it.
    pub fn set_install_quota(&mut self, quota: Option<u64>) {
        self.install_quota = quota;
    }

    /// Installs still allowed in the current quota window (`None` = unlimited).
    pub fn install_quota_remaining(&self) -> Option<u64> {
        self.install_quota
    }

    /// Cumulative number of upcalls answered without an install because the quota was
    /// exhausted (monotone; callers interested in per-interval counts diff successive
    /// readings).
    pub fn quota_denied_upcalls(&self) -> u64 {
        self.quota_denied_upcalls
    }

    /// Handle one upcall: classify `header` against `table`, generate a megaflow under
    /// the Cover/Independence invariants and install it into `cache` (unless the matched
    /// rule is suppressed or the header is already covered). Works against any
    /// [`FastPathBackend`]; table-built backends absorb the install as a no-op.
    pub fn handle_upcall<B: FastPathBackend + ?Sized>(
        &mut self,
        table: &FlowTable,
        cache: &mut B,
        header: &Key,
        now: f64,
    ) -> Option<UpcallOutcome> {
        let matched = table.lookup(header)?;
        if self.suppressed_rules.contains(&matched.rule_index) {
            self.suppressed_upcalls += 1;
            return Some(UpcallOutcome {
                action: matched.action,
                rule_index: matched.rule_index,
                installed: false,
                new_mask: false,
            });
        }
        match generate_megaflow(table, cache, header, &self.strategy) {
            Ok(generated) => {
                if self.install_quota == Some(0) {
                    // Quota window exhausted: classify, but install nothing — the
                    // packet (and every sibling behind it) keeps paying the slow-path
                    // price until the quota is re-armed. Only real would-be installs
                    // are charged; already-covered upcalls fall through below as
                    // usual.
                    self.quota_denied_upcalls += 1;
                    return Some(UpcallOutcome {
                        action: generated.action,
                        rule_index: generated.rule_index,
                        installed: false,
                        new_mask: false,
                    });
                }
                if let Some(quota) = &mut self.install_quota {
                    *quota -= 1;
                }
                let masks_before = cache.mask_count();
                cache
                    .insert_megaflow(generated.key, generated.mask, generated.action, now)
                    .expect("generated megaflow must be insertable");
                Some(UpcallOutcome {
                    action: generated.action,
                    rule_index: generated.rule_index,
                    installed: true,
                    new_mask: cache.mask_count() > masks_before,
                })
            }
            Err(GenerationError::AlreadyCovered) => Some(UpcallOutcome {
                action: matched.action,
                rule_index: matched.rule_index,
                installed: false,
                new_mask: false,
            }),
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tse_classifier::flowtable::FlowTable;
    use tse_classifier::tss::TupleSpace;
    use tse_packet::fields::{FieldSchema, Key};

    fn hyp(v: u128) -> Key {
        Key::from_values(&FieldSchema::hyp(), &[v])
    }

    #[test]
    fn upcall_installs_megaflow() {
        let table = FlowTable::fig1_hyp();
        let mut cache = TupleSpace::new(table.schema().clone());
        let mut sp = SlowPath::new(MegaflowStrategy::wildcarding(table.schema()));
        let out = sp
            .handle_upcall(&table, &mut cache, &hyp(0b001), 0.0)
            .unwrap();
        assert_eq!(out.action, Action::Allow);
        assert!(out.installed);
        assert!(out.new_mask);
        assert_eq!(cache.entry_count(), 1);
    }

    #[test]
    fn second_upcall_for_covered_header_installs_nothing() {
        let table = FlowTable::fig1_hyp();
        let mut cache = TupleSpace::new(table.schema().clone());
        let mut sp = SlowPath::new(MegaflowStrategy::wildcarding(table.schema()));
        sp.handle_upcall(&table, &mut cache, &hyp(0b111), 0.0);
        // 101 is covered by the (1**) deny megaflow.
        let out = sp
            .handle_upcall(&table, &mut cache, &hyp(0b101), 0.0)
            .unwrap();
        assert_eq!(out.action, Action::Deny);
        assert!(!out.installed);
        assert_eq!(cache.entry_count(), 1);
    }

    #[test]
    fn suppressed_rule_never_reinstalled() {
        let table = FlowTable::fig1_hyp();
        let mut cache = TupleSpace::new(table.schema().clone());
        let mut sp = SlowPath::new(MegaflowStrategy::wildcarding(table.schema()));
        sp.suppress_rule(1); // the DefaultDeny rule
        for h in [0b000u128, 0b100, 0b111] {
            let out = sp.handle_upcall(&table, &mut cache, &hyp(h), 0.0).unwrap();
            assert_eq!(out.action, Action::Deny);
            assert!(!out.installed);
        }
        assert_eq!(cache.entry_count(), 0);
        assert_eq!(sp.suppressed_upcalls(), 3);
        // Allowed traffic is unaffected.
        let out = sp
            .handle_upcall(&table, &mut cache, &hyp(0b001), 0.0)
            .unwrap();
        assert!(out.installed);
        // Unsuppress and the deny megaflows come back.
        sp.unsuppress_rule(1);
        let out = sp
            .handle_upcall(&table, &mut cache, &hyp(0b100), 0.0)
            .unwrap();
        assert!(out.installed);
    }

    #[test]
    fn install_quota_caps_installs_until_rearmed() {
        let schema = FieldSchema::ovs_ipv4();
        let tp_dst = schema.field_index("tp_dst").unwrap();
        let tp_src = schema.field_index("tp_src").unwrap();
        let table = FlowTable::whitelist_default_deny(&schema, &[(tp_dst, 80)]);
        let mut cache = TupleSpace::new(schema.clone());
        // Exact-match generation: every distinct key is its own install, so the quota
        // arithmetic is visible key by key.
        let mut sp = SlowPath::new(MegaflowStrategy::exact_match(&schema));
        sp.set_install_quota(Some(2));
        // Distinct deny keys: each would install its own megaflow.
        for i in 0..5u128 {
            let mut k = schema.zero_value();
            k.set(tp_src, 1000 + i);
            k.set(tp_dst, 9000 + i);
            let out = sp.handle_upcall(&table, &mut cache, &k, 0.0).unwrap();
            assert_eq!(out.action, Action::Deny, "verdict unaffected by the quota");
            assert_eq!(out.installed, i < 2, "only the first two installs land");
        }
        assert_eq!(cache.entry_count(), 2);
        assert_eq!(sp.install_quota_remaining(), Some(0));
        assert_eq!(sp.quota_denied_upcalls(), 3);
        // Re-arm: installs resume; the cumulative denial counter keeps its history.
        sp.set_install_quota(Some(1));
        let mut k = schema.zero_value();
        k.set(tp_src, 7);
        k.set(tp_dst, 7777);
        assert!(
            sp.handle_upcall(&table, &mut cache, &k, 1.0)
                .unwrap()
                .installed
        );
        assert_eq!(sp.quota_denied_upcalls(), 3);
        // Removing the limit entirely restores unbounded installs.
        sp.set_install_quota(None);
        let mut k = schema.zero_value();
        k.set(tp_src, 8);
        k.set(tp_dst, 8888);
        assert!(
            sp.handle_upcall(&table, &mut cache, &k, 1.0)
                .unwrap()
                .installed
        );
    }

    #[test]
    fn already_covered_upcalls_do_not_consume_quota() {
        let table = FlowTable::fig1_hyp();
        let mut cache = TupleSpace::new(table.schema().clone());
        let mut sp = SlowPath::new(MegaflowStrategy::wildcarding(table.schema()));
        sp.set_install_quota(Some(1));
        assert!(
            sp.handle_upcall(&table, &mut cache, &hyp(0b111), 0.0)
                .unwrap()
                .installed
        );
        // 101 is covered by the (1**) deny megaflow: answered, not installed, and the
        // exhausted quota is not charged for it either.
        let out = sp
            .handle_upcall(&table, &mut cache, &hyp(0b101), 0.0)
            .unwrap();
        assert!(!out.installed);
        assert_eq!(sp.quota_denied_upcalls(), 0);
    }

    #[test]
    fn empty_table_returns_none() {
        let schema = FieldSchema::hyp();
        let table = FlowTable::new(schema.clone());
        let mut cache = TupleSpace::new(schema.clone());
        let mut sp = SlowPath::new(MegaflowStrategy::wildcarding(&schema));
        assert!(sp.handle_upcall(&table, &mut cache, &hyp(0), 0.0).is_none());
    }

    #[test]
    fn suppress_is_idempotent() {
        let schema = FieldSchema::hyp();
        let mut sp = SlowPath::new(MegaflowStrategy::wildcarding(&schema));
        sp.suppress_rule(3);
        sp.suppress_rule(3);
        assert_eq!(sp.suppressed_rules(), &[3]);
        sp.unsuppress_rule(3);
        assert!(sp.suppressed_rules().is_empty());
    }
}
