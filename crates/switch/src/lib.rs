//! # tse-switch
//!
//! An OVS-like software-switch datapath built on the `tse-classifier` substrate:
//!
//! * [`datapath`] — the fast-path/slow-path pipeline (microflow cache → TSS megaflow
//!   cache → slow path) with idle-timeout eviction, exactly the architecture of §2.2 and
//!   Fig. 10;
//! * [`slowpath`] — upcall handling: full flow-table classification plus megaflow
//!   generation/installation, including the entry-suppression behaviour MFCGuard relies
//!   on;
//! * [`cost`] — the calibrated per-packet cost model that converts the classifier's
//!   algorithmic work (masks scanned, upcalls) into simulated seconds and therefore
//!   throughput (DESIGN.md §4 explains the substitution for the paper's hardware
//!   testbed);
//! * [`pmd`] — the sharded multi-PMD form of the datapath: N per-shard caches behind an
//!   RSS-style steering policy, modelling OVS-DPDK's one-megaflow-cache-per-PMD-thread
//!   architecture and the shard-local blast radius of the attack;
//! * [`exec`] — pluggable shard-execution models for that fan-out: the default
//!   [`SequentialExecutor`], the scoped-thread [`ThreadPoolExecutor`] and the
//!   long-lived [`PersistentPoolExecutor`], bit-for-bit interchangeable;
//! * [`stats`] — per-path counters and busy-time accounting;
//! * [`tenant`] — multi-tenant ACL composition: per-tenant ACLs merged into the single
//!   flow table of the shared hypervisor switch, the abstraction Co-located TSE exploits.

// `deny` rather than `forbid`: the persistent worker pool in [`exec`] needs one
// narrowly scoped, documented `unsafe` block (running a borrowed job on long-lived
// threads has no safe-Rust expression); everything else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod datapath;
pub mod exec;
pub mod pmd;
pub mod slowpath;
pub mod stats;
pub mod tenant;

pub use cost::CostModel;
pub use datapath::{
    BatchReport, Datapath, DatapathBuilder, DatapathConfig, ProcessOutcome, DEFAULT_IDLE_TIMEOUT,
};
pub use exec::{
    ChaosExecutor, PersistentPoolExecutor, SequentialExecutor, ShardExecutor, ShardExecutorExt,
    ThreadPoolExecutor,
};
pub use pmd::{ShardedBatchReport, ShardedDatapath, Steering};
pub use slowpath::{SlowPath, UpcallOutcome};
pub use stats::{DatapathStats, PathTaken};
pub use tenant::{
    destined_to, merge_tenant_acls, victim_and_attacker_table, AclField, AllowClause, TenantAcl,
};
