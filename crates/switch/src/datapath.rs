//! The OVS-like datapath: microflow cache → megaflow (TSS) cache → slow path, with
//! idle-timeout eviction and per-packet cost accounting (Fig. 10).

use tse_classifier::flowtable::FlowTable;
use tse_classifier::microflow::MicroflowCache;
use tse_classifier::rule::Action;
use tse_classifier::strategy::MegaflowStrategy;
use tse_classifier::tss::{MaskOrdering, TupleSpace};
use tse_packet::fields::{FieldSchema, Key};
use tse_packet::flowkey::{FlowKey, MicroflowKey};
use tse_packet::Packet;

use crate::cost::CostModel;
use crate::slowpath::SlowPath;
use crate::stats::{DatapathStats, PathTaken};

/// OVS's default megaflow idle timeout, seconds (§5.4: recovery lags the end of the
/// attack by 10 s because attacker entries stay alive this long).
pub const DEFAULT_IDLE_TIMEOUT: f64 = 10.0;

/// Datapath configuration.
#[derive(Debug, Clone)]
pub struct DatapathConfig {
    /// Megaflow idle timeout in seconds.
    pub idle_timeout: f64,
    /// Capacity of the exact-match microflow cache. The kernel datapath the paper
    /// measures has no userspace EMC, so the experiment configurations default to 0;
    /// set a non-zero capacity to model the DPDK datapath's EMC (ablation).
    pub microflow_capacity: usize,
    /// Per-packet cost model.
    pub cost: CostModel,
    /// Probe order of the megaflow masks. `NewestFirst` models the measured behaviour
    /// that established victim flows do not keep a privileged front position once the
    /// attack starts creating masks (DESIGN.md §4).
    pub mask_ordering: MaskOrdering,
    /// Interval between idle-expiry sweeps, seconds (OVS revalidator cadence).
    pub revalidation_interval: f64,
}

impl Default for DatapathConfig {
    fn default() -> Self {
        DatapathConfig {
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            microflow_capacity: 0,
            cost: CostModel::ovs_kernel_default(),
            mask_ordering: MaskOrdering::NewestFirst,
            revalidation_interval: 1.0,
        }
    }
}

/// Result of processing one packet through the datapath.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessOutcome {
    /// The verdict applied to the packet.
    pub action: Action,
    /// Which cache level produced the verdict.
    pub path: PathTaken,
    /// Simulated processing time in seconds.
    pub cost: f64,
    /// Megaflow masks scanned for this packet (0 for microflow hits).
    pub masks_scanned: usize,
}

/// A single software-switch datapath instance (one hypervisor switch shared by all
/// co-located tenants).
#[derive(Debug, Clone)]
pub struct Datapath {
    schema: FieldSchema,
    table: FlowTable,
    slow_path: SlowPath,
    megaflow: TupleSpace,
    microflow: MicroflowCache,
    config: DatapathConfig,
    stats: DatapathStats,
    last_sweep: f64,
}

impl Datapath {
    /// Create a datapath with the OVS-default wildcarding strategy and default config.
    pub fn new(table: FlowTable) -> Self {
        let strategy = MegaflowStrategy::wildcarding(table.schema());
        Self::with_strategy(table, strategy, DatapathConfig::default())
    }

    /// Create a datapath with explicit strategy and configuration.
    pub fn with_strategy(
        table: FlowTable,
        strategy: MegaflowStrategy,
        config: DatapathConfig,
    ) -> Self {
        let schema = table.schema().clone();
        Datapath {
            megaflow: TupleSpace::with_ordering(schema.clone(), config.mask_ordering),
            microflow: MicroflowCache::with_capacity(config.microflow_capacity),
            slow_path: SlowPath::new(strategy),
            stats: DatapathStats::default(),
            last_sweep: 0.0,
            schema,
            table,
            config,
        }
    }

    /// The installed flow table (the merged ACLs of all tenants).
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// Replace the flow table (e.g. when a tenant injects a new ACL mid-experiment, as in
    /// the Kubernetes timeline of Fig. 8c). The megaflow cache is revalidated: all
    /// entries are flushed, exactly as OVS does on a flow-table change.
    pub fn install_table(&mut self, table: FlowTable) {
        assert_eq!(
            table.schema(),
            &self.schema,
            "replacement flow table must use the same schema"
        );
        self.table = table;
        self.megaflow.clear();
        self.microflow.clear();
    }

    /// The megaflow cache (read-only).
    pub fn megaflow(&self) -> &TupleSpace {
        &self.megaflow
    }

    /// Mutable access to the megaflow cache — this is the interface MFCGuard uses to
    /// wipe entries (the real tool drives `ovs-dpctl del-flow`).
    pub fn megaflow_mut(&mut self) -> &mut TupleSpace {
        &mut self.megaflow
    }

    /// The slow path (for suppression control and upcall accounting).
    pub fn slow_path(&self) -> &SlowPath {
        &self.slow_path
    }

    /// Mutable access to the slow path.
    pub fn slow_path_mut(&mut self) -> &mut SlowPath {
        &mut self.slow_path
    }

    /// Current number of megaflow masks.
    pub fn mask_count(&self) -> usize {
        self.megaflow.mask_count()
    }

    /// Current number of megaflow entries.
    pub fn entry_count(&self) -> usize {
        self.megaflow.entry_count()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DatapathStats {
        &self.stats
    }

    /// Reset the statistics (between measurement intervals).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// The datapath configuration.
    pub fn config(&self) -> &DatapathConfig {
        &self.config
    }

    /// Run the idle-expiry sweep if the revalidation interval has elapsed.
    pub fn maybe_expire(&mut self, now: f64) {
        if now - self.last_sweep >= self.config.revalidation_interval {
            self.megaflow.expire_idle(now, self.config.idle_timeout);
            self.last_sweep = now;
        }
    }

    /// Process a concrete packet at simulation time `now`.
    ///
    /// Non-IP packets never reach the tenant ACL (§5.2 footnote); they are counted as
    /// [`PathTaken::Unclassified`] and permitted with only the fixed cost.
    pub fn process_packet(&mut self, pkt: &Packet, now: f64) -> ProcessOutcome {
        let flow = FlowKey::from_packet(pkt);
        let schema_is_v6 = self.schema.field_index("ip6_src").is_some();
        let schema_is_v4 = self.schema.field_index("ip_src").is_some();
        let family_matches =
            (flow.is_v6 && schema_is_v6) || (!flow.is_v6 && schema_is_v4);
        if !family_matches {
            // Packet family does not match the installed table's schema: treat like
            // non-IP traffic from the ACL's point of view.
            let cost = self.config.cost.microflow();
            self.stats.record(PathTaken::Unclassified, true, 0, cost, pkt.wire_len());
            return ProcessOutcome {
                action: Action::Allow,
                path: PathTaken::Unclassified,
                cost,
                masks_scanned: 0,
            };
        }
        let header = flow.to_key(&self.schema);
        let micro = MicroflowKey::from_packet(pkt);
        self.process_classified(&header, Some(micro), pkt.wire_len(), now)
    }

    /// Process a pre-extracted header key (used by the HYP-protocol experiments and unit
    /// tests that bypass packet construction). `bytes` is the wire size used for
    /// throughput accounting.
    pub fn process_key(&mut self, header: &Key, bytes: usize, now: f64) -> ProcessOutcome {
        self.process_classified(header, None, bytes, now)
    }

    fn process_classified(
        &mut self,
        header: &Key,
        micro: Option<MicroflowKey>,
        bytes: usize,
        now: f64,
    ) -> ProcessOutcome {
        self.maybe_expire(now);

        // Level 1: microflow cache (exact match on everything, including noise fields).
        if let Some(mk) = micro {
            if let Some(action) = self.microflow.lookup(&mk) {
                let cost = self.config.cost.microflow();
                self.stats.record(PathTaken::Microflow, action.permits(), 0, cost, bytes);
                return ProcessOutcome { action, path: PathTaken::Microflow, cost, masks_scanned: 0 };
            }
        }

        // Level 2: megaflow cache (TSS, Alg. 1).
        let outcome = self.megaflow.lookup(header, now);
        if let Some(action) = outcome.action {
            let cost = self.config.cost.fast_path(outcome.masks_scanned);
            self.stats.record(PathTaken::Megaflow, action.permits(), outcome.masks_scanned, cost, bytes);
            if let Some(mk) = micro {
                self.microflow.insert(mk, action);
            }
            return ProcessOutcome {
                action,
                path: PathTaken::Megaflow,
                cost,
                masks_scanned: outcome.masks_scanned,
            };
        }

        // Level 3: slow path (upcall).
        let masks_at_miss = outcome.masks_scanned;
        let up = self
            .slow_path
            .handle_upcall(&self.table, &mut self.megaflow, header, now)
            .unwrap_or(crate::slowpath::UpcallOutcome {
                action: Action::Deny,
                rule_index: usize::MAX,
                installed: false,
                new_mask: false,
            });
        let cost = self.config.cost.slow_path(masks_at_miss);
        self.stats.record(PathTaken::SlowPath, up.action.permits(), masks_at_miss, cost, bytes);
        if let Some(mk) = micro {
            self.microflow.insert(mk, up.action);
        }
        ProcessOutcome {
            action: up.action,
            path: PathTaken::SlowPath,
            cost,
            masks_scanned: masks_at_miss,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tse_classifier::flowtable::FlowTable;
    use tse_packet::builder::PacketBuilder;
    use tse_packet::fields::FieldSchema;

    /// The Fig. 6 ACL over the OVS IPv4 schema: dst port 80, src 10.0.0.1, src port
    /// 12345 allowed; everything else denied.
    fn fig6_table() -> FlowTable {
        let schema = FieldSchema::ovs_ipv4();
        let tp_dst = schema.field_index("tp_dst").unwrap();
        let ip_src = schema.field_index("ip_src").unwrap();
        let tp_src = schema.field_index("tp_src").unwrap();
        FlowTable::whitelist_default_deny(
            &schema,
            &[(tp_dst, 80), (ip_src, 0x0a000001), (tp_src, 12345)],
        )
    }

    #[test]
    fn first_packet_takes_slow_path_then_fast_path() {
        let mut dp = Datapath::new(fig6_table());
        let pkt = PacketBuilder::tcp_v4([10, 0, 0, 9], [10, 0, 0, 99], 5555, 80).build();
        let first = dp.process_packet(&pkt, 0.0);
        assert_eq!(first.path, PathTaken::SlowPath);
        assert_eq!(first.action, Action::Allow);
        let second = dp.process_packet(&pkt, 0.001);
        assert_eq!(second.path, PathTaken::Megaflow);
        assert_eq!(second.action, Action::Allow);
        assert!(second.cost < first.cost);
        assert_eq!(dp.stats().upcalls, 1);
        assert_eq!(dp.stats().megaflow_hits, 1);
    }

    #[test]
    fn denied_traffic_is_dropped_and_cached() {
        let mut dp = Datapath::new(fig6_table());
        let pkt = PacketBuilder::udp_v4([10, 3, 3, 3], [10, 0, 0, 99], 4444, 9999).build();
        assert_eq!(dp.process_packet(&pkt, 0.0).action, Action::Deny);
        assert_eq!(dp.process_packet(&pkt, 0.1).action, Action::Deny);
        assert_eq!(dp.stats().denied, 2);
        assert!(dp.mask_count() >= 1);
    }

    #[test]
    fn megaflow_cost_grows_with_masks() {
        let mut dp = Datapath::new(fig6_table());
        let victim = PacketBuilder::tcp_v4([10, 0, 0, 9], [10, 0, 0, 99], 5555, 80).build();
        dp.process_packet(&victim, 0.0);
        let cheap = dp.process_packet(&victim, 0.001).cost;
        // Attacker sprays denied packets with pseudo-random headers, spawning masks
        // (a miniature General TSE).
        let mut x: u64 = 0x243f_6a88_85a3_08d3;
        for i in 0..500u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let src = (x >> 32) as u32;
            let sport = (x >> 16) as u16;
            let dport = x as u16;
            let atk = PacketBuilder::tcp_v4(src.to_be_bytes(), [10, 0, 0, 99], sport, dport).build();
            dp.process_packet(&atk, 0.01 + i as f64 * 1e-4);
        }
        assert!(dp.mask_count() > 40, "attack should have spawned masks: {}", dp.mask_count());
        // With NewestFirst ordering the victim now scans (almost) all masks.
        let expensive = dp.process_packet(&victim, 0.5).cost;
        assert!(
            expensive > 3.0 * cheap,
            "victim cost should grow with masks: {cheap} -> {expensive}"
        );
    }

    #[test]
    fn idle_timeout_restores_the_cache() {
        let mut dp = Datapath::new(fig6_table());
        for i in 0..50u32 {
            let atk = PacketBuilder::tcp_v4([10, 0, i as u8, 7], [10, 0, 0, 99], 1000 + i as u16, 2000 + i as u16)
                .build();
            dp.process_packet(&atk, 0.01);
        }
        let with_attack = dp.mask_count();
        assert!(with_attack > 5);
        // 15 s later (attack stopped), the sweep at the next packet expires everything.
        let victim = PacketBuilder::tcp_v4([10, 0, 0, 9], [10, 0, 0, 99], 5555, 80).build();
        dp.process_packet(&victim, 15.0);
        assert!(dp.mask_count() < with_attack / 2, "idle entries must expire after the timeout");
    }

    #[test]
    fn microflow_cache_short_circuits_when_enabled() {
        let config = DatapathConfig { microflow_capacity: 64, ..DatapathConfig::default() };
        let schema = FieldSchema::ovs_ipv4();
        let strategy = MegaflowStrategy::wildcarding(&schema);
        let mut dp = Datapath::with_strategy(fig6_table(), strategy, config);
        let pkt = PacketBuilder::tcp_v4([10, 0, 0, 9], [10, 0, 0, 99], 5555, 80).build();
        dp.process_packet(&pkt, 0.0);
        let out = dp.process_packet(&pkt, 0.001);
        assert_eq!(out.path, PathTaken::Microflow);
        assert_eq!(out.masks_scanned, 0);
    }

    #[test]
    fn install_table_flushes_caches() {
        let mut dp = Datapath::new(fig6_table());
        let pkt = PacketBuilder::tcp_v4([10, 0, 0, 9], [10, 0, 0, 99], 5555, 80).build();
        dp.process_packet(&pkt, 0.0);
        assert!(dp.entry_count() > 0);
        dp.install_table(fig6_table());
        assert_eq!(dp.entry_count(), 0);
        assert_eq!(dp.mask_count(), 0);
    }

    #[test]
    fn ipv6_packet_against_ipv4_table_is_unclassified() {
        let mut dp = Datapath::new(fig6_table());
        let pkt = PacketBuilder::tcp_v6([1, 0, 0, 0, 0, 0, 0, 2], [3, 0, 0, 0, 0, 0, 0, 4], 1, 80).build();
        let out = dp.process_packet(&pkt, 0.0);
        assert_eq!(out.path, PathTaken::Unclassified);
        assert_eq!(dp.mask_count(), 0);
    }

    #[test]
    fn process_key_supports_hyp_experiments() {
        let table = FlowTable::fig1_hyp();
        let schema = table.schema().clone();
        let mut dp = Datapath::new(table);
        let allow = tse_packet::fields::Key::from_values(&schema, &[0b001]);
        let deny = tse_packet::fields::Key::from_values(&schema, &[0b111]);
        assert_eq!(dp.process_key(&allow, 100, 0.0).action, Action::Allow);
        assert_eq!(dp.process_key(&deny, 100, 0.0).action, Action::Deny);
        assert_eq!(dp.stats().upcalls, 2);
    }
}
