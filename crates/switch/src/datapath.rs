//! The OVS-like datapath: microflow cache → megaflow fast path → slow path, with
//! idle-timeout eviction and per-packet cost accounting (Fig. 10).
//!
//! The fast path is pluggable: [`Datapath`] is generic over any
//! [`FastPathBackend`] — the TSS megaflow cache ([`TupleSpace`], the default and the
//! structure the TSE attack explodes) or one of the §7 attack-immune baselines wrapped
//! in `BaselineBackend`. Construction goes through [`DatapathBuilder`]:
//!
//! ```
//! use tse_classifier::backend::TrieBackend;
//! use tse_classifier::flowtable::FlowTable;
//! use tse_switch::datapath::Datapath;
//!
//! let table = FlowTable::fig1_hyp();
//! // Default TSS fast path:
//! let tss_dp = Datapath::builder(table.clone()).build();
//! // Same pipeline over a hierarchical-trie fast path:
//! let trie_dp = Datapath::builder(table).backend_fresh::<TrieBackend>().build();
//! # assert_eq!(tss_dp.mask_count(), 0);
//! # assert_eq!(trie_dp.mask_count(), 0);
//! ```

use tse_classifier::backend::FastPathBackend;
use tse_classifier::flowtable::FlowTable;
use tse_classifier::microflow::MicroflowCache;
use tse_classifier::rule::Action;
use tse_classifier::strategy::MegaflowStrategy;
use tse_classifier::tss::{MaskOrdering, TupleSpace};
use tse_packet::fields::{FieldSchema, Key};
use tse_packet::flowkey::{FlowKey, MicroflowKey};
use tse_packet::wire::WireFault;
use tse_packet::Packet;

use crate::cost::CostModel;
use crate::exec::ShardExecutor;
use crate::slowpath::SlowPath;
use crate::stats::{DatapathStats, PathTaken};

/// OVS's default megaflow idle timeout, seconds (§5.4: recovery lags the end of the
/// attack by 10 s because attacker entries stay alive this long).
pub const DEFAULT_IDLE_TIMEOUT: f64 = 10.0;

/// Datapath configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DatapathConfig {
    /// Megaflow idle timeout in seconds.
    pub idle_timeout: f64,
    /// Capacity of the exact-match microflow cache. The kernel datapath the paper
    /// measures has no userspace EMC, so the experiment configurations default to 0;
    /// set a non-zero capacity to model the DPDK datapath's EMC (ablation).
    pub microflow_capacity: usize,
    /// Per-packet cost model.
    pub cost: CostModel,
    /// Probe order of the megaflow masks. `NewestFirst` models the measured behaviour
    /// that established victim flows do not keep a privileged front position once the
    /// attack starts creating masks (DESIGN.md §4). Backends without a mask list ignore
    /// this.
    pub mask_ordering: MaskOrdering,
    /// Interval between idle-expiry sweeps, seconds (OVS revalidator cadence).
    pub revalidation_interval: f64,
}

impl Default for DatapathConfig {
    fn default() -> Self {
        DatapathConfig {
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            microflow_capacity: 0,
            cost: CostModel::ovs_kernel_default(),
            mask_ordering: MaskOrdering::NewestFirst,
            revalidation_interval: 1.0,
        }
    }
}

/// Result of processing one packet through the datapath.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessOutcome {
    /// The verdict applied to the packet.
    pub action: Action,
    /// Which cache level produced the verdict.
    pub path: PathTaken,
    /// Simulated processing time in seconds.
    pub cost: f64,
    /// Fast-path work units for this packet (megaflow masks scanned for TSS, nodes
    /// visited for the baseline backends; 0 for microflow hits).
    pub masks_scanned: usize,
}

/// Aggregate result of [`Datapath::process_batch`].
///
/// Batch semantics:
///
/// * packets are processed **in order** at a single timestamp `now`; the idle-expiry
///   sweep runs at most once, before the first packet;
/// * a run of consecutive identical headers is answered by one real fast-path lookup —
///   the repeats reuse its verdict and are charged its fast-path cost. Every packet is
///   still counted in [`DatapathStats`] (and in this report), but the backend's
///   per-entry hit counters advance once per run, not once per packet;
/// * a slow-path miss is never deduplicated: the packet after an upcall performs a real
///   lookup so it hits the freshly installed entry exactly as in per-key processing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchReport {
    /// Packets processed (= the batch length).
    pub processed: usize,
    /// Packets permitted.
    pub allowed: u64,
    /// Packets dropped by policy.
    pub denied: u64,
    /// Packets answered by the fast path (including deduplicated repeats).
    pub fastpath_hits: u64,
    /// Packets that took a slow-path upcall.
    pub upcalls: u64,
    /// Total simulated processing time of the batch, seconds.
    pub total_cost: f64,
    /// Largest per-lookup work observed in the batch.
    pub max_masks_scanned: usize,
}

/// A single software-switch datapath instance (one hypervisor switch shared by all
/// co-located tenants), generic over the fast-path backend `B`.
#[derive(Debug, Clone)]
pub struct Datapath<B: FastPathBackend = TupleSpace> {
    schema: FieldSchema,
    table: FlowTable,
    slow_path: SlowPath,
    megaflow: B,
    microflow: MicroflowCache,
    config: DatapathConfig,
    stats: DatapathStats,
    last_sweep: f64,
}

/// Fluent constructor for [`Datapath`]: choose the wildcarding strategy, tune the
/// [`DatapathConfig`], and swap the fast-path backend, all from defaults.
#[derive(Debug, Clone)]
pub struct DatapathBuilder<B: FastPathBackend = TupleSpace> {
    table: FlowTable,
    strategy: Option<MegaflowStrategy>,
    config: DatapathConfig,
    backend: Option<B>,
    /// Whether an ordering was explicitly chosen (via `mask_ordering` or `config`);
    /// a backend instance supplied through `backend()` keeps its own policy otherwise.
    ordering_explicit: bool,
    /// Shard-execution model a `ShardedDatapath::from_builder` picks up; a plain
    /// `build()` has no shards and ignores it.
    executor: Option<Box<dyn ShardExecutor>>,
}

impl DatapathBuilder<TupleSpace> {
    /// Start building a datapath over `table` with the default TSS backend.
    pub fn new(table: FlowTable) -> Self {
        DatapathBuilder {
            table,
            strategy: None,
            config: DatapathConfig::default(),
            backend: None,
            ordering_explicit: false,
            executor: None,
        }
    }
}

impl<B: FastPathBackend> DatapathBuilder<B> {
    /// Replace the whole configuration (its `mask_ordering` counts as explicitly
    /// chosen and is applied even to a backend supplied via [`DatapathBuilder::backend`]).
    pub fn config(mut self, config: DatapathConfig) -> Self {
        self.config = config;
        self.ordering_explicit = true;
        self
    }

    /// Megaflow-generation strategy (default: bit-level wildcarding, OVS's behaviour).
    pub fn strategy(mut self, strategy: MegaflowStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Megaflow idle timeout, seconds.
    pub fn idle_timeout(mut self, seconds: f64) -> Self {
        self.config.idle_timeout = seconds;
        self
    }

    /// Microflow (EMC) capacity; 0 disables the first-level cache.
    pub fn microflow_capacity(mut self, capacity: usize) -> Self {
        self.config.microflow_capacity = capacity;
        self
    }

    /// Probe order of the megaflow masks (TSS-family backends only).
    pub fn mask_ordering(mut self, ordering: MaskOrdering) -> Self {
        self.config.mask_ordering = ordering;
        self.ordering_explicit = true;
        self
    }

    /// Per-packet cost model.
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.config.cost = cost;
        self
    }

    /// Idle-expiry sweep cadence, seconds.
    pub fn revalidation_interval(mut self, seconds: f64) -> Self {
        self.config.revalidation_interval = seconds;
        self
    }

    /// Shard-execution model for a `ShardedDatapath` built from this builder
    /// (`ShardedDatapath::from_builder`): `SequentialExecutor` if never called. A
    /// monolithic [`DatapathBuilder::build`] has no shards to fan out over and ignores
    /// the choice.
    pub fn with_executor(mut self, executor: impl ShardExecutor + 'static) -> Self {
        self.executor = Some(Box::new(executor));
        self
    }

    /// Detach the executor chosen via [`DatapathBuilder::with_executor`], if any
    /// (consumed once by `ShardedDatapath::from_builder`).
    pub(crate) fn take_executor(&mut self) -> Option<Box<dyn ShardExecutor>> {
        self.executor.take()
    }

    /// Use a concrete backend instance as the fast path. Its schema must match the
    /// table's (checked in [`DatapathBuilder::build`]). The instance keeps its own
    /// mask-ordering policy unless one was explicitly set on the builder; note that
    /// `build()` installs the flow table into it, which flushes a traffic-driven
    /// backend's entries (OVS revalidation semantics).
    pub fn backend<B2: FastPathBackend>(self, backend: B2) -> DatapathBuilder<B2> {
        DatapathBuilder {
            table: self.table,
            strategy: self.strategy,
            config: self.config,
            backend: Some(backend),
            ordering_explicit: self.ordering_explicit,
            executor: self.executor,
        }
    }

    /// Use a freshly constructed backend of type `B2` as the fast path:
    /// `builder.backend_fresh::<TrieBackend>()`.
    pub fn backend_fresh<B2: FastPathBackend>(self) -> DatapathBuilder<B2> {
        DatapathBuilder {
            table: self.table,
            strategy: self.strategy,
            config: self.config,
            backend: None,
            ordering_explicit: self.ordering_explicit,
            executor: self.executor,
        }
    }

    /// Finalise: construct the backend if none was supplied, install the flow table
    /// into it, and assemble the datapath.
    pub fn build(self) -> Datapath<B> {
        let schema = self.table.schema().clone();
        let supplied = self.backend.is_some();
        let mut megaflow = self.backend.unwrap_or_else(|| B::fresh(&schema));
        assert_eq!(
            megaflow.schema(),
            &schema,
            "fast-path backend schema must match the flow table's schema"
        );
        // A default-constructed backend gets the config's ordering; a supplied instance
        // keeps its own policy unless the builder was explicitly told otherwise.
        if !supplied || self.ordering_explicit {
            megaflow.set_mask_ordering(self.config.mask_ordering);
        }
        megaflow.install_table(&self.table);
        let strategy = self
            .strategy
            .unwrap_or_else(|| MegaflowStrategy::wildcarding(&schema));
        Datapath {
            microflow: MicroflowCache::with_capacity(self.config.microflow_capacity),
            slow_path: SlowPath::new(strategy),
            stats: DatapathStats::default(),
            last_sweep: 0.0,
            schema,
            table: self.table,
            megaflow,
            config: self.config,
        }
    }
}

impl Datapath<TupleSpace> {
    /// Create a TSS datapath with the OVS-default wildcarding strategy and default
    /// config — shorthand for `Datapath::builder(table).build()`.
    pub fn new(table: FlowTable) -> Self {
        Datapath::builder(table).build()
    }

    /// Start a [`DatapathBuilder`] over `table` (default backend: [`TupleSpace`]).
    pub fn builder(table: FlowTable) -> DatapathBuilder<TupleSpace> {
        DatapathBuilder::new(table)
    }
}

impl<B: FastPathBackend> Datapath<B> {
    /// The installed flow table (the merged ACLs of all tenants).
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// Replace the flow table (e.g. when a tenant injects a new ACL mid-experiment, as in
    /// the Kubernetes timeline of Fig. 8c). Traffic-driven backends are revalidated:
    /// all entries are flushed, exactly as OVS does on a flow-table change; table-built
    /// backends rebuild their structure.
    pub fn install_table(&mut self, table: FlowTable) {
        assert_eq!(
            table.schema(),
            &self.schema,
            "replacement flow table must use the same schema"
        );
        self.table = table;
        self.megaflow.install_table(&self.table);
        self.microflow.clear();
    }

    /// The fast-path backend (read-only).
    pub fn megaflow(&self) -> &B {
        &self.megaflow
    }

    /// Mutable access to the fast-path backend — this is the interface MFCGuard uses to
    /// wipe entries (the real tool drives `ovs-dpctl del-flow`).
    pub fn megaflow_mut(&mut self) -> &mut B {
        &mut self.megaflow
    }

    /// The slow path (for suppression control and upcall accounting).
    pub fn slow_path(&self) -> &SlowPath {
        &self.slow_path
    }

    /// Mutable access to the slow path.
    pub fn slow_path_mut(&mut self) -> &mut SlowPath {
        &mut self.slow_path
    }

    /// Current number of megaflow masks (0 for backends without a mask list).
    pub fn mask_count(&self) -> usize {
        self.megaflow.mask_count()
    }

    /// Current number of megaflow entries (0 for table-built backends).
    pub fn entry_count(&self) -> usize {
        self.megaflow.entry_count()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DatapathStats {
        &self.stats
    }

    /// Mutable statistics access for in-crate composition (the sharded datapath's wire
    /// ingestion charges its decode bookkeeping through this).
    pub(crate) fn stats_mut(&mut self) -> &mut DatapathStats {
        &mut self.stats
    }

    /// Reset the statistics (between measurement intervals).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// The datapath configuration.
    pub fn config(&self) -> &DatapathConfig {
        &self.config
    }

    /// Run the idle-expiry sweep if the revalidation interval has elapsed.
    pub fn maybe_expire(&mut self, now: f64) {
        if now - self.last_sweep >= self.config.revalidation_interval {
            self.megaflow.expire_idle(now, self.config.idle_timeout);
            self.last_sweep = now;
        }
    }

    /// Process a concrete packet at simulation time `now`.
    ///
    /// Non-IP packets never reach the tenant ACL (§5.2 footnote); they are counted as
    /// [`PathTaken::Unclassified`] and permitted with only the fixed cost.
    pub fn process_packet(&mut self, pkt: &Packet, now: f64) -> ProcessOutcome {
        let flow = FlowKey::from_packet(pkt);
        let schema_is_v6 = self.schema.field_index("ip6_src").is_some();
        let schema_is_v4 = self.schema.field_index("ip_src").is_some();
        let family_matches = (flow.is_v6 && schema_is_v6) || (!flow.is_v6 && schema_is_v4);
        if !family_matches {
            // Packet family does not match the installed table's schema: treat like
            // non-IP traffic from the ACL's point of view.
            let cost = self.config.cost.microflow();
            self.stats
                .record(PathTaken::Unclassified, true, 0, cost, pkt.wire_len());
            return ProcessOutcome {
                action: Action::Allow,
                path: PathTaken::Unclassified,
                cost,
                masks_scanned: 0,
            };
        }
        let header = flow.to_key(&self.schema);
        let micro = MicroflowKey::from_packet(pkt);
        self.maybe_expire(now);
        self.process_classified(&header, Some(micro), pkt.wire_len(), now)
    }

    /// Process one raw Ethernet frame at `now`: run the wire parser (VLAN/VXLAN
    /// overlays included), then feed the decoded packet through the normal pipeline.
    /// Frames the parser rejects never reach the ACL — they are charged via
    /// [`Datapath::note_wire_fault`].
    pub fn process_wire(&mut self, frame: &[u8], now: f64) -> ProcessOutcome {
        match tse_packet::wire::decode(frame) {
            Ok(pkt) => {
                self.stats.record_decoded();
                self.process_packet(&pkt, now)
            }
            Err(e) => self.note_wire_fault(WireFault::Decode(e), frame.len(), now),
        }
    }

    /// Charge one unclassifiable frame of `bytes` wire bytes: a decode failure is
    /// counted under its per-kind wire-error counter and **dropped** (a frame the
    /// parser cannot even delimit is never forwarded); a family mismatch mirrors the
    /// existing schema-mismatch path of [`Datapath::process_packet`] exactly —
    /// [`PathTaken::Unclassified`], permitted, fixed cost. Neither kind runs the
    /// idle-expiry sweep, also like that path.
    pub fn note_wire_fault(&mut self, fault: WireFault, bytes: usize, now: f64) -> ProcessOutcome {
        let _ = now;
        let cost = self.config.cost.microflow();
        let action = match fault {
            WireFault::Decode(e) => {
                self.stats.record_decode_error(e);
                Action::Deny
            }
            WireFault::FamilyMismatch => Action::Allow,
        };
        self.stats
            .record(PathTaken::Unclassified, action.permits(), 0, cost, bytes);
        ProcessOutcome {
            action,
            path: PathTaken::Unclassified,
            cost,
            masks_scanned: 0,
        }
    }

    /// Process a pre-extracted header key (used by the HYP-protocol experiments and unit
    /// tests that bypass packet construction). `bytes` is the wire size used for
    /// throughput accounting.
    pub fn process_key(&mut self, header: &Key, bytes: usize, now: f64) -> ProcessOutcome {
        self.maybe_expire(now);
        self.process_classified(header, None, bytes, now)
    }

    /// Process a batch of pre-extracted header keys `(header, wire_bytes)` at a single
    /// timestamp, amortising the expiry check and stats bookkeeping over the whole
    /// batch. See [`BatchReport`] for the exact ordering and stats-attribution
    /// semantics. Per-packet verdicts are identical to calling
    /// [`Datapath::process_key`] in a loop at the same `now`.
    pub fn process_batch(&mut self, batch: &[(Key, usize)], now: f64) -> BatchReport {
        self.process_batch_events(batch.iter(), batch.len(), now)
    }

    /// Indexed form of [`Datapath::process_batch`]: process `batch[idx[0]]`,
    /// `batch[idx[1]]`, … in that order, without materialising the sub-batch.
    ///
    /// This is the zero-copy hand-off the sharded datapath's steering pre-partition
    /// uses: each shard receives the full event slice plus one contiguous run of
    /// indices, so fanning a batch out never clones a [`Key`]. Semantics (single
    /// timestamp, one expiry sweep, consecutive-identical-header dedup *in index
    /// order*) are exactly those of `process_batch` over the selected events.
    ///
    /// # Panics
    /// Panics if an index is out of bounds for `batch`.
    pub fn process_batch_indexed(
        &mut self,
        batch: &[(Key, usize)],
        idx: &[u32],
        now: f64,
    ) -> BatchReport {
        self.process_batch_events(idx.iter().map(|&i| &batch[i as usize]), idx.len(), now)
    }

    fn process_batch_events<'a>(
        &mut self,
        events: impl Iterator<Item = &'a (Key, usize)>,
        len: usize,
        now: f64,
    ) -> BatchReport {
        self.maybe_expire(now);
        let mut pending = DatapathStats::default();
        let mut max_masks_scanned = 0;
        // Verdict of the previous packet, reusable while headers repeat back-to-back.
        let mut run: Option<(&Key, Action, usize, f64)> = None;
        for (header, bytes) in events {
            if let Some((prev_header, action, masks, cost)) = run {
                if prev_header == header {
                    pending.record(PathTaken::Megaflow, action.permits(), masks, cost, *bytes);
                    continue;
                }
            }
            let outcome = self.process_classified_stats(header, *bytes, now, &mut pending);
            max_masks_scanned = max_masks_scanned.max(outcome.masks_scanned);
            // Do not extend a dedup run across an upcall: the next repeat must perform
            // a real lookup so it hits the freshly installed entry.
            run = match outcome.path {
                PathTaken::SlowPath => None,
                _ => Some((header, outcome.action, outcome.masks_scanned, outcome.cost)),
            };
        }
        let report = BatchReport {
            processed: len,
            allowed: pending.allowed,
            denied: pending.denied,
            fastpath_hits: pending.megaflow_hits,
            upcalls: pending.upcalls,
            total_cost: pending.busy_seconds,
            max_masks_scanned,
        };
        self.stats.merge(&pending);
        report
    }

    /// Process an ordered run of timestamped events `(header, wire_bytes, time)`,
    /// amortising the stats bookkeeping over the whole chunk — the entry point the
    /// event-driven experiment runner drains `TrafficSource` streams into.
    ///
    /// Unlike [`Datapath::process_batch`], every event is processed at its **own**
    /// timestamp: the idle-expiry sweep is checked per event and each lookup refreshes
    /// entry liveness at the event's time, so per-packet verdicts, costs and cache
    /// evolution are identical to calling [`Datapath::process_key`] in a loop over the
    /// same `(header, bytes, time)` sequence. Times must be nondecreasing. Like all
    /// keyed entry points, the microflow cache is bypassed (keys carry no microflow
    /// identity).
    pub fn process_timed_batch(&mut self, batch: &[(Key, usize, f64)]) -> BatchReport {
        self.process_timed_events(batch.iter(), batch.len())
    }

    /// Indexed form of [`Datapath::process_timed_batch`]: process `batch[idx[0]]`,
    /// `batch[idx[1]]`, … in that order, without materialising the sub-batch — the
    /// zero-copy hand-off behind the sharded datapath's steering pre-partition (each
    /// shard gets the full slice plus one contiguous index run; no [`Key`] clones).
    /// Event times must be nondecreasing *along the index order*.
    ///
    /// # Panics
    /// Panics if an index is out of bounds for `batch`.
    pub fn process_timed_batch_indexed(
        &mut self,
        batch: &[(Key, usize, f64)],
        idx: &[u32],
    ) -> BatchReport {
        self.process_timed_events(idx.iter().map(|&i| &batch[i as usize]), idx.len())
    }

    fn process_timed_events<'a>(
        &mut self,
        events: impl Iterator<Item = &'a (Key, usize, f64)>,
        len: usize,
    ) -> BatchReport {
        let mut pending = DatapathStats::default();
        let mut max_masks_scanned = 0;
        for (header, bytes, now) in events {
            self.maybe_expire(*now);
            let outcome = self.process_classified_stats(header, *bytes, *now, &mut pending);
            max_masks_scanned = max_masks_scanned.max(outcome.masks_scanned);
        }
        let report = BatchReport {
            processed: len,
            allowed: pending.allowed,
            denied: pending.denied,
            fastpath_hits: pending.megaflow_hits,
            upcalls: pending.upcalls,
            total_cost: pending.busy_seconds,
            max_masks_scanned,
        };
        self.stats.merge(&pending);
        report
    }

    fn process_classified(
        &mut self,
        header: &Key,
        micro: Option<MicroflowKey>,
        bytes: usize,
        now: f64,
    ) -> ProcessOutcome {
        // Level 1: microflow cache (exact match on everything, including noise fields).
        if let Some(mk) = micro {
            if let Some(action) = self.microflow.lookup(&mk) {
                let cost = self.config.cost.microflow();
                self.stats
                    .record(PathTaken::Microflow, action.permits(), 0, cost, bytes);
                return ProcessOutcome {
                    action,
                    path: PathTaken::Microflow,
                    cost,
                    masks_scanned: 0,
                };
            }
        }
        // Temporarily detach the stats accumulator so the borrow checker allows passing
        // it alongside `&mut self` (merged back below; `record` only appends).
        let mut stats = std::mem::take(&mut self.stats);
        let outcome = self.process_classified_stats(header, bytes, now, &mut stats);
        self.stats = stats;
        if let Some(mk) = micro {
            self.microflow.insert(mk, outcome.action);
        }
        outcome
    }

    /// Megaflow + slow-path levels, recording into an arbitrary stats accumulator (the
    /// datapath's own for per-packet processing, a batch-local one for
    /// [`Datapath::process_batch`]).
    fn process_classified_stats(
        &mut self,
        header: &Key,
        bytes: usize,
        now: f64,
        stats: &mut DatapathStats,
    ) -> ProcessOutcome {
        // Level 2: the fast-path backend (TSS Alg. 1, or a baseline classifier).
        let outcome = self.megaflow.lookup(header, now);
        if let Some(action) = outcome.action {
            let units = self.megaflow.cost_units(outcome.masks_scanned);
            let cost = self.config.cost.fast_path(units);
            stats.record(
                PathTaken::Megaflow,
                action.permits(),
                outcome.masks_scanned,
                cost,
                bytes,
            );
            return ProcessOutcome {
                action,
                path: PathTaken::Megaflow,
                cost,
                masks_scanned: outcome.masks_scanned,
            };
        }

        // Level 3: slow path (upcall).
        let masks_at_miss = outcome.masks_scanned;
        let up = self
            .slow_path
            .handle_upcall(&self.table, &mut self.megaflow, header, now)
            .unwrap_or(crate::slowpath::UpcallOutcome {
                action: Action::Deny,
                rule_index: usize::MAX,
                installed: false,
                new_mask: false,
            });
        let cost = self
            .config
            .cost
            .slow_path(self.megaflow.cost_units(masks_at_miss));
        stats.record(
            PathTaken::SlowPath,
            up.action.permits(),
            masks_at_miss,
            cost,
            bytes,
        );
        ProcessOutcome {
            action: up.action,
            path: PathTaken::SlowPath,
            cost,
            masks_scanned: masks_at_miss,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tse_classifier::backend::{LinearSearchBackend, TrieBackend};
    use tse_classifier::flowtable::FlowTable;
    use tse_packet::builder::PacketBuilder;
    use tse_packet::fields::FieldSchema;

    /// The Fig. 6 ACL over the OVS IPv4 schema: dst port 80, src 10.0.0.1, src port
    /// 12345 allowed; everything else denied.
    fn fig6_table() -> FlowTable {
        let schema = FieldSchema::ovs_ipv4();
        let tp_dst = schema.field_index("tp_dst").unwrap();
        let ip_src = schema.field_index("ip_src").unwrap();
        let tp_src = schema.field_index("tp_src").unwrap();
        FlowTable::whitelist_default_deny(
            &schema,
            &[(tp_dst, 80), (ip_src, 0x0a000001), (tp_src, 12345)],
        )
    }

    #[test]
    fn first_packet_takes_slow_path_then_fast_path() {
        let mut dp = Datapath::new(fig6_table());
        let pkt = PacketBuilder::tcp_v4([10, 0, 0, 9], [10, 0, 0, 99], 5555, 80).build();
        let first = dp.process_packet(&pkt, 0.0);
        assert_eq!(first.path, PathTaken::SlowPath);
        assert_eq!(first.action, Action::Allow);
        let second = dp.process_packet(&pkt, 0.001);
        assert_eq!(second.path, PathTaken::Megaflow);
        assert_eq!(second.action, Action::Allow);
        assert!(second.cost < first.cost);
        assert_eq!(dp.stats().upcalls, 1);
        assert_eq!(dp.stats().megaflow_hits, 1);
    }

    #[test]
    fn denied_traffic_is_dropped_and_cached() {
        let mut dp = Datapath::new(fig6_table());
        let pkt = PacketBuilder::udp_v4([10, 3, 3, 3], [10, 0, 0, 99], 4444, 9999).build();
        assert_eq!(dp.process_packet(&pkt, 0.0).action, Action::Deny);
        assert_eq!(dp.process_packet(&pkt, 0.1).action, Action::Deny);
        assert_eq!(dp.stats().denied, 2);
        assert!(dp.mask_count() >= 1);
    }

    #[test]
    fn megaflow_cost_grows_with_masks() {
        let mut dp = Datapath::new(fig6_table());
        let victim = PacketBuilder::tcp_v4([10, 0, 0, 9], [10, 0, 0, 99], 5555, 80).build();
        dp.process_packet(&victim, 0.0);
        let cheap = dp.process_packet(&victim, 0.001).cost;
        // Attacker sprays denied packets with pseudo-random headers, spawning masks
        // (a miniature General TSE).
        let mut x: u64 = 0x243f_6a88_85a3_08d3;
        for i in 0..500u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let src = (x >> 32) as u32;
            let sport = (x >> 16) as u16;
            let dport = x as u16;
            let atk =
                PacketBuilder::tcp_v4(src.to_be_bytes(), [10, 0, 0, 99], sport, dport).build();
            dp.process_packet(&atk, 0.01 + i as f64 * 1e-4);
        }
        assert!(
            dp.mask_count() > 40,
            "attack should have spawned masks: {}",
            dp.mask_count()
        );
        // With NewestFirst ordering the victim now scans (almost) all masks.
        let expensive = dp.process_packet(&victim, 0.5).cost;
        assert!(
            expensive > 3.0 * cheap,
            "victim cost should grow with masks: {cheap} -> {expensive}"
        );
    }

    #[test]
    fn idle_timeout_restores_the_cache() {
        let mut dp = Datapath::new(fig6_table());
        for i in 0..50u32 {
            let atk = PacketBuilder::tcp_v4(
                [10, 0, i as u8, 7],
                [10, 0, 0, 99],
                1000 + i as u16,
                2000 + i as u16,
            )
            .build();
            dp.process_packet(&atk, 0.01);
        }
        let with_attack = dp.mask_count();
        assert!(with_attack > 5);
        // 15 s later (attack stopped), the sweep at the next packet expires everything.
        let victim = PacketBuilder::tcp_v4([10, 0, 0, 9], [10, 0, 0, 99], 5555, 80).build();
        dp.process_packet(&victim, 15.0);
        assert!(
            dp.mask_count() < with_attack / 2,
            "idle entries must expire after the timeout"
        );
    }

    #[test]
    fn microflow_cache_short_circuits_when_enabled() {
        let mut dp = Datapath::builder(fig6_table())
            .microflow_capacity(64)
            .build();
        let pkt = PacketBuilder::tcp_v4([10, 0, 0, 9], [10, 0, 0, 99], 5555, 80).build();
        dp.process_packet(&pkt, 0.0);
        let out = dp.process_packet(&pkt, 0.001);
        assert_eq!(out.path, PathTaken::Microflow);
        assert_eq!(out.masks_scanned, 0);
    }

    #[test]
    fn install_table_flushes_caches() {
        let mut dp = Datapath::new(fig6_table());
        let pkt = PacketBuilder::tcp_v4([10, 0, 0, 9], [10, 0, 0, 99], 5555, 80).build();
        dp.process_packet(&pkt, 0.0);
        assert!(dp.entry_count() > 0);
        dp.install_table(fig6_table());
        assert_eq!(dp.entry_count(), 0);
        assert_eq!(dp.mask_count(), 0);
    }

    #[test]
    fn ipv6_packet_against_ipv4_table_is_unclassified() {
        let mut dp = Datapath::new(fig6_table());
        let pkt = PacketBuilder::tcp_v6([1, 0, 0, 0, 0, 0, 0, 2], [3, 0, 0, 0, 0, 0, 0, 4], 1, 80)
            .build();
        let out = dp.process_packet(&pkt, 0.0);
        assert_eq!(out.path, PathTaken::Unclassified);
        assert_eq!(dp.mask_count(), 0);
    }

    #[test]
    fn process_key_supports_hyp_experiments() {
        let table = FlowTable::fig1_hyp();
        let schema = table.schema().clone();
        let mut dp = Datapath::new(table);
        let allow = tse_packet::fields::Key::from_values(&schema, &[0b001]);
        let deny = tse_packet::fields::Key::from_values(&schema, &[0b111]);
        assert_eq!(dp.process_key(&allow, 100, 0.0).action, Action::Allow);
        assert_eq!(dp.process_key(&deny, 100, 0.0).action, Action::Deny);
        assert_eq!(dp.stats().upcalls, 2);
    }

    #[test]
    fn builder_swaps_backends() {
        let table = FlowTable::fig1_hyp();
        let schema = table.schema().clone();
        let mut dp = Datapath::builder(table)
            .backend_fresh::<LinearSearchBackend>()
            .build();
        let allow = Key::from_values(&schema, &[0b001]);
        let deny = Key::from_values(&schema, &[0b111]);
        // Table-built backend: every lookup hits, nothing reaches the slow path.
        assert_eq!(dp.process_key(&allow, 100, 0.0).action, Action::Allow);
        assert_eq!(dp.process_key(&deny, 100, 0.0).action, Action::Deny);
        assert_eq!(dp.stats().upcalls, 0);
        assert_eq!(dp.stats().megaflow_hits, 2);
        assert_eq!(dp.mask_count(), 0);
    }

    #[test]
    fn trie_backend_work_stays_flat_under_attack() {
        let table = fig6_table();
        let mut dp = Datapath::builder(table)
            .backend_fresh::<TrieBackend>()
            .build();
        let victim = PacketBuilder::tcp_v4([10, 0, 0, 9], [10, 0, 0, 99], 5555, 80).build();
        let baseline_work = dp.process_packet(&victim, 0.0).masks_scanned;
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for i in 0..500u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let atk = PacketBuilder::tcp_v4(
                ((x >> 32) as u32).to_be_bytes(),
                [10, 0, 0, 99],
                (x >> 16) as u16,
                x as u16,
            )
            .build();
            dp.process_packet(&atk, 0.01 + i as f64 * 1e-4);
        }
        let attacked_work = dp.process_packet(&victim, 0.5).masks_scanned;
        assert_eq!(
            baseline_work, attacked_work,
            "trie lookup work must not grow with traffic"
        );
        assert_eq!(dp.mask_count(), 0);
    }

    #[test]
    fn supplied_backend_keeps_its_own_ordering() {
        use tse_classifier::tss::MaskOrdering;
        let table = fig6_table();
        let schema = table.schema().clone();
        let cache = TupleSpace::with_ordering(schema.clone(), MaskOrdering::HitCount);
        let dp = Datapath::builder(table.clone()).backend(cache).build();
        assert_eq!(dp.megaflow().ordering(), MaskOrdering::HitCount);
        // An explicit builder choice still wins over the instance's policy.
        let cache = TupleSpace::with_ordering(schema, MaskOrdering::HitCount);
        let dp = Datapath::builder(table)
            .mask_ordering(MaskOrdering::Insertion)
            .backend(cache)
            .build();
        assert_eq!(dp.megaflow().ordering(), MaskOrdering::Insertion);
    }

    #[test]
    fn process_batch_matches_per_key_verdicts() {
        let schema = FieldSchema::ovs_ipv4();
        let table = fig6_table();
        let tp_dst = schema.field_index("tp_dst").unwrap();
        let mut batch = Vec::new();
        for port in [80u128, 81, 80, 80, 9999, 80] {
            let mut k = schema.zero_value();
            k.set(tp_dst, port);
            batch.push((k, 64usize));
        }
        let mut looped = Datapath::new(table.clone());
        let loop_actions: Vec<Action> = batch
            .iter()
            .map(|(k, b)| looped.process_key(k, *b, 0.5).action)
            .collect();
        let mut batched = Datapath::new(table);
        let report = batched.process_batch(&batch, 0.5);
        assert_eq!(report.processed, 6);
        assert_eq!(
            report.allowed as usize,
            loop_actions.iter().filter(|a| a.permits()).count()
        );
        assert_eq!(
            report.denied as usize,
            loop_actions.iter().filter(|a| !a.permits()).count()
        );
        // Same totals in the datapath stats.
        assert_eq!(batched.stats().packets(), looped.stats().packets());
        assert_eq!(batched.stats().allowed, looped.stats().allowed);
        assert_eq!(batched.stats().denied, looped.stats().denied);
        assert_eq!(batched.stats().upcalls, looped.stats().upcalls);
        assert_eq!(batched.mask_count(), looped.mask_count());
    }

    #[test]
    fn process_timed_batch_matches_per_key_loop_exactly() {
        let schema = FieldSchema::ovs_ipv4();
        let table = fig6_table();
        let tp_dst = schema.field_index("tp_dst").unwrap();
        let ip_src = schema.field_index("ip_src").unwrap();
        // Spread events over 20 s so idle expiry fires mid-batch.
        let mut batch = Vec::new();
        for i in 0..40u32 {
            let mut k = schema.zero_value();
            k.set(tp_dst, (i % 7) as u128 * 100);
            k.set(ip_src, 0x0a00_0000 + (i % 5) as u128);
            batch.push((k, 64usize, i as f64 * 0.5));
        }
        let mut looped = Datapath::new(table.clone());
        let loop_outcomes: Vec<ProcessOutcome> = batch
            .iter()
            .map(|(k, b, t)| looped.process_key(k, *b, *t))
            .collect();
        let mut batched = Datapath::new(table);
        let report = batched.process_timed_batch(&batch);
        assert_eq!(report.processed, 40);
        assert_eq!(
            report.total_cost.to_bits(),
            loop_outcomes.iter().map(|o| o.cost).sum::<f64>().to_bits(),
            "timed batch must charge exactly the per-key costs"
        );
        assert_eq!(
            report.max_masks_scanned,
            loop_outcomes.iter().map(|o| o.masks_scanned).max().unwrap()
        );
        assert_eq!(batched.stats(), looped.stats());
        assert_eq!(batched.mask_count(), looped.mask_count());
        assert_eq!(batched.entry_count(), looped.entry_count());
    }

    #[test]
    fn process_wire_runs_the_frame_through_the_full_pipeline() {
        let mut dp = Datapath::new(fig6_table());
        let pkt = PacketBuilder::tcp_v4([10, 0, 0, 9], [10, 0, 0, 99], 5555, 80).build();
        let frame = tse_packet::wire::encode(&pkt);
        let first = dp.process_wire(&frame, 0.0);
        assert_eq!(first.path, PathTaken::SlowPath);
        assert_eq!(first.action, Action::Allow);
        let second = dp.process_wire(&frame, 0.001);
        assert_eq!(second.path, PathTaken::Megaflow);
        assert_eq!(dp.stats().decoded, 2);
        assert_eq!(dp.stats().wire_errors(), 0);
        // A VLAN-tagged copy of the same packet classifies identically: the parser
        // strips the overlay before key extraction.
        let tagged = tse_packet::wire::Encap::Vlan { tci: 7 }.encode(&pkt);
        assert_eq!(dp.process_wire(&tagged, 0.002).action, Action::Allow);
    }

    #[test]
    fn undecodable_frames_are_dropped_and_counted_by_kind() {
        let mut dp = Datapath::new(fig6_table());
        let pkt = PacketBuilder::tcp_v4([10, 0, 0, 9], [10, 0, 0, 99], 5555, 80).build();
        let frame = tse_packet::wire::encode(&pkt);
        let out = dp.process_wire(&frame[..9], 0.0);
        assert_eq!(out.action, Action::Deny);
        assert_eq!(out.path, PathTaken::Unclassified);
        assert_eq!(out.masks_scanned, 0);
        assert_eq!(dp.stats().truncated, 1);
        assert_eq!(dp.stats().decoded, 0);
        // A decodable frame of the wrong family is *permitted* unclassified — the
        // existing schema-mismatch semantics, now fed from raw bytes.
        let v6 = PacketBuilder::tcp_v6([1, 0, 0, 0, 0, 0, 0, 2], [3, 0, 0, 0, 0, 0, 0, 4], 1, 80)
            .build();
        let out = dp.process_wire(&tse_packet::wire::encode(&v6), 0.1);
        assert_eq!(out.action, Action::Allow);
        assert_eq!(out.path, PathTaken::Unclassified);
        assert_eq!(dp.stats().decoded, 1);
        assert_eq!(dp.stats().unclassified, 2);
        // No cache state was installed by any of it.
        assert_eq!(dp.mask_count(), 0);
        assert_eq!(dp.entry_count(), 0);
    }

    #[test]
    fn process_batch_dedups_consecutive_headers() {
        let table = FlowTable::fig1_hyp();
        let schema = table.schema().clone();
        let allow = Key::from_values(&schema, &[0b001]);
        let batch: Vec<(Key, usize)> = (0..100).map(|_| (allow.clone(), 64)).collect();
        let mut dp = Datapath::new(table);
        let report = dp.process_batch(&batch, 0.0);
        assert_eq!(report.processed, 100);
        assert_eq!(report.allowed, 100);
        assert_eq!(report.upcalls, 1);
        // One upcall + one real lookup; the other 98 packets reuse the run verdict, so
        // the entry's own hit counter advanced once.
        let entry = dp.megaflow().peek(&allow).unwrap();
        assert_eq!(entry.hits, 1);
        // But the datapath-level stats count every packet.
        assert_eq!(dp.stats().packets(), 100);
    }
}
