//! Multi-tenant ACL composition.
//!
//! In the cloud model of §3.3, every tenant configures a *virtual* switch with its own
//! ACL, but all tenants scheduled onto the same hypervisor share one physical software
//! switch — and therefore one megaflow cache. This module turns a set of per-tenant ACLs
//! into the single merged flow table the shared datapath actually runs, which is exactly
//! the abstraction the Co-located TSE attack exploits: the attacker's own ACL (for its
//! own service) creates the adversarial rule pattern inside the shared cache.

use tse_packet::fields::{FieldSchema, Key, Mask};

use tse_classifier::flowtable::FlowTable;
use tse_classifier::rule::{Action, Rule};

/// A header field a tenant ACL may filter on. Cloud management systems restrict which of
/// these a tenant can use (§7): OpenStack/Kubernetes ingress policies allow only
/// [`AclField::SrcIp`] and [`AclField::DstPort`]; Calico adds [`AclField::SrcPort`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AclField {
    /// IPv4/IPv6 source address.
    SrcIp,
    /// Transport source port.
    SrcPort,
    /// Transport destination port.
    DstPort,
}

impl AclField {
    /// Index of this field in the canonical OVS schema.
    pub fn schema_index(self, schema: &FieldSchema) -> usize {
        let name = match self {
            AclField::SrcIp => {
                if schema.field_index("ip_src").is_some() {
                    "ip_src"
                } else {
                    "ip6_src"
                }
            }
            AclField::SrcPort => "tp_src",
            AclField::DstPort => "tp_dst",
        };
        schema.field_index(name).expect("OVS schema field")
    }
}

/// One allow clause of a tenant ACL: exact match on a single field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllowClause {
    /// The matched field.
    pub field: AclField,
    /// The exact value allowed.
    pub value: u128,
}

/// A tenant's ingress ACL: an ordered list of allow clauses for traffic destined to the
/// tenant's service address, with an implicit DefaultDeny underneath (the
/// WhiteList+DefaultDeny pattern of §1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantAcl {
    /// Human-readable tenant name (used in reports).
    pub name: String,
    /// The tenant's service address (destination IP the ACL protects).
    pub service_ip: u128,
    /// Allow clauses in decreasing priority.
    pub allows: Vec<AllowClause>,
}

impl TenantAcl {
    /// Build a tenant ACL.
    pub fn new(name: impl Into<String>, service_ip: u128, allows: Vec<AllowClause>) -> Self {
        TenantAcl {
            name: name.into(),
            service_ip,
            allows,
        }
    }

    /// The victim ACL used throughout §5: "allow destination port 80 to my service".
    pub fn web_service(name: impl Into<String>, service_ip: u128) -> Self {
        TenantAcl::new(
            name,
            service_ip,
            vec![AllowClause {
                field: AclField::DstPort,
                value: 80,
            }],
        )
    }

    /// The attacker ACL of Fig. 6: allow dst port 80, src IP 10.0.0.1 and src port 12345
    /// to the attacker's own service — the full-blown TSE pattern (SipSpDp).
    pub fn full_blown_attack(name: impl Into<String>, service_ip: u128) -> Self {
        TenantAcl::new(
            name,
            service_ip,
            vec![
                AllowClause {
                    field: AclField::DstPort,
                    value: 80,
                },
                AllowClause {
                    field: AclField::SrcIp,
                    value: 0x0a000001,
                },
                AllowClause {
                    field: AclField::SrcPort,
                    value: 12345,
                },
            ],
        )
    }

    /// The shard-pinned attack ACL used by tenant-fleet experiments: allow dst port 80
    /// and src port 12345 to the attacker's own service (the SpDp pattern). Unlike
    /// [`TenantAcl::full_blown_attack`] it does not test the source address, so an
    /// attacker replaying the bit-inversion outer product from a single client IP
    /// keeps every packet on one RX queue under per-tenant steering — the worst case
    /// for the tenants sharing that queue, and blast-radius-free for the others.
    pub fn sp_dp_attack(name: impl Into<String>, service_ip: u128) -> Self {
        TenantAcl::new(
            name,
            service_ip,
            vec![
                AllowClause {
                    field: AclField::DstPort,
                    value: 80,
                },
                AllowClause {
                    field: AclField::SrcPort,
                    value: 12345,
                },
            ],
        )
    }

    /// Number of allow clauses.
    pub fn len(&self) -> usize {
        self.allows.len()
    }

    /// True if the ACL has no allow clauses (everything to this service is denied).
    pub fn is_empty(&self) -> bool {
        self.allows.is_empty()
    }
}

/// Merge the ACLs of all tenants sharing a hypervisor into the single flow table the
/// shared datapath runs.
///
/// Each tenant's allow clause becomes a rule matching `ip_dst == tenant.service_ip AND
/// field == value`; a global DefaultDeny (priority 0) sits underneath. Priorities are
/// assigned so that each tenant's clauses keep their relative order and different
/// tenants' rules never interleave in a way that changes semantics (they are disjoint on
/// `ip_dst` anyway).
pub fn merge_tenant_acls(schema: &FieldSchema, tenants: &[TenantAcl]) -> FlowTable {
    let ip_dst = schema
        .field_index("ip_dst")
        .or_else(|| schema.field_index("ip6_dst"))
        .expect("OVS schema must have a destination address field");
    let mut table = FlowTable::new(schema.clone());
    // Start high enough that even a 10k-tenant fleet's clauses all stay above the
    // DefaultDeny's priority 0 (the classic small merges keep their historic 10_000).
    let clause_count: usize = tenants.iter().map(|t| t.allows.len()).sum();
    let mut priority = (clause_count as u32 + 1).max(10_000);
    for tenant in tenants {
        for clause in &tenant.allows {
            let field = clause.field.schema_index(schema);
            let mut key = schema.zero_value();
            let mut mask: Mask = schema.empty_mask();
            key.set(ip_dst, tenant.service_ip);
            mask.set(ip_dst, schema.fields()[ip_dst].full_mask());
            key.set(field, clause.value);
            mask.set(field, schema.fields()[field].full_mask());
            table.push(Rule::new(key, mask, priority, Action::Allow));
            priority -= 1;
        }
    }
    table.push(Rule::match_all(schema, 0, Action::Deny));
    table
}

/// Convenience: the merged table for the canonical §5 topology — a victim web service
/// plus a co-located attacker with the Fig. 6 full-blown ACL.
pub fn victim_and_attacker_table(
    schema: &FieldSchema,
    victim_ip: u128,
    attacker_ip: u128,
) -> FlowTable {
    merge_tenant_acls(
        schema,
        &[
            TenantAcl::web_service("victim", victim_ip),
            TenantAcl::full_blown_attack("attacker", attacker_ip),
        ],
    )
}

/// Check whether a header key is destined to the given tenant (matches its service IP).
pub fn destined_to(schema: &FieldSchema, header: &Key, tenant: &TenantAcl) -> bool {
    let ip_dst = schema
        .field_index("ip_dst")
        .or_else(|| schema.field_index("ip6_dst"))
        .expect("OVS schema must have a destination address field");
    header.get(ip_dst) == tenant.service_ip
}

#[cfg(test)]
mod tests {
    use super::*;
    use tse_packet::builder::PacketBuilder;
    use tse_packet::flowkey::FlowKey;

    const VICTIM_IP: u128 = 0x0a00_0063; // 10.0.0.99
    const ATTACKER_IP: u128 = 0x0a00_00c8; // 10.0.0.200

    #[test]
    fn merged_table_has_one_rule_per_clause_plus_deny() {
        let schema = FieldSchema::ovs_ipv4();
        let table = victim_and_attacker_table(&schema, VICTIM_IP, ATTACKER_IP);
        // victim: 1 clause, attacker: 3 clauses, + DefaultDeny.
        assert_eq!(table.len(), 5);
    }

    #[test]
    fn victim_traffic_allowed_attack_traffic_denied() {
        let schema = FieldSchema::ovs_ipv4();
        let table = victim_and_attacker_table(&schema, VICTIM_IP, ATTACKER_IP);
        // Victim client -> victim web service on port 80: allowed.
        let ok = FlowKey::from_packet(
            &PacketBuilder::tcp_v4([192, 168, 1, 4], [10, 0, 0, 99], 40000, 80).build(),
        )
        .to_key(&schema);
        assert_eq!(table.lookup(&ok).unwrap().action, Action::Allow);
        // Random traffic to the victim on another port: denied.
        let bad = FlowKey::from_packet(
            &PacketBuilder::tcp_v4([192, 168, 1, 4], [10, 0, 0, 99], 40000, 8080).build(),
        )
        .to_key(&schema);
        assert_eq!(table.lookup(&bad).unwrap().action, Action::Deny);
        // Attacker's own service, matching its src-port clause: allowed.
        let atk_ok = FlowKey::from_packet(
            &PacketBuilder::tcp_v4([172, 16, 0, 1], [10, 0, 0, 200], 12345, 9999).build(),
        )
        .to_key(&schema);
        assert_eq!(table.lookup(&atk_ok).unwrap().action, Action::Allow);
    }

    #[test]
    fn tenants_are_isolated_by_destination() {
        let schema = FieldSchema::ovs_ipv4();
        let victim = TenantAcl::web_service("victim", VICTIM_IP);
        let attacker = TenantAcl::full_blown_attack("attacker", ATTACKER_IP);
        let header = FlowKey::from_packet(
            &PacketBuilder::tcp_v4([10, 0, 0, 1], [10, 0, 0, 99], 12345, 443).build(),
        )
        .to_key(&schema);
        assert!(destined_to(&schema, &header, &victim));
        assert!(!destined_to(&schema, &header, &attacker));
        // Traffic matching the *attacker's* allow clauses but destined to the victim is
        // still denied: the src-ip clause only applies to the attacker's service.
        let table = merge_tenant_acls(&schema, &[victim, attacker]);
        assert_eq!(table.lookup(&header).unwrap().action, Action::Deny);
    }

    #[test]
    fn openstack_restriction_shapes() {
        // §7: OpenStack/Kubernetes allow filtering only on src IP and dst port.
        let acl = TenantAcl::new(
            "openstack-tenant",
            VICTIM_IP,
            vec![
                AllowClause {
                    field: AclField::DstPort,
                    value: 80,
                },
                AllowClause {
                    field: AclField::SrcIp,
                    value: 0x0a000001,
                },
            ],
        );
        assert_eq!(acl.len(), 2);
        assert!(!acl.is_empty());
        let schema = FieldSchema::ovs_ipv4();
        let table = merge_tenant_acls(&schema, &[acl]);
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn empty_acl_denies_everything_to_the_service() {
        let schema = FieldSchema::ovs_ipv4();
        let acl = TenantAcl::new("locked-down", VICTIM_IP, vec![]);
        assert!(acl.is_empty());
        let table = merge_tenant_acls(&schema, &[acl]);
        let header = FlowKey::from_packet(
            &PacketBuilder::tcp_v4([1, 2, 3, 4], [10, 0, 0, 99], 1, 80).build(),
        )
        .to_key(&schema);
        assert_eq!(table.lookup(&header).unwrap().action, Action::Deny);
    }

    #[test]
    fn ipv6_schema_supported() {
        let schema = FieldSchema::ovs_ipv6();
        let acl = TenantAcl::web_service("v6-victim", 0xfd00_0000_0000_0000_0000_0000_0000_0001);
        let table = merge_tenant_acls(&schema, &[acl]);
        assert_eq!(table.len(), 2);
    }
}
