//! Per-packet processing cost model.
//!
//! The paper's testbed measures real wall-clock throughput of an OVS kernel datapath on
//! a Xeon server (Table 1). The reproduction runs no real datapath; instead it charges
//! every packet a processing time derived from the *algorithmic* work the classifier
//! reports:
//!
//! ```text
//! t(packet) = t_fixed  +  masks_scanned * t_mask  (+ t_upcall on a slow-path miss)
//! ```
//!
//! which is exactly Observation 1 turned into seconds. The constants are calibrated so
//! that the Baseline case (one mask, MTU frames) forwards ≈10 Gbps, matching the paper's
//! testbed; with that calibration the relative degradation at 17 / 260 / 516 / 8200
//! masks lands close to the §5.4 percentages. Absolute numbers are synthetic by
//! construction; the *shape* (who wins, by what factor, where the knees are) is what the
//! model preserves — see DESIGN.md §4.

/// Cost-model parameters. All times are in seconds per packet (or per classifier
/// invocation when offloads aggregate several packets into one invocation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed per-invocation cost of the fast path (parsing, microflow probe, action
    /// execution).
    pub fixed: f64,
    /// Cost of probing one megaflow mask (one hash lookup in Alg. 1).
    pub per_mask: f64,
    /// Extra cost of a slow-path upcall (full flow-table lookup, megaflow generation,
    /// flow install via netlink).
    pub upcall: f64,
    /// Cost of one microflow-cache hit (cheaper than a full fast-path pass).
    pub microflow_hit: f64,
}

impl CostModel {
    /// Calibration used throughout the reproduction: ≈10 Gbps of MTU-sized traffic
    /// through a single-mask MFC (the Baseline of §5.2).
    ///
    /// 10 Gbps at 1538 bytes on the wire (1500 MTU + Ethernet + preamble/IFG ignored)
    /// is ≈813 kpps → ≈1.23 µs per packet. We split that into 1.17 µs fixed + 60 ns per
    /// mask so that the degradation knee matches §5.4 (≈53 % of baseline at 17 masks for
    /// GRO OFF).
    pub fn ovs_kernel_default() -> Self {
        CostModel {
            fixed: 1.17e-6,
            per_mask: 60e-9,
            upcall: 80e-6,
            microflow_hit: 0.45e-6,
        }
    }

    /// A hardware-offloaded datapath (Mellanox CX-4 "FHO" in Table 1): ≈3× the baseline
    /// capacity and a much cheaper per-mask probe, but the same linear dependence on the
    /// number of masks — which is why §5.4 finds it still vulnerable.
    pub fn full_hw_offload() -> Self {
        CostModel {
            fixed: 0.40e-6,
            per_mask: 3.0e-9,
            upcall: 80e-6,
            microflow_hit: 0.10e-6,
        }
    }

    /// Processing time of one fast-path invocation that scanned `masks_scanned` masks.
    pub fn fast_path(&self, masks_scanned: usize) -> f64 {
        self.fixed + self.per_mask * masks_scanned as f64
    }

    /// Processing time of a microflow-cache hit.
    pub fn microflow(&self) -> f64 {
        self.microflow_hit
    }

    /// Processing time of a slow-path miss that scanned `masks_scanned` masks before
    /// falling through.
    pub fn slow_path(&self, masks_scanned: usize) -> f64 {
        self.fast_path(masks_scanned) + self.upcall
    }

    /// Sustainable packet rate (packets/s) if every packet scans `masks` masks.
    pub fn capacity_pps(&self, masks: usize) -> f64 {
        1.0 / self.fast_path(masks)
    }

    /// Sustainable throughput in Gbps for `wire_bytes`-sized frames when every packet
    /// scans `masks` masks, capped at `line_rate_gbps`.
    pub fn capacity_gbps(&self, masks: usize, wire_bytes: usize, line_rate_gbps: f64) -> f64 {
        let gbps = self.capacity_pps(masks) * wire_bytes as f64 * 8.0 / 1e9;
        gbps.min(line_rate_gbps)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::ovs_kernel_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_about_10_gbps() {
        let m = CostModel::ovs_kernel_default();
        let gbps = m.capacity_gbps(1, 1538, 10.0);
        assert!(
            gbps > 9.0,
            "baseline capacity {gbps} Gbps should be ~10 Gbps"
        );
    }

    #[test]
    fn degradation_shape_matches_section_5_4() {
        // §5.4, GRO OFF: 17 masks → ~53 %, 260 → ~10 %, 516 → ~4.7 %, 8200 → ~0.2 %.
        let m = CostModel::ovs_kernel_default();
        let base = m.capacity_gbps(1, 1538, 10.0);
        let pct = |masks: usize| m.capacity_gbps(masks, 1538, 10.0) / base * 100.0;
        assert!((35.0..=70.0).contains(&pct(17)), "17 masks: {}", pct(17));
        assert!((5.0..=20.0).contains(&pct(260)), "260 masks: {}", pct(260));
        assert!((2.0..=10.0).contains(&pct(516)), "516 masks: {}", pct(516));
        assert!(pct(8200) < 1.0, "8200 masks: {}", pct(8200));
    }

    #[test]
    fn hw_offload_faster_but_still_degrades() {
        let hw = CostModel::full_hw_offload();
        let sw = CostModel::ovs_kernel_default();
        assert!(hw.capacity_pps(1) > 2.0 * sw.capacity_pps(1));
        // Still drops by >10x between 1 and 8200 masks.
        assert!(hw.capacity_pps(1) / hw.capacity_pps(8200) > 10.0);
    }

    #[test]
    fn slow_path_dominated_by_upcall() {
        let m = CostModel::ovs_kernel_default();
        assert!(m.slow_path(1) > 10.0 * m.fast_path(1));
        assert!(m.microflow() < m.fast_path(1));
    }

    #[test]
    fn line_rate_cap_applies() {
        let m = CostModel::full_hw_offload();
        assert_eq!(m.capacity_gbps(1, 1538, 30.0), 30.0);
    }
}
