//! Datapath statistics: per-path packet counters and processing-time accounting.

use tse_packet::wire::DecodeError;

/// Which level of the cache hierarchy handled a packet (Fig. 10's pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathTaken {
    /// Exact-match microflow cache hit.
    Microflow,
    /// Megaflow (TSS) cache hit.
    Megaflow,
    /// Full slow-path processing (flow-table lookup + megaflow install).
    SlowPath,
    /// Dropped before classification (e.g. unsupported ethertype).
    Unclassified,
}

/// Aggregated counters for a datapath.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DatapathStats {
    /// Packets handled by the microflow cache.
    pub microflow_hits: u64,
    /// Packets handled by the megaflow cache.
    pub megaflow_hits: u64,
    /// Packets that needed the slow path (upcalls).
    pub upcalls: u64,
    /// Packets permitted without classification (non-IP traffic, or a family mismatch
    /// with the installed table's schema).
    pub unclassified: u64,
    /// Packets ultimately permitted.
    pub allowed: u64,
    /// Packets ultimately dropped by policy.
    pub denied: u64,
    /// Total masks scanned over all megaflow lookups (hit or miss).
    pub masks_scanned: u64,
    /// Total simulated processing time, seconds.
    pub busy_seconds: f64,
    /// Total bytes of permitted traffic.
    pub allowed_bytes: u64,
    /// Raw frames decoded successfully by the wire-ingestion path. Key-level entry
    /// points never touch this, so `decoded == 0` on a purely key-driven datapath.
    pub decoded: u64,
    /// Raw frames rejected because the buffer was shorter than the headers claim.
    pub truncated: u64,
    /// Raw frames rejected for a malformed header (bad version nibble, bad checksum,
    /// or encapsulation nesting beyond the supported depth).
    pub bad_header: u64,
    /// Raw frames rejected for a non-IP ethertype.
    pub unsupported_ethertype: u64,
}

impl DatapathStats {
    /// Total packets processed.
    pub fn packets(&self) -> u64 {
        self.microflow_hits + self.megaflow_hits + self.upcalls + self.unclassified
    }

    /// Average masks scanned per megaflow lookup (hits + upcalls).
    pub fn avg_masks_scanned(&self) -> f64 {
        let lookups = self.megaflow_hits + self.upcalls;
        if lookups == 0 {
            0.0
        } else {
            self.masks_scanned as f64 / lookups as f64
        }
    }

    /// Fraction of packets that needed an upcall.
    pub fn upcall_ratio(&self) -> f64 {
        let p = self.packets();
        if p == 0 {
            0.0
        } else {
            self.upcalls as f64 / p as f64
        }
    }

    /// Record one processed packet.
    pub fn record(
        &mut self,
        path: PathTaken,
        permitted: bool,
        masks: usize,
        cost: f64,
        bytes: usize,
    ) {
        match path {
            PathTaken::Microflow => self.microflow_hits += 1,
            PathTaken::Megaflow => self.megaflow_hits += 1,
            PathTaken::SlowPath => self.upcalls += 1,
            PathTaken::Unclassified => self.unclassified += 1,
        }
        if permitted {
            self.allowed += 1;
            self.allowed_bytes += bytes as u64;
        } else {
            self.denied += 1;
        }
        self.masks_scanned += masks as u64;
        self.busy_seconds += cost;
    }

    /// Count one successfully decoded raw frame (wire-ingestion entry points only).
    pub fn record_decoded(&mut self) {
        self.decoded += 1;
    }

    /// Count one wire-parser rejection under its per-kind counter. The frame itself is
    /// still recorded (as [`PathTaken::Unclassified`]) by the caller.
    pub fn record_decode_error(&mut self, err: DecodeError) {
        match err {
            DecodeError::Truncated => self.truncated += 1,
            DecodeError::UnsupportedEtherType(_) => self.unsupported_ethertype += 1,
            DecodeError::BadHeader => self.bad_header += 1,
        }
    }

    /// Raw frames the wire parser rejected, all kinds summed.
    pub fn wire_errors(&self) -> u64 {
        self.truncated + self.bad_header + self.unsupported_ethertype
    }

    /// Fold another accumulator into this one (used by the batch entry points, which
    /// accumulate into a batch-local instance and merge once, and by
    /// [`ShardedDatapath::stats`](crate::pmd::ShardedDatapath::stats) to aggregate
    /// per-shard counters). Every field must be folded here — `merge_covers_every_field`
    /// below fails if a newly added counter is forgotten.
    pub fn merge(&mut self, other: &DatapathStats) {
        let DatapathStats {
            microflow_hits,
            megaflow_hits,
            upcalls,
            unclassified,
            allowed,
            denied,
            masks_scanned,
            busy_seconds,
            allowed_bytes,
            decoded,
            truncated,
            bad_header,
            unsupported_ethertype,
        } = other;
        self.microflow_hits += microflow_hits;
        self.megaflow_hits += megaflow_hits;
        self.upcalls += upcalls;
        self.unclassified += unclassified;
        self.allowed += allowed;
        self.denied += denied;
        self.masks_scanned += masks_scanned;
        self.busy_seconds += busy_seconds;
        self.allowed_bytes += allowed_bytes;
        self.decoded += decoded;
        self.truncated += truncated;
        self.bad_header += bad_header;
        self.unsupported_ethertype += unsupported_ethertype;
    }

    /// Reset every counter (used between measurement intervals).
    pub fn reset(&mut self) {
        *self = DatapathStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = DatapathStats::default();
        s.record(PathTaken::Megaflow, true, 5, 1e-6, 1500);
        s.record(PathTaken::SlowPath, false, 10, 8e-5, 60);
        s.record(PathTaken::Microflow, true, 0, 4e-7, 1500);
        assert_eq!(s.packets(), 3);
        assert_eq!(s.allowed, 2);
        assert_eq!(s.denied, 1);
        assert_eq!(s.allowed_bytes, 3000);
        assert_eq!(s.masks_scanned, 15);
        assert!((s.avg_masks_scanned() - 7.5).abs() < 1e-9);
        assert!((s.upcall_ratio() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = DatapathStats::default();
        assert_eq!(s.packets(), 0);
        assert_eq!(s.avg_masks_scanned(), 0.0);
        assert_eq!(s.upcall_ratio(), 0.0);
    }

    /// A stats value with every field nonzero, built through the public API only.
    fn all_fields_nonzero() -> DatapathStats {
        let mut s = DatapathStats::default();
        s.record(PathTaken::Microflow, true, 0, 1e-7, 100);
        s.record(PathTaken::Megaflow, true, 3, 1e-6, 200);
        s.record(PathTaken::SlowPath, false, 7, 1e-4, 60);
        s.record(PathTaken::Unclassified, true, 0, 1e-7, 42);
        s.record_decoded();
        s.record_decode_error(DecodeError::Truncated);
        s.record_decode_error(DecodeError::BadHeader);
        s.record_decode_error(DecodeError::UnsupportedEtherType(0x0806));
        assert!(
            s.microflow_hits > 0
                && s.megaflow_hits > 0
                && s.upcalls > 0
                && s.unclassified > 0
                && s.allowed > 0
                && s.denied > 0
                && s.masks_scanned > 0
                && s.busy_seconds > 0.0
                && s.allowed_bytes > 0
                && s.decoded > 0
                && s.truncated > 0
                && s.bad_header > 0
                && s.unsupported_ethertype > 0,
            "fixture must exercise every counter"
        );
        s
    }

    #[test]
    fn merge_covers_every_field() {
        // Merging into a default accumulator must reproduce the source exactly; a field
        // forgotten in `merge` makes the struct equality fail.
        let s = all_fields_nonzero();
        let mut m = DatapathStats::default();
        m.merge(&s);
        assert_eq!(m, s);
        // Merging twice doubles every counter (associativity smoke check).
        m.merge(&s);
        assert_eq!(m.packets(), 2 * s.packets());
        assert_eq!(m.allowed_bytes, 2 * s.allowed_bytes);
        assert_eq!(m.busy_seconds, 2.0 * s.busy_seconds);
    }

    #[test]
    fn unclassified_packets_are_counted() {
        let mut s = DatapathStats::default();
        s.record(PathTaken::Unclassified, true, 0, 1e-7, 42);
        assert_eq!(s.unclassified, 1);
        assert_eq!(s.packets(), 1);
    }

    #[test]
    fn decode_errors_count_by_kind() {
        let mut s = DatapathStats::default();
        s.record_decode_error(DecodeError::Truncated);
        s.record_decode_error(DecodeError::Truncated);
        s.record_decode_error(DecodeError::BadHeader);
        s.record_decode_error(DecodeError::UnsupportedEtherType(0x88CC));
        assert_eq!(
            (s.truncated, s.bad_header, s.unsupported_ethertype),
            (2, 1, 1)
        );
        assert_eq!(s.wire_errors(), 4);
        // Path recording (Unclassified) is the caller's job; the per-kind counters are
        // orthogonal to the packet totals.
        assert_eq!(s.packets(), 0);
    }

    #[test]
    fn reset_clears() {
        let mut s = DatapathStats::default();
        s.record(PathTaken::Megaflow, true, 1, 1e-6, 100);
        s.reset();
        assert_eq!(s, DatapathStats::default());
    }
}
