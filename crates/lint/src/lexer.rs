//! A minimal, panic-free Rust token scanner.
//!
//! This is deliberately **not** a parser: the lint rules match on token
//! *sequences* (identifiers, punctuation, comments), so all the lexer has to
//! get right is the part rustc's grammar makes subtle — telling code apart
//! from the places code-looking text is inert:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string literals with escapes, including byte/C strings (`b".."`, `c".."`);
//! * raw strings with arbitrary hash fences (`r#".."#`, `br##".."##`);
//! * char literals vs. lifetimes (`'a'` vs. `'a`).
//!
//! Everything inside a comment or literal becomes a single opaque token, so a
//! string containing `unsafe` or `Instant::now` can never trigger a rule
//! (asserted by the lexer property tests). The scanner never panics and never
//! rejects input: unterminated literals simply extend to end of file, which is
//! the right degradation for a lint that must not crash on a half-saved file.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `HashMap`, `foo`).
    Ident,
    /// A lifetime (`'a`) — distinct from [`TokenKind::Char`].
    Lifetime,
    /// A numeric literal (integers and floats, loosely scanned).
    Num,
    /// A single punctuation character (`.`, `:`, `{`, …).
    Punct,
    /// A `//`-to-end-of-line comment (doc comments included), text preserved.
    LineComment,
    /// A (possibly nested) `/* … */` comment, text preserved.
    BlockComment,
    /// A quoted string literal, including `b"…"` / `c"…"` forms.
    Str,
    /// A raw string literal (`r"…"`, `br#"…"#`, …).
    RawStr,
    /// A character literal (`'x'`, `'\n'`).
    Char,
}

/// One lexeme with its 1-indexed source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The lexeme class.
    pub kind: TokenKind,
    /// The raw text of the lexeme (comments keep their `//` / `/*` markers).
    pub text: String,
    /// 1-indexed line of the lexeme's first character.
    pub line: u32,
}

impl Token {
    /// True when the token is an identifier equal to `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// True when the token is the single punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True for both comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Cursor over the source characters; all movement is char-wise, so arbitrary
/// (including multi-byte) input can never cause an out-of-bounds slice.
struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn collect_from(&self, start: usize) -> String {
        self.chars[start..self.pos].iter().collect()
    }
}

/// Tokenize `src`. Total (every character is consumed), panic-free, and
/// tolerant of malformed input: an unterminated literal or comment becomes one
/// token running to end of file.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    while let Some(c) = cur.peek(0) {
        let start = cur.pos;
        let line = cur.line;
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek(1) == Some('/') {
            while let Some(c) = cur.peek(0) {
                if c == '\n' {
                    break;
                }
                cur.bump();
            }
            tokens.push(Token {
                kind: TokenKind::LineComment,
                text: cur.collect_from(start),
                line,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        cur.bump();
                        cur.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            tokens.push(Token {
                kind: TokenKind::BlockComment,
                text: cur.collect_from(start),
                line,
            });
            continue;
        }
        if c == '"' {
            lex_string(&mut cur);
            tokens.push(Token {
                kind: TokenKind::Str,
                text: cur.collect_from(start),
                line,
            });
            continue;
        }
        if c == '\'' {
            let kind = lex_quote(&mut cur);
            tokens.push(Token {
                kind,
                text: cur.collect_from(start),
                line,
            });
            continue;
        }
        if is_ident_start(c) {
            cur.bump();
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            let ident = cur.collect_from(start);
            // String-literal prefixes: `b"…"`, `c"…"`, `r"…"`, `r#"…"#`,
            // `br##"…"##`, `cr"…"` — the ident glues onto the quote.
            if matches!(ident.as_str(), "b" | "c") && cur.peek(0) == Some('"') {
                lex_string(&mut cur);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: cur.collect_from(start),
                    line,
                });
                continue;
            }
            if matches!(ident.as_str(), "r" | "br" | "cr")
                && matches!(cur.peek(0), Some('"') | Some('#'))
                && lex_raw_string(&mut cur)
            {
                tokens.push(Token {
                    kind: TokenKind::RawStr,
                    text: cur.collect_from(start),
                    line,
                });
                continue;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: ident,
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            cur.bump();
            loop {
                match cur.peek(0) {
                    Some(d) if is_ident_continue(d) => {
                        cur.bump();
                    }
                    // A dot continues the number only when a digit follows
                    // (`1.5` yes, `0..n` and `1.max(2)` no).
                    Some('.') if cur.peek(1).is_some_and(|d| d.is_ascii_digit()) => {
                        cur.bump();
                    }
                    _ => break,
                }
            }
            tokens.push(Token {
                kind: TokenKind::Num,
                text: cur.collect_from(start),
                line,
            });
            continue;
        }
        cur.bump();
        tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        });
    }
    tokens
}

/// Consume a `"…"` string starting at the opening quote; escapes respected,
/// EOF-tolerant.
fn lex_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        if c == '\\' {
            cur.bump();
        } else if c == '"' {
            break;
        }
    }
}

/// Try to consume a raw string body (`#`-fence + `"` … `"` + fence) starting at
/// the character after the `r`/`br`/`cr` prefix. Returns false (consuming
/// nothing) if what follows is not actually a raw string opener — e.g. `r#foo`,
/// a raw identifier.
fn lex_raw_string(cur: &mut Cursor) -> bool {
    let mut hashes = 0usize;
    while cur.peek(hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek(hashes) != Some('"') {
        return false;
    }
    for _ in 0..=hashes {
        cur.bump(); // fence + opening quote
    }
    'body: while let Some(c) = cur.bump() {
        if c == '"' {
            for i in 0..hashes {
                if cur.peek(i) != Some('#') {
                    continue 'body;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
    }
    true
}

/// Disambiguate a `'` into a char literal or a lifetime and consume it.
fn lex_quote(cur: &mut Cursor) -> TokenKind {
    cur.bump(); // the quote
    match (cur.peek(0), cur.peek(1)) {
        // `'\…'` — escaped char literal.
        (Some('\\'), _) => {
            cur.bump();
            cur.bump(); // the escape head (e.g. `n`, `u`, `'`)
            while let Some(c) = cur.bump() {
                if c == '\'' {
                    break;
                }
            }
            TokenKind::Char
        }
        // `'x'` — a one-character literal (covers digits and punctuation too).
        (Some(_), Some('\'')) => {
            cur.bump();
            cur.bump();
            TokenKind::Char
        }
        // `'ident` — a lifetime.
        (Some(c), _) if is_ident_start(c) => {
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            TokenKind::Lifetime
        }
        // Stray quote (malformed source): keep it as a lone char token.
        _ => TokenKind::Char,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn code_in_strings_and_comments_is_opaque() {
        let src = r##"
            let a = "unsafe thread::spawn"; // Instant::now in a comment
            let b = r#"HashMap iteration "quoted" here"#;
            /* nested /* SystemTime::now */ still comment */
            let c = b"unsafe";
        "##;
        let ids = idents(src);
        assert!(ids.iter().all(|i| i != "unsafe" && i != "Instant"));
        assert_eq!(
            lex(src)
                .iter()
                .filter(|t| t.kind == TokenKind::RawStr)
                .count(),
            1
        );
    }

    #[test]
    fn char_literals_are_not_lifetimes() {
        let toks = lex("let c = 'a'; fn f<'a>(x: &'a str) {} let n = '\\n';");
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Char).collect();
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(lifetimes.len(), 2);
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let src = "a\n/* two\nlines */\nb";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let toks = lex("for i in 0..10 { let f = 1.5; }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5"]);
    }

    #[test]
    fn unterminated_literals_reach_eof_without_panic() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b\"x", "'a"] {
            let _ = lex(src);
        }
    }
}
