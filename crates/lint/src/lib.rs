//! `tse-lint` — workspace-native static analysis for the determinism and
//! unsafe-budget invariants every headline claim of this reproduction rests
//! on.
//!
//! The tuple-space-explosion collapse/recovery numbers, the executor-parity
//! proofs and the strict-equality `bench_diff` gate are all *bit-for-bit*
//! claims. They hold only while nothing nondeterministic leaks into the
//! deterministic paths: no wall-clock reads outside the advisory `*_wall`
//! metrics, no `HashMap` iteration order feeding ordered output, no threads
//! outside the executor seam, no undocumented `unsafe`, no panics reachable
//! from crafted traffic. Parity tests check those properties where they look;
//! this crate makes them hold *everywhere*, as a CI gate.
//!
//! crates.io is unreachable in the build environment, so this is a hand-rolled
//! analyzer: a comment-, string- and raw-string-aware token scanner
//! ([`lexer`]), a per-file context model ([`context`]), a set of
//! token-sequence rules ([`rules`]), inline suppression pragmas with mandatory
//! reasons ([`pragma`]) and a committed allowlist for the known whole-file
//! exceptions ([`allowlist`]).
//!
//! # Rules
//!
//! | rule | invariant |
//! |------|-----------|
//! | `unsafe-budget` | `unsafe` only at allowlisted `(file, max_count)` sites, each with a `// SAFETY:` comment |
//! | `unsafe-attr` | every crate root forbids `unsafe_code` (denies it in budgeted crates) |
//! | `wall-clock` | `Instant::now`/`SystemTime::now` only in the criterion stub and `*wall*` captures of figure binaries |
//! | `nondet-iteration` | hash-container iteration in non-test code must neutralize order in-statement or carry a pragma |
//! | `thread-containment` | thread creation only in `crates/switch/src/exec.rs` |
//! | `panic-hygiene` | no `unwrap`/`expect`/panicking macros in hot-path modules outside tests |
//! | `pragma-hygiene` | pragmas need a reason, a known rule, and a matching finding |
//!
//! # Exit codes (binary)
//!
//! `0` clean · `1` violations · `2` usage or I/O error — the same contract as
//! `bench_diff`, so CI wiring is identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod context;
pub mod lexer;
pub mod pragma;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

use tse_bench::report::json::Json;

/// A confirmed violation (after pragma processing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A finding suppressed by a valid pragma — reported (not failed) so every
/// active suppression stays auditable in the output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Rule identifier of the suppressed finding.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-indexed line of the suppressed finding.
    pub line: u32,
    /// The pragma's mandatory justification.
    pub reason: String,
}

/// The scan result for one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileReport {
    /// Violations.
    pub diagnostics: Vec<Diagnostic>,
    /// Pragma-suppressed findings.
    pub suppressions: Vec<Suppression>,
}

/// Scan one file's source. `path` must be workspace-relative with `/`
/// separators — it drives the module classification.
pub fn scan_file(path: &str, source: &str) -> FileReport {
    let tokens = lexer::lex(source);
    let ctx = context::FileContext::new(path, &tokens);
    let findings = rules::check_file(&ctx, &tokens);

    let mut pragmas: Vec<(pragma::Pragma, bool)> = tokens
        .iter()
        .filter(|t| t.kind == lexer::TokenKind::LineComment)
        .filter_map(|t| pragma::parse(&t.text, t.line))
        .map(|p| (p, false))
        .collect();

    let mut report = FileReport::default();
    for finding in findings {
        let matched = pragmas.iter_mut().find(|(p, _)| {
            p.rule == finding.rule
                && p.reason.is_some()
                && (p.line == finding.line || p.line + 1 == finding.line)
        });
        if let Some((p, used)) = matched {
            *used = true;
            report.suppressions.push(Suppression {
                rule: finding.rule.to_string(),
                file: path.to_string(),
                line: finding.line,
                reason: p.reason.clone().unwrap_or_default(),
            });
        } else {
            report.diagnostics.push(Diagnostic {
                rule: finding.rule.to_string(),
                file: path.to_string(),
                line: finding.line,
                message: finding.message,
            });
        }
    }
    for (p, used) in &pragmas {
        let problem = if p.reason.is_none() {
            Some("suppression pragma without a reason (the reason is mandatory)".to_string())
        } else if !rules::RULE_IDS.contains(&p.rule.as_str()) {
            Some(format!(
                "suppression pragma names unknown rule `{}`",
                p.rule
            ))
        } else if !used {
            Some(format!(
                "unused suppression pragma for `{}` — no finding on this or the next line",
                p.rule
            ))
        } else {
            None
        };
        if let Some(message) = problem {
            report.diagnostics.push(Diagnostic {
                rule: "pragma-hygiene".to_string(),
                file: path.to_string(),
                line: p.line,
                message,
            });
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| (a.line, a.rule.as_str()).cmp(&(b.line, b.rule.as_str())));
    report
}

/// A whole-workspace scan result.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All violations, ordered by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// All pragma suppressions, same order.
    pub suppressions: Vec<Suppression>,
}

impl WorkspaceReport {
    /// True when the scan found no violations.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Render the human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n"));
        }
        if !self.suppressions.is_empty() {
            out.push_str(&format!(
                "{} pragma-suppressed finding(s):\n",
                self.suppressions.len()
            ));
            for s in &self.suppressions {
                out.push_str(&format!(
                    "  {}:{}: [{}] suppressed — {}\n",
                    s.file, s.line, s.rule, s.reason
                ));
            }
        }
        out.push_str(&format!(
            "tse-lint: {} file(s) scanned, {} violation(s), {} suppression(s)\n",
            self.files_scanned,
            self.diagnostics.len(),
            self.suppressions.len()
        ));
        out
    }

    /// Render the report as a [`Json`] value (written with the same bit-exact
    /// writer the bench regression gate uses).
    pub fn to_json(&self) -> Json {
        let diag = |d: &Diagnostic| {
            Json::Obj(vec![
                ("rule".to_string(), Json::Str(d.rule.clone())),
                ("file".to_string(), Json::Str(d.file.clone())),
                ("line".to_string(), Json::Num(f64::from(d.line))),
                ("message".to_string(), Json::Str(d.message.clone())),
            ])
        };
        let supp = |s: &Suppression| {
            Json::Obj(vec![
                ("rule".to_string(), Json::Str(s.rule.clone())),
                ("file".to_string(), Json::Str(s.file.clone())),
                ("line".to_string(), Json::Num(f64::from(s.line))),
                ("reason".to_string(), Json::Str(s.reason.clone())),
            ])
        };
        Json::Obj(vec![
            ("tool".to_string(), Json::Str("tse-lint".to_string())),
            (
                "files_scanned".to_string(),
                Json::Num(self.files_scanned as f64),
            ),
            (
                "diagnostics".to_string(),
                Json::Arr(self.diagnostics.iter().map(diag).collect()),
            ),
            (
                "suppressions".to_string(),
                Json::Arr(self.suppressions.iter().map(supp).collect()),
            ),
        ])
    }
}

/// The directories scanned under the workspace root.
const SCAN_ROOTS: &[&str] = &["src", "crates", "tests", "examples"];

/// Scan the workspace rooted at `root`: every `.rs` file under `src/`,
/// `crates/`, `tests/` and `examples/` (skipping any `target` directory), in
/// sorted path order so output — and the JSON report — is deterministic.
pub fn scan_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        let dir = root.join(dir);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut report = WorkspaceReport::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = std::fs::read_to_string(&path)?;
        let file_report = scan_file(&rel, &source);
        report.files_scanned += 1;
        report.diagnostics.extend(file_report.diagnostics);
        report.suppressions.extend(file_report.suppressions);
    }
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" {
                collect_rs_files(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
