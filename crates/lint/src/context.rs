//! Per-file analysis context: which crate a file belongs to, which module
//! class it falls into, and which line ranges are `#[cfg(test)]` code.

use crate::allowlist;
use crate::lexer::Token;

/// The determinism-relevant class of a source file. Rules key their scope off
/// this instead of hard-coding paths at every check site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModuleClass {
    /// Per-packet code: `tss.rs`, `microflow.rs`, `datapath.rs`, `pmd.rs`.
    /// Subject to panic-hygiene on top of everything else.
    HotPath,
    /// `crates/switch/src/exec.rs` — the one sanctioned home of thread spawns
    /// (and, budgeted, of `unsafe`).
    Exec,
    /// A figure binary under `crates/bench/src/bin/` — may capture wall-clock
    /// time, but only into the advisory `*wall*` metrics.
    BenchBin,
    /// A criterion bench under a `benches/` directory.
    Bench,
    /// A vendored stand-in under `crates/compat/` (the criterion stub is the
    /// sanctioned wall-clock measurement harness).
    Compat,
    /// An integration test (top-level or per-crate `tests/` directory).
    Test,
    /// An example under `examples/`.
    Example,
    /// Everything else: ordinary library code.
    Lib,
}

/// Everything a rule may want to know about the file it is scanning.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators (the diagnostic location).
    pub path: String,
    /// The [`ModuleClass`] derived from the path.
    pub class: ModuleClass,
    /// Line ranges (1-indexed, inclusive) covered by `#[cfg(test)]` modules.
    pub test_ranges: Vec<(u32, u32)>,
}

impl FileContext {
    /// Build the context for `path` (workspace-relative) over its token stream.
    pub fn new(path: &str, tokens: &[Token]) -> Self {
        FileContext {
            path: path.to_string(),
            class: classify(path),
            test_ranges: test_module_ranges(tokens),
        }
    }

    /// True when `line` lies inside a `#[cfg(test)]` module.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.class == ModuleClass::Test
            || self
                .test_ranges
                .iter()
                .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// True for file classes that exist to *test or measure* the system rather
    /// than run inside it (integration tests, criterion benches).
    pub fn is_test_like(&self) -> bool {
        matches!(self.class, ModuleClass::Test | ModuleClass::Bench)
    }
}

/// Derive the [`ModuleClass`] from a workspace-relative path.
pub fn classify(path: &str) -> ModuleClass {
    if path.starts_with("crates/compat/") {
        return ModuleClass::Compat;
    }
    if path.starts_with("tests/") || path.contains("/tests/") {
        return ModuleClass::Test;
    }
    if path.contains("/benches/") {
        return ModuleClass::Bench;
    }
    if path.starts_with("examples/") || path.contains("/examples/") {
        return ModuleClass::Example;
    }
    if path.starts_with("crates/bench/src/bin/") {
        return ModuleClass::BenchBin;
    }
    if path == allowlist::EXEC_FILE {
        return ModuleClass::Exec;
    }
    if allowlist::HOT_PATH_FILES.contains(&path) {
        return ModuleClass::HotPath;
    }
    ModuleClass::Lib
}

/// Find the line ranges of `#[cfg(test)] mod … { … }` items by walking the
/// token stream and matching the module's braces. Only `mod` items are
/// recognised — a `#[cfg(test)]` on a lone `use` or `fn` marks nothing (those
/// forms do not occur in this workspace; the unit-test convention is a module).
fn test_module_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 6 < code.len() {
        let is_cfg_test = code[i].is_punct('#')
            && code[i + 1].is_punct('[')
            && code[i + 2].is_ident("cfg")
            && code[i + 3].is_punct('(')
            && code[i + 4].is_ident("test")
            && code[i + 5].is_punct(')')
            && code[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = code[i].line;
        // Skip any further attributes between the cfg and the item.
        let mut j = i + 7;
        while j + 1 < code.len() && code[j].is_punct('#') && code[j + 1].is_punct('[') {
            let mut depth = 0i32;
            while j < code.len() {
                if code[j].is_punct('[') {
                    depth += 1;
                } else if code[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if !(j < code.len() && code[j].is_ident("mod")) {
            i += 1;
            continue;
        }
        // Find the module's opening brace, then its matching close.
        while j < code.len() && !code[j].is_punct('{') {
            j += 1;
        }
        let mut depth = 0i32;
        let mut end_line = code.last().map(|t| t.line).unwrap_or(start_line);
        while j < code.len() {
            if code[j].is_punct('{') {
                depth += 1;
            } else if code[j].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    end_line = code[j].line;
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
        ranges.push((start_line, end_line));
        i = j;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn paths_classify_as_documented() {
        assert_eq!(classify("crates/switch/src/exec.rs"), ModuleClass::Exec);
        assert_eq!(classify("crates/switch/src/pmd.rs"), ModuleClass::HotPath);
        assert_eq!(
            classify("crates/classifier/src/tss.rs"),
            ModuleClass::HotPath
        );
        assert_eq!(
            classify("crates/bench/src/bin/fig9_backend_matrix.rs"),
            ModuleClass::BenchBin
        );
        assert_eq!(
            classify("crates/bench/benches/tss_lookup.rs"),
            ModuleClass::Bench
        );
        assert_eq!(
            classify("crates/compat/criterion/src/lib.rs"),
            ModuleClass::Compat
        );
        assert_eq!(classify("tests/executor_parity.rs"), ModuleClass::Test);
        assert_eq!(classify("crates/lint/tests/fixtures.rs"), ModuleClass::Test);
        assert_eq!(classify("examples/tenant_gateway.rs"), ModuleClass::Example);
        assert_eq!(classify("crates/simnet/src/runner.rs"), ModuleClass::Lib);
        assert_eq!(classify("src/lib.rs"), ModuleClass::Lib);
    }

    #[test]
    fn test_module_span_is_detected() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let ctx = FileContext::new("crates/simnet/src/runner.rs", &lex(src));
        assert!(!ctx.in_test_code(1));
        assert!(ctx.in_test_code(2));
        assert!(ctx.in_test_code(4));
        assert!(ctx.in_test_code(5));
        assert!(!ctx.in_test_code(6));
    }

    #[test]
    fn cfg_test_on_non_module_marks_nothing() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn a() {}\n";
        let ctx = FileContext::new("crates/simnet/src/runner.rs", &lex(src));
        assert!(ctx.test_ranges.is_empty());
    }
}
