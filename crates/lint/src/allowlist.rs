//! The committed allowlist: the complete, reviewed set of places where a rule's
//! blanket prohibition is deliberately relaxed.
//!
//! Policy (also documented in the top-level README):
//!
//! * the allowlist covers **whole-file budgets** — facts about the
//!   architecture, like "`exec.rs` is the one home of thread spawns" — and is
//!   changed only by editing this file, in review;
//! * *individual sites* that are safe for a local reason (an order-independent
//!   fold over a hash map, say) use an inline pragma with a mandatory reason
//!   instead (`// lint: allow(<rule>) — <reason>`), next to the code they
//!   justify;
//! * everything else is a violation, and the CI gate fails.

/// The one file allowed to spawn or scope threads (`thread-containment`), and
/// the one file with a nonzero `unsafe` budget.
pub const EXEC_FILE: &str = "crates/switch/src/exec.rs";

/// Per-file `unsafe` budgets: `(file, max occurrences of the `unsafe`
/// keyword)`. Files not listed here have a budget of zero. Every occurrence,
/// budgeted or not, must still carry a `// SAFETY:` comment immediately above.
///
/// `exec.rs`: the persistent worker pool erases a borrowed job to a raw
/// pointer so `'static` workers can run it — `unsafe impl Send for RawJob`,
/// the dereference in `drain_claims`, and the lifetime-only transmute in
/// `run`. See the extensive invariant comments at those sites.
pub const UNSAFE_BUDGETS: &[(&str, usize)] = &[
    // RawJob's Send impl, its deref, and the closure-lifetime transmute in
    // PersistentPoolExecutor.
    (EXEC_FILE, 3),
    // The counting `#[global_allocator]` of the allocation audit: `unsafe impl
    // GlobalAlloc` plus its four forwarding methods.
    ("tests/alloc_audit.rs", 5),
];

/// Crate roots that may not escalate `deny(unsafe_code)` to `forbid`: exactly
/// the crates carrying a nonzero unsafe budget (`#[allow(unsafe_code)]` at the
/// budgeted sites would not compile under `forbid`). Every other crate root
/// must declare `#![forbid(unsafe_code)]` so the compiler backs the lint.
pub const DENY_UNSAFE_CRATE_ROOTS: &[&str] = &["crates/switch/src/lib.rs"];

/// Files allowed to read the wall clock unconditionally (`wall-clock`): the
/// vendored criterion stub *is* the wall-clock measurement harness. Figure
/// binaries (`crates/bench/src/bin/`) get a narrower dispensation directly in
/// the rule: a read is legal only in a statement binding an identifier that
/// contains `wall`, i.e. the advisory `*_wall` metric capture.
pub const WALL_CLOCK_FILES: &[&str] = &["crates/compat/criterion/src/lib.rs"];

/// Hot-path modules: per-packet code where `panic-hygiene` applies. A panic
/// here is remotely triggerable by crafted traffic, so recoverable conditions
/// must be handled, not unwrapped.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/classifier/src/tss.rs",
    "crates/classifier/src/microflow.rs",
    "crates/switch/src/datapath.rs",
    "crates/switch/src/pmd.rs",
    // Wire ingestion: the frame parser and the batched extractor run on every
    // raw frame, including attacker-crafted byte soup.
    "crates/packet/src/wire.rs",
    "crates/packet/src/extract.rs",
];

/// The `unsafe` budget for `file` (0 when unlisted).
pub fn unsafe_budget(file: &str) -> usize {
    UNSAFE_BUDGETS
        .iter()
        .find(|(f, _)| *f == file)
        .map(|(_, n)| *n)
        .unwrap_or(0)
}
