//! `tse-lint` CLI — scan the workspace, print the report, gate CI.
//!
//! ```text
//! tse-lint [--root <dir>] [--json <path>]
//! ```
//!
//! Exit codes match `bench_diff`: `0` clean, `1` violations found, `2` usage
//! or I/O error. With no `--root`, the workspace root is located by walking up
//! from the current directory to the first directory holding both a
//! `Cargo.toml` and a `crates/` directory.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use tse_bench::report::json;

fn usage() -> String {
    "usage: tse-lint [--root <dir>] [--json <path>]".to_string()
}

struct Args {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg, None),
        };
        let value = |it: &mut dyn Iterator<Item = String>| {
            inline
                .clone()
                .or_else(|| it.next())
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--root" => args.root = Some(PathBuf::from(value(&mut it)?)),
            "--json" => args.json = Some(PathBuf::from(value(&mut it)?)),
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

/// Walk up from the current directory to the workspace root (`Cargo.toml` +
/// `crates/` present).
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = args.root.or_else(find_root) else {
        eprintln!("tse-lint: could not locate the workspace root (try --root <dir>)");
        return ExitCode::from(2);
    };
    let report = match tse_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tse-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render_human());
    if let Some(path) = args.json {
        let rendered = match json::write(&report.to_json()) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("tse-lint: JSON render failed: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&path, rendered + "\n") {
            eprintln!("tse-lint: writing {} failed: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
