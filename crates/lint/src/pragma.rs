//! Inline suppression pragmas.
//!
//! Grammar (inside a line comment, anywhere on the line of the violation or on
//! the line directly above it):
//!
//! ```text
//! // lint: allow(<rule>) — <reason>
//! ```
//!
//! The separator may be an em dash (`—`), `--`, or `-`; the reason is
//! **mandatory** — a pragma without one suppresses nothing and is itself
//! reported by the `pragma-hygiene` rule, as is a pragma naming an unknown
//! rule or one that no finding matched (suppressions must not outlive the code
//! they justified).

/// A parsed `lint: allow(..)` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// The rule the pragma suppresses.
    pub rule: String,
    /// The mandatory justification (`None` = malformed: reason missing).
    pub reason: Option<String>,
    /// 1-indexed line of the pragma comment.
    pub line: u32,
}

/// Parse a line comment's text into a [`Pragma`]. Returns `None` when the
/// comment is not a lint pragma at all; returns `Some` with `reason: None`
/// when it is one but the mandatory reason is missing.
pub fn parse(comment_text: &str, line: u32) -> Option<Pragma> {
    let body = comment_text.trim_start_matches('/').trim();
    let rest = body.strip_prefix("lint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let (rule, after) = rest.split_once(')')?;
    let rule = rule.trim().to_string();
    if rule.is_empty() {
        return None;
    }
    let after = after.trim_start();
    let reason = after
        .strip_prefix('\u{2014}') // em dash
        .or_else(|| after.strip_prefix("--"))
        .or_else(|| after.strip_prefix('-'))
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .map(str::to_string);
    Some(Pragma { rule, reason, line })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pragma_parses() {
        let p = parse(
            "// lint: allow(nondet-iteration) — AND/OR fold is order-free",
            7,
        )
        .expect("should parse");
        assert_eq!(p.rule, "nondet-iteration");
        assert_eq!(p.reason.as_deref(), Some("AND/OR fold is order-free"));
        assert_eq!(p.line, 7);
    }

    #[test]
    fn ascii_separators_accepted() {
        for src in [
            "// lint: allow(wall-clock) -- measured for humans only",
            "//lint: allow(wall-clock) - measured for humans only",
        ] {
            let p = parse(src, 1).expect("should parse");
            assert_eq!(p.reason.as_deref(), Some("measured for humans only"));
        }
    }

    #[test]
    fn missing_reason_is_flagged_not_ignored() {
        let p = parse("// lint: allow(unsafe-budget)", 3).expect("is a pragma");
        assert_eq!(p.reason, None);
        let p = parse("// lint: allow(unsafe-budget) —   ", 3).expect("is a pragma");
        assert_eq!(p.reason, None);
    }

    #[test]
    fn ordinary_comments_are_not_pragmas() {
        assert_eq!(parse("// lint is great", 1), None);
        assert_eq!(parse("// allow(foo) — no lint prefix", 1), None);
        assert_eq!(parse("// lint: allow() — empty rule", 1), None);
    }
}
