//! The determinism and unsafe-budget rules.
//!
//! Each rule is a pure function from a file's [`FileContext`] and token stream
//! to findings. Rules are token-sequence matchers, not type checkers: they are
//! deliberately conservative (a site a rule cannot prove orderly needs a
//! pragma with a reason), and they only ever see real code tokens — anything
//! inside strings or comments was made opaque by the lexer.

use crate::allowlist;
use crate::context::{FileContext, ModuleClass};
use crate::lexer::{Token, TokenKind};
use std::collections::BTreeSet;

/// A rule match before pragma/suppression processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule identifier (one of [`RULE_IDS`]).
    pub rule: &'static str,
    /// 1-indexed source line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Every rule the engine knows, including the meta rule guarding the pragmas
/// themselves.
pub const RULE_IDS: &[&str] = &[
    "unsafe-budget",
    "unsafe-attr",
    "wall-clock",
    "nondet-iteration",
    "thread-containment",
    "panic-hygiene",
    "pragma-hygiene",
];

/// Methods whose call on a `HashMap`/`HashSet` observes iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Identifiers that, appearing in the same statement as a hash iteration,
/// prove the result order-independent: an explicit sort, an order-free
/// reduction, or collection into an ordered container. (Floating-point `sum`
/// is deliberately *not* here — f64 addition is order-dependent.)
const ORDER_NEUTRALIZERS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "min",
    "max",
    "min_by",
    "min_by_key",
    "max_by",
    "max_by_key",
    "count",
    "all",
    "any",
    "BTreeMap",
    "BTreeSet",
];

/// Run every rule over one file. `tokens` is the full stream (comments
/// included — the unsafe rule reads `// SAFETY:` markers from it).
pub fn check_file(ctx: &FileContext, tokens: &[Token]) -> Vec<Finding> {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut findings = Vec::new();
    unsafe_budget(ctx, tokens, &code, &mut findings);
    unsafe_attr(ctx, &code, &mut findings);
    wall_clock(ctx, &code, &mut findings);
    nondet_iteration(ctx, &code, &mut findings);
    thread_containment(ctx, &code, &mut findings);
    panic_hygiene(ctx, &code, &mut findings);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// **unsafe-budget** — the `unsafe` keyword may appear only in files carrying
/// an explicit budget in the committed allowlist, at most `budget` times, and
/// every occurrence must have a `// SAFETY:` (or `/* SAFETY: */`) comment
/// within the ten preceding lines.
fn unsafe_budget(ctx: &FileContext, tokens: &[Token], code: &[&Token], out: &mut Vec<Finding>) {
    let budget = allowlist::unsafe_budget(&ctx.path);
    let mut seen = 0usize;
    for t in code {
        if !t.is_ident("unsafe") {
            continue;
        }
        seen += 1;
        if seen > budget {
            out.push(Finding {
                rule: "unsafe-budget",
                line: t.line,
                message: if budget == 0 {
                    "`unsafe` in a file with no allowlisted unsafe budget".to_string()
                } else {
                    format!("`unsafe` occurrence {seen} exceeds this file's budget of {budget}")
                },
            });
        }
        let documented = tokens.iter().any(|c| {
            c.is_comment() && c.line <= t.line && t.line - c.line <= 10 && c.text.contains("SAFETY")
        });
        if !documented {
            out.push(Finding {
                rule: "unsafe-budget",
                line: t.line,
                message: "`unsafe` without a `// SAFETY:` comment in the 10 lines above"
                    .to_string(),
            });
        }
    }
}

/// **unsafe-attr** — every crate root must carry `#![forbid(unsafe_code)]`,
/// except the allowlisted crates with a nonzero unsafe budget, which must
/// carry `#![deny(unsafe_code)]` (so the budgeted sites can opt out locally
/// while the compiler still rejects undeclared ones).
fn unsafe_attr(ctx: &FileContext, code: &[&Token], out: &mut Vec<Finding>) {
    let is_crate_root = ctx.path == "src/lib.rs"
        || (ctx.path.starts_with("crates/") && ctx.path.ends_with("/src/lib.rs"));
    if !is_crate_root {
        return;
    }
    let mut found: Option<(&str, u32)> = None;
    for (i, t) in code.iter().enumerate() {
        let lint_level = if t.is_ident("forbid") {
            "forbid"
        } else if t.is_ident("deny") {
            "deny"
        } else {
            continue;
        };
        if code.get(i + 1).is_some_and(|t| t.is_punct('('))
            && code.get(i + 2).is_some_and(|t| t.is_ident("unsafe_code"))
        {
            found = Some((lint_level, t.line));
            break;
        }
    }
    let wants_deny = allowlist::DENY_UNSAFE_CRATE_ROOTS.contains(&ctx.path.as_str());
    match found {
        Some(("forbid", line)) if wants_deny => out.push(Finding {
            rule: "unsafe-attr",
            line,
            message: "crate has an allowlisted unsafe budget; `forbid(unsafe_code)` would not \
                      compile — declare `#![deny(unsafe_code)]` (or drop the budget)"
                .to_string(),
        }),
        Some(("deny", line)) if !wants_deny => out.push(Finding {
            rule: "unsafe-attr",
            line,
            message: "crate has no unsafe budget: escalate `#![deny(unsafe_code)]` to \
                      `#![forbid(unsafe_code)]`"
                .to_string(),
        }),
        Some(_) => {}
        None => out.push(Finding {
            rule: "unsafe-attr",
            line: 1,
            message: format!(
                "crate root missing `#![{}(unsafe_code)]`",
                if wants_deny { "deny" } else { "forbid" }
            ),
        }),
    }
}

/// **wall-clock** — `Instant::now` / `SystemTime::now` feed nondeterministic
/// values into whatever consumes them, so they are confined to the allowlisted
/// measurement harness (the criterion stub) and, in figure binaries, to
/// statements that bind an identifier containing `wall` (the advisory
/// `*_wall` metrics every report separates from the deterministic ones).
fn wall_clock(ctx: &FileContext, code: &[&Token], out: &mut Vec<Finding>) {
    if allowlist::WALL_CLOCK_FILES.contains(&ctx.path.as_str()) {
        return;
    }
    for i in 0..code.len() {
        let src = &code[i];
        if !(src.is_ident("Instant") || src.is_ident("SystemTime")) {
            continue;
        }
        let is_now = code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 3).is_some_and(|t| t.is_ident("now"));
        if !is_now {
            continue;
        }
        if ctx.class == ModuleClass::BenchBin {
            // Walk back to the start of the statement; a binding whose name
            // mentions `wall` marks this as advisory wall-clock capture.
            let mut ok = false;
            for j in (0..i).rev() {
                if code[j].is_punct(';') || code[j].is_punct('{') || code[j].is_punct('}') {
                    break;
                }
                if code[j].kind == TokenKind::Ident && code[j].text.contains("wall") {
                    ok = true;
                    break;
                }
            }
            if ok {
                continue;
            }
        }
        out.push(Finding {
            rule: "wall-clock",
            line: src.line,
            message: format!(
                "`{}::now` outside the sanctioned wall-clock capture sites",
                src.text
            ),
        });
    }
}

/// **nondet-iteration** — iterating a `HashMap`/`HashSet` observes a
/// randomized order (std's `RandomState` reseeds per process), so any such
/// iteration in non-test code must neutralize the order in the same statement
/// (sort, min/max, count, collect into a B-tree) or justify itself with a
/// pragma. Receivers are recognised by local declaration: any identifier the
/// file binds or annotates with a `HashMap`/`HashSet` type.
fn nondet_iteration(ctx: &FileContext, code: &[&Token], out: &mut Vec<Finding>) {
    if ctx.is_test_like() {
        return;
    }
    let hash_idents = hash_bound_idents(code);
    if hash_idents.is_empty() {
        return;
    }
    // `recv.method(..)` form.
    for i in 1..code.len() {
        if !code[i].is_punct('.') {
            continue;
        }
        let (Some(recv), Some(method), Some(paren)) =
            (code.get(i - 1), code.get(i + 1), code.get(i + 2))
        else {
            continue;
        };
        if recv.kind != TokenKind::Ident
            || !hash_idents.contains(recv.text.as_str())
            || method.kind != TokenKind::Ident
            || !ITER_METHODS.contains(&method.text.as_str())
            || !paren.is_punct('(')
        {
            continue;
        }
        if ctx.in_test_code(method.line) {
            continue;
        }
        if statement_neutralizes(code, i + 3) {
            continue;
        }
        out.push(Finding {
            rule: "nondet-iteration",
            line: method.line,
            message: format!(
                "`{}.{}()` iterates a hash container in nondeterministic order with no \
                 order-neutralizing step in the statement",
                recv.text, method.text
            ),
        });
    }
    // `for x in &recv { .. }` form (no method call to anchor on).
    for i in 0..code.len() {
        if !code[i].is_ident("in") {
            continue;
        }
        let mut j = i + 1;
        while code
            .get(j)
            .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
        {
            j += 1;
        }
        let Some(&first) = code.get(j).filter(|t| t.kind == TokenKind::Ident) else {
            continue;
        };
        let mut last: &Token = first;
        j += 1;
        while code.get(j).is_some_and(|t| t.is_punct('.'))
            && code.get(j + 1).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            last = code[j + 1];
            j += 2;
        }
        if code.get(j).is_some_and(|t| t.is_punct('{'))
            && hash_idents.contains(last.text.as_str())
            && !ctx.in_test_code(last.line)
        {
            out.push(Finding {
                rule: "nondet-iteration",
                line: last.line,
                message: format!(
                    "`for .. in {}` iterates a hash container in nondeterministic order",
                    last.text
                ),
            });
        }
    }
}

/// Identifiers this file binds (`x = HashMap::..`) or annotates
/// (`x: HashMap<..>`, struct fields included) with a hash container type.
fn hash_bound_idents<'a>(code: &[&'a Token]) -> BTreeSet<&'a str> {
    let mut set = BTreeSet::new();
    for i in 0..code.len() {
        if code[i].kind != TokenKind::Ident {
            continue;
        }
        let Some(sep) = code.get(i + 1) else { continue };
        if !(sep.is_punct(':') || sep.is_punct('=')) {
            continue;
        }
        // `::` is a path, not a type annotation.
        if sep.is_punct(':') && code.get(i + 2).is_some_and(|t| t.is_punct(':')) {
            continue;
        }
        // Scan a bounded window of the annotation/initializer for the type.
        // A comma terminates too (the next struct field / argument), but only
        // at angle-bracket depth zero — `HashMap<Vec<u32>, f64>` must still
        // match while `other_field: Vec<u32>, masks: HashMap<..>` must not
        // leak the neighbour's type onto `other_field`.
        let mut j = i + 2;
        let limit = (i + 12).min(code.len());
        let mut angle_depth = 0i32;
        while j < limit {
            let t = code[j];
            if t.is_punct('<') {
                angle_depth += 1;
            } else if t.is_punct('>') {
                angle_depth -= 1;
            }
            if t.is_punct(';')
                || t.is_punct('{')
                || t.is_punct('}')
                || t.is_punct(')')
                || (t.is_punct(',') && angle_depth <= 0)
            {
                break;
            }
            if t.is_ident("HashMap") || t.is_ident("HashSet") {
                set.insert(code[i].text.as_str());
                break;
            }
            j += 1;
        }
    }
    set
}

/// Does the statement starting after a hash-iteration call contain an
/// order-neutralizing identifier before it ends (`;`, `{` or `}`)?
fn statement_neutralizes(code: &[&Token], from: usize) -> bool {
    let limit = (from + 250).min(code.len());
    for t in &code[from..limit] {
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return false;
        }
        if t.kind == TokenKind::Ident && ORDER_NEUTRALIZERS.contains(&t.text.as_str()) {
            return true;
        }
    }
    false
}

/// **thread-containment** — thread creation (`thread::spawn`, scoped threads,
/// `thread::Builder`, `.spawn(..)`) lives only in `crates/switch/src/exec.rs`:
/// every other concurrency need goes through a `ShardExecutor`, which is what
/// keeps "parallel == sequential, bit for bit" a checkable claim.
fn thread_containment(ctx: &FileContext, code: &[&Token], out: &mut Vec<Finding>) {
    if ctx.path == allowlist::EXEC_FILE {
        return;
    }
    for i in 0..code.len() {
        // `thread::spawn` / `thread::scope` / `thread::Builder`.
        if code[i].is_ident("thread")
            && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(what) = code
                .get(i + 3)
                .filter(|t| t.is_ident("spawn") || t.is_ident("scope") || t.is_ident("Builder"))
            {
                out.push(Finding {
                    rule: "thread-containment",
                    line: what.line,
                    message: format!(
                        "`thread::{}` outside `{}` — route shard work through a ShardExecutor",
                        what.text,
                        allowlist::EXEC_FILE
                    ),
                });
            }
        }
        // Method-call form: `something.spawn(..)`.
        if code[i].is_punct('.')
            && code.get(i + 1).is_some_and(|t| t.is_ident("spawn"))
            && code.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            out.push(Finding {
                rule: "thread-containment",
                line: code[i + 1].line,
                message: format!(
                    "`.spawn(..)` outside `{}` — route shard work through a ShardExecutor",
                    allowlist::EXEC_FILE
                ),
            });
        }
    }
}

/// **panic-hygiene** — in hot-path modules (per-packet code), `unwrap`,
/// `expect` and the panicking macros are forbidden outside `#[cfg(test)]`: a
/// reachable panic there is a remote crash primitive for crafted traffic.
/// (`debug_assert!` stays available for invariants that are proofs, not input
/// validation.)
fn panic_hygiene(ctx: &FileContext, code: &[&Token], out: &mut Vec<Finding>) {
    if ctx.class != ModuleClass::HotPath {
        return;
    }
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokenKind::Ident || ctx.in_test_code(t.line) {
            continue;
        }
        let method_call =
            code.get(i + 1).is_some_and(|n| n.is_punct('(')) && i > 0 && code[i - 1].is_punct('.');
        if method_call && (t.text == "unwrap" || t.text == "expect") {
            out.push(Finding {
                rule: "panic-hygiene",
                line: t.line,
                message: format!("`.{}(..)` in a hot-path module", t.text),
            });
            continue;
        }
        let is_macro = code.get(i + 1).is_some_and(|n| n.is_punct('!'));
        if is_macro
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
        {
            out.push(Finding {
                rule: "panic-hygiene",
                line: t.line,
                message: format!("`{}!` in a hot-path module", t.text),
            });
        }
    }
}
