//! The workspace itself must scan clean — the same invariant the CI lint gate
//! enforces, kept as a test so `cargo test` alone catches a regression.

use std::path::Path;

#[test]
fn workspace_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = tse_lint::scan_workspace(&root).expect("workspace scan");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    assert!(report.is_clean(), "\n{}", report.render_human());
    // Every active suppression is auditable: rule known, reason non-empty.
    for s in &report.suppressions {
        assert!(!s.reason.is_empty(), "{}:{} [{}]", s.file, s.line, s.rule);
        assert!(
            tse_lint::rules::RULE_IDS.contains(&s.rule.as_str()),
            "{}:{} suppresses unknown rule {}",
            s.file,
            s.line,
            s.rule
        );
    }
}
