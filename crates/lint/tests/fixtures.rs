//! Per-rule fixtures: every rule fires exactly once on a seeded violation (at the
//! right file:line), a pragma with a reason suppresses it, and a reasonless pragma is
//! itself a violation.

use tse_lint::scan_file;

/// Assert the report holds exactly one diagnostic, for `rule` at `line`.
fn assert_single(report: &tse_lint::FileReport, rule: &str, line: u32) {
    assert_eq!(
        report.diagnostics.len(),
        1,
        "expected exactly one diagnostic, got: {:?}",
        report.diagnostics
    );
    let d = &report.diagnostics[0];
    assert_eq!((d.rule.as_str(), d.line), (rule, line), "{d}");
}

#[test]
fn unsafe_in_unbudgeted_file_is_flagged() {
    // The SAFETY comment is present, so the only finding is the missing budget.
    let src = "// SAFETY: fixture\npub fn f() {\n    unsafe { core() }\n}\n";
    let report = scan_file("crates/attack/src/fixture.rs", src);
    assert_single(&report, "unsafe-budget", 3);
    assert!(report.diagnostics[0].message.contains("no allowlisted"));
}

#[test]
fn unsafe_over_budget_is_flagged() {
    // exec.rs carries a budget of 3; the fourth occurrence is the one violation.
    let src = "// SAFETY: fixture covers all four\n\
               unsafe fn a() {}\n\
               unsafe fn b() {}\n\
               unsafe fn c() {}\n\
               unsafe fn d() {}\n";
    let report = scan_file("crates/switch/src/exec.rs", src);
    assert_single(&report, "unsafe-budget", 5);
    assert!(report.diagnostics[0].message.contains("exceeds"));
}

#[test]
fn unsafe_without_safety_comment_is_flagged() {
    let src = "pub unsafe fn f() {}\n";
    let report = scan_file("crates/switch/src/exec.rs", src);
    assert_single(&report, "unsafe-budget", 1);
    assert!(report.diagnostics[0].message.contains("SAFETY"));
}

#[test]
fn crate_root_must_forbid_unsafe_code() {
    // deny where forbid is possible → escalate.
    let report = scan_file("crates/packet/src/lib.rs", "#![deny(unsafe_code)]\n");
    assert_single(&report, "unsafe-attr", 1);
    // Missing entirely.
    let report = scan_file("crates/packet/src/lib.rs", "pub fn f() {}\n");
    assert_single(&report, "unsafe-attr", 1);
    // forbid is clean.
    let report = scan_file("crates/packet/src/lib.rs", "#![forbid(unsafe_code)]\n");
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn budgeted_crate_root_declares_deny_not_forbid() {
    // tse-switch carries the unsafe budget: forbid would not compile there.
    let report = scan_file("crates/switch/src/lib.rs", "#![forbid(unsafe_code)]\n");
    assert_single(&report, "unsafe-attr", 1);
    let report = scan_file("crates/switch/src/lib.rs", "#![deny(unsafe_code)]\n");
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn wall_clock_read_outside_capture_sites_is_flagged() {
    let src = "pub fn f() {\n    let t = std::time::Instant::now();\n    use_it(t);\n}\n";
    let report = scan_file("crates/simnet/src/fixture.rs", src);
    assert_single(&report, "wall-clock", 2);
}

#[test]
fn wall_clock_capture_in_figure_binary_is_sanctioned() {
    // A `*wall*` binding in a figure binary is the sanctioned advisory capture...
    let ok = "fn main() {\n    let wall_start = std::time::Instant::now();\n}\n";
    let report = scan_file("crates/bench/src/bin/fig_fixture.rs", ok);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    // ...any other binding there is still a violation.
    let bad = "fn main() {\n    let t = std::time::Instant::now();\n}\n";
    let report = scan_file("crates/bench/src/bin/fig_fixture.rs", bad);
    assert_single(&report, "wall-clock", 2);
}

const NONDET_SRC: &str = "use std::collections::HashMap;\n\
     pub fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n    \
     m.values().copied().collect()\n\
     }\n";

#[test]
fn hash_iteration_without_neutralizer_is_flagged() {
    let report = scan_file("crates/mitigation/src/fixture.rs", NONDET_SRC);
    assert_single(&report, "nondet-iteration", 3);
}

#[test]
fn in_statement_neutralizer_passes() {
    let src = "use std::collections::HashMap;\n\
         pub fn f(m: &HashMap<u32, u32>) -> u32 {\n    \
         m.values().copied().max().unwrap_or(0)\n\
         }\n";
    let report = scan_file("crates/mitigation/src/fixture.rs", src);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn pragma_with_reason_suppresses_and_is_reported() {
    let src = NONDET_SRC.replace(
        "    m.values()",
        "    // lint: allow(nondet-iteration) — fixture justification\n    m.values()",
    );
    let report = scan_file("crates/mitigation/src/fixture.rs", &src);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert_eq!(report.suppressions.len(), 1);
    assert_eq!(report.suppressions[0].reason, "fixture justification");
}

#[test]
fn reasonless_pragma_suppresses_nothing_and_is_itself_flagged() {
    let src = NONDET_SRC.replace(
        "    m.values()",
        "    // lint: allow(nondet-iteration)\n    m.values()",
    );
    let report = scan_file("crates/mitigation/src/fixture.rs", &src);
    // Both the original finding and the malformed pragma are reported.
    assert_eq!(report.diagnostics.len(), 2, "{:?}", report.diagnostics);
    assert_eq!(report.diagnostics[0].rule, "pragma-hygiene");
    assert_eq!(report.diagnostics[0].line, 3);
    assert_eq!(report.diagnostics[1].rule, "nondet-iteration");
    assert_eq!(report.diagnostics[1].line, 4);
    assert!(report.suppressions.is_empty());
}

#[test]
fn unused_and_unknown_rule_pragmas_are_flagged() {
    let src = "// lint: allow(nondet-iteration) — nothing here to suppress\npub fn f() {}\n";
    let report = scan_file("crates/mitigation/src/fixture.rs", src);
    assert_single(&report, "pragma-hygiene", 1);
    assert!(report.diagnostics[0].message.contains("unused"));

    let src = "use std::collections::HashMap;\n\
         pub fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n    \
         // lint: allow(nondet-iterationn) — typo in the rule name\n    \
         m.values().copied().collect()\n\
         }\n";
    let report = scan_file("crates/mitigation/src/fixture.rs", src);
    // The misspelled pragma suppresses nothing: the finding stays and the pragma is
    // flagged for naming an unknown rule.
    assert_eq!(report.diagnostics.len(), 2, "{:?}", report.diagnostics);
    assert_eq!(report.diagnostics[0].rule, "pragma-hygiene");
    assert_eq!(report.diagnostics[1].rule, "nondet-iteration");
}

#[test]
fn thread_creation_outside_exec_is_flagged() {
    let src = "pub fn f() {\n    std::thread::spawn(|| {});\n}\n";
    let report = scan_file("crates/simnet/src/fixture.rs", src);
    assert_single(&report, "thread-containment", 2);

    let src = "pub fn f(b: std::thread::Builder) {\n    b.spawn(|| {}).unwrap();\n}\n";
    let report = scan_file("crates/simnet/src/fixture.rs", src);
    // `thread::Builder` in the signature and the `.spawn(..)` call both fire.
    assert_eq!(report.diagnostics.len(), 2, "{:?}", report.diagnostics);
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.rule == "thread-containment"));
}

#[test]
fn panic_in_hot_path_is_flagged_but_tests_are_exempt() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let report = scan_file("crates/classifier/src/tss.rs", src);
    assert_single(&report, "panic-hygiene", 2);

    let src = "pub fn f(x: Option<u32>) -> Option<u32> {\n    x\n}\n\
         #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
         super::f(Some(1)).unwrap();\n        panic!(\"fine in tests\");\n    }\n}\n";
    let report = scan_file("crates/classifier/src/tss.rs", src);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn panic_outside_hot_path_modules_is_allowed() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.expect(\"caller checked\")\n}\n";
    let report = scan_file("crates/classifier/src/strategy.rs", src);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}
