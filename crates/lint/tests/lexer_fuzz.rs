//! Lexer robustness: arbitrary input must never panic the scanner, and tokens inside
//! string literals or comments must never reach the rules.

use proptest::prelude::*;
use tse_lint::lexer::{lex, TokenKind};
use tse_lint::scan_file;

/// Rule-trigger spellings hidden where only a confused lexer would find them: inside
/// ordinary strings, raw strings, char literals and comments. A hot-path file path
/// makes every rule eligible, so any leak shows up as a diagnostic.
#[test]
fn triggers_inside_strings_and_comments_are_opaque() {
    let src = concat!(
        "pub fn f() -> &'static str {\n",
        "    let _c = 'u';\n",
        "    let _raw = r#\"unsafe { thread::spawn(|| Instant::now()) }\"#;\n",
        "    \"x.unwrap() m.values() panic! SystemTime::now()\"\n",
        "}\n",
        "// unsafe thread::spawn Instant::now() .unwrap() for x in m.values() {\n",
        "/* panic!(\"boom\") SystemTime::now() .expect(\"no\") */\n",
    );
    let report = scan_file("crates/classifier/src/tss.rs", src);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    assert!(report.suppressions.is_empty());
}

#[test]
fn unterminated_constructs_lex_without_panicking() {
    for src in [
        "\"never closed",
        "r#\"raw never closed",
        "/* block never closed",
        "/* nested /* twice */ once",
        "'x",
        "b\"bytes",
        "r###\"deep fence\"##",
        "ident.method(\"arg",
        "\\",
        "🦀 unicode ± soup 𝕏",
    ] {
        let tokens = lex(src);
        // Whatever came out, line numbers are sane and nothing panicked.
        assert!(tokens.iter().all(|t| t.line >= 1), "{src:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup (lossily decoded) never panics the lexer, and the token
    /// texts cover the input: lexing is total.
    #[test]
    fn lexer_is_total_on_arbitrary_input(
        bytes in proptest::collection::vec(0u32..256, 0..120),
    ) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let src = String::from_utf8_lossy(&raw).into_owned();
        let tokens = lex(&src);
        for t in &tokens {
            prop_assert!(t.line >= 1);
            prop_assert!(!t.text.is_empty() || t.kind == TokenKind::Str);
        }
        // The full scan pipeline is panic-free on garbage too.
        let _ = scan_file("crates/classifier/src/tss.rs", &src);
    }

    /// Rule-trigger keywords wrapped in a string literal produce zero diagnostics no
    /// matter how they are spliced together.
    #[test]
    fn quoted_triggers_never_fire(
        picks in proptest::collection::vec(0usize..6, 1..6),
    ) {
        const TRIGGERS: [&str; 6] = [
            "unsafe", "thread::spawn", "Instant::now()", ".unwrap()",
            "panic!(\\\"x\\\")", "m.values()",
        ];
        let inner: Vec<&str> = picks.iter().map(|&i| TRIGGERS[i]).collect();
        let src = format!("pub fn f() -> String {{\n    \"{}\".to_string()\n}}\n", inner.join(" "));
        let report = scan_file("crates/classifier/src/tss.rs", &src);
        prop_assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }
}
