//! Minimal, deterministic stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors the subset of
//! the proptest API its property tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), `prop_assert!` / `prop_assert_eq!`, integer-range
//! and tuple strategies, and [`collection::vec`]. Cases are generated from a fixed seed
//! (deterministic CI); there is no shrinking — a failing case reports its index and the
//! assertion message instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategy abstraction: something that can generate values of `Value` from an RNG.
pub mod strategy {
    use crate::test_runner::CaseRng;

    /// A generator of test values. Mirrors `proptest::strategy::Strategy` far enough
    /// that `impl Strategy<Value = T>` signatures compile unchanged.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut CaseRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut CaseRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut CaseRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    let span = (end as u128) - (start as u128) + 1;
                    start + rng.below(span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, u128);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut CaseRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::CaseRng;

    /// Strategy producing `Vec`s of values drawn from `element`, with a length drawn
    /// from `size` (half-open, as in real proptest's `1..60`).
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Build a [`VecStrategy`]. Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy {
            element,
            min: size.start,
            max: size.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut CaseRng) -> Self::Value {
            let len = self.min + rng.below((self.max - self.min) as u128) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The runner machinery behind the [`proptest!`] macro.
pub mod test_runner {
    /// Per-case RNG: SplitMix64 seeded from (fixed base seed, case index).
    #[derive(Debug, Clone)]
    pub struct CaseRng {
        state: u64,
    }

    impl CaseRng {
        /// Seed for one test case.
        pub fn new(seed: u64) -> Self {
            CaseRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, span)` (rejection sampling; `span` must be non-zero).
        pub fn below(&mut self, span: u128) -> u128 {
            debug_assert!(span > 0);
            let zone = u128::MAX - (u128::MAX % span);
            loop {
                let raw = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
                if raw < zone {
                    return raw % span;
                }
            }
        }
    }

    /// A failed property check (produced by `prop_assert!`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    /// Runner configuration. Mirrors `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the heavier datapath properties
            // fast while still exploring a meaningful sample.
            Config { cases: 64 }
        }
    }

    /// Runs a property over `config.cases` generated cases.
    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        /// Create a runner.
        pub fn new(config: Config) -> Self {
            TestRunner { config }
        }

        /// Run `case` once per generated input; panics (failing the `#[test]`) on the
        /// first case that returns an error.
        pub fn run(&mut self, mut case: impl FnMut(&mut CaseRng) -> Result<(), TestCaseError>) {
            for i in 0..self.config.cases {
                // Distinct, reproducible stream per case.
                let seed = 0x7365_6564u64 ^ (u64::from(i).wrapping_mul(0x2545_F491_4F6C_DD1D));
                let mut rng = CaseRng::new(seed);
                if let Err(e) = case(&mut rng) {
                    panic!(
                        "proptest case {}/{} failed: {} (deterministic seed {seed:#x})",
                        i + 1,
                        self.config.cases,
                        e.message
                    );
                }
            }
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    /// Runner configuration (re-exported under proptest's prelude name).
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declare property tests. Supports an optional `#![proptest_config(expr)]` header and
/// one or more `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::test_runner::Config as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                runner.run(|__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Property assertion: fails the current case (not the whole process) on falsehood.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({l:?} vs {r:?})",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {l:?})",
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u128, u128)> {
        (0u128..32, 0u128..16)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds((a, b) in pair(), c in 3u16..9) {
            prop_assert!(a < 32);
            prop_assert!(b < 16);
            prop_assert!((3..9).contains(&c));
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0u32..100, 1..7)) {
            prop_assert!(!v.is_empty() && v.len() < 7);
            for x in &v {
                prop_assert!(*x < 100);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_accepted(x in 0u8..10) {
            prop_assert_eq!(x as u16 * 2, u16::from(x) * 2);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_info() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(3));
        runner.run(|_rng| Err(TestCaseError::fail("forced")));
    }
}
