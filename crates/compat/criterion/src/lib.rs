//! Minimal, wall-clock stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace vendors the subset of
//! the criterion 0.5 API its benches use: `Criterion`, `benchmark_group` with
//! `sample_size` / `measurement_time` / `warm_up_time`, `bench_function`,
//! `bench_with_input`, `Bencher::iter` / `iter_batched`, `BatchSize`, `BenchmarkId` and
//! the `criterion_group!` / `criterion_main!` macros. There is no statistical analysis or
//! HTML report: each benchmark warms up, runs the configured number of samples, and
//! prints the median / min / max time per iteration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` inputs are grouped; only a timing hint in real criterion, ignored
/// here beyond API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Many small inputs per batch.
    SmallInput,
    /// One large input per batch.
    LargeInput,
    /// A fresh input per iteration.
    PerIteration,
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier, as in real criterion.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Measures one benchmark routine.
pub struct Bencher {
    /// Target number of timed iterations per sample.
    iters_per_sample: u64,
    /// Number of samples to record.
    samples: usize,
    /// Collected per-iteration times (seconds).
    per_iter: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, called in a loop.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.per_iter.push(elapsed / self.iters_per_sample as f64);
        }
    }

    /// Time `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let mut elapsed = 0.0;
            for _ in 0..self.iters_per_sample {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                elapsed += start.elapsed().as_secs_f64();
            }
            self.per_iter.push(elapsed / self.iters_per_sample as f64);
        }
    }
}

/// Measurement types (API compatibility with `criterion::measurement`).
pub mod measurement {
    /// Wall-clock time — the only measurement the stub supports.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// A named group of related benchmarks sharing measurement settings. The measurement
/// type parameter exists (with the same `WallTime` spelling as real criterion) so
/// function signatures taking `&mut BenchmarkGroup<'_, WallTime>` compile against both
/// this stub and the real crate.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
    _measurement: core::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples of one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Time spent warming up (and calibrating the per-sample iteration count).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_bench(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut f,
        );
        self
    }

    /// Run one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.full);
        run_bench(
            &name,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// End the group (prints nothing extra; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            _criterion: self,
            _measurement: core::marker::PhantomData,
        }
    }

    /// Run one ungrouped benchmark with default settings.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        run_bench(
            &id.into(),
            20,
            Duration::from_secs(2),
            Duration::from_millis(500),
            &mut f,
        );
    }
}

fn run_bench(
    name: &str,
    samples: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Calibration pass: run single iterations until the warm-up budget is spent, to
    // estimate how many iterations fit in one sample.
    let mut calib = Bencher {
        iters_per_sample: 1,
        samples: 1,
        per_iter: Vec::new(),
    };
    let warm_start = Instant::now();
    let mut est = f64::INFINITY;
    while warm_start.elapsed() < warm_up_time {
        calib.per_iter.clear();
        f(&mut calib);
        if let Some(&t) = calib.per_iter.first() {
            est = est.min(t.max(1e-9));
        }
    }
    if !est.is_finite() {
        est = 1e-6;
    }
    let budget_per_sample = measurement_time.as_secs_f64() / samples as f64;
    let iters = ((budget_per_sample / est).floor() as u64).clamp(1, 10_000_000);

    let mut bencher = Bencher {
        iters_per_sample: iters,
        samples,
        per_iter: Vec::new(),
    };
    f(&mut bencher);
    let mut times = bencher.per_iter;
    if times.is_empty() {
        println!("{name:<60} (no measurements)");
        return;
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("benchmark time is never NaN"));
    let median = times[times.len() / 2];
    let min = times[0];
    let max = times[times.len() - 1];
    println!(
        "{name:<60} time: [{} {} {}] ({} iters/sample, {} samples)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(max),
        iters,
        times.len()
    );
    export_measurement(name, median, min, max);
}

/// When `TSE_BENCH_OUT` names a file, append one JSON line per finished benchmark:
/// `{"id": "<group>/<bench>", "median_s": ..., "min_s": ..., "max_s": ...}`. The
/// `bench_ingest` binary of `tse-bench` folds these lines into the repo's
/// `BENCH_<area>.json` report files; this crate cannot depend on `tse-bench` itself
/// (the dependency points the other way), so the line format is kept trivial enough
/// to hand-write here.
fn export_measurement(name: &str, median: f64, min: f64, max: f64) {
    let Ok(path) = std::env::var("TSE_BENCH_OUT") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"id\": \"{escaped}\", \"median_s\": {median}, \"min_s\": {min}, \"max_s\": {max}}}\n"
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = result {
        eprintln!("warning: TSE_BENCH_OUT={path}: {e}; measurement not exported");
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

/// Declare a group of benchmark functions, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(30));
        group.warm_up_time(Duration::from_millis(5));
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, v| {
            b.iter(|| *v * 2)
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn tse_bench_out_exports_jsonl() {
        let path = std::env::temp_dir().join("tse_criterion_export_test.jsonl");
        let _ = std::fs::remove_file(&path);
        std::env::set_var("TSE_BENCH_OUT", &path);
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("export_smoke");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(10));
        group.warm_up_time(Duration::from_millis(2));
        group.bench_function("noop \"quoted\"", |b| {
            b.iter(|| std::hint::black_box(1 + 1))
        });
        group.finish();
        std::env::remove_var("TSE_BENCH_OUT");
        let text = std::fs::read_to_string(&path).unwrap();
        let line = text
            .lines()
            .find(|l| l.contains("export_smoke"))
            .expect("the finished bench must have been exported");
        assert!(
            line.contains("\"id\": \"export_smoke/noop \\\"quoted\\\"\""),
            "{line}"
        );
        assert!(line.contains("\"median_s\": "), "{line}");
        assert!(line.contains("\"min_s\": "), "{line}");
        assert!(line.contains("\"max_s\": "), "{line}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-6).contains("µs"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_time(5.0).contains(" s"));
    }
}
