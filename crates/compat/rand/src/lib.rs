//! Minimal, deterministic stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace vendors the tiny
//! subset of the `rand 0.8` API the reproduction actually uses: the [`Rng`] extension
//! methods `gen` / `gen_range` / `next_u64`, [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is SplitMix64 — statistically fine for attack-trace
//! noise and property tests, and fully deterministic for a given seed (which the
//! experiment reproducibility relies on anyway).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of randomness plus the inference-driven helpers the `rand` prelude offers.
pub trait Rng {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce a uniformly random value of an integer type.
    fn gen<T: Standard>(&mut self) -> T {
        let mut feed = || self.next_u64();
        T::from_bits(&mut feed)
    }

    /// Produce a uniformly random value within `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut feed = || self.next_u64();
        range.sample(&mut feed)
    }
}

/// Types that can be drawn uniformly from raw random bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Build a value from a stream of random 64-bit words.
    fn from_bits(feed: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_bits(feed: &mut dyn FnMut() -> u64) -> Self {
                feed() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_bits(feed: &mut dyn FnMut() -> u64) -> Self {
        ((feed() as u128) << 64) | feed() as u128
    }
}

impl Standard for bool {
    fn from_bits(feed: &mut dyn FnMut() -> u64) -> Self {
        feed() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly ([`Rng::gen_range`]). The element type is a
/// trait parameter (not an associated type) so inference can flow from the assignment
/// context into the range literals, exactly as in real `rand`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample(self, feed: &mut dyn FnMut() -> u64) -> T;
}

/// Draw a value in `[0, span)` without modulo bias (rejection sampling on the top
/// `span`-multiple).
fn below(span: u128, feed: &mut dyn FnMut() -> u64) -> u128 {
    debug_assert!(span > 0);
    let zone = u128::MAX - (u128::MAX % span);
    loop {
        let raw = ((feed() as u128) << 64) | feed() as u128;
        if raw < zone {
            return raw % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, feed: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + below(span, feed) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, feed: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + below(span, feed) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, feed: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (feed() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Seedable generators (the `rand` trait, reduced to the one constructor in use).
pub trait SeedableRng: Sized {
    /// Create a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: SplitMix64 (deterministic, 64-bit state).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(32..=255);
            assert!(v >= 32);
            let w: u32 = rng.gen_range(0..=0x000f_ffff);
            assert!(w <= 0x000f_ffff);
            let x: u16 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn gen_infers_integer_types() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: u16 = rng.gen();
        let _: u32 = rng.gen();
        let _: u64 = rng.gen();
        let _: u128 = rng.gen();
    }

    #[test]
    fn works_through_unsized_generic() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen::<u64>() ^ rng.gen_range(0u64..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        draw(&mut rng);
    }

    #[test]
    fn range_sampling_not_constant() {
        let mut rng = StdRng::seed_from_u64(5);
        let draws: Vec<u16> = (0..50).map(|_| rng.gen_range(0u16..512)).collect();
        assert!(draws.iter().any(|&v| v != draws[0]));
    }
}
