//! Property tests pinning the parser↔classifier boundary:
//!
//! * `encode` → `decode` round-trips every generated packet *exactly* — v4 and v6,
//!   plain, VLAN-tagged and VXLAN-encapsulated (the decoder must recover the
//!   innermost packet bit-for-bit, or wire-level replays would diverge from their
//!   key-level twins);
//! * arbitrary byte soup never panics `decode`/`decode_trace`/`extract_keys_into`
//!   — the parser is total on adversarial input, it only ever *returns* errors;
//! * for a well-formed frame, the key extracted through the wire path equals the
//!   key crafted directly from the same numeric header fields, under the schema of
//!   the packet's own address family.

use proptest::prelude::*;
use tse_packet::fields::{FieldSchema, Key};
use tse_packet::l4::IpProto;
use tse_packet::wire::{self, Encap};
use tse_packet::{extract_keys_into, ExtractScratch, FlowKey, Packet, PacketBuilder};

/// Widen a drawn 64-bit address into the generated family: a ULA-prefixed `u128` for
/// v6, a masked 32-bit address for v4.
fn addr(raw: u64, v6: bool) -> u128 {
    if v6 {
        (0xfd00_u128 << 112) | u128::from(raw)
    } else {
        u128::from(raw as u32)
    }
}

/// A packet from one generated header tuple. `flags` is `(udp, v6)` as integer draws
/// (the stub has no bool strategy).
fn build(
    (src, dst): (u64, u64),
    (sp, dp): (u16, u16),
    (udp, v6): (u8, u8),
    (ttl, payload): (u8, usize),
) -> Packet {
    let proto = if udp == 1 { IpProto::Udp } else { IpProto::Tcp };
    let b = if v6 == 1 {
        PacketBuilder::from_numeric_v6(addr(src, true), addr(dst, true), proto, sp, dp)
    } else {
        PacketBuilder::from_numeric_v4(src as u32, dst as u32, proto, sp, dp)
    };
    b.ttl(ttl.max(1)).payload_len(payload).build()
}

/// The encapsulation under test, picked by an integer draw.
fn encap_of((which, a, b): (u8, u32, u16)) -> Encap {
    match which % 3 {
        0 => Encap::None,
        1 => Encap::Vlan { tci: b },
        _ => Encap::Vxlan {
            outer_src: a,
            outer_dst: !a,
            vni: u32::from(b) & 0x00FF_FFFF,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The innermost packet survives serialisation exactly, whatever the envelope.
    #[test]
    fn encode_decode_round_trips_exactly(
        addrs in (0u64..=u64::MAX, 0u64..=u64::MAX),
        ports in (0u16..=u16::MAX, 0u16..=u16::MAX),
        flags in (0u8..2, 0u8..2),
        shape in (0u8..=u8::MAX, 0usize..256),
        env in (0u8..=u8::MAX, 0u32..=u32::MAX, 0u16..=u16::MAX),
    ) {
        let pkt = build(addrs, ports, flags, shape);
        prop_assert_eq!(&wire::decode(&wire::encode(&pkt)).unwrap(), &pkt);
        let encap = encap_of(env);
        prop_assert_eq!(&wire::decode(&encap.encode(&pkt)).unwrap(), &pkt);
    }

    /// Length-prefixed traces round-trip as a whole.
    #[test]
    fn trace_round_trips_exactly(
        draws in proptest::collection::vec(
            ((0u64..=u64::MAX, 0u64..=u64::MAX), (0u16..=u16::MAX, 0u16..=u16::MAX), (0u8..2, 0u8..2)),
            0..20,
        ),
    ) {
        let pkts: Vec<Packet> = draws
            .into_iter()
            .map(|(addrs, ports, flags)| build(addrs, ports, flags, (64, 16)))
            .collect();
        prop_assert_eq!(&wire::decode_trace(&wire::encode_trace(&pkts)).unwrap(), &pkts);
    }

    /// The parser is total: arbitrary bytes — including truncations of valid frames —
    /// may fail to decode, but they never panic, and the batch extractor accounts for
    /// every input frame exactly once.
    #[test]
    fn byte_soup_never_panics(
        soup in proptest::collection::vec(0u8..=u8::MAX, 0..200),
        addrs in (0u64..=u64::MAX, 0u64..=u64::MAX),
        cut in 0usize..200,
    ) {
        let _ = wire::decode(&soup);
        let _ = wire::decode_trace(&soup);
        // A truncated prefix of a well-formed frame must also be handled totally.
        let frame = wire::encode(&build(addrs, (1, 2), (0, 0), (64, 32)));
        let prefix = &frame[..cut.min(frame.len())];
        let _ = wire::decode(prefix);

        let mut scratch = ExtractScratch::new();
        extract_keys_into(&[&soup, prefix, &frame], &mut scratch);
        prop_assert_eq!(scratch.keys().len(), 3);
        prop_assert_eq!(scratch.counts().total(), 3);
        // The full frame always decodes; the batch counters must agree with the
        // per-slot results.
        prop_assert!(scratch.keys()[2].is_ok());
        let ok = scratch.keys().iter().filter(|k| k.is_ok()).count() as u64;
        prop_assert_eq!(scratch.counts().decoded, ok);
    }

    /// Wire extraction and direct key crafting agree: serialising a packet and
    /// re-parsing it yields the very key its numeric header fields spell, under the
    /// schema of its own address family.
    #[test]
    fn extracted_key_equals_crafted_key(
        addrs in (0u64..=u64::MAX, 0u64..=u64::MAX),
        ports in (0u16..=u16::MAX, 0u16..=u16::MAX),
        flags in (0u8..2, 0u8..2),
        env in (0u8..=u8::MAX, 0u32..=u32::MAX, 0u16..=u16::MAX),
    ) {
        let (udp, v6) = (flags.0 == 1, flags.1 == 1);
        let ttl = 61u8;
        let pkt = build(addrs, ports, flags, (ttl, 64));
        let frame = encap_of(env).encode(&pkt);

        let mut scratch = ExtractScratch::new();
        extract_keys_into(&[&frame], &mut scratch);
        let flow = scratch.keys()[0].expect("well-formed frame decodes");
        prop_assert_eq!(flow, FlowKey::from_packet(&pkt));
        prop_assert_eq!(flow.is_v6, v6);

        let schema = if v6 { FieldSchema::ovs_ipv6() } else { FieldSchema::ovs_ipv4() };
        let proto: u128 = if udp { 17 } else { 6 };
        let crafted = Key::from_values(
            &schema,
            &[
                addr(addrs.0, v6),
                addr(addrs.1, v6),
                proto,
                u128::from(ttl),
                u128::from(ports.0),
                u128::from(ports.1),
            ],
        );
        prop_assert_eq!(flow.to_key(&schema), crafted);
    }
}
