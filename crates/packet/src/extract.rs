//! Batched header extraction: raw frames → [`FlowKey`]s through the real wire parser.
//!
//! This is the ingestion hot path: a slice of frames goes in, per-frame extraction
//! results come out, and in steady state **nothing touches the heap** — the scratch
//! buffers are reused across batches ([`FlowKey`] and [`DecodeError`] are both `Copy`,
//! and [`crate::wire::decode`] itself never allocates), which `tests/alloc_audit.rs`
//! pins with a counting global allocator. Decode failures are not dropped: each batch
//! carries exact per-kind error counts ([`ExtractCounts`]) so the datapath can charge
//! malformed traffic like the real switch does.

use crate::flowkey::FlowKey;
use crate::wire::{self, DecodeError, WireTrace};

/// Per-batch extraction accounting: how many frames decoded and how many failed, by
/// failure kind. Mirrors the `decoded`/`truncated`/`bad_header`/`unsupported_ethertype`
/// counters in `tse-switch`'s `DatapathStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractCounts {
    /// Frames that decoded into a classifiable packet.
    pub decoded: u64,
    /// Frames shorter than their headers claim.
    pub truncated: u64,
    /// Frames with a header that failed validation.
    pub bad_header: u64,
    /// Frames with a non-IP ethertype.
    pub unsupported_ethertype: u64,
}

impl ExtractCounts {
    /// Total frames accounted (decoded + all error kinds).
    pub fn total(&self) -> u64 {
        let ExtractCounts {
            decoded,
            truncated,
            bad_header,
            unsupported_ethertype,
        } = *self;
        decoded + truncated + bad_header + unsupported_ethertype
    }

    /// Total frames that failed to decode.
    pub fn errors(&self) -> u64 {
        self.total() - self.decoded
    }

    fn note(&mut self, result: &Result<FlowKey, DecodeError>) {
        match result {
            Ok(_) => self.decoded += 1,
            Err(DecodeError::Truncated) => self.truncated += 1,
            Err(DecodeError::BadHeader) => self.bad_header += 1,
            Err(DecodeError::UnsupportedEtherType(_)) => self.unsupported_ethertype += 1,
        }
    }
}

/// Reusable scratch state for [`extract_keys_into`]: the per-frame results and the
/// batch's error accounting. Allocate once, reuse for every batch — after the first
/// batch at a given size the buffers are warm and extraction is allocation-free.
#[derive(Debug, Clone, Default)]
pub struct ExtractScratch {
    keys: Vec<Result<FlowKey, DecodeError>>,
    counts: ExtractCounts,
}

impl ExtractScratch {
    /// Fresh scratch state (no buffers warmed yet).
    pub fn new() -> Self {
        ExtractScratch::default()
    }

    /// Per-frame extraction results of the last batch, in frame order.
    pub fn keys(&self) -> &[Result<FlowKey, DecodeError>] {
        &self.keys
    }

    /// Error accounting of the last batch.
    pub fn counts(&self) -> ExtractCounts {
        self.counts
    }

    /// The successfully extracted keys of the last batch, in frame order.
    pub fn ok_keys(&self) -> impl Iterator<Item = &FlowKey> {
        self.keys.iter().filter_map(|r| r.as_ref().ok())
    }

    fn begin(&mut self) {
        self.keys.clear();
        self.counts = ExtractCounts::default();
    }

    fn push_frame(&mut self, frame: &[u8]) {
        let result = wire::decode(frame).map(|pkt| FlowKey::from_packet(&pkt));
        self.counts.note(&result);
        self.keys.push(result);
    }
}

/// Extract the flow key of every frame in `frames` into `scratch`, replacing the
/// previous batch's results. One parser pass per frame, no heap allocation once the
/// scratch buffers are warm.
pub fn extract_keys_into(frames: &[&[u8]], scratch: &mut ExtractScratch) {
    scratch.begin();
    for frame in frames {
        scratch.push_frame(frame);
    }
}

/// [`extract_keys_into`] over a [`WireTrace`]'s frames, without materialising a slice
/// of frame references.
pub fn extract_trace_into(trace: &WireTrace, scratch: &mut ExtractScratch) {
    scratch.begin();
    for frame in trace.frames() {
        scratch.push_frame(frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use crate::wire::Encap;

    #[test]
    fn batch_extraction_matches_per_frame_decode() {
        let packets: Vec<_> = (0..20)
            .map(|i| {
                PacketBuilder::tcp_v4([10, 0, 0, i], [10, 0, 0, 99], 1000 + i as u16, 80).build()
            })
            .collect();
        let frames: Vec<Vec<u8>> = packets.iter().map(wire::encode).collect();
        let refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();
        let mut scratch = ExtractScratch::new();
        extract_keys_into(&refs, &mut scratch);
        assert_eq!(scratch.keys().len(), 20);
        assert_eq!(scratch.counts().decoded, 20);
        assert_eq!(scratch.counts().errors(), 0);
        for (i, r) in scratch.keys().iter().enumerate() {
            assert_eq!(*r, Ok(FlowKey::from_packet(&packets[i])));
        }
        assert_eq!(scratch.ok_keys().count(), 20);
    }

    #[test]
    fn error_kinds_are_counted_per_batch() {
        let good = wire::encode(&PacketBuilder::udp_v4([1, 2, 3, 4], [5, 6, 7, 8], 1, 2).build());
        let truncated = good[..10].to_vec();
        let mut arp = vec![0u8; 60];
        arp[12] = 0x08;
        arp[13] = 0x06;
        let mut bad = good.clone();
        bad[14] = 0x66; // mangle the IPv4 version nibble
        let refs: Vec<&[u8]> = vec![&good, &truncated, &arp, &bad, &good];
        let mut scratch = ExtractScratch::new();
        extract_keys_into(&refs, &mut scratch);
        let counts = scratch.counts();
        assert_eq!(counts.decoded, 2);
        assert_eq!(counts.truncated, 1);
        assert_eq!(counts.unsupported_ethertype, 1);
        assert_eq!(counts.bad_header, 1);
        assert_eq!(counts.errors(), 3);
        assert_eq!(counts.total(), 5);
        // A following batch starts from zero (per-batch accounting).
        extract_keys_into(&[good.as_slice()], &mut scratch);
        assert_eq!(scratch.counts().decoded, 1);
        assert_eq!(scratch.counts().errors(), 0);
        assert_eq!(scratch.keys().len(), 1);
    }

    #[test]
    fn trace_extraction_sees_through_overlays() {
        let mut trace = WireTrace::new();
        let p4 = PacketBuilder::tcp_v4([10, 0, 0, 1], [10, 0, 0, 2], 5, 80).build();
        let p6 = PacketBuilder::udp_v6(
            [0xfd00, 0, 0, 0, 0, 0, 0, 1],
            [0xfd00, 0, 0, 0, 0, 0, 0, 2],
            7,
            53,
        )
        .build();
        trace.push_packet(0.0, &p4, Encap::None);
        trace.push_packet(0.1, &p4, Encap::Vlan { tci: 42 });
        trace.push_packet(
            0.2,
            &p6,
            Encap::Vxlan {
                outer_src: 1,
                outer_dst: 2,
                vni: 99,
            },
        );
        let mut scratch = ExtractScratch::new();
        extract_trace_into(&trace, &mut scratch);
        assert_eq!(scratch.counts().decoded, 3);
        let keys: Vec<_> = scratch.ok_keys().copied().collect();
        assert_eq!(keys[0], FlowKey::from_packet(&p4));
        assert_eq!(
            keys[1], keys[0],
            "VLAN tag must not change the extracted key"
        );
        assert_eq!(keys[2], FlowKey::from_packet(&p6));
        assert!(keys[2].is_v6);
    }
}
