//! Flow-key extraction: turning a concrete [`Packet`] into the generic field vectors the
//! classifier operates on.

use crate::fields::{FieldSchema, Key};
use crate::l4::IpProto;
use crate::{NetHeader, Packet};

/// The flow key the megaflow cache / slow path classify on. It mirrors the subset of the
/// OVS flow key the paper's ACLs (Fig. 6) can reference: addresses, protocol, TTL and
/// transport ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source IP address (IPv4 zero-extended to 128 bits, or native IPv6).
    pub ip_src: u128,
    /// Destination IP address.
    pub ip_dst: u128,
    /// IP protocol number.
    pub ip_proto: u8,
    /// TTL / hop limit.
    pub ttl: u8,
    /// Transport source port (0 for port-less protocols).
    pub tp_src: u16,
    /// Transport destination port (0 for port-less protocols).
    pub tp_dst: u16,
    /// True for IPv6 packets.
    pub is_v6: bool,
}

impl FlowKey {
    /// Extract the flow key from a packet.
    pub fn from_packet(pkt: &Packet) -> Self {
        let (ip_src, ip_dst, ip_proto, ttl, is_v6) = match &pkt.net {
            NetHeader::V4(h) => (
                u128::from(h.src_u32()),
                u128::from(h.dst_u32()),
                h.proto.to_u8(),
                h.ttl,
                false,
            ),
            NetHeader::V6(h) => (
                h.src_u128(),
                h.dst_u128(),
                h.proto.to_u8(),
                h.hop_limit,
                true,
            ),
        };
        FlowKey {
            ip_src,
            ip_dst,
            ip_proto,
            ttl,
            tp_src: pkt.l4.src_port(),
            tp_dst: pkt.l4.dst_port(),
            is_v6,
        }
    }

    /// The schema this key should be classified under.
    pub fn schema(&self) -> FieldSchema {
        if self.is_v6 {
            FieldSchema::ovs_ipv6()
        } else {
            FieldSchema::ovs_ipv4()
        }
    }

    /// Convert to a generic [`Key`] under the given schema. The schema must be one of
    /// [`FieldSchema::ovs_ipv4`] / [`FieldSchema::ovs_ipv6`] (six fields in the canonical
    /// order).
    pub fn to_key(&self, schema: &FieldSchema) -> Key {
        assert_eq!(
            schema.field_count(),
            6,
            "FlowKey::to_key expects the OVS schema"
        );
        Key::from_values(
            schema,
            &[
                self.ip_src,
                self.ip_dst,
                u128::from(self.ip_proto),
                u128::from(self.ttl),
                u128::from(self.tp_src),
                u128::from(self.tp_dst),
            ],
        )
    }

    /// True if this key carries TCP or UDP ports.
    pub fn has_ports(&self) -> bool {
        matches!(IpProto::from_u8(self.ip_proto), IpProto::Tcp | IpProto::Udp)
    }
}

/// The microflow-cache key: an exact match over *all* header fields of the connection,
/// including the noise fields (TTL). This is why random per-packet noise "uses up the
/// microflow cache" (§5.2): every distinct noise value is a distinct microflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MicroflowKey {
    /// The classification flow key.
    pub flow: FlowKey,
    /// Extra per-packet entropy the microflow cache also keys on (e.g. IP id / TCP seq);
    /// collapsed to a single value here.
    pub entropy: u64,
}

impl MicroflowKey {
    /// Extract the microflow key from a packet.
    pub fn from_packet(pkt: &Packet) -> Self {
        let entropy = match (&pkt.net, &pkt.l4) {
            (NetHeader::V4(h), crate::L4Header::Tcp { seq, .. }) => {
                (u64::from(h.identification) << 32) | u64::from(*seq)
            }
            (NetHeader::V4(h), _) => u64::from(h.identification),
            (NetHeader::V6(h), _) => u64::from(h.flow_label),
        };
        MicroflowKey {
            flow: FlowKey::from_packet(pkt),
            entropy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;

    #[test]
    fn flow_key_from_tcp_v4() {
        let p = PacketBuilder::tcp_v4([10, 0, 0, 1], [10, 0, 0, 2], 34521, 443).build();
        let k = FlowKey::from_packet(&p);
        assert_eq!(k.ip_src, 0x0a000001);
        assert_eq!(k.ip_dst, 0x0a000002);
        assert_eq!(k.ip_proto, 6);
        assert_eq!(k.tp_src, 34521);
        assert_eq!(k.tp_dst, 443);
        assert!(!k.is_v6);
        assert!(k.has_ports());
    }

    #[test]
    fn to_key_matches_schema_layout() {
        let p = PacketBuilder::udp_v4([1, 2, 3, 4], [5, 6, 7, 8], 1000, 53)
            .ttl(17)
            .build();
        let k = FlowKey::from_packet(&p);
        let schema = FieldSchema::ovs_ipv4();
        let key = k.to_key(&schema);
        assert_eq!(key.get(0), 0x01020304);
        assert_eq!(key.get(1), 0x05060708);
        assert_eq!(key.get(2), 17); // udp
        assert_eq!(key.get(3), 17); // ttl
        assert_eq!(key.get(4), 1000);
        assert_eq!(key.get(5), 53);
    }

    #[test]
    fn microflow_key_differs_with_noise() {
        let a = PacketBuilder::tcp_v4([10, 0, 0, 1], [10, 0, 0, 2], 1, 2)
            .ip_id(1)
            .build();
        let b = PacketBuilder::tcp_v4([10, 0, 0, 1], [10, 0, 0, 2], 1, 2)
            .ip_id(2)
            .build();
        assert_eq!(FlowKey::from_packet(&a), FlowKey::from_packet(&b));
        assert_ne!(MicroflowKey::from_packet(&a), MicroflowKey::from_packet(&b));
    }

    #[test]
    fn ipv6_flow_key() {
        let p = PacketBuilder::tcp_v6(
            [0xfd00, 0, 0, 0, 0, 0, 0, 1],
            [0xfd00, 0, 0, 0, 0, 0, 0, 2],
            500,
            80,
        )
        .build();
        let k = FlowKey::from_packet(&p);
        assert!(k.is_v6);
        assert_eq!(
            k.schema().total_width(),
            FieldSchema::ovs_ipv6().total_width()
        );
        assert_eq!(k.ip_src & 0xffff, 1);
    }
}
