//! Receive-Side Scaling (RSS) hashing: the NIC-side primitive that decides which PMD
//! thread — and therefore which *private* megaflow cache — a packet lands on.
//!
//! In the paper's OVS-DPDK testbed every PMD thread polls its own RX queue and owns its
//! own megaflow cache; the NIC spreads flows across queues by hashing the 5-tuple.
//! Both sides of the reproduction need the exact same hash: the sharded datapath
//! (`tse-switch`) to steer packets, and the attack generators (`tse-attack`) to craft
//! keys that *land on a chosen shard* (the shard-pinned explosion) or that spray all
//! shards evenly. Keeping the function here, below both crates, keeps them in
//! agreement by construction.
//!
//! The hash is FNV-1a over the selected field values — deterministic across processes
//! (no per-process `RandomState`), cheap, and well-spread for the low shard counts
//! (2–16 PMDs) the experiments model. Real NICs use Toeplitz; any fixed hash of the
//! same tuple reproduces the behaviour that matters here: a *stable, total* partition
//! of the flow space that an attacker who knows the hash can aim.

use crate::fields::{FieldSchema, Key};

/// The canonical 5-tuple field names RSS hashes over, in schema order.
const RSS_FIELD_NAMES: [&str; 5] = ["ip_src", "ip_dst", "ip_proto", "tp_src", "tp_dst"];
/// IPv6 variants of the address fields.
const RSS_FIELD_NAMES_V6: [&str; 2] = ["ip6_src", "ip6_dst"];

/// The indices of the fields RSS hashes for `schema`: the 5-tuple (addresses, protocol,
/// ports) for the OVS IPv4/IPv6 schemas — noise fields such as TTL are *not* part of
/// the hash, exactly like hardware RSS — or every field for schemas without 5-tuple
/// names (the HYP teaching protocols), so steering is still a total partition there.
pub fn rss_fields(schema: &FieldSchema) -> Vec<usize> {
    let mut out: Vec<usize> = RSS_FIELD_NAMES
        .iter()
        .chain(RSS_FIELD_NAMES_V6.iter())
        .filter_map(|name| schema.field_index(name))
        .collect();
    if out.is_empty() {
        out = (0..schema.field_count()).collect();
    }
    out.sort_unstable();
    out
}

/// The default (unrandomised) hash key: [`rss_hash_keyed`] under this key is exactly
/// the historical [`rss_hash`], so everything built before key rotation existed keeps
/// hashing identically.
pub const DEFAULT_HASH_KEY: u64 = 0;

/// FNV-1a over the values of `fields` (indices into `key`), in the given order.
///
/// Deterministic: the same key and field list always hash identically, across calls
/// and across processes. Equivalent to [`rss_hash_keyed`] with [`DEFAULT_HASH_KEY`].
pub fn rss_hash(key: &Key, fields: &[usize]) -> u64 {
    rss_hash_keyed(key, fields, DEFAULT_HASH_KEY)
}

/// Keyed FNV-1a: like [`rss_hash`], but the `hash_key` is folded into the hash state
/// before any field value — the model of the NIC's (Toeplitz) RSS *key*, the secret an
/// operator can rotate so an attacker who solved the placement function yesterday can
/// no longer aim at a chosen queue today.
///
/// `hash_key == `[`DEFAULT_HASH_KEY`] contributes nothing, so the unkeyed hash is the
/// `0` point of the keyed family; any other key permutes placements pseudo-randomly
/// while remaining a stable, total partition of the flow space.
///
/// Under any non-default key, the FNV accumulator is additionally passed through a
/// xorshift-multiply finalizer. This matters for the rotation defense: raw FNV-1a
/// taken modulo a power-of-two shard count is *affine over the low bits* (each byte
/// step is XOR-then-multiply-by-an-odd-prime, and multiplication mod 2^k is linear
/// over GF(2)^k for k ≤ 2), so a key prefix alone would shift **every** flow's
/// placement by the same XOR constant — victim and shard-pinned attacker would move
/// *together* and the "rotation" would be cosmetic. The finalizer folds the high bits
/// into the low ones, making each flow's displacement under a new key independent.
/// The default key skips both the prefix and the finalizer, so unkeyed placements are
/// bit-identical to the historical [`rss_hash`].
pub fn rss_hash_keyed(key: &Key, fields: &[usize], hash_key: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let keyed = hash_key != DEFAULT_HASH_KEY;
    if keyed {
        for byte in hash_key.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    for &f in fields {
        let v = key.get(f);
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    if keyed {
        // See the doc comment for why the finalizer is load-bearing.
        h = splitmix64_mix(h);
    }
    h
}

/// The SplitMix64 output-mixing function: a bijective xorshift-multiply avalanche over
/// all 64 bits. Used as the keyed-hash finalizer above (so placement mod a small shard
/// count depends on the whole state, not just the affine low bits of raw FNV) and as
/// the step function of deterministic key-rotation schedules.
pub fn splitmix64_mix(z: u64) -> u64 {
    let z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The shard (RX queue / PMD thread) a key is steered to among `n_shards`, under the
/// default hash key.
///
/// # Panics
/// Panics if `n_shards` is zero.
pub fn shard_of(key: &Key, fields: &[usize], n_shards: usize) -> usize {
    shard_of_keyed(key, fields, n_shards, DEFAULT_HASH_KEY)
}

/// The shard a key is steered to among `n_shards` under an explicit `hash_key` (see
/// [`rss_hash_keyed`]).
///
/// # Panics
/// Panics if `n_shards` is zero.
pub fn shard_of_keyed(key: &Key, fields: &[usize], n_shards: usize, hash_key: u64) -> usize {
    assert!(n_shards > 0, "shard count must be positive");
    (rss_hash_keyed(key, fields, hash_key) % n_shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::FieldSchema;

    #[test]
    fn ipv4_schema_hashes_the_5_tuple_only() {
        let schema = FieldSchema::ovs_ipv4();
        let fields = rss_fields(&schema);
        assert_eq!(fields.len(), 5);
        assert!(!fields.contains(&schema.field_index("ttl").unwrap()));
        // TTL (noise) must not influence steering.
        let mut a = schema.zero_value();
        a.set(schema.field_index("tp_dst").unwrap(), 80);
        let mut b = a.clone();
        b.set(schema.field_index("ttl").unwrap(), 97);
        assert_eq!(rss_hash(&a, &fields), rss_hash(&b, &fields));
    }

    #[test]
    fn hyp_schema_falls_back_to_all_fields() {
        let schema = FieldSchema::hyp();
        assert_eq!(rss_fields(&schema), vec![0]);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let schema = FieldSchema::ovs_ipv4();
        let fields = rss_fields(&schema);
        for n in 1..=8usize {
            for v in 0..64u128 {
                let mut k = schema.zero_value();
                k.set(0, v * 0x0101);
                k.set(5, v);
                let s = shard_of(&k, &fields, n);
                assert!(s < n);
                assert_eq!(s, shard_of(&k, &fields, n), "stable across calls");
            }
        }
    }

    #[test]
    fn default_hash_key_is_the_unkeyed_hash() {
        let schema = FieldSchema::ovs_ipv4();
        let fields = rss_fields(&schema);
        for v in 0..32u128 {
            let mut k = schema.zero_value();
            k.set(0, v * 0x1_0001);
            k.set(4, v);
            assert_eq!(
                rss_hash(&k, &fields),
                rss_hash_keyed(&k, &fields, DEFAULT_HASH_KEY)
            );
        }
    }

    #[test]
    fn rotated_hash_key_permutes_placements_but_stays_a_partition() {
        let schema = FieldSchema::ovs_ipv4();
        let fields = rss_fields(&schema);
        let tp_dst = schema.field_index("tp_dst").unwrap();
        let keys: Vec<Key> = (0..256u128)
            .map(|p| {
                let mut k = schema.zero_value();
                k.set(tp_dst, p);
                k
            })
            .collect();
        let mut moved = 0;
        for k in &keys {
            let before = shard_of_keyed(k, &fields, 4, DEFAULT_HASH_KEY);
            let after = shard_of_keyed(k, &fields, 4, 0x5eed_cafe_f00d_beef);
            assert!(after < 4);
            // Stable under the new key across calls.
            assert_eq!(after, shard_of_keyed(k, &fields, 4, 0x5eed_cafe_f00d_beef));
            if before != after {
                moved += 1;
            }
        }
        // A rotation must actually move a large fraction of the flow space
        // (~3/4 in expectation for 4 shards).
        assert!(moved > 128, "rotation moved only {moved}/256 keys");
    }

    #[test]
    fn hash_spreads_distinct_ports_across_shards() {
        // Sanity: 256 distinct destination ports should not all collapse onto one of
        // 4 shards (an attacker must *work* to pin a shard).
        let schema = FieldSchema::ovs_ipv4();
        let fields = rss_fields(&schema);
        let tp_dst = schema.field_index("tp_dst").unwrap();
        let mut seen = [0usize; 4];
        for p in 0..256u128 {
            let mut k = schema.zero_value();
            k.set(tp_dst, p);
            seen[shard_of(&k, &fields, 4)] += 1;
        }
        for (i, &count) in seen.iter().enumerate() {
            assert!(count > 16, "shard {i} starved: {seen:?}");
        }
    }
}
