//! Receive-Side Scaling (RSS) hashing: the NIC-side primitive that decides which PMD
//! thread — and therefore which *private* megaflow cache — a packet lands on.
//!
//! In the paper's OVS-DPDK testbed every PMD thread polls its own RX queue and owns its
//! own megaflow cache; the NIC spreads flows across queues by hashing the 5-tuple.
//! Both sides of the reproduction need the exact same hash: the sharded datapath
//! (`tse-switch`) to steer packets, and the attack generators (`tse-attack`) to craft
//! keys that *land on a chosen shard* (the shard-pinned explosion) or that spray all
//! shards evenly. Keeping the function here, below both crates, keeps them in
//! agreement by construction.
//!
//! The hash is FNV-1a over the selected field values — deterministic across processes
//! (no per-process `RandomState`), cheap, and well-spread for the low shard counts
//! (2–16 PMDs) the experiments model. Real NICs use Toeplitz; any fixed hash of the
//! same tuple reproduces the behaviour that matters here: a *stable, total* partition
//! of the flow space that an attacker who knows the hash can aim.

use crate::fields::{FieldSchema, Key};

/// The canonical 5-tuple field names RSS hashes over, in schema order.
const RSS_FIELD_NAMES: [&str; 5] = ["ip_src", "ip_dst", "ip_proto", "tp_src", "tp_dst"];
/// IPv6 variants of the address fields.
const RSS_FIELD_NAMES_V6: [&str; 2] = ["ip6_src", "ip6_dst"];

/// The indices of the fields RSS hashes for `schema`: the 5-tuple (addresses, protocol,
/// ports) for the OVS IPv4/IPv6 schemas — noise fields such as TTL are *not* part of
/// the hash, exactly like hardware RSS — or every field for schemas without 5-tuple
/// names (the HYP teaching protocols), so steering is still a total partition there.
pub fn rss_fields(schema: &FieldSchema) -> Vec<usize> {
    let mut out: Vec<usize> = RSS_FIELD_NAMES
        .iter()
        .chain(RSS_FIELD_NAMES_V6.iter())
        .filter_map(|name| schema.field_index(name))
        .collect();
    if out.is_empty() {
        out = (0..schema.field_count()).collect();
    }
    out.sort_unstable();
    out
}

/// FNV-1a over the values of `fields` (indices into `key`), in the given order.
///
/// Deterministic: the same key and field list always hash identically, across calls
/// and across processes.
pub fn rss_hash(key: &Key, fields: &[usize]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &f in fields {
        let v = key.get(f);
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// The shard (RX queue / PMD thread) a key is steered to among `n_shards`.
///
/// # Panics
/// Panics if `n_shards` is zero.
pub fn shard_of(key: &Key, fields: &[usize], n_shards: usize) -> usize {
    assert!(n_shards > 0, "shard count must be positive");
    (rss_hash(key, fields) % n_shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::FieldSchema;

    #[test]
    fn ipv4_schema_hashes_the_5_tuple_only() {
        let schema = FieldSchema::ovs_ipv4();
        let fields = rss_fields(&schema);
        assert_eq!(fields.len(), 5);
        assert!(!fields.contains(&schema.field_index("ttl").unwrap()));
        // TTL (noise) must not influence steering.
        let mut a = schema.zero_value();
        a.set(schema.field_index("tp_dst").unwrap(), 80);
        let mut b = a.clone();
        b.set(schema.field_index("ttl").unwrap(), 97);
        assert_eq!(rss_hash(&a, &fields), rss_hash(&b, &fields));
    }

    #[test]
    fn hyp_schema_falls_back_to_all_fields() {
        let schema = FieldSchema::hyp();
        assert_eq!(rss_fields(&schema), vec![0]);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let schema = FieldSchema::ovs_ipv4();
        let fields = rss_fields(&schema);
        for n in 1..=8usize {
            for v in 0..64u128 {
                let mut k = schema.zero_value();
                k.set(0, v * 0x0101);
                k.set(5, v);
                let s = shard_of(&k, &fields, n);
                assert!(s < n);
                assert_eq!(s, shard_of(&k, &fields, n), "stable across calls");
            }
        }
    }

    #[test]
    fn hash_spreads_distinct_ports_across_shards() {
        // Sanity: 256 distinct destination ports should not all collapse onto one of
        // 4 shards (an attacker must *work* to pin a shard).
        let schema = FieldSchema::ovs_ipv4();
        let fields = rss_fields(&schema);
        let tp_dst = schema.field_index("tp_dst").unwrap();
        let mut seen = [0usize; 4];
        for p in 0..256u128 {
            let mut k = schema.zero_value();
            k.set(tp_dst, p);
            seen[shard_of(&k, &fields, 4)] += 1;
        }
        for (i, &count) in seen.iter().enumerate() {
            assert!(count > 16, "shard {i} starved: {seen:?}");
        }
    }
}
