//! Packet crafting: the builder used by traffic generators and the attack trace
//! generators.

use std::net::{Ipv4Addr, Ipv6Addr};

use rand::Rng;

use crate::ethernet::{EtherType, EthernetHeader, MacAddr};
use crate::ipv4::Ipv4Header;
use crate::ipv6::Ipv6Header;
use crate::l4::{IpProto, L4Header};
use crate::{NetHeader, Packet};

/// Default payload length of attack packets: small, because the attack is low-rate and
/// the payload content is irrelevant (§1).
pub const DEFAULT_ATTACK_PAYLOAD: usize = 26;

/// Builder for crafting packets. All attack and victim traffic in the reproduction is
/// produced through this type.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    eth: EthernetHeader,
    net: NetHeader,
    l4: L4Header,
    payload_len: usize,
}

impl PacketBuilder {
    /// A TCP/IPv4 packet between the given addresses and ports.
    pub fn tcp_v4(src: [u8; 4], dst: [u8; 4], src_port: u16, dst_port: u16) -> Self {
        PacketBuilder {
            eth: EthernetHeader::default(),
            net: NetHeader::V4(Ipv4Header::new(src.into(), dst.into(), IpProto::Tcp)),
            l4: L4Header::tcp(src_port, dst_port),
            payload_len: DEFAULT_ATTACK_PAYLOAD,
        }
    }

    /// A UDP/IPv4 packet between the given addresses and ports.
    pub fn udp_v4(src: [u8; 4], dst: [u8; 4], src_port: u16, dst_port: u16) -> Self {
        PacketBuilder {
            eth: EthernetHeader::default(),
            net: NetHeader::V4(Ipv4Header::new(src.into(), dst.into(), IpProto::Udp)),
            l4: L4Header::udp(src_port, dst_port),
            payload_len: DEFAULT_ATTACK_PAYLOAD,
        }
    }

    /// A TCP/IPv6 packet (segments given per 16-bit group).
    pub fn tcp_v6(src: [u16; 8], dst: [u16; 8], src_port: u16, dst_port: u16) -> Self {
        PacketBuilder {
            eth: EthernetHeader {
                ethertype: EtherType::Ipv6,
                ..EthernetHeader::default()
            },
            net: NetHeader::V6(Ipv6Header::new(
                Ipv6Addr::from(src),
                Ipv6Addr::from(dst),
                IpProto::Tcp,
            )),
            l4: L4Header::tcp(src_port, dst_port),
            payload_len: DEFAULT_ATTACK_PAYLOAD,
        }
    }

    /// A UDP/IPv6 packet.
    pub fn udp_v6(src: [u16; 8], dst: [u16; 8], src_port: u16, dst_port: u16) -> Self {
        PacketBuilder {
            eth: EthernetHeader {
                ethertype: EtherType::Ipv6,
                ..EthernetHeader::default()
            },
            net: NetHeader::V6(Ipv6Header::new(
                Ipv6Addr::from(src),
                Ipv6Addr::from(dst),
                IpProto::Udp,
            )),
            l4: L4Header::udp(src_port, dst_port),
            payload_len: DEFAULT_ATTACK_PAYLOAD,
        }
    }

    /// A packet built directly from raw IPv4 address/port integers — convenient for the
    /// attack generators which work on numeric header values.
    pub fn from_numeric_v4(
        ip_src: u32,
        ip_dst: u32,
        proto: IpProto,
        src_port: u16,
        dst_port: u16,
    ) -> Self {
        let src = Ipv4Addr::from(ip_src);
        let dst = Ipv4Addr::from(ip_dst);
        let l4 = match proto {
            IpProto::Udp => L4Header::udp(src_port, dst_port),
            _ => L4Header::tcp(src_port, dst_port),
        };
        PacketBuilder {
            eth: EthernetHeader::default(),
            net: NetHeader::V4(Ipv4Header::new(src, dst, proto)),
            l4,
            payload_len: DEFAULT_ATTACK_PAYLOAD,
        }
    }

    /// A packet built directly from raw IPv6 address/port integers — the v6 counterpart
    /// of [`PacketBuilder::from_numeric_v4`] for attack generators working on numeric
    /// header values.
    pub fn from_numeric_v6(
        ip_src: u128,
        ip_dst: u128,
        proto: IpProto,
        src_port: u16,
        dst_port: u16,
    ) -> Self {
        let l4 = match proto {
            IpProto::Udp => L4Header::udp(src_port, dst_port),
            _ => L4Header::tcp(src_port, dst_port),
        };
        PacketBuilder {
            eth: EthernetHeader {
                ethertype: EtherType::Ipv6,
                ..EthernetHeader::default()
            },
            net: NetHeader::V6(Ipv6Header::new(
                Ipv6Addr::from(ip_src),
                Ipv6Addr::from(ip_dst),
                proto,
            )),
            l4,
            payload_len: DEFAULT_ATTACK_PAYLOAD,
        }
    }

    /// Set the source MAC.
    pub fn src_mac(mut self, mac: MacAddr) -> Self {
        self.eth.src = mac;
        self
    }

    /// Set the destination MAC.
    pub fn dst_mac(mut self, mac: MacAddr) -> Self {
        self.eth.dst = mac;
        self
    }

    /// Set the TTL / hop limit.
    pub fn ttl(mut self, ttl: u8) -> Self {
        match &mut self.net {
            NetHeader::V4(h) => h.ttl = ttl,
            NetHeader::V6(h) => h.hop_limit = ttl,
        }
        self
    }

    /// Set the IPv4 identification field (ignored for IPv6).
    pub fn ip_id(mut self, id: u16) -> Self {
        if let NetHeader::V4(h) = &mut self.net {
            h.identification = id;
        }
        self
    }

    /// Set TCP flags (ignored for non-TCP).
    pub fn tcp_flags(mut self, new_flags: u8) -> Self {
        if let L4Header::Tcp { flags, .. } = &mut self.l4 {
            *flags = new_flags;
        }
        self
    }

    /// Set the payload length in bytes.
    pub fn payload_len(mut self, len: usize) -> Self {
        self.payload_len = len;
        self
    }

    /// Randomise the "unimportant" noise fields (TTL, IP id / flow label, TCP sequence
    /// number) so that every packet is a distinct microflow. This reproduces the
    /// "additional random noise added to unimportant header fields ... to increase the
    /// entropy hence using up the microflow cache" of §5.2.
    pub fn randomize_noise<R: Rng + ?Sized>(mut self, rng: &mut R) -> Self {
        match &mut self.net {
            NetHeader::V4(h) => {
                h.ttl = rng.gen_range(32..=255);
                h.identification = rng.gen();
            }
            NetHeader::V6(h) => {
                h.hop_limit = rng.gen_range(32..=255);
                h.flow_label = rng.gen_range(0..=0x000f_ffff);
            }
        }
        if let L4Header::Tcp { seq, .. } = &mut self.l4 {
            *seq = rng.gen();
        }
        self
    }

    /// Finalise the packet.
    pub fn build(self) -> Packet {
        Packet {
            eth: self.eth,
            net: self.net,
            l4: self.l4,
            payload_len: self.payload_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowkey::{FlowKey, MicroflowKey};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builder_sets_fields() {
        let p = PacketBuilder::tcp_v4([10, 0, 0, 1], [10, 0, 0, 2], 1234, 80)
            .ttl(7)
            .tcp_flags(0x02)
            .payload_len(500)
            .build();
        let k = FlowKey::from_packet(&p);
        assert_eq!(k.ttl, 7);
        assert_eq!(p.payload_len, 500);
        match p.l4 {
            L4Header::Tcp { flags, .. } => assert_eq!(flags, 0x02),
            _ => panic!("expected tcp"),
        }
    }

    #[test]
    fn noise_changes_microflow_not_flow() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = PacketBuilder::udp_v4([10, 0, 0, 1], [10, 0, 0, 2], 100, 200);
        let a = base.clone().randomize_noise(&mut rng).build();
        let b = base.clone().randomize_noise(&mut rng).build();
        let fa = FlowKey::from_packet(&a);
        let fb = FlowKey::from_packet(&b);
        // Addresses/ports/proto identical ...
        assert_eq!(
            (fa.ip_src, fa.ip_dst, fa.tp_src, fa.tp_dst),
            (fb.ip_src, fb.ip_dst, fb.tp_src, fb.tp_dst)
        );
        // ... but microflow keys differ (TTL/id noise).
        assert_ne!(MicroflowKey::from_packet(&a), MicroflowKey::from_packet(&b));
    }

    #[test]
    fn from_numeric_roundtrip() {
        let p =
            PacketBuilder::from_numeric_v4(0x0a000001, 0x0a000002, IpProto::Udp, 53, 4000).build();
        let k = FlowKey::from_packet(&p);
        assert_eq!(k.ip_src, 0x0a000001);
        assert_eq!(k.ip_proto, 17);
        assert_eq!(k.tp_dst, 4000);
    }

    #[test]
    fn v6_builder() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = PacketBuilder::udp_v6([1, 0, 0, 0, 0, 0, 0, 2], [3, 0, 0, 0, 0, 0, 0, 4], 5, 6)
            .randomize_noise(&mut rng)
            .build();
        assert!(!p.is_ipv4());
        let k = FlowKey::from_packet(&p);
        assert!(k.is_v6);
        assert_eq!(k.tp_src, 5);
    }
}
