//! Wire-format serialisation of whole packets and a minimal in-memory trace format.
//!
//! The paper replays attack traces from pcap files (§5.4). The reproduction keeps traces
//! in memory, but this module provides a byte-accurate encode/decode path so that the
//! switch can also be driven from serialised frames (and so the header layout code is
//! actually exercised end-to-end). Three layers:
//!
//! * [`encode`]/[`decode`] — one frame ↔ one [`Packet`]. The decoder strips 802.1Q VLAN
//!   tags and decapsulates VXLAN tunnels, so the classified packet is always the
//!   *innermost* IP packet, exactly like OVS's flow extraction on overlay traffic;
//! * [`Encap`] — the overlay encapsulation builders (plain, VLAN tag, VXLAN tunnel).
//!   Under a tunnel the outer header is fixed by the virtual network while the attacker
//!   controls the *inner* header — the field split the overlay scenarios explore;
//! * [`WireTrace`] — a pcap-style frame buffer: timestamped frames packed back-to-back
//!   in one contiguous allocation, the replay format the wire-level traffic sources use.

use crate::ethernet::{EtherType, EthernetHeader, MacAddr, ETHERNET_HEADER_LEN};
use crate::ipv4::{Ipv4Header, IPV4_HEADER_LEN};
use crate::ipv6::Ipv6Header;
use crate::l4::{IpProto, L4Header, UDP_HEADER_LEN};
use crate::{NetHeader, Packet};

/// Bytes of an 802.1Q tag (TCI + inner ethertype) following the Ethernet header.
pub const VLAN_TAG_LEN: usize = 4;

/// The IANA VXLAN UDP destination port.
pub const VXLAN_PORT: u16 = 4789;

/// Bytes of a VXLAN header (flags, reserved, 24-bit VNI, reserved).
pub const VXLAN_HEADER_LEN: usize = 8;

/// Maximum number of nested tunnels the decoder will unwrap. A deeper frame is rejected
/// as [`DecodeError::BadHeader`], keeping `decode` total on adversarial input.
pub const MAX_ENCAP_DEPTH: usize = 4;

/// Errors returned when decoding a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than the headers claim.
    Truncated,
    /// The L2 ethertype is not IPv4 or IPv6.
    UnsupportedEtherType(u16),
    /// A header failed validation (bad version nibble or checksum), or the encapsulation
    /// nesting exceeds [`MAX_ENCAP_DEPTH`].
    BadHeader,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated frame"),
            DecodeError::UnsupportedEtherType(t) => write!(f, "unsupported ethertype 0x{t:04x}"),
            DecodeError::BadHeader => write!(f, "malformed header"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Why a frame could not be classified by the experiment's datapath: either the wire
/// parser rejected it, or it decoded cleanly into an address family the installed
/// table's schema cannot express. The event-driven runner charges both kinds to shard 0,
/// like the existing schema-mismatch path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// The wire parser rejected the frame.
    Decode(DecodeError),
    /// The frame decoded, but its family (IPv4/IPv6) does not match the schema the
    /// experiment classifies under.
    FamilyMismatch,
}

impl From<DecodeError> for WireFault {
    fn from(e: DecodeError) -> Self {
        WireFault::Decode(e)
    }
}

impl std::fmt::Display for WireFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireFault::Decode(e) => write!(f, "{e}"),
            WireFault::FamilyMismatch => write!(f, "address family does not match the schema"),
        }
    }
}

/// Encode a packet into a wire-format Ethernet frame. The payload is filled with zeros
/// (its content never matters to classification).
pub fn encode(pkt: &Packet) -> Vec<u8> {
    let mut buf = Vec::with_capacity(pkt.wire_len());
    encode_into(pkt, &mut buf);
    buf
}

/// Append the wire encoding of `pkt` to `out` — the reusable-buffer form of [`encode`]
/// the lazy wire generators use to serialise without a per-packet allocation.
pub fn encode_into(pkt: &Packet, out: &mut Vec<u8>) {
    pkt.eth.encode(out);
    encode_l3_into(pkt, out);
}

/// Network layer, transport layer and zero payload (everything after L2).
fn encode_l3_into(pkt: &Packet, out: &mut Vec<u8>) {
    let l4_plus_payload = pkt.l4.header_len() + pkt.payload_len;
    match &pkt.net {
        NetHeader::V4(h) => h.encode(l4_plus_payload, out),
        NetHeader::V6(h) => h.encode(l4_plus_payload, out),
    }
    pkt.l4.encode(pkt.payload_len, out);
    out.resize(out.len() + pkt.payload_len, 0);
}

/// Overlay encapsulation applied when a packet is serialised to the wire.
///
/// The split matters to the attack surface: a VLAN tag leaves every classified field
/// under attacker control, while a VXLAN tunnel fixes the *outer* header (the virtual
/// network's VTEP addresses and VNI) and the attacker controls only the *inner* frame —
/// which is exactly what the decoder extracts and the datapath classifies, so the
/// explosion passes through the overlay untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encap {
    /// No encapsulation: [`encode`] as-is.
    None,
    /// An 802.1Q VLAN tag with the given TCI (PCP/DEI/VLAN-ID).
    Vlan {
        /// The 16-bit tag control information.
        tci: u16,
    },
    /// A VXLAN tunnel: outer Ethernet + IPv4 + UDP (destination port 4789) + VXLAN
    /// header around the full inner frame.
    Vxlan {
        /// Outer (VTEP) source IPv4 address.
        outer_src: u32,
        /// Outer (VTEP) destination IPv4 address.
        outer_dst: u32,
        /// The 24-bit VXLAN network identifier.
        vni: u32,
    },
}

impl Encap {
    /// Wire bytes this encapsulation adds on top of the inner frame.
    pub fn overhead(&self) -> usize {
        match self {
            Encap::None => 0,
            Encap::Vlan { .. } => VLAN_TAG_LEN,
            Encap::Vxlan { .. } => {
                ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN + VXLAN_HEADER_LEN
            }
        }
    }

    /// Append the encapsulated wire encoding of `pkt` to `out`.
    pub fn encode_into(&self, pkt: &Packet, out: &mut Vec<u8>) {
        match *self {
            Encap::None => encode_into(pkt, out),
            Encap::Vlan { tci } => {
                out.extend_from_slice(&pkt.eth.dst.0);
                out.extend_from_slice(&pkt.eth.src.0);
                out.extend_from_slice(&EtherType::Vlan.to_u16().to_be_bytes());
                out.extend_from_slice(&tci.to_be_bytes());
                out.extend_from_slice(&pkt.eth.ethertype.to_u16().to_be_bytes());
                encode_l3_into(pkt, out);
            }
            Encap::Vxlan {
                outer_src,
                outer_dst,
                vni,
            } => {
                let udp_payload = VXLAN_HEADER_LEN + pkt.wire_len();
                // Outer frame: VTEP-to-VTEP Ethernet + IPv4 + UDP. The UDP source port
                // is derived from the VNI the way real VTEPs derive it from a flow hash
                // — deterministic here so traces replay bit-identically.
                EthernetHeader::new(MacAddr::local(0xA0), MacAddr::local(0xA1), EtherType::Ipv4)
                    .encode(out);
                Ipv4Header::new(outer_src.into(), outer_dst.into(), IpProto::Udp)
                    .encode(UDP_HEADER_LEN + udp_payload, out);
                L4Header::udp(0xC000 | (vni & 0x3FFF) as u16, VXLAN_PORT).encode(udp_payload, out);
                // VXLAN header: I-flag set, reserved zero, 24-bit VNI, reserved zero.
                out.push(0x08);
                out.extend_from_slice(&[0, 0, 0]);
                out.extend_from_slice(&vni.to_be_bytes()[1..4]);
                out.push(0);
                encode_into(pkt, out);
            }
        }
    }

    /// The encapsulated wire encoding of `pkt` as a fresh buffer.
    pub fn encode(&self, pkt: &Packet) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.overhead() + pkt.wire_len());
        self.encode_into(pkt, &mut buf);
        buf
    }
}

/// True if `rest` starts with a well-formed VXLAN header (I-flag set, reserved fields
/// zero) carrying at least an Ethernet header of inner frame.
fn is_vxlan(rest: &[u8]) -> bool {
    rest.len() >= VXLAN_HEADER_LEN + ETHERNET_HEADER_LEN
        && rest[0] == 0x08
        && rest[1..4] == [0, 0, 0]
        && rest[7] == 0
}

/// Decode a wire-format Ethernet frame back into a [`Packet`].
///
/// 802.1Q VLAN tags are stripped and well-formed VXLAN tunnels (UDP destination port
/// 4789, valid VXLAN header, complete inner frame) are unwrapped, so the returned
/// packet is the innermost IP packet — the header OVS's flow extraction hands to the
/// classifier on overlay traffic. A UDP datagram to port 4789 whose payload is *not* a
/// valid VXLAN header is returned as that plain UDP packet.
pub fn decode(buf: &[u8]) -> Result<Packet, DecodeError> {
    let mut frame = buf;
    for _ in 0..MAX_ENCAP_DEPTH {
        let (mut eth, mut off) = EthernetHeader::decode(frame).ok_or(DecodeError::Truncated)?;
        // Strip 802.1Q tags (bounded by the frame length: each tag consumes 4 bytes).
        while eth.ethertype == EtherType::Vlan {
            let tag = frame
                .get(off..off + VLAN_TAG_LEN)
                .ok_or(DecodeError::Truncated)?;
            eth.ethertype = EtherType::from_u16(u16::from_be_bytes([tag[2], tag[3]]));
            off += VLAN_TAG_LEN;
        }
        let (net, used, proto) = match eth.ethertype {
            EtherType::Ipv4 => {
                let (h, used) = Ipv4Header::decode(&frame[off..]).ok_or(DecodeError::BadHeader)?;
                (NetHeader::V4(h), used, h.proto)
            }
            EtherType::Ipv6 => {
                let (h, used) = Ipv6Header::decode(&frame[off..]).ok_or(DecodeError::BadHeader)?;
                (NetHeader::V6(h), used, h.proto)
            }
            other => return Err(DecodeError::UnsupportedEtherType(other.to_u16())),
        };
        off += used;
        let (l4, used) = L4Header::decode(proto, &frame[off..]).ok_or(DecodeError::Truncated)?;
        off += used;
        if let L4Header::Udp {
            dst_port: VXLAN_PORT,
            ..
        } = l4
        {
            let rest = &frame[off..];
            if is_vxlan(rest) {
                frame = &rest[VXLAN_HEADER_LEN..];
                continue;
            }
        }
        let payload_len = frame.len().saturating_sub(off);
        return Ok(Packet {
            eth,
            net,
            l4,
            payload_len,
        });
    }
    Err(DecodeError::BadHeader)
}

/// Serialise a trace (sequence of packets) into a single length-prefixed byte stream.
pub fn encode_trace(packets: &[Packet]) -> Vec<u8> {
    let mut out = Vec::new();
    for pkt in packets {
        let frame = encode(pkt);
        out.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        out.extend_from_slice(&frame);
    }
    out
}

/// Deserialise a trace produced by [`encode_trace`].
pub fn decode_trace(mut buf: &[u8]) -> Result<Vec<Packet>, DecodeError> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        if buf.len() < 4 {
            return Err(DecodeError::Truncated);
        }
        let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        buf = &buf[4..];
        if buf.len() < len {
            return Err(DecodeError::Truncated);
        }
        out.push(decode(&buf[..len])?);
        buf = &buf[len..];
    }
    Ok(out)
}

/// A pcap-style in-memory frame trace: timestamped raw frames packed back-to-back in
/// one contiguous buffer.
///
/// This is the replay format of the wire-level traffic sources: frame `i` is a byte
/// slice into the shared buffer, so a million-frame trace is three allocations, not a
/// million, and batched extraction can walk it without touching the heap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WireTrace {
    buf: Vec<u8>,
    /// End offset of frame `i` in `buf` (its start is `ends[i - 1]`, or 0).
    ends: Vec<usize>,
    times: Vec<f64>,
}

impl WireTrace {
    /// An empty trace.
    pub fn new() -> Self {
        WireTrace::default()
    }

    /// Append a raw frame at `time`.
    ///
    /// # Panics
    /// Panics if `time` is below the previous frame's timestamp (traces replay in
    /// nondecreasing time order, like pcap files).
    pub fn push(&mut self, time: f64, frame: &[u8]) {
        self.check_time(time);
        self.buf.extend_from_slice(frame);
        self.ends.push(self.buf.len());
        self.times.push(time);
    }

    /// Serialise `pkt` under `encap` directly into the trace buffer at `time` — no
    /// per-frame temporary.
    ///
    /// # Panics
    /// Panics if `time` is below the previous frame's timestamp.
    pub fn push_packet(&mut self, time: f64, pkt: &Packet, encap: Encap) {
        self.check_time(time);
        encap.encode_into(pkt, &mut self.buf);
        self.ends.push(self.buf.len());
        self.times.push(time);
    }

    fn check_time(&self, time: f64) {
        assert!(
            self.times.last().is_none_or(|&t| t <= time),
            "frames must be pushed in nondecreasing time order"
        );
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if the trace holds no frames.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Frame `i` as a raw byte slice.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn frame(&self, i: usize) -> &[u8] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        &self.buf[start..self.ends[i]]
    }

    /// Timestamp of frame `i`, seconds.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn time(&self, i: usize) -> f64 {
        self.times[i]
    }

    /// Iterate `(time, frame)` pairs in replay order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &[u8])> {
        (0..self.len()).map(move |i| (self.times[i], self.frame(i)))
    }

    /// Iterate the raw frames in replay order.
    pub fn frames(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.len()).map(move |i| self.frame(i))
    }

    /// Total wire bytes across all frames.
    pub fn wire_bytes(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;

    #[test]
    fn frame_roundtrip_tcp_v4() {
        let p = PacketBuilder::tcp_v4([10, 0, 0, 1], [192, 168, 0, 9], 34521, 443)
            .ttl(9)
            .payload_len(33)
            .build();
        let wire = encode(&p);
        assert_eq!(wire.len(), p.wire_len());
        let back = decode(&wire).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn frame_roundtrip_udp_v6() {
        let p = PacketBuilder::udp_v6(
            [0xfd00, 0, 0, 0, 0, 0, 0, 1],
            [0xfd00, 0, 0, 0, 0, 0, 0, 2],
            53,
            4444,
        )
        .payload_len(0)
        .build();
        let back = decode(&encode(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn trace_roundtrip() {
        let packets: Vec<Packet> = (0..10)
            .map(|i| {
                PacketBuilder::udp_v4([10, 0, 0, i as u8], [10, 0, 0, 200], 1000 + i, 80)
                    .payload_len(i as usize * 7)
                    .build()
            })
            .collect();
        let bytes = encode_trace(&packets);
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back, packets);
    }

    #[test]
    fn truncated_trace_rejected() {
        let p = PacketBuilder::udp_v4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2).build();
        let mut bytes = encode_trace(&[p]);
        bytes.truncate(bytes.len() - 3);
        assert_eq!(decode_trace(&bytes), Err(DecodeError::Truncated));
    }

    #[test]
    fn unsupported_ethertype_rejected() {
        let mut frame = vec![0u8; 60];
        frame[12] = 0x08;
        frame[13] = 0x06; // ARP
        assert!(matches!(
            decode(&frame),
            Err(DecodeError::UnsupportedEtherType(0x0806))
        ));
    }

    #[test]
    fn vlan_tag_roundtrips_to_the_inner_packet() {
        let p = PacketBuilder::tcp_v4([10, 0, 0, 1], [10, 0, 0, 2], 7777, 80)
            .payload_len(11)
            .build();
        let encap = Encap::Vlan { tci: 0x2042 };
        let wire = encap.encode(&p);
        assert_eq!(wire.len(), p.wire_len() + encap.overhead());
        assert_eq!(decode(&wire).unwrap(), p);
    }

    #[test]
    fn vxlan_tunnel_roundtrips_to_the_inner_packet() {
        for inner in [
            PacketBuilder::tcp_v4([10, 0, 0, 1], [10, 0, 0, 2], 7777, 80).build(),
            PacketBuilder::udp_v6(
                [0xfd00, 0, 0, 0, 0, 0, 0, 9],
                [0xfd00, 0, 0, 0, 0, 0, 0, 1],
                5,
                6,
            )
            .build(),
        ] {
            let encap = Encap::Vxlan {
                outer_src: 0xc0a8_0001,
                outer_dst: 0xc0a8_0002,
                vni: 0x00BEEF,
            };
            let wire = encap.encode(&inner);
            assert_eq!(wire.len(), inner.wire_len() + encap.overhead());
            assert_eq!(decode(&wire).unwrap(), inner);
        }
    }

    #[test]
    fn vlan_inside_vxlan_unwraps_both() {
        let p = PacketBuilder::udp_v4([1, 2, 3, 4], [5, 6, 7, 8], 1000, 53).build();
        let mut inner = Vec::new();
        Encap::Vlan { tci: 7 }.encode_into(&p, &mut inner);
        // Wrap the tagged frame by hand (Encap::Vxlan wraps Packets, not raw frames).
        let mut wire = Vec::new();
        let udp_payload = VXLAN_HEADER_LEN + inner.len();
        EthernetHeader::new(MacAddr::local(0xA0), MacAddr::local(0xA1), EtherType::Ipv4)
            .encode(&mut wire);
        Ipv4Header::new(1u32.into(), 2u32.into(), IpProto::Udp)
            .encode(UDP_HEADER_LEN + udp_payload, &mut wire);
        L4Header::udp(0xC003, VXLAN_PORT).encode(udp_payload, &mut wire);
        wire.extend_from_slice(&[0x08, 0, 0, 0, 0, 0, 3, 0]);
        wire.extend_from_slice(&inner);
        assert_eq!(decode(&wire).unwrap(), p);
    }

    #[test]
    fn udp_4789_without_vxlan_header_is_a_plain_packet() {
        // Zero payload to the VXLAN port: the I-flag byte is 0, so no decapsulation.
        let p = PacketBuilder::udp_v4([10, 0, 0, 1], [10, 0, 0, 2], 5555, VXLAN_PORT)
            .payload_len(64)
            .build();
        assert_eq!(decode(&encode(&p)).unwrap(), p);
    }

    #[test]
    fn truncated_vlan_tag_rejected() {
        let p = PacketBuilder::tcp_v4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2).build();
        let wire = Encap::Vlan { tci: 1 }.encode(&p);
        assert_eq!(decode(&wire[..16]), Err(DecodeError::Truncated));
    }

    #[test]
    fn nesting_beyond_max_depth_rejected() {
        let p = PacketBuilder::udp_v4([1, 2, 3, 4], [5, 6, 7, 8], 9, 10).build();
        let mut frame = encode(&p);
        for _ in 0..MAX_ENCAP_DEPTH + 1 {
            let udp_payload = VXLAN_HEADER_LEN + frame.len();
            let mut outer = Vec::new();
            EthernetHeader::default().encode(&mut outer);
            Ipv4Header::new(1u32.into(), 2u32.into(), IpProto::Udp)
                .encode(UDP_HEADER_LEN + udp_payload, &mut outer);
            L4Header::udp(0xC000, VXLAN_PORT).encode(udp_payload, &mut outer);
            outer.extend_from_slice(&[0x08, 0, 0, 0, 0, 0, 0, 0]);
            outer.extend_from_slice(&frame);
            frame = outer;
        }
        assert_eq!(decode(&frame), Err(DecodeError::BadHeader));
    }

    #[test]
    fn wire_trace_replays_frames_and_times() {
        let mut trace = WireTrace::new();
        let packets: Vec<Packet> = (0..5)
            .map(|i| {
                PacketBuilder::tcp_v4([10, 0, 0, i], [10, 0, 0, 99], 1000 + i as u16, 80).build()
            })
            .collect();
        for (i, p) in packets.iter().enumerate() {
            trace.push_packet(i as f64 * 0.5, p, Encap::None);
        }
        assert_eq!(trace.len(), 5);
        assert!(!trace.is_empty());
        assert_eq!(
            trace.wire_bytes(),
            packets.iter().map(|p| p.wire_len()).sum()
        );
        for (i, (t, frame)) in trace.iter().enumerate() {
            assert_eq!(t, i as f64 * 0.5);
            assert_eq!(decode(frame).unwrap(), packets[i]);
            assert_eq!(frame, trace.frame(i));
            assert_eq!(t, trace.time(i));
        }
    }

    #[test]
    #[should_panic]
    fn wire_trace_rejects_time_regressions() {
        let mut trace = WireTrace::new();
        trace.push(1.0, &[0u8; 14]);
        trace.push(0.5, &[0u8; 14]);
    }

    #[test]
    fn wire_fault_display_and_conversion() {
        let f: WireFault = DecodeError::Truncated.into();
        assert_eq!(f, WireFault::Decode(DecodeError::Truncated));
        assert_eq!(f.to_string(), "truncated frame");
        assert!(WireFault::FamilyMismatch.to_string().contains("family"));
    }
}
