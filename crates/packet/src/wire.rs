//! Wire-format serialisation of whole packets and a minimal in-memory trace format.
//!
//! The paper replays attack traces from pcap files (§5.4). The reproduction keeps traces
//! in memory, but this module provides a byte-accurate encode/decode path so that the
//! switch can also be driven from serialised frames (and so the header layout code is
//! actually exercised end-to-end).

use crate::ethernet::{EtherType, EthernetHeader};
use crate::ipv4::Ipv4Header;
use crate::ipv6::Ipv6Header;
use crate::l4::L4Header;
use crate::{NetHeader, Packet};

/// Errors returned when decoding a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than the headers claim.
    Truncated,
    /// The L2 ethertype is not IPv4 or IPv6.
    UnsupportedEtherType(u16),
    /// A header failed validation (bad version nibble or checksum).
    BadHeader,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated frame"),
            DecodeError::UnsupportedEtherType(t) => write!(f, "unsupported ethertype 0x{t:04x}"),
            DecodeError::BadHeader => write!(f, "malformed header"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode a packet into a wire-format Ethernet frame. The payload is filled with zeros
/// (its content never matters to classification).
pub fn encode(pkt: &Packet) -> Vec<u8> {
    let mut buf = Vec::with_capacity(pkt.wire_len());
    pkt.eth.encode(&mut buf);
    let l4_plus_payload = pkt.l4.header_len() + pkt.payload_len;
    match &pkt.net {
        NetHeader::V4(h) => h.encode(l4_plus_payload, &mut buf),
        NetHeader::V6(h) => h.encode(l4_plus_payload, &mut buf),
    }
    pkt.l4.encode(pkt.payload_len, &mut buf);
    buf.resize(buf.len() + pkt.payload_len, 0);
    buf
}

/// Decode a wire-format Ethernet frame back into a [`Packet`].
pub fn decode(buf: &[u8]) -> Result<Packet, DecodeError> {
    let (eth, mut off) = EthernetHeader::decode(buf).ok_or(DecodeError::Truncated)?;
    let (net, used, proto) = match eth.ethertype {
        EtherType::Ipv4 => {
            let (h, used) = Ipv4Header::decode(&buf[off..]).ok_or(DecodeError::BadHeader)?;
            (NetHeader::V4(h), used, h.proto)
        }
        EtherType::Ipv6 => {
            let (h, used) = Ipv6Header::decode(&buf[off..]).ok_or(DecodeError::BadHeader)?;
            (NetHeader::V6(h), used, h.proto)
        }
        other => return Err(DecodeError::UnsupportedEtherType(other.to_u16())),
    };
    off += used;
    let (l4, used) = L4Header::decode(proto, &buf[off..]).ok_or(DecodeError::Truncated)?;
    off += used;
    let payload_len = buf.len().saturating_sub(off);
    Ok(Packet {
        eth,
        net,
        l4,
        payload_len,
    })
}

/// Serialise a trace (sequence of packets) into a single length-prefixed byte stream.
pub fn encode_trace(packets: &[Packet]) -> Vec<u8> {
    let mut out = Vec::new();
    for pkt in packets {
        let frame = encode(pkt);
        out.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        out.extend_from_slice(&frame);
    }
    out
}

/// Deserialise a trace produced by [`encode_trace`].
pub fn decode_trace(mut buf: &[u8]) -> Result<Vec<Packet>, DecodeError> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        if buf.len() < 4 {
            return Err(DecodeError::Truncated);
        }
        let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        buf = &buf[4..];
        if buf.len() < len {
            return Err(DecodeError::Truncated);
        }
        out.push(decode(&buf[..len])?);
        buf = &buf[len..];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;

    #[test]
    fn frame_roundtrip_tcp_v4() {
        let p = PacketBuilder::tcp_v4([10, 0, 0, 1], [192, 168, 0, 9], 34521, 443)
            .ttl(9)
            .payload_len(33)
            .build();
        let wire = encode(&p);
        assert_eq!(wire.len(), p.wire_len());
        let back = decode(&wire).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn frame_roundtrip_udp_v6() {
        let p = PacketBuilder::udp_v6(
            [0xfd00, 0, 0, 0, 0, 0, 0, 1],
            [0xfd00, 0, 0, 0, 0, 0, 0, 2],
            53,
            4444,
        )
        .payload_len(0)
        .build();
        let back = decode(&encode(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn trace_roundtrip() {
        let packets: Vec<Packet> = (0..10)
            .map(|i| {
                PacketBuilder::udp_v4([10, 0, 0, i as u8], [10, 0, 0, 200], 1000 + i, 80)
                    .payload_len(i as usize * 7)
                    .build()
            })
            .collect();
        let bytes = encode_trace(&packets);
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back, packets);
    }

    #[test]
    fn truncated_trace_rejected() {
        let p = PacketBuilder::udp_v4([1, 1, 1, 1], [2, 2, 2, 2], 1, 2).build();
        let mut bytes = encode_trace(&[p]);
        bytes.truncate(bytes.len() - 3);
        assert_eq!(decode_trace(&bytes), Err(DecodeError::Truncated));
    }

    #[test]
    fn unsupported_ethertype_rejected() {
        let mut frame = vec![0u8; 60];
        frame[12] = 0x08;
        frame[13] = 0x06; // ARP
        assert!(matches!(
            decode(&frame),
            Err(DecodeError::UnsupportedEtherType(0x0806))
        ));
    }
}
