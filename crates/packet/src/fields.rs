//! Generic header-field abstraction: schemas, keys and masks.
//!
//! The paper formalises a packet classifier as operating on `n` header fields of bit
//! widths `w_1, ..., w_n` (§4). The megaflow cache stores *key/mask pairs* `C = (K, M)`
//! where the mask selects header bits and the key gives their required values.
//!
//! Everything in the classifier crate is expressed against this module so that the same
//! code handles the paper's 3-bit hypothetical "HYP" protocol (Figs. 1–5), the canonical
//! OVS IPv4 flow key, and IPv6 keys with 128-bit fields.

use std::fmt;

/// Definition of a single header field: a human-readable name and a bit width (≤ 128).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldDef {
    /// Field name (e.g. `"ip_src"`, `"tcp_dst"`, `"hyp"`).
    pub name: &'static str,
    /// Field width in bits; must be between 1 and 128.
    pub width: u32,
}

impl FieldDef {
    /// Create a new field definition.
    ///
    /// # Panics
    /// Panics if `width` is zero or greater than 128.
    pub const fn new(name: &'static str, width: u32) -> Self {
        assert!(width >= 1 && width <= 128, "field width must be in 1..=128");
        FieldDef { name, width }
    }

    /// All-ones mask value for this field.
    pub fn full_mask(&self) -> u128 {
        if self.width == 128 {
            u128::MAX
        } else {
            (1u128 << self.width) - 1
        }
    }
}

/// An ordered collection of header fields a classifier matches on.
///
/// Field order matters: it defines rule priority semantics in the paper's examples
/// (the first allow rule matches on the first field, etc.) and the layout of
/// [`FieldVec`] values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldSchema {
    fields: Vec<FieldDef>,
}

impl FieldSchema {
    /// Build a schema from an explicit field list.
    ///
    /// # Panics
    /// Panics if the list is empty.
    pub fn new(fields: Vec<FieldDef>) -> Self {
        assert!(!fields.is_empty(), "schema must have at least one field");
        FieldSchema { fields }
    }

    /// The 3-bit single-field hypothetical protocol of §3.2 / Fig. 1.
    pub fn hyp() -> Self {
        Self::new(vec![FieldDef::new("hyp", 3)])
    }

    /// The two-field HYP (3 bits) + HYP2 (4 bits) protocol of §4.2 / Fig. 4.
    pub fn hyp2() -> Self {
        Self::new(vec![FieldDef::new("hyp", 3), FieldDef::new("hyp2", 4)])
    }

    /// The canonical OVS-style IPv4 flow key used throughout §5:
    /// `ip_src/32, ip_dst/32, ip_proto/8, ttl/8, tp_src/16, tp_dst/16`.
    pub fn ovs_ipv4() -> Self {
        Self::new(vec![
            FieldDef::new("ip_src", 32),
            FieldDef::new("ip_dst", 32),
            FieldDef::new("ip_proto", 8),
            FieldDef::new("ttl", 8),
            FieldDef::new("tp_src", 16),
            FieldDef::new("tp_dst", 16),
        ])
    }

    /// IPv6 variant of the OVS flow key (128-bit addresses), used for the §5.4 IPv6
    /// entry-explosion anomaly experiment.
    pub fn ovs_ipv6() -> Self {
        Self::new(vec![
            FieldDef::new("ip6_src", 128),
            FieldDef::new("ip6_dst", 128),
            FieldDef::new("ip_proto", 8),
            FieldDef::new("ttl", 8),
            FieldDef::new("tp_src", 16),
            FieldDef::new("tp_dst", 16),
        ])
    }

    /// Number of fields in the schema.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Field definitions in order.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Bit width of field `idx`.
    pub fn width(&self, idx: usize) -> u32 {
        self.fields[idx].width
    }

    /// Sum of all field widths (the `w` in Theorem 4.1 when there is a single field).
    pub fn total_width(&self) -> u32 {
        self.fields.iter().map(|f| f.width).sum()
    }

    /// Index of the field with the given name, if any.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// An all-zero value vector for this schema.
    pub fn zero_value(&self) -> FieldVec {
        FieldVec {
            values: vec![0; self.fields.len()],
        }
    }

    /// A fully wildcarded mask (no bits examined).
    pub fn empty_mask(&self) -> Mask {
        self.zero_value()
    }

    /// A fully exact mask (all bits of all fields examined).
    pub fn full_mask(&self) -> Mask {
        FieldVec {
            values: self.fields.iter().map(|f| f.full_mask()).collect(),
        }
    }
}

/// A per-field vector of bit values. Used both as a *key* (header values) and as a
/// *mask* (which bits are significant), matching the paper's `(K, M)` notation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldVec {
    values: Vec<u128>,
}

/// A key: per-field header bit values. Alias of [`FieldVec`].
pub type Key = FieldVec;
/// A mask: per-field significant-bit bitmaps. Alias of [`FieldVec`].
pub type Mask = FieldVec;

impl FieldVec {
    /// Build from raw per-field values. Values are masked to the schema widths.
    pub fn from_values(schema: &FieldSchema, values: &[u128]) -> Self {
        assert_eq!(
            values.len(),
            schema.field_count(),
            "value count must match schema field count"
        );
        let values = values
            .iter()
            .zip(schema.fields())
            .map(|(v, f)| v & f.full_mask())
            .collect();
        FieldVec { values }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if there are no fields (never the case for schema-derived vectors).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value of field `idx`.
    pub fn get(&self, idx: usize) -> u128 {
        self.values[idx]
    }

    /// Set the value of field `idx`.
    pub fn set(&mut self, idx: usize, value: u128) {
        self.values[idx] = value;
    }

    /// Raw per-field values.
    pub fn values(&self) -> &[u128] {
        &self.values
    }

    /// Bitwise AND with a mask, per field: `h AND M` in Alg. 1.
    pub fn apply_mask(&self, mask: &Mask) -> FieldVec {
        debug_assert_eq!(self.len(), mask.len());
        FieldVec {
            values: self
                .values
                .iter()
                .zip(mask.values.iter())
                .map(|(v, m)| v & m)
                .collect(),
        }
    }

    /// Bitwise OR, per field (used to combine masks).
    pub fn or(&self, other: &FieldVec) -> FieldVec {
        debug_assert_eq!(self.len(), other.len());
        FieldVec {
            values: self
                .values
                .iter()
                .zip(other.values.iter())
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// Bitwise AND, per field.
    pub fn and(&self, other: &FieldVec) -> FieldVec {
        debug_assert_eq!(self.len(), other.len());
        FieldVec {
            values: self
                .values
                .iter()
                .zip(other.values.iter())
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Total number of set bits across all fields. For a mask this is the number of
    /// examined (non-wildcarded) bits.
    pub fn popcount(&self) -> u32 {
        self.values.iter().map(|v| v.count_ones()).sum()
    }

    /// Number of wildcarded (unexamined) bits of a mask under `schema`.
    pub fn wildcarded_bits(&self, schema: &FieldSchema) -> u32 {
        schema.total_width() - self.popcount()
    }

    /// True if every set bit of `other` is also set in `self` (mask containment).
    pub fn contains_mask(&self, other: &FieldVec) -> bool {
        self.values
            .iter()
            .zip(other.values.iter())
            .all(|(a, b)| a & b == *b)
    }

    /// Flip bit `bit` of field `idx` (used by the co-located bit-inversion trace
    /// generator, §5.1).
    pub fn flip_bit(&mut self, idx: usize, bit: u32) {
        self.values[idx] ^= 1u128 << bit;
    }

    /// Render as a binary string per field (LSB right), padded to the schema widths —
    /// mirrors the presentation of Figs. 1–5.
    pub fn to_binary_string(&self, schema: &FieldSchema) -> String {
        self.values
            .iter()
            .zip(schema.fields())
            .map(|(v, f)| format!("{v:0width$b}", width = f.width as usize))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl fmt::Display for FieldVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}]",
            self.values
                .iter()
                .map(|v| format!("{v:x}"))
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

/// Check whether a header `h` matches a key/mask pair: `(h AND M) == K`.
pub fn matches(header: &Key, key: &Key, mask: &Mask) -> bool {
    header.apply_mask(mask) == *key
}

/// Check whether two key/mask pairs are *disjoint* (the Independence invariant Inv(2)
/// of §3.2): they are disjoint iff there exists a bit position examined by both masks
/// on which their keys differ. If no such bit exists, some packet matches both.
pub fn disjoint(key_a: &Key, mask_a: &Mask, key_b: &Key, mask_b: &Mask) -> bool {
    let common = mask_a.and(mask_b);
    let diff_bits = key_a
        .values()
        .iter()
        .zip(key_b.values())
        .zip(common.values())
        .map(|((a, b), m)| (a ^ b) & m)
        .fold(0u128, |acc, v| acc | v);
    diff_bits != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hyp_key(schema: &FieldSchema, v: u128) -> Key {
        Key::from_values(schema, &[v])
    }

    #[test]
    fn schema_widths() {
        let s = FieldSchema::ovs_ipv4();
        assert_eq!(s.field_count(), 6);
        assert_eq!(s.total_width(), 32 + 32 + 8 + 8 + 16 + 16);
        assert_eq!(s.field_index("tp_dst"), Some(5));
        assert_eq!(s.field_index("nope"), None);
    }

    #[test]
    fn full_and_empty_masks() {
        let s = FieldSchema::hyp();
        assert_eq!(s.full_mask().get(0), 0b111);
        assert_eq!(s.empty_mask().get(0), 0);
        let s6 = FieldSchema::ovs_ipv6();
        assert_eq!(s6.full_mask().get(0), u128::MAX);
    }

    #[test]
    fn matches_masked_bits_only() {
        let s = FieldSchema::hyp();
        // Entry #2 of Fig. 3: key=100, mask=100 — matches any header with MSB set.
        let key = hyp_key(&s, 0b100);
        let mask = hyp_key(&s, 0b100);
        assert!(matches(&hyp_key(&s, 0b100), &key, &mask));
        assert!(matches(&hyp_key(&s, 0b111), &key, &mask));
        assert!(matches(&hyp_key(&s, 0b101), &key, &mask));
        assert!(!matches(&hyp_key(&s, 0b011), &key, &mask));
    }

    #[test]
    fn disjointness_of_fig3_entries() {
        let s = FieldSchema::hyp();
        // Fig. 3 MFC: (001,111) allow, (100,100), (010,110), (000,111) — all disjoint.
        let entries = [
            (0b001u128, 0b111u128),
            (0b100, 0b100),
            (0b010, 0b110),
            (0b000, 0b111),
        ];
        for (i, (ka, ma)) in entries.iter().enumerate() {
            for (j, (kb, mb)) in entries.iter().enumerate() {
                if i == j {
                    continue;
                }
                assert!(
                    disjoint(
                        &hyp_key(&s, *ka),
                        &hyp_key(&s, *ma),
                        &hyp_key(&s, *kb),
                        &hyp_key(&s, *mb)
                    ),
                    "entries {i} and {j} must be disjoint"
                );
            }
        }
    }

    #[test]
    fn overlap_detected() {
        let s = FieldSchema::hyp();
        // The "invalid strategy" of §4.1: installing (001,111) and (000,000) overlaps.
        assert!(!disjoint(
            &hyp_key(&s, 0b001),
            &hyp_key(&s, 0b111),
            &hyp_key(&s, 0b000),
            &hyp_key(&s, 0b000)
        ));
    }

    #[test]
    fn flip_bit_and_popcount() {
        let s = FieldSchema::hyp2();
        let mut k = Key::from_values(&s, &[0b001, 0b1111]);
        assert_eq!(k.popcount(), 5);
        k.flip_bit(1, 3);
        assert_eq!(k.get(1), 0b0111);
        assert_eq!(k.wildcarded_bits(&s), 7 - 4);
    }

    #[test]
    fn binary_string_rendering() {
        let s = FieldSchema::hyp2();
        let k = Key::from_values(&s, &[0b001, 0b1010]);
        assert_eq!(k.to_binary_string(&s), "001 1010");
    }

    #[test]
    fn values_truncated_to_width() {
        let s = FieldSchema::hyp();
        let k = Key::from_values(&s, &[0xff]);
        assert_eq!(k.get(0), 0b111);
    }

    #[test]
    #[should_panic]
    fn wrong_value_count_panics() {
        let s = FieldSchema::hyp2();
        let _ = Key::from_values(&s, &[1]);
    }
}
