//! Transport-layer (L4) headers: TCP, UDP, ICMP, and "other".

use std::fmt;

/// IP protocol numbers relevant to the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProto {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// ICMP (1).
    Icmp,
    /// ICMPv6 (58).
    Icmpv6,
    /// Any other protocol number.
    Other(u8),
}

impl IpProto {
    /// Wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Icmpv6 => 58,
            IpProto::Other(v) => v,
        }
    }

    /// Parse a wire value.
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => IpProto::Icmp,
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            58 => IpProto::Icmpv6,
            other => IpProto::Other(other),
        }
    }
}

impl fmt::Display for IpProto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProto::Tcp => write!(f, "tcp"),
            IpProto::Udp => write!(f, "udp"),
            IpProto::Icmp => write!(f, "icmp"),
            IpProto::Icmpv6 => write!(f, "icmpv6"),
            IpProto::Other(v) => write!(f, "proto({v})"),
        }
    }
}

/// TCP header length without options, in bytes.
pub const TCP_HEADER_LEN: usize = 20;
/// UDP header length in bytes.
pub const UDP_HEADER_LEN: usize = 8;
/// ICMP header length in bytes.
pub const ICMP_HEADER_LEN: usize = 8;

/// A transport-layer header. Only the fields that matter to classification and the
/// throughput model are retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L4Header {
    /// TCP segment header.
    Tcp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Sequence number (noise field for trace entropy).
        seq: u32,
        /// Flags byte (SYN/ACK/FIN/...).
        flags: u8,
    },
    /// UDP datagram header.
    Udp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
    },
    /// ICMP / ICMPv6 message.
    Icmp {
        /// ICMP type.
        icmp_type: u8,
        /// ICMP code.
        icmp_code: u8,
        /// True if this is ICMPv6.
        v6: bool,
    },
    /// Any other transport protocol (ports read as zero).
    Other {
        /// The raw protocol number.
        proto: u8,
    },
}

impl L4Header {
    /// Construct a TCP header with zero sequence number and no flags.
    pub fn tcp(src_port: u16, dst_port: u16) -> Self {
        L4Header::Tcp {
            src_port,
            dst_port,
            seq: 0,
            flags: 0,
        }
    }

    /// Construct a UDP header.
    pub fn udp(src_port: u16, dst_port: u16) -> Self {
        L4Header::Udp { src_port, dst_port }
    }

    /// The IP protocol of this header.
    pub fn proto(&self) -> IpProto {
        match self {
            L4Header::Tcp { .. } => IpProto::Tcp,
            L4Header::Udp { .. } => IpProto::Udp,
            L4Header::Icmp { v6: false, .. } => IpProto::Icmp,
            L4Header::Icmp { v6: true, .. } => IpProto::Icmpv6,
            L4Header::Other { proto } => IpProto::Other(*proto),
        }
    }

    /// Source port, or 0 for port-less protocols. This is the value the flow key holds —
    /// OVS does exactly the same zero-fill for non-TCP/UDP traffic.
    pub fn src_port(&self) -> u16 {
        match self {
            L4Header::Tcp { src_port, .. } | L4Header::Udp { src_port, .. } => *src_port,
            _ => 0,
        }
    }

    /// Destination port, or 0 for port-less protocols.
    pub fn dst_port(&self) -> u16 {
        match self {
            L4Header::Tcp { dst_port, .. } | L4Header::Udp { dst_port, .. } => *dst_port,
            _ => 0,
        }
    }

    /// Header length on the wire in bytes.
    pub fn header_len(&self) -> usize {
        match self {
            L4Header::Tcp { .. } => TCP_HEADER_LEN,
            L4Header::Udp { .. } => UDP_HEADER_LEN,
            L4Header::Icmp { .. } => ICMP_HEADER_LEN,
            L4Header::Other { .. } => 0,
        }
    }

    /// Encode into wire bytes (checksums are left zero; the switch model never verifies
    /// L4 checksums, matching OVS's behaviour of not recomputing them on forwarding).
    pub fn encode(&self, payload_len: usize, out: &mut Vec<u8>) {
        match self {
            L4Header::Tcp {
                src_port,
                dst_port,
                seq,
                flags,
            } => {
                out.extend_from_slice(&src_port.to_be_bytes());
                out.extend_from_slice(&dst_port.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(&0u32.to_be_bytes()); // ack
                out.push(0x50); // data offset 5
                out.push(*flags);
                out.extend_from_slice(&0xffffu16.to_be_bytes()); // window
                out.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent
            }
            L4Header::Udp { src_port, dst_port } => {
                out.extend_from_slice(&src_port.to_be_bytes());
                out.extend_from_slice(&dst_port.to_be_bytes());
                out.extend_from_slice(&((UDP_HEADER_LEN + payload_len) as u16).to_be_bytes());
                out.extend_from_slice(&[0, 0]); // checksum
            }
            L4Header::Icmp {
                icmp_type,
                icmp_code,
                ..
            } => {
                out.push(*icmp_type);
                out.push(*icmp_code);
                out.extend_from_slice(&[0; 6]);
            }
            L4Header::Other { .. } => {}
        }
    }

    /// Decode an L4 header of the given protocol from wire bytes.
    pub fn decode(proto: IpProto, buf: &[u8]) -> Option<(Self, usize)> {
        match proto {
            IpProto::Tcp => {
                if buf.len() < TCP_HEADER_LEN {
                    return None;
                }
                Some((
                    L4Header::Tcp {
                        src_port: u16::from_be_bytes([buf[0], buf[1]]),
                        dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                        seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
                        flags: buf[13],
                    },
                    TCP_HEADER_LEN,
                ))
            }
            IpProto::Udp => {
                if buf.len() < UDP_HEADER_LEN {
                    return None;
                }
                Some((
                    L4Header::Udp {
                        src_port: u16::from_be_bytes([buf[0], buf[1]]),
                        dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                    },
                    UDP_HEADER_LEN,
                ))
            }
            IpProto::Icmp | IpProto::Icmpv6 => {
                if buf.len() < ICMP_HEADER_LEN {
                    return None;
                }
                Some((
                    L4Header::Icmp {
                        icmp_type: buf[0],
                        icmp_code: buf[1],
                        v6: proto == IpProto::Icmpv6,
                    },
                    ICMP_HEADER_LEN,
                ))
            }
            IpProto::Other(p) => Some((L4Header::Other { proto: p }, 0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proto_roundtrip() {
        for p in [
            IpProto::Tcp,
            IpProto::Udp,
            IpProto::Icmp,
            IpProto::Icmpv6,
            IpProto::Other(99),
        ] {
            assert_eq!(IpProto::from_u8(p.to_u8()), p);
        }
    }

    #[test]
    fn tcp_roundtrip() {
        let h = L4Header::Tcp {
            src_port: 34521,
            dst_port: 443,
            seq: 42,
            flags: 0x02,
        };
        let mut buf = Vec::new();
        h.encode(0, &mut buf);
        assert_eq!(buf.len(), TCP_HEADER_LEN);
        let (parsed, used) = L4Header::decode(IpProto::Tcp, &buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(used, TCP_HEADER_LEN);
    }

    #[test]
    fn udp_roundtrip() {
        let h = L4Header::udp(12345, 80);
        let mut buf = Vec::new();
        h.encode(100, &mut buf);
        assert_eq!(buf.len(), UDP_HEADER_LEN);
        // length field = 8 + 100
        assert_eq!(u16::from_be_bytes([buf[4], buf[5]]), 108);
        let (parsed, _) = L4Header::decode(IpProto::Udp, &buf).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn ports_default_to_zero_for_icmp() {
        let h = L4Header::Icmp {
            icmp_type: 8,
            icmp_code: 0,
            v6: false,
        };
        assert_eq!(h.src_port(), 0);
        assert_eq!(h.dst_port(), 0);
        assert_eq!(h.proto(), IpProto::Icmp);
    }

    #[test]
    fn truncated_headers_rejected() {
        assert!(L4Header::decode(IpProto::Tcp, &[0; 19]).is_none());
        assert!(L4Header::decode(IpProto::Udp, &[0; 7]).is_none());
        assert!(L4Header::decode(IpProto::Icmp, &[0; 7]).is_none());
    }
}
