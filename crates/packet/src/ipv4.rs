//! IPv4 header representation and wire encoding.

use std::fmt;
use std::net::Ipv4Addr;

use crate::l4::IpProto;

/// Length of an IPv4 header without options, in bytes.
pub const IPV4_HEADER_LEN: usize = 20;

/// An IPv4 header (options are not modelled; OVS classification does not use them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Transport protocol.
    pub proto: IpProto,
    /// Time-to-live. The attack traces randomise this field as "noise" to exhaust the
    /// microflow cache (§5.2).
    pub ttl: u8,
    /// Identification field (also randomised as noise).
    pub identification: u16,
    /// Differentiated services / TOS byte.
    pub dscp_ecn: u8,
}

impl Ipv4Header {
    /// Construct a header with default TTL 64 and zeroed auxiliary fields.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, proto: IpProto) -> Self {
        Ipv4Header {
            src,
            dst,
            proto,
            ttl: 64,
            identification: 0,
            dscp_ecn: 0,
        }
    }

    /// Encode into 20 wire bytes, computing the header checksum. `payload_len` is the
    /// length of everything after the IPv4 header.
    pub fn encode(&self, payload_len: usize, out: &mut Vec<u8>) {
        let total_len = (IPV4_HEADER_LEN + payload_len) as u16;
        let start = out.len();
        out.push(0x45); // version 4, IHL 5
        out.push(self.dscp_ecn);
        out.extend_from_slice(&total_len.to_be_bytes());
        out.extend_from_slice(&self.identification.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // flags + fragment offset
        out.push(self.ttl);
        out.push(self.proto.to_u8());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        let csum = internet_checksum(&out[start..start + IPV4_HEADER_LEN]);
        out[start + 10..start + 12].copy_from_slice(&csum.to_be_bytes());
    }

    /// Decode a header from wire bytes; returns the header and bytes consumed.
    /// Returns `None` on a truncated buffer, a non-IPv4 version nibble, or a checksum
    /// mismatch.
    pub fn decode(buf: &[u8]) -> Option<(Self, usize)> {
        if buf.len() < IPV4_HEADER_LEN {
            return None;
        }
        if buf[0] >> 4 != 4 {
            return None;
        }
        let ihl = (buf[0] & 0x0f) as usize * 4;
        if ihl < IPV4_HEADER_LEN || buf.len() < ihl {
            return None;
        }
        if internet_checksum(&buf[..ihl]) != 0 {
            return None;
        }
        let header = Ipv4Header {
            dscp_ecn: buf[1],
            identification: u16::from_be_bytes([buf[4], buf[5]]),
            ttl: buf[8],
            proto: IpProto::from_u8(buf[9]),
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
        };
        Some((header, ihl))
    }

    /// Source address as a `u32` (host order) — the value stored in flow keys.
    pub fn src_u32(&self) -> u32 {
        u32::from(self.src)
    }

    /// Destination address as a `u32` (host order).
    pub fn dst_u32(&self) -> u32 {
        u32::from(self.dst)
    }
}

impl fmt::Display for Ipv4Header {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} proto={} ttl={}",
            self.src, self.dst, self.proto, self.ttl
        )
    }
}

/// RFC 1071 Internet checksum over a byte slice (the checksum field must be zero, or the
/// result validates to zero over a correct header).
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let h = Ipv4Header {
            ttl: 37,
            identification: 0xbeef,
            dscp_ecn: 0x10,
            ..Ipv4Header::new(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(192, 168, 1, 5),
                IpProto::Tcp,
            )
        };
        let mut buf = Vec::new();
        h.encode(100, &mut buf);
        assert_eq!(buf.len(), IPV4_HEADER_LEN);
        let (parsed, used) = Ipv4Header::decode(&buf).unwrap();
        assert_eq!(used, IPV4_HEADER_LEN);
        assert_eq!(parsed.src, h.src);
        assert_eq!(parsed.dst, h.dst);
        assert_eq!(parsed.proto, IpProto::Tcp);
        assert_eq!(parsed.ttl, 37);
        assert_eq!(parsed.identification, 0xbeef);
        // total length on the wire covers header + payload
        assert_eq!(
            u16::from_be_bytes([buf[2], buf[3]]) as usize,
            IPV4_HEADER_LEN + 100
        );
    }

    #[test]
    fn corrupted_checksum_rejected() {
        let h = Ipv4Header::new(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            IpProto::Udp,
        );
        let mut buf = Vec::new();
        h.encode(0, &mut buf);
        buf[8] ^= 0xff; // corrupt TTL without fixing checksum
        assert!(Ipv4Header::decode(&buf).is_none());
    }

    #[test]
    fn non_v4_rejected() {
        let buf = [0x60u8; 20];
        assert!(Ipv4Header::decode(&buf).is_none());
    }

    #[test]
    fn checksum_of_valid_header_is_zero() {
        let h = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProto::Udp,
        );
        let mut buf = Vec::new();
        h.encode(8, &mut buf);
        assert_eq!(internet_checksum(&buf), 0);
    }

    #[test]
    fn addr_u32_conversion() {
        let h = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(0, 0, 0, 80),
            IpProto::Tcp,
        );
        assert_eq!(h.src_u32(), 0x0a000001);
        assert_eq!(h.dst_u32(), 80);
    }
}
