//! # tse-packet
//!
//! Packet representation, header-field abstraction and packet crafting for the
//! Tuple Space Explosion (TSE) reproduction.
//!
//! The crate provides two layers:
//!
//! 1. A **generic header-field layer** ([`fields`]): a classifier-agnostic view of a
//!    packet header as an ordered list of fixed-width bit fields (a
//!    [`fields::FieldSchema`]), together with per-field value vectors ([`fields::Key`])
//!    and bit masks ([`fields::Mask`]). This is the formalism the paper uses (fields of
//!    width `w_1..w_n`) and it lets the same classifier code run both the paper's 3-bit
//!    "HYP" teaching examples and real IPv4/IPv6 5-tuples.
//! 2. A **concrete packet layer** ([`ipv4`], [`ipv6`], [`l4`], [`ethernet`], [`wire`]):
//!    realistic packets with wire-format encoding/decoding (Ethernet II + IPv4/IPv6 +
//!    TCP/UDP including checksums), plus a [`builder::PacketBuilder`] used by the attack
//!    trace generators to craft packets with arbitrary legitimate headers and random
//!    "noise" in unimportant fields (TTL, payload, IP id) exactly as §5.2 describes.
//!
//! This crate is the in-tree substitute for `pnet`/`smoltcp` packet crafting: the
//! reproduction never touches a real NIC, so all it needs is faithful header layout and
//! flow-key extraction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod ethernet;
pub mod extract;
pub mod fields;
pub mod flowkey;
pub mod ipv4;
pub mod ipv6;
pub mod l4;
pub mod rss;
pub mod wire;

pub use builder::PacketBuilder;
pub use ethernet::{EtherType, EthernetHeader, MacAddr};
pub use extract::{extract_keys_into, extract_trace_into, ExtractCounts, ExtractScratch};
pub use fields::{FieldDef, FieldSchema, FieldVec, Key, Mask};
pub use flowkey::{FlowKey, MicroflowKey};
pub use ipv4::Ipv4Header;
pub use ipv6::Ipv6Header;
pub use l4::{IpProto, L4Header};
pub use wire::{DecodeError, Encap, WireFault, WireTrace};

/// A fully formed packet as seen by the software switch: L2 + L3 + L4 headers plus an
/// opaque payload length (payload *contents* are irrelevant to classification, cf. §1:
/// "arbitrary message contents").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Ethernet header.
    pub eth: EthernetHeader,
    /// Network-layer header (IPv4 or IPv6).
    pub net: NetHeader,
    /// Transport-layer header.
    pub l4: L4Header,
    /// Payload length in bytes (contents are never inspected by the classifier).
    pub payload_len: usize,
}

/// Network-layer header: IPv4 or IPv6.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetHeader {
    /// An IPv4 header.
    V4(Ipv4Header),
    /// An IPv6 header.
    V6(Ipv6Header),
}

impl Packet {
    /// Total size of the packet on the wire in bytes (headers + payload), used by the
    /// throughput model.
    pub fn wire_len(&self) -> usize {
        let net_len = match &self.net {
            NetHeader::V4(_) => ipv4::IPV4_HEADER_LEN,
            NetHeader::V6(_) => ipv6::IPV6_HEADER_LEN,
        };
        ethernet::ETHERNET_HEADER_LEN + net_len + self.l4.header_len() + self.payload_len
    }

    /// True if this is an IPv4 packet.
    pub fn is_ipv4(&self) -> bool {
        matches!(self.net, NetHeader::V4(_))
    }

    /// IP protocol number of the transport header.
    pub fn ip_proto(&self) -> IpProto {
        self.l4.proto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;

    #[test]
    fn wire_len_accounts_for_all_layers() {
        let p = PacketBuilder::udp_v4([10, 0, 0, 1], [10, 0, 0, 2], 1234, 80)
            .payload_len(100)
            .build();
        // 14 (eth) + 20 (ipv4) + 8 (udp) + 100
        assert_eq!(p.wire_len(), 142);
        assert!(p.is_ipv4());
        assert_eq!(p.ip_proto(), IpProto::Udp);
    }

    #[test]
    fn tcp_v6_wire_len() {
        let p = PacketBuilder::tcp_v6([0u16; 8], [0u16; 8], 1, 2)
            .payload_len(0)
            .build();
        // 14 + 40 + 20
        assert_eq!(p.wire_len(), 74);
        assert!(!p.is_ipv4());
    }
}
