//! Ethernet II framing.

use std::fmt;

/// Length of an Ethernet II header in bytes (dst MAC + src MAC + ethertype).
pub const ETHERNET_HEADER_LEN: usize = 14;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Locally administered address used by the examples for the attacker VM.
    pub const fn local(last: u8) -> MacAddr {
        MacAddr([0x02, 0, 0, 0, 0, last])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// Ethertype values relevant to the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// IPv6 (0x86DD).
    Ipv6,
    /// ARP (0x0806) — parsed but never classified (non-IP traffic never reaches the
    /// tenant ACL, cf. §5.2 footnote 2).
    Arp,
    /// An 802.1Q VLAN tag (0x8100): four more bytes (TCI + inner ethertype) follow the
    /// Ethernet header before the network layer.
    Vlan,
    /// Anything else.
    Other(u16),
}

impl EtherType {
    /// Wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Ipv6 => 0x86DD,
            EtherType::Arp => 0x0806,
            EtherType::Vlan => 0x8100,
            EtherType::Other(v) => v,
        }
    }

    /// Parse a wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x86DD => EtherType::Ipv6,
            0x0806 => EtherType::Arp,
            0x8100 => EtherType::Vlan,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Ethertype of the encapsulated payload.
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Convenience constructor with the example topology's MACs.
    pub fn new(src: MacAddr, dst: MacAddr, ethertype: EtherType) -> Self {
        EthernetHeader {
            dst,
            src,
            ethertype,
        }
    }

    /// Encode into 14 wire bytes.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.to_u16().to_be_bytes());
    }

    /// Decode from wire bytes; returns the header and the number of bytes consumed.
    pub fn decode(buf: &[u8]) -> Option<(Self, usize)> {
        if buf.len() < ETHERNET_HEADER_LEN {
            return None;
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        let ethertype = EtherType::from_u16(u16::from_be_bytes([buf[12], buf[13]]));
        Some((
            EthernetHeader {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype,
            },
            ETHERNET_HEADER_LEN,
        ))
    }
}

impl Default for EthernetHeader {
    fn default() -> Self {
        EthernetHeader {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            ethertype: EtherType::Ipv4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethertype_roundtrip() {
        for et in [
            EtherType::Ipv4,
            EtherType::Ipv6,
            EtherType::Arp,
            EtherType::Vlan,
            EtherType::Other(0x1234),
        ] {
            assert_eq!(EtherType::from_u16(et.to_u16()), et);
        }
    }

    #[test]
    fn header_roundtrip() {
        let h = EthernetHeader::new(MacAddr::local(2), MacAddr::BROADCAST, EtherType::Ipv6);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), ETHERNET_HEADER_LEN);
        let (parsed, used) = EthernetHeader::decode(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(used, ETHERNET_HEADER_LEN);
    }

    #[test]
    fn decode_short_buffer() {
        assert!(EthernetHeader::decode(&[0u8; 13]).is_none());
    }

    #[test]
    fn mac_display() {
        assert_eq!(MacAddr::local(7).to_string(), "02:00:00:00:00:07");
    }
}
