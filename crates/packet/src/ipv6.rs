//! IPv6 header representation and wire encoding.

use std::fmt;
use std::net::Ipv6Addr;

use crate::l4::IpProto;

/// Length of the fixed IPv6 header in bytes.
pub const IPV6_HEADER_LEN: usize = 40;

/// An IPv6 header (extension headers are not modelled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv6Header {
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
    /// Next header (transport protocol).
    pub proto: IpProto,
    /// Hop limit (IPv6's TTL).
    pub hop_limit: u8,
    /// Flow label (20 bits).
    pub flow_label: u32,
    /// Traffic class.
    pub traffic_class: u8,
}

impl Ipv6Header {
    /// Construct a header with default hop limit 64.
    pub fn new(src: Ipv6Addr, dst: Ipv6Addr, proto: IpProto) -> Self {
        Ipv6Header {
            src,
            dst,
            proto,
            hop_limit: 64,
            flow_label: 0,
            traffic_class: 0,
        }
    }

    /// Encode into 40 wire bytes. `payload_len` is the length of everything after the
    /// IPv6 header.
    pub fn encode(&self, payload_len: usize, out: &mut Vec<u8>) {
        let vtf: u32 =
            (6u32 << 28) | ((self.traffic_class as u32) << 20) | (self.flow_label & 0x000f_ffff);
        out.extend_from_slice(&vtf.to_be_bytes());
        out.extend_from_slice(&(payload_len as u16).to_be_bytes());
        out.push(self.proto.to_u8());
        out.push(self.hop_limit);
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
    }

    /// Decode a header from wire bytes; returns the header and bytes consumed.
    pub fn decode(buf: &[u8]) -> Option<(Self, usize)> {
        if buf.len() < IPV6_HEADER_LEN {
            return None;
        }
        let vtf = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
        if vtf >> 28 != 6 {
            return None;
        }
        let mut src = [0u8; 16];
        let mut dst = [0u8; 16];
        src.copy_from_slice(&buf[8..24]);
        dst.copy_from_slice(&buf[24..40]);
        Some((
            Ipv6Header {
                traffic_class: ((vtf >> 20) & 0xff) as u8,
                flow_label: vtf & 0x000f_ffff,
                proto: IpProto::from_u8(buf[6]),
                hop_limit: buf[7],
                src: Ipv6Addr::from(src),
                dst: Ipv6Addr::from(dst),
            },
            IPV6_HEADER_LEN,
        ))
    }

    /// Source address as a `u128` (the value stored in flow keys).
    pub fn src_u128(&self) -> u128 {
        u128::from(self.src)
    }

    /// Destination address as a `u128`.
    pub fn dst_u128(&self) -> u128 {
        u128::from(self.dst)
    }
}

impl fmt::Display for Ipv6Header {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} proto={} hlim={}",
            self.src, self.dst, self.proto, self.hop_limit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let h = Ipv6Header {
            hop_limit: 12,
            flow_label: 0xabcde,
            traffic_class: 3,
            ..Ipv6Header::new(
                Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 1),
                Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 2),
                IpProto::Udp,
            )
        };
        let mut buf = Vec::new();
        h.encode(64, &mut buf);
        assert_eq!(buf.len(), IPV6_HEADER_LEN);
        let (parsed, used) = Ipv6Header::decode(&buf).unwrap();
        assert_eq!(used, IPV6_HEADER_LEN);
        assert_eq!(parsed, h);
    }

    #[test]
    fn non_v6_rejected() {
        let buf = [0x45u8; 40];
        assert!(Ipv6Header::decode(&buf).is_none());
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(Ipv6Header::decode(&[0x60; 39]).is_none());
    }

    #[test]
    fn u128_conversion() {
        let h = Ipv6Header::new(
            Ipv6Addr::new(0, 0, 0, 0, 0, 0, 0, 1),
            Ipv6Addr::new(0, 0, 0, 0, 0, 0, 0, 2),
            IpProto::Tcp,
        );
        assert_eq!(h.src_u128(), 1);
        assert_eq!(h.dst_u128(), 2);
    }
}
