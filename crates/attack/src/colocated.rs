//! The Co-located TSE adversarial trace generator (§5.1).
//!
//! The attacker knows the installed ACL (it is her own, injected through the CMS API).
//! The trace that maximises the number of MFC masks is:
//!
//! * **single header**: one packet matching the allow rule, then one packet per relevant
//!   bit with that bit inverted — `{001, 101, 011, 000}` for the Fig. 1 ACL, which spawns
//!   exactly the Fig. 3 cache;
//! * **multiple headers**: the outer product of the per-field inversion lists, which
//!   spawns one mask per combination of tested bit positions (Fig. 5, §4.2).

use tse_packet::fields::{FieldSchema, Key};

use crate::scenarios::Scenario;

/// The bit-inversion list for a single field: the allowed value first, then the value
/// with each bit inverted, most-significant bit first (the order used in §5.1).
pub fn bit_inversion_list(width: u32, allow_value: u128) -> Vec<u128> {
    let mut out = Vec::with_capacity(width as usize + 1);
    let full = if width == 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    };
    let allow = allow_value & full;
    out.push(allow);
    for bit in (0..width).rev() {
        out.push(allow ^ (1u128 << bit));
    }
    out
}

/// Generate the Co-located TSE header trace for an arbitrary WhiteList+DefaultDeny ACL
/// described as `(field index, allowed value)` pairs in priority order: the outer product
/// of the per-field bit-inversion lists. Untargeted fields keep the value given in
/// `base`, so the caller can pin e.g. the destination IP to the attacker's own service.
pub fn bit_inversion_trace(schema: &FieldSchema, allows: &[(usize, u128)], base: &Key) -> Vec<Key> {
    bit_inversion_keys(schema, allows, base).collect()
}

/// The lazy form of [`bit_inversion_trace`]: an iterator walking the outer product of
/// the per-field bit-inversion lists without materialising the key vector. It is
/// `Clone`, so `bit_inversion_keys(..).cycle()` gives the looping-replay attacker as an
/// unbounded stream — the generator form consumed by
/// [`AttackGenerator`](crate::source::AttackGenerator).
pub fn bit_inversion_keys(
    schema: &FieldSchema,
    allows: &[(usize, u128)],
    base: &Key,
) -> BitInversionKeys {
    let lists: Vec<(usize, Vec<u128>)> = allows
        .iter()
        .map(|&(field, value)| (field, bit_inversion_list(schema.width(field), value)))
        .collect();
    BitInversionKeys {
        indices: vec![0usize; lists.len()],
        lists,
        base: base.clone(),
        done: false,
    }
}

/// Iterator over the Co-located outer-product key trace (see [`bit_inversion_keys`]).
#[derive(Debug, Clone)]
pub struct BitInversionKeys {
    lists: Vec<(usize, Vec<u128>)>,
    indices: Vec<usize>,
    base: Key,
    done: bool,
}

impl Iterator for BitInversionKeys {
    type Item = Key;

    fn next(&mut self) -> Option<Key> {
        if self.done {
            return None;
        }
        let mut key = self.base.clone();
        for (slot, (field, list)) in self.lists.iter().enumerate() {
            key.set(*field, list[self.indices[slot]]);
        }
        // Advance the odometer; a full wrap ends the iteration.
        let mut pos = self.lists.len();
        loop {
            if pos == 0 {
                self.done = true;
                break;
            }
            pos -= 1;
            self.indices[pos] += 1;
            if self.indices[pos] < self.lists[pos].1.len() {
                break;
            }
            self.indices[pos] = 0;
        }
        Some(key)
    }
}

/// Generate the Co-located trace for one of the paper's scenarios over the OVS schema.
/// `base` pins the untargeted fields (destination IP of the attacker's service, IP
/// protocol, etc.).
pub fn scenario_trace(schema: &FieldSchema, scenario: Scenario, base: &Key) -> Vec<Key> {
    scenario_key_iter(schema, scenario, base).collect()
}

/// Lazy form of [`scenario_trace`]: the Co-located key sequence for a scenario as a
/// cloneable iterator (empty for [`Scenario::Baseline`]). `scenario_key_iter(..).cycle()`
/// is the cyclic-replay attacker without a materialised trace.
pub fn scenario_key_iter(schema: &FieldSchema, scenario: Scenario, base: &Key) -> BitInversionKeys {
    if !scenario.has_attack_traffic() {
        return BitInversionKeys {
            lists: Vec::new(),
            indices: Vec::new(),
            base: base.clone(),
            done: true,
        };
    }
    let allows: Vec<(usize, u128)> = scenario
        .target_fields()
        .iter()
        .map(|t| {
            (
                schema.field_index(t.name).expect("schema field"),
                t.allow_value,
            )
        })
        .collect();
    bit_inversion_keys(schema, &allows, base)
}

/// Number of packets the Co-located trace contains for a scenario (Π (w_i + 1)).
pub fn trace_len(schema: &FieldSchema, scenario: Scenario) -> usize {
    if !scenario.has_attack_traffic() {
        return 0;
    }
    scenario
        .target_fields()
        .iter()
        .map(|t| schema.width(schema.field_index(t.name).expect("field")) as usize + 1)
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tse_classifier::strategy::{generate_megaflow, GenerationError, MegaflowStrategy};
    use tse_classifier::tss::TupleSpace;

    #[test]
    fn single_field_list_matches_paper_example() {
        // Fig. 1 ACL, 3-bit HYP, allow 001 → { 001, 101, 011, 000 }.
        assert_eq!(
            bit_inversion_list(3, 0b001),
            vec![0b001, 0b101, 0b011, 0b000]
        );
    }

    #[test]
    fn list_length_is_width_plus_one() {
        assert_eq!(bit_inversion_list(16, 80).len(), 17);
        assert_eq!(bit_inversion_list(32, 0x0a000001).len(), 33);
    }

    #[test]
    fn hyp_trace_spawns_fig3_cache() {
        let schema = FieldSchema::hyp();
        let table = tse_classifier::flowtable::FlowTable::fig1_hyp();
        let strategy = MegaflowStrategy::wildcarding(&schema);
        let base = schema.zero_value();
        let trace = bit_inversion_trace(&schema, &[(0, 0b001)], &base);
        assert_eq!(trace.len(), 4);
        let mut cache = TupleSpace::new(schema.clone());
        for h in &trace {
            if cache.lookup(h, 0.0).action.is_some() {
                continue;
            }
            match generate_megaflow(&table, &cache, h, &strategy) {
                Ok(g) => {
                    cache.insert(g.key, g.mask, g.action, 0.0).unwrap();
                }
                Err(GenerationError::AlreadyCovered) => {}
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(cache.mask_count(), 3);
        assert_eq!(cache.entry_count(), 4);
    }

    #[test]
    fn two_field_trace_spawns_13_masks() {
        // §4.2 / §5.1: the Fig. 4 ACL and the outer-product trace give 13 masks.
        let schema = FieldSchema::hyp2();
        let table = tse_classifier::flowtable::FlowTable::fig4_hyp2();
        let strategy = MegaflowStrategy::wildcarding(&schema);
        let base = schema.zero_value();
        let trace = bit_inversion_trace(&schema, &[(0, 0b001), (1, 0b1111)], &base);
        assert_eq!(trace.len(), 4 * 5);
        let mut cache = TupleSpace::new(schema.clone());
        for h in &trace {
            if cache.lookup(h, 0.0).action.is_some() {
                continue;
            }
            match generate_megaflow(&table, &cache, h, &strategy) {
                Ok(g) => {
                    cache.insert(g.key, g.mask, g.action, 0.0).unwrap();
                }
                Err(GenerationError::AlreadyCovered) => {}
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(cache.mask_count(), 13, "3*4 + 1 masks as computed in §4.2");
    }

    #[test]
    fn scenario_trace_lengths() {
        let schema = FieldSchema::ovs_ipv4();
        assert_eq!(trace_len(&schema, Scenario::Baseline), 0);
        assert_eq!(trace_len(&schema, Scenario::Dp), 17);
        assert_eq!(trace_len(&schema, Scenario::SpDp), 17 * 17);
        assert_eq!(trace_len(&schema, Scenario::SipDp), 17 * 33);
        assert_eq!(trace_len(&schema, Scenario::SipSpDp), 17 * 33 * 17);
        let base = schema.zero_value();
        assert_eq!(scenario_trace(&schema, Scenario::Dp, &base).len(), 17);
        assert!(scenario_trace(&schema, Scenario::Baseline, &base).is_empty());
    }

    #[test]
    fn lazy_iterator_matches_materialised_trace() {
        let schema = FieldSchema::ovs_ipv4();
        let base = schema.zero_value();
        for scenario in Scenario::ALL {
            let eager = scenario_trace(&schema, scenario, &base);
            let lazy: Vec<_> = scenario_key_iter(&schema, scenario, &base).collect();
            assert_eq!(eager, lazy, "{scenario}");
        }
        // Cycling the cloneable iterator reproduces the cyclic replay.
        let cycled: Vec<_> = scenario_key_iter(&schema, Scenario::Dp, &base)
            .cycle()
            .take(40)
            .collect();
        let eager = scenario_trace(&schema, Scenario::Dp, &base);
        assert_eq!(cycled[17], eager[0]);
        assert_eq!(cycled[39], eager[39 % 17]);
    }

    #[test]
    fn base_fields_preserved() {
        let schema = FieldSchema::ovs_ipv4();
        let ip_dst = schema.field_index("ip_dst").unwrap();
        let mut base = schema.zero_value();
        base.set(ip_dst, 0x0a0000c8);
        let trace = scenario_trace(&schema, Scenario::Dp, &base);
        assert!(trace.iter().all(|k| k.get(ip_dst) == 0x0a0000c8));
    }
}
