//! Theorem 4.1 / 4.2: the attainable space–time trade-offs of any TSS construction.
//!
//! For a single `w`-bit field with one exact-match allow rule and DefaultDeny, any TSS
//! construction with `k` masks needs at least `k·(2^(w/k) − 1)` entries; the two
//! extremes are exact-match (`k = 1`, `O(2^w)` entries) and full wildcarding (`k = w`,
//! `w` entries). The multi-field bound is the product of the per-field terms
//! (Theorem 4.2). These functions compute the bound curves that the `theorem_bounds`
//! binary prints and that the chunked generation strategy is checked against.

/// One point of the Theorem 4.1 trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// Number of masks (the lookup-time term, `O(k)`).
    pub masks: u64,
    /// Lower bound on the number of entries (the space term, `O(k·2^(w/k))`).
    pub entries: f64,
}

/// Theorem 4.1: minimal entry count for a `w`-bit field covered with exactly `k` masks.
///
/// The bound is `k · (2^(w/k) − 1)`; for the integral decomposition actually realisable
/// (split `w` bits into `k` chunks as evenly as possible) the entry count is
/// `Σ_i (2^{b_i} − 1)` with `Σ b_i = w`, which this function returns (it matches the
/// closed form when `k | w`).
pub fn single_field_entries(width: u32, k: u32) -> f64 {
    assert!(k >= 1 && k <= width, "k must be in 1..=w");
    let base = width / k;
    let remainder = width % k;
    let mut total = 0f64;
    for i in 0..k {
        let bits = base + if i < remainder { 1 } else { 0 };
        total += 2f64.powi(bits as i32) - 1.0;
    }
    total
}

/// The full Theorem 4.1 curve for a `w`-bit field: one point per `k ∈ 1..=w`.
pub fn single_field_curve(width: u32) -> Vec<TradeoffPoint> {
    (1..=width)
        .map(|k| TradeoffPoint {
            masks: u64::from(k),
            entries: single_field_entries(width, k),
        })
        .collect()
}

/// Theorem 4.2: time and space lower bounds for `n` fields of the given widths with the
/// given per-field mask counts `k_i`. Returns `(time = Π k_i, entries = Π k_i·(2^(w_i/k_i)−1))`.
pub fn multi_field_bound(widths: &[u32], ks: &[u32]) -> (f64, f64) {
    assert_eq!(widths.len(), ks.len());
    let mut time = 1f64;
    let mut space = 1f64;
    for (&w, &k) in widths.iter().zip(ks) {
        time *= f64::from(k);
        space *= single_field_entries(w, k);
    }
    (time, space)
}

/// The two extreme points of Theorem 4.2 for the given field widths:
/// `(optimal_time, optimal_space)` where
/// * optimal time (`k_i = 1`): 1 mask, `Π 2^{w_i}` entries (well, `Π (2^{w_i} − 1)`),
/// * optimal space (`k_i = w_i`): `Π w_i` masks, `Π w_i` entries.
pub fn multi_field_extremes(widths: &[u32]) -> ((f64, f64), (f64, f64)) {
    let ones: Vec<u32> = widths.iter().map(|_| 1).collect();
    let full: Vec<u32> = widths.to_vec();
    (
        multi_field_bound(widths, &ones),
        multi_field_bound(widths, &full),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes_of_the_3bit_example() {
        // §4.1: exact-match = 1 mask / 8 entries (7 deny + 1 allow ≈ 2^3), wildcarding =
        // 3 masks / 3 deny entries (+1 allow sharing a mask).
        assert_eq!(single_field_entries(3, 1), 7.0);
        assert_eq!(single_field_entries(3, 3), 3.0);
    }

    #[test]
    fn curve_is_monotone() {
        // More masks → fewer entries, for every width.
        for w in [8u32, 16, 32] {
            let curve = single_field_curve(w);
            assert_eq!(curve.len(), w as usize);
            for pair in curve.windows(2) {
                assert!(pair[0].entries >= pair[1].entries);
                assert!(pair[0].masks < pair[1].masks);
            }
        }
    }

    #[test]
    fn exact_match_is_exponential() {
        assert_eq!(single_field_entries(16, 1), 65535.0);
        assert_eq!(single_field_entries(32, 1), 4294967295.0);
    }

    #[test]
    fn multi_field_extremes_match_theorem() {
        // The Fig. 6 fields: 32-bit source IP, two 16-bit ports.
        let widths = [32u32, 16, 16];
        let ((t_time, s_time), (t_space, s_space)) = multi_field_extremes(&widths);
        // k_i = 1: one "time unit", ~2^64 entries.
        assert_eq!(t_time, 1.0);
        assert!(s_time > 1e18);
        // k_i = w_i: 32*16*16 = 8192 lookups, 32*16*16 entries.
        assert_eq!(t_space, 8192.0);
        assert_eq!(s_space, 8192.0);
    }

    #[test]
    fn intermediate_points_interpolate() {
        let (time, space) = multi_field_bound(&[16, 16], &[4, 4]);
        assert_eq!(time, 16.0);
        // 4 chunks of 4 bits each → 4·15 = 60 per field → 3600 total.
        assert_eq!(space, 3600.0);
    }

    #[test]
    fn uneven_split_handled() {
        // 5 bits in 2 chunks → 3+2 bits → 7 + 3 = 10 entries.
        assert_eq!(single_field_entries(5, 2), 10.0);
    }

    #[test]
    #[should_panic]
    fn k_larger_than_width_panics() {
        single_field_entries(4, 5);
    }
}
