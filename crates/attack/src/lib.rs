//! # tse-attack
//!
//! The paper's primary contribution in library form: the **Tuple Space Explosion**
//! attack against TSS-based packet classifiers.
//!
//! * [`scenarios`] — the §5.2 use cases (Baseline, Dp, SpDp, SipDp, SipSpDp) and the
//!   Fig. 6 ACL they target;
//! * [`colocated`] — the Co-located TSE trace generator (§5.1): bit-inversion lists and
//!   their outer product, which spawn the maximum number of MFC masks with the minimum
//!   number of packets when the ACL is known;
//! * [`general`] — the General TSE trace generator (§6): uniformly random headers against
//!   an unknown ACL;
//! * [`expectation`] — the analytic model (Eq. 1/2, Appendix 11.3) for the expected
//!   number of masks sparked by `n` random packets — the "E" curves of Fig. 9b;
//! * [`bounds`] — the Theorem 4.1/4.2 space–time trade-off bounds;
//! * [`sharding`] — shard-aware crafting for multi-PMD switches: retag the free field
//!   of a key stream so the explosion RSS-targets one chosen shard (the shard-pinned
//!   worst case) or sprays every shard evenly;
//! * [`trace`] — turning header sequences into timed, noise-randomised packet traces;
//! * [`source`] — the streaming form: pull-based [`source::TrafficSource`] event
//!   streams ([`trace::AttackTrace`] replay, the lazy [`source::AttackGenerator`]) and
//!   the [`source::TrafficMix`] timestamp merge that composes them into experiment
//!   workloads;
//! * [`wire`] — the wire-level form of the same sources: [`wire::WireSource`] /
//!   [`wire::WireGenerator`] serialise every packet to raw Ethernet bytes (optionally
//!   under a VLAN/VXLAN overlay) and recover the key through the real parser, emitting
//!   [`source::EventPayload::Malformed`] for frames the datapath cannot classify.
//!
//! Everything here is *generation and analysis*: the effect on a switch is measured by
//! feeding these traces into `tse-switch` / `tse-simnet`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod colocated;
pub mod expectation;
pub mod general;
pub mod scenarios;
pub mod sharding;
pub mod source;
pub mod trace;
pub mod wire;

pub use bounds::{multi_field_bound, multi_field_extremes, single_field_curve, TradeoffPoint};
pub use colocated::{
    bit_inversion_keys, bit_inversion_list, bit_inversion_trace, scenario_key_iter, scenario_trace,
    BitInversionKeys,
};
pub use expectation::ExpectationModel;
pub use general::{random_trace, random_trace_on_fields, RandomKeys};
pub use scenarios::{Scenario, TargetField};
pub use sharding::{pin_to_shard, retag_key_to_shard, spray_shards, ShardSteeredKeys};
pub use source::{
    AttackGenerator, EventPayload, SourceRole, TraceSource, TrafficEvent, TrafficMix, TrafficSource,
};
pub use trace::{AttackTrace, TimedPacket};
pub use wire::{wire_trace, WireGenerator, WireSource};
