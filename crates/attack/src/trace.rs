//! Attack traces as concrete, timed packets.
//!
//! The generators in [`crate::colocated`] and [`crate::general`] work on header *keys*;
//! this module turns them into real [`Packet`]s (with randomised noise fields, §5.2) and
//! attaches send times for a given packet rate, yielding the trace a real attacker would
//! replay from a pcap (§5.4).

use rand::Rng;

use tse_packet::builder::PacketBuilder;
use tse_packet::fields::{FieldSchema, Key};
use tse_packet::l4::IpProto;
use tse_packet::Packet;

/// One timed packet of an attack trace.
#[derive(Debug, Clone)]
pub struct TimedPacket {
    /// Send time in seconds from the start of the trace.
    pub time: f64,
    /// The packet itself.
    pub packet: Packet,
}

/// A replayable attack trace: packets with send times, produced at a constant rate.
#[derive(Debug, Clone, Default)]
pub struct AttackTrace {
    packets: Vec<TimedPacket>,
}

/// Field indices an attack crafter needs, resolved once per schema. Works on both OVS
/// schema families: `ip_src`/`ip_dst` (IPv4) or `ip6_src`/`ip6_dst` (IPv6).
///
/// # Panics
/// Panics if `schema` is neither OVS family.
pub(crate) fn crafting_fields(schema: &FieldSchema) -> (usize, usize, usize, usize, bool) {
    let (ip_src, ip_dst, is_v6) = match schema.field_index("ip_src") {
        Some(src) => (
            src,
            schema.field_index("ip_dst").expect("OVS IPv4 schema"),
            false,
        ),
        None => (
            schema
                .field_index("ip6_src")
                .expect("OVS IPv4 or IPv6 schema"),
            schema.field_index("ip6_dst").expect("OVS IPv6 schema"),
            true,
        ),
    };
    let tp_src = schema.field_index("tp_src").expect("OVS schema");
    let tp_dst = schema.field_index("tp_dst").expect("OVS schema");
    (ip_src, ip_dst, tp_src, tp_dst, is_v6)
}

/// Craft one attack packet (before noise randomisation) from a header key.
pub(crate) fn craft_packet(key: &Key, fields: (usize, usize, usize, usize, bool)) -> PacketBuilder {
    let (ip_src, ip_dst, tp_src, tp_dst, is_v6) = fields;
    if is_v6 {
        PacketBuilder::from_numeric_v6(
            key.get(ip_src),
            key.get(ip_dst),
            IpProto::Tcp,
            key.get(tp_src) as u16,
            key.get(tp_dst) as u16,
        )
    } else {
        PacketBuilder::from_numeric_v4(
            key.get(ip_src) as u32,
            key.get(ip_dst) as u32,
            IpProto::Tcp,
            key.get(tp_src) as u16,
            key.get(tp_dst) as u16,
        )
    }
}

impl AttackTrace {
    /// Build a trace from header keys over an OVS schema (IPv4 or IPv6), sent at
    /// `rate_pps` starting at `start_time`. Each packet's noise fields (TTL, IP id /
    /// flow label, TCP seq) are randomised so every packet is a distinct microflow.
    pub fn from_keys<R: Rng + ?Sized>(
        rng: &mut R,
        schema: &FieldSchema,
        keys: &[Key],
        rate_pps: f64,
        start_time: f64,
    ) -> Self {
        assert!(rate_pps > 0.0, "rate must be positive");
        let fields = crafting_fields(schema);
        let interval = 1.0 / rate_pps;
        let packets = keys
            .iter()
            .enumerate()
            .map(|(i, key)| {
                let packet = craft_packet(key, fields).randomize_noise(rng).build();
                TimedPacket {
                    time: start_time + i as f64 * interval,
                    packet,
                }
            })
            .collect();
        AttackTrace { packets }
    }

    /// Repeat the key sequence until `count` packets have been emitted (the attacker
    /// replays the pcap in a loop to keep entries alive).
    pub fn from_keys_cyclic<R: Rng + ?Sized>(
        rng: &mut R,
        schema: &FieldSchema,
        keys: &[Key],
        rate_pps: f64,
        start_time: f64,
        count: usize,
    ) -> Self {
        assert!(!keys.is_empty());
        let repeated: Vec<Key> = (0..count).map(|i| keys[i % keys.len()].clone()).collect();
        Self::from_keys(rng, schema, &repeated, rate_pps, start_time)
    }

    /// Build a trace directly from already-timed packets (used to stitch multiple attack
    /// bursts — e.g. the on/off attacker of Fig. 8b — into one replayable trace).
    ///
    /// # Panics
    /// Panics if the packets are not in non-decreasing time order.
    pub fn from_timed(packets: Vec<TimedPacket>) -> Self {
        assert!(
            packets.windows(2).all(|w| w[0].time <= w[1].time),
            "timed packets must be sorted by send time"
        );
        AttackTrace { packets }
    }

    /// The timed packets, in send order.
    pub fn packets(&self) -> &[TimedPacket] {
        &self.packets
    }

    /// View the trace as a pull-based [`TrafficSource`](crate::source::TrafficSource)
    /// replaying its packets as keyed events under `schema` — the adapter that plugs a
    /// materialised trace into a [`TrafficMix`](crate::source::TrafficMix).
    pub fn source<'a>(
        &'a self,
        label: impl Into<String>,
        schema: &FieldSchema,
    ) -> crate::source::TraceSource<'a> {
        crate::source::TraceSource::new(label, self, schema)
    }

    /// Number of packets in the trace.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total trace duration in seconds (0 for traces with fewer than two packets).
    pub fn duration(&self) -> f64 {
        match (self.packets.first(), self.packets.last()) {
            (Some(first), Some(last)) => last.time - first.time,
            _ => 0.0,
        }
    }

    /// Aggregate attack bandwidth in bits per second (wire bytes / duration), the number
    /// the paper quotes as "0.67 Mbps is enough to tear down OVS".
    pub fn bandwidth_bps(&self) -> f64 {
        if self.packets.len() < 2 {
            return 0.0;
        }
        let bytes: usize = self.packets.iter().map(|p| p.packet.wire_len()).sum();
        bytes as f64 * 8.0 / self.duration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colocated::scenario_trace;
    use crate::scenarios::Scenario;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tse_packet::flowkey::MicroflowKey;

    #[test]
    fn trace_timing_matches_rate() {
        let schema = FieldSchema::ovs_ipv4();
        let mut rng = StdRng::seed_from_u64(1);
        let keys = scenario_trace(&schema, Scenario::Dp, &schema.zero_value());
        let trace = AttackTrace::from_keys(&mut rng, &schema, &keys, 100.0, 5.0);
        assert_eq!(trace.len(), 17);
        assert!((trace.packets()[0].time - 5.0).abs() < 1e-9);
        assert!((trace.packets()[1].time - 5.01).abs() < 1e-9);
        assert!((trace.duration() - 0.16).abs() < 1e-9);
    }

    #[test]
    fn low_rate_attack_is_sub_mbps() {
        // §5/§10: ~1 000 packets at 1 000 pps is ≈0.7 Mbps — a low-rate attack.
        let schema = FieldSchema::ovs_ipv4();
        let mut rng = StdRng::seed_from_u64(2);
        let keys = scenario_trace(&schema, Scenario::SipSpDp, &schema.zero_value());
        let trace = AttackTrace::from_keys_cyclic(
            &mut rng,
            &schema,
            &keys[..1000.min(keys.len())],
            1000.0,
            0.0,
            1000,
        );
        let mbps = trace.bandwidth_bps() / 1e6;
        assert!(
            mbps < 1.0,
            "attack rate {mbps} Mbps should stay below 1 Mbps"
        );
        assert!(mbps > 0.1);
    }

    #[test]
    fn noise_makes_every_packet_a_distinct_microflow() {
        let schema = FieldSchema::ovs_ipv4();
        let mut rng = StdRng::seed_from_u64(3);
        let keys = vec![schema.zero_value(); 50];
        let trace = AttackTrace::from_keys(&mut rng, &schema, &keys, 10.0, 0.0);
        let micro: std::collections::HashSet<MicroflowKey> = trace
            .packets()
            .iter()
            .map(|p| MicroflowKey::from_packet(&p.packet))
            .collect();
        assert!(
            micro.len() > 45,
            "noise should make microflow keys distinct: {}",
            micro.len()
        );
    }

    #[test]
    fn cyclic_replay_repeats_keys() {
        let schema = FieldSchema::ovs_ipv4();
        let mut rng = StdRng::seed_from_u64(4);
        let keys = scenario_trace(&schema, Scenario::Dp, &schema.zero_value());
        let trace = AttackTrace::from_keys_cyclic(&mut rng, &schema, &keys, 50.0, 0.0, 100);
        assert_eq!(trace.len(), 100);
    }

    #[test]
    fn from_timed_requires_sorted_times() {
        let schema = FieldSchema::ovs_ipv4();
        let mut rng = StdRng::seed_from_u64(9);
        let keys = scenario_trace(&schema, Scenario::Dp, &schema.zero_value());
        let a = AttackTrace::from_keys(&mut rng, &schema, &keys, 100.0, 0.0);
        let b = AttackTrace::from_keys(&mut rng, &schema, &keys, 100.0, 10.0);
        let mut all = a.packets().to_vec();
        all.extend_from_slice(b.packets());
        let stitched = AttackTrace::from_timed(all);
        assert_eq!(stitched.len(), a.len() + b.len());
        assert!((stitched.duration() - (10.0 + b.duration())).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn from_timed_rejects_unsorted() {
        let schema = FieldSchema::ovs_ipv4();
        let mut rng = StdRng::seed_from_u64(9);
        let keys = scenario_trace(&schema, Scenario::Dp, &schema.zero_value());
        let a = AttackTrace::from_keys(&mut rng, &schema, &keys, 100.0, 10.0);
        let b = AttackTrace::from_keys(&mut rng, &schema, &keys, 100.0, 0.0);
        let mut all = a.packets().to_vec();
        all.extend_from_slice(b.packets());
        let _ = AttackTrace::from_timed(all);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let t = AttackTrace::default();
        assert!(t.is_empty());
        assert_eq!(t.duration(), 0.0);
        assert_eq!(t.bandwidth_bps(), 0.0);
    }
}
