//! Wire-level traffic sources: pcap-style replay of serialised frames through the real
//! parser.
//!
//! The key-level sources in [`crate::source`] hand the datapath pre-extracted header
//! keys. The sources here instead serialise every packet to raw Ethernet bytes
//! (optionally under a VLAN/VXLAN overlay, [`Encap`]) and recover the key through
//! [`tse_packet::wire::decode`] — so the full header-layout code runs on the hot path,
//! exactly as a switch fed from a NIC. For the same keys, seed, rate and start time a
//! wire source emits an event stream **identical** to its key-level counterpart
//! (encode→decode is exact), which the tests here pin; the only difference appears
//! under an overlay, where the event's `bytes` honestly include the encapsulation
//! overhead.
//!
//! Frames that fail to decode (or decode into the wrong address family) are not
//! dropped: they come out as [`EventPayload::Malformed`] events the experiment runner
//! charges to shard 0, like the datapath's schema-mismatch path.

use rand::Rng;

use tse_packet::fields::{FieldSchema, Key};
use tse_packet::flowkey::FlowKey;
use tse_packet::wire::{self, Encap, WireFault, WireTrace};

use crate::source::{EventPayload, TrafficEvent, TrafficSource};
use crate::trace::AttackTrace;

/// Serialise an [`AttackTrace`] into a [`WireTrace`] under the given encapsulation —
/// the "write the pcap" half of wire-level replay.
pub fn wire_trace(trace: &AttackTrace, encap: Encap) -> WireTrace {
    let mut out = WireTrace::new();
    for tp in trace.packets() {
        out.push_packet(tp.time, &tp.packet, encap);
    }
    out
}

/// Which OVS schema families a schema can classify (resolved once per source).
#[derive(Debug, Clone, Copy)]
struct Family {
    v4: bool,
    v6: bool,
}

impl Family {
    fn of(schema: &FieldSchema) -> Self {
        Family {
            v4: schema.field_index("ip_src").is_some(),
            v6: schema.field_index("ip6_src").is_some(),
        }
    }
}

/// Decode one frame into a traffic event: a classifiable packet becomes a keyed
/// [`EventPayload::Packet`]; anything else becomes [`EventPayload::Malformed`] with a
/// schema zero key (never steered — the runner charges it to shard 0).
fn frame_event(
    schema: &FieldSchema,
    family: Family,
    zero: &Key,
    time: f64,
    frame: &[u8],
) -> TrafficEvent {
    let payload = match wire::decode(frame) {
        Ok(pkt) => {
            let flow = FlowKey::from_packet(&pkt);
            if (flow.is_v6 && family.v6) || (!flow.is_v6 && family.v4) {
                return TrafficEvent {
                    time,
                    key: flow.to_key(schema),
                    bytes: frame.len(),
                    payload: EventPayload::Packet,
                };
            }
            EventPayload::Malformed {
                fault: WireFault::FamilyMismatch,
            }
        }
        Err(e) => EventPayload::Malformed { fault: e.into() },
    };
    TrafficEvent {
        time,
        key: zero.clone(),
        bytes: frame.len(),
        payload,
    }
}

/// A [`TrafficSource`] replaying a [`WireTrace`] frame by frame through the wire
/// parser — the pcap-replay attacker of §5.4, down to the bytes.
#[derive(Debug, Clone)]
pub struct WireSource {
    label: String,
    schema: FieldSchema,
    family: Family,
    zero: Key,
    trace: WireTrace,
    cursor: usize,
}

impl WireSource {
    /// Replay `trace` as events under `schema`.
    pub fn replay(label: impl Into<String>, trace: WireTrace, schema: &FieldSchema) -> Self {
        WireSource {
            label: label.into(),
            family: Family::of(schema),
            zero: schema.zero_value(),
            schema: schema.clone(),
            trace,
            cursor: 0,
        }
    }

    /// Serialise an [`AttackTrace`] under `encap` and replay it — shorthand for
    /// [`wire_trace`] + [`WireSource::replay`].
    pub fn from_attack_trace(
        label: impl Into<String>,
        trace: &AttackTrace,
        schema: &FieldSchema,
        encap: Encap,
    ) -> Self {
        Self::replay(label, wire_trace(trace, encap), schema)
    }

    /// The frame trace being replayed.
    pub fn trace(&self) -> &WireTrace {
        &self.trace
    }
}

impl TrafficSource for WireSource {
    fn label(&self) -> &str {
        &self.label
    }

    fn next_event(&mut self) -> Option<TrafficEvent> {
        if self.cursor >= self.trace.len() {
            return None;
        }
        let i = self.cursor;
        self.cursor += 1;
        Some(frame_event(
            &self.schema,
            self.family,
            &self.zero,
            self.trace.time(i),
            self.trace.frame(i),
        ))
    }
}

/// The lazy wire-level generator: crafts each attack packet on the fly (identically to
/// [`crate::source::AttackGenerator`] — same builder, same noise draws, same constant-
/// rate timestamps), serialises it into a reusable frame buffer under the configured
/// [`Encap`], and recovers the classification key through the real parser. O(1) memory
/// for any packet count, zero per-packet buffer allocations in steady state.
#[derive(Debug, Clone)]
pub struct WireGenerator<I, R> {
    label: String,
    schema: FieldSchema,
    family: Family,
    fields: (usize, usize, usize, usize, bool),
    zero: Key,
    keys: I,
    rng: R,
    rate_pps: f64,
    start_time: f64,
    emitted: usize,
    limit: Option<usize>,
    encap: Encap,
    frame: Vec<u8>,
}

impl<I, R> WireGenerator<I, R>
where
    I: Iterator<Item = Key>,
    R: Rng,
{
    /// Create a generator over an OVS schema (IPv4 or IPv6), one frame per key drawn
    /// from `keys` at `rate_pps` starting at `start_time`, with no encapsulation.
    pub fn new(
        label: impl Into<String>,
        schema: &FieldSchema,
        keys: I,
        rng: R,
        rate_pps: f64,
        start_time: f64,
    ) -> Self {
        assert!(rate_pps > 0.0, "rate must be positive");
        WireGenerator {
            label: label.into(),
            family: Family::of(schema),
            fields: crate::trace::crafting_fields(schema),
            zero: schema.zero_value(),
            schema: schema.clone(),
            keys,
            rng,
            rate_pps,
            start_time,
            emitted: 0,
            limit: None,
            encap: Encap::None,
            frame: Vec::new(),
        }
    }

    /// Serialise every frame under `encap`. Under a VXLAN tunnel the outer header is
    /// the tunnel's fixed VTEP addresses and VNI — the attacker controls only the
    /// inner frame, which is exactly what the parser extracts and the ACL classifies.
    pub fn with_encap(mut self, encap: Encap) -> Self {
        self.encap = encap;
        self
    }

    /// Cap the stream at `count` frames (the cyclic-replay form).
    pub fn with_limit(mut self, count: usize) -> Self {
        self.limit = Some(count);
        self
    }
}

impl<I, R> TrafficSource for WireGenerator<I, R>
where
    I: Iterator<Item = Key> + Send,
    R: Rng + Send,
{
    fn label(&self) -> &str {
        &self.label
    }

    fn next_event(&mut self) -> Option<TrafficEvent> {
        if let Some(limit) = self.limit {
            if self.emitted >= limit {
                return None;
            }
        }
        let key = self.keys.next()?;
        let packet = crate::trace::craft_packet(&key, self.fields)
            .randomize_noise(&mut self.rng)
            .build();
        self.frame.clear();
        self.encap.encode_into(&packet, &mut self.frame);
        let time = self.start_time + self.emitted as f64 * (1.0 / self.rate_pps);
        self.emitted += 1;
        Some(frame_event(
            &self.schema,
            self.family,
            &self.zero,
            time,
            &self.frame,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colocated::{scenario_key_iter, scenario_trace};
    use crate::general::random_trace_on_fields;
    use crate::scenarios::Scenario;
    use crate::source::{AttackGenerator, SourceRole, TraceSource};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tse_packet::wire::DecodeError;

    fn stream(mut src: impl TrafficSource) -> Vec<TrafficEvent> {
        std::iter::from_fn(move || src.next_event()).collect()
    }

    #[test]
    fn wire_replay_matches_key_level_replay_exactly() {
        let schema = FieldSchema::ovs_ipv4();
        let keys = scenario_trace(&schema, Scenario::SpDp, &schema.zero_value());
        let trace =
            AttackTrace::from_keys(&mut StdRng::seed_from_u64(7), &schema, &keys, 200.0, 3.0);
        let wire = WireSource::from_attack_trace("atk", &trace, &schema, Encap::None);
        assert_eq!(wire.trace().len(), trace.len());
        let keyed = TraceSource::new("atk", &trace, &schema);
        assert_eq!(stream(wire), stream(keyed));
    }

    #[test]
    fn wire_generator_matches_key_level_generator_exactly() {
        let schema = FieldSchema::ovs_ipv4();
        let mk_keys = || {
            scenario_key_iter(&schema, Scenario::SipDp, &schema.zero_value())
                .cycle()
                .take(400)
        };
        let wire = WireGenerator::new(
            "atk",
            &schema,
            mk_keys(),
            StdRng::seed_from_u64(42),
            250.0,
            10.0,
        );
        let keyed = AttackGenerator::new(
            "atk",
            &schema,
            mk_keys(),
            StdRng::seed_from_u64(42),
            250.0,
            10.0,
        );
        assert_eq!(stream(wire), stream(keyed));
    }

    #[test]
    fn ipv6_wire_generator_matches_key_level_generator() {
        let schema = FieldSchema::ovs_ipv6();
        let ip6_src = schema.field_index("ip6_src").unwrap();
        let tp_dst = schema.field_index("tp_dst").unwrap();
        let mk_keys = || {
            random_trace_on_fields(
                &mut StdRng::seed_from_u64(99),
                &schema,
                &[ip6_src, tp_dst],
                &schema.zero_value(),
                300,
            )
            .into_iter()
        };
        let wire = WireGenerator::new(
            "v6",
            &schema,
            mk_keys(),
            StdRng::seed_from_u64(5),
            100.0,
            0.0,
        );
        let keyed = AttackGenerator::new(
            "v6",
            &schema,
            mk_keys(),
            StdRng::seed_from_u64(5),
            100.0,
            0.0,
        );
        let wire_events = stream(wire);
        assert_eq!(wire_events, stream(keyed));
        assert_eq!(wire_events.len(), 300);
    }

    #[test]
    fn overlay_encap_extracts_the_inner_key() {
        let schema = FieldSchema::ovs_ipv4();
        let keys = scenario_trace(&schema, Scenario::Dp, &schema.zero_value());
        let trace =
            AttackTrace::from_keys(&mut StdRng::seed_from_u64(1), &schema, &keys, 100.0, 0.0);
        let plain = stream(WireSource::from_attack_trace(
            "p",
            &trace,
            &schema,
            Encap::None,
        ));
        for encap in [
            Encap::Vlan { tci: 100 },
            Encap::Vxlan {
                outer_src: 0x0a00_0001,
                outer_dst: 0x0a00_0002,
                vni: 42,
            },
        ] {
            let tunneled = stream(WireSource::from_attack_trace("t", &trace, &schema, encap));
            assert_eq!(tunneled.len(), plain.len());
            for (t, p) in tunneled.iter().zip(plain.iter()) {
                // The overlay changes the wire bytes but not the classified key: the
                // attacker-controlled inner header passes through the tunnel intact.
                assert_eq!(t.key, p.key);
                assert_eq!(t.time, p.time);
                assert_eq!(t.payload, p.payload);
                assert_eq!(t.bytes, p.bytes + encap.overhead());
            }
        }
    }

    #[test]
    fn unclassifiable_frames_become_malformed_events() {
        let schema = FieldSchema::ovs_ipv4();
        let v6 = tse_packet::PacketBuilder::tcp_v6(
            [1, 0, 0, 0, 0, 0, 0, 2],
            [3, 0, 0, 0, 0, 0, 0, 4],
            1,
            2,
        )
        .build();
        let good = tse_packet::PacketBuilder::tcp_v4([10, 0, 0, 1], [10, 0, 0, 2], 1, 80).build();
        let mut trace = WireTrace::new();
        trace.push_packet(0.0, &good, Encap::None);
        trace.push(0.1, &wire::encode(&good)[..9]); // truncated
        trace.push_packet(0.2, &v6, Encap::None); // family mismatch under v4 schema
        let events = stream(WireSource::replay("mix", trace, &schema));
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].payload, EventPayload::Packet);
        assert_eq!(
            events[1].payload,
            EventPayload::Malformed {
                fault: WireFault::Decode(DecodeError::Truncated)
            }
        );
        assert_eq!(events[1].key, schema.zero_value());
        assert_eq!(
            events[2].payload,
            EventPayload::Malformed {
                fault: WireFault::FamilyMismatch
            }
        );
        let src = WireSource::replay("mix", WireTrace::new(), &schema);
        assert_eq!(src.role(), SourceRole::Attacker);
    }
}
