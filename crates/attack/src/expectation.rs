//! Analytic model of General TSE: the expected number of MFC masks sparked by `n`
//! random packets (§6.1, Eq. 1–2 and Appendix 11.3).
//!
//! The model enumerates the megaflow entries the OVS wildcarding strategy can ever
//! create for a WhiteList+DefaultDeny ACL whose `m` allow rules each exact-match one
//! field (Theorem 4.2's shape):
//!
//! * the entry covering rule `i` constrains a prefix of every higher-priority rule's
//!   field (to witness the mismatch), exact-matches field `i` and wildcards the rest;
//! * a deny entry constrains one prefix per targeted field.
//!
//! Each concrete entry covers `2^k` of the `2^H` possible targeted-header values (its
//! `k` wildcarded bits), so a single random packet sparks it with probability
//! `p_k = 2^k / 2^H` (Eq. 1) and `n` packets spark it with probability
//! `1 − (1 − p_k)^n`. Summing per *distinct mask* (entries that share a mask pool their
//! coverage) gives the expected mask count the paper plots as the "E" curves of Fig. 9b.

use std::collections::BTreeMap;

use tse_packet::fields::FieldSchema;

use crate::scenarios::Scenario;

/// Probability that one uniformly random header matches a specific megaflow entry with
/// `k` wildcarded bits out of `h` targeted bits — Eq. 1's `p_k(MFC)`.
pub fn spark_probability(wildcarded_bits: u32, targeted_bits: u32) -> f64 {
    2f64.powi(wildcarded_bits as i32) / 2f64.powi(targeted_bits as i32)
}

/// Probability that at least one of `n` random packets sparks an entry of coverage
/// probability `p` — Eq. 1's `p(k,n)(MFC)`.
pub fn spark_probability_n(p: f64, n: u64) -> f64 {
    1.0 - (1.0 - p).powf(n as f64)
}

/// The analytic model for one ACL shape: targeted field widths in rule-priority order.
#[derive(Debug, Clone)]
pub struct ExpectationModel {
    /// Widths of the targeted fields, in the priority order of their allow rules.
    widths: Vec<u32>,
    /// Distinct masks of the construction: per-field prefix lengths → total coverage
    /// probability of the entries sharing that mask. A `BTreeMap` keyed by the prefix
    /// vector keeps [`ExpectationModel::expected_masks`]'s floating-point sum in a
    /// deterministic order — hash order would vary per process and perturb the low
    /// bits of the "E" curves.
    masks: BTreeMap<Vec<u32>, f64>,
}

impl ExpectationModel {
    /// Build the model for explicit field widths (rule-priority order).
    pub fn new(widths: Vec<u32>) -> Self {
        assert!(!widths.is_empty());
        let total_bits: u32 = widths.iter().sum();
        let mut masks: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
        let m = widths.len();

        // Entries covering allow rule i (0-based): prefixes on fields < i, exact on i,
        // wildcard on fields > i.
        for i in 0..m {
            let prefix_widths: Vec<u32> = widths[..i].to_vec();
            enumerate_prefixes(&prefix_widths, &mut |prefix| {
                let mut mask_key: Vec<u32> = Vec::with_capacity(m);
                mask_key.extend_from_slice(prefix);
                mask_key.push(widths[i]);
                mask_key.extend(std::iter::repeat_n(0, m - i - 1));
                let constrained: u32 = prefix.iter().sum::<u32>() + widths[i];
                let coverage = spark_probability(total_bits - constrained, total_bits);
                *masks.entry(mask_key).or_insert(0.0) += coverage;
            });
        }
        // Deny entries: prefixes on every field.
        enumerate_prefixes(&widths, &mut |prefix| {
            let constrained: u32 = prefix.iter().sum();
            let coverage = spark_probability(total_bits - constrained, total_bits);
            *masks.entry(prefix.to_vec()).or_insert(0.0) += coverage;
        });

        ExpectationModel { widths, masks }
    }

    /// Build the model for one of the paper's scenarios over the given schema.
    pub fn for_scenario(schema: &FieldSchema, scenario: Scenario) -> Self {
        let widths: Vec<u32> = scenario
            .target_fields()
            .iter()
            .map(|t| schema.width(schema.field_index(t.name).expect("field")))
            .collect();
        Self::new(widths)
    }

    /// The targeted field widths.
    pub fn widths(&self) -> &[u32] {
        &self.widths
    }

    /// Maximum number of distinct masks the construction can ever contain — the
    /// Co-located attack's ceiling for this ACL.
    pub fn max_masks(&self) -> usize {
        self.masks.len()
    }

    /// Expected number of distinct MFC masks after `n` independent uniformly random
    /// packets — Eq. 2 generalised to exact per-mask coverage.
    pub fn expected_masks(&self, n: u64) -> f64 {
        self.masks
            .values()
            .map(|&p| spark_probability_n(p, n))
            .sum()
    }

    /// Expected number of megaflow *entries* after `n` random packets (each enumerated
    /// entry counted separately). Entries and masks coincide except for shared masks, so
    /// this is an upper bound on [`ExpectationModel::expected_masks`].
    pub fn expected_entries(&self, n: u64) -> f64 {
        // Re-enumerate entries rather than masks: coverage per entry.
        let total_bits: u32 = self.widths.iter().sum();
        let m = self.widths.len();
        let mut expected = 0.0;
        for i in 0..m {
            enumerate_prefixes(&self.widths[..i], &mut |prefix| {
                let constrained: u32 = prefix.iter().sum::<u32>() + self.widths[i];
                let p = spark_probability(total_bits - constrained, total_bits);
                expected += spark_probability_n(p, n);
            });
        }
        enumerate_prefixes(&self.widths, &mut |prefix| {
            let constrained: u32 = prefix.iter().sum();
            let p = spark_probability(total_bits - constrained, total_bits);
            expected += spark_probability_n(p, n);
        });
        expected
    }
}

/// Enumerate every combination of per-field prefix lengths `l_j ∈ 1..=w_j` and call `f`
/// with each combination. An empty width list calls `f` once with the empty prefix.
fn enumerate_prefixes(widths: &[u32], f: &mut impl FnMut(&[u32])) {
    fn rec(widths: &[u32], idx: usize, current: &mut Vec<u32>, f: &mut impl FnMut(&[u32])) {
        if idx == widths.len() {
            f(current);
            return;
        }
        for l in 1..=widths[idx] {
            current.push(l);
            rec(widths, idx + 1, current, f);
            current.pop();
        }
    }
    let mut current = Vec::with_capacity(widths.len());
    rec(widths, 0, &mut current, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tse_packet::fields::FieldSchema;

    #[test]
    fn spark_probability_matches_paper_example() {
        // §6.1: entry #2 of Fig. 3 has 2 wildcarded bits of 3 → p = 2²/2³ = 0.5.
        assert!((spark_probability(2, 3) - 0.5).abs() < 1e-12);
        assert!((spark_probability_n(0.5, 1) - 0.5).abs() < 1e-12);
        assert!((spark_probability_n(0.5, 2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn max_masks_match_colocated_ceilings() {
        let schema = FieldSchema::ovs_ipv4();
        // Dp: 16 deny prefixes; the rule-1 exact mask coincides with the full-length
        // prefix (just as the first and last entries of Fig. 3 share mask 111).
        assert_eq!(
            ExpectationModel::for_scenario(&schema, Scenario::Dp).max_masks(),
            16
        );
        // SipDp: 16*32 deny + 16 rule-2 (shared with deny when l2=32 -> 16 shared) + 1.
        let sipdp = ExpectationModel::for_scenario(&schema, Scenario::SipDp).max_masks();
        assert_eq!(sipdp, 16 * 32 + 1);
        // SipSpDp is in the ~8200 range quoted by §5.2.
        let full = ExpectationModel::for_scenario(&schema, Scenario::SipSpDp).max_masks();
        assert!((8192..=8800).contains(&full), "SipSpDp max masks = {full}");
    }

    #[test]
    fn expected_masks_monotone_in_n() {
        let schema = FieldSchema::ovs_ipv4();
        let m = ExpectationModel::for_scenario(&schema, Scenario::SipDp);
        let mut prev = 0.0;
        for n in [10u64, 100, 1000, 10_000, 50_000] {
            let e = m.expected_masks(n);
            assert!(e >= prev);
            prev = e;
        }
        assert!(prev <= m.max_masks() as f64 + 1e-9);
    }

    #[test]
    fn fig9b_anchor_points() {
        // §6.2: with 50 000 random packets the measured/expected masks are ≈16 (Dp),
        // ≈122 (SipDp) and ≈581 (SipSpDp). Allow generous tolerance: we reproduce the
        // shape, not the exact decimals.
        let schema = FieldSchema::ovs_ipv4();
        let dp = ExpectationModel::for_scenario(&schema, Scenario::Dp).expected_masks(50_000);
        let sipdp = ExpectationModel::for_scenario(&schema, Scenario::SipDp).expected_masks(50_000);
        let full =
            ExpectationModel::for_scenario(&schema, Scenario::SipSpDp).expected_masks(50_000);
        assert!((12.0..=17.0).contains(&dp), "Dp expected ≈16, got {dp}");
        assert!(
            (100.0..=140.0).contains(&sipdp),
            "SipDp expected ≈122, got {sipdp}"
        );
        assert!(
            (450.0..=700.0).contains(&full),
            "SipSpDp expected ≈581, got {full}"
        );
    }

    #[test]
    fn dp_and_spdp_expectations_nearly_identical() {
        // §6.2 notes the SpDp and SipDp expectations are dominated by the width of the
        // field the first rule matches on; SpDp (16+16 bits) trails SipDp (16+32 bits)
        // but both are far above Dp.
        let schema = FieldSchema::ovs_ipv4();
        let dp = ExpectationModel::for_scenario(&schema, Scenario::Dp).expected_masks(10_000);
        let spdp = ExpectationModel::for_scenario(&schema, Scenario::SpDp).expected_masks(10_000);
        let sipdp = ExpectationModel::for_scenario(&schema, Scenario::SipDp).expected_masks(10_000);
        assert!(spdp > 3.0 * dp);
        assert!(sipdp > 3.0 * dp);
        assert!((spdp - sipdp).abs() / sipdp < 0.25);
    }

    #[test]
    fn entries_upper_bound_masks() {
        let schema = FieldSchema::ovs_ipv4();
        let m = ExpectationModel::for_scenario(&schema, Scenario::SipDp);
        for n in [100u64, 5_000] {
            assert!(m.expected_entries(n) + 1e-9 >= m.expected_masks(n));
        }
    }

    #[test]
    fn single_small_field_exact() {
        // 3-bit HYP: masks = 3 deny prefixes, the allow mask shared with the longest one
        // (exactly Fig. 3's 3 masks); with huge n all are present.
        let m = ExpectationModel::new(vec![3]);
        assert_eq!(m.max_masks(), 3);
        assert!((m.expected_masks(1_000_000) - 3.0).abs() < 1e-3);
        // One packet sparks exactly one entry on average.
        assert!((m.expected_entries(1) - 1.0).abs() < 1e-9);
    }
}
