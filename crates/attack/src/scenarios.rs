//! The attack scenarios of §5.2: Baseline, Dp, SpDp, SipDp and SipSpDp.
//!
//! Each scenario selects which header fields of the Fig. 6 ACL are targeted and carries
//! the paper's expected maximum number of MFC masks for the Co-located attack.

use tse_classifier::flowtable::FlowTable;
use tse_packet::fields::{FieldSchema, Key};

/// The allowed values of the Fig. 6 ACL.
pub mod fig6 {
    /// Rule #1: allow TCP destination port 80.
    pub const ALLOW_DST_PORT: u128 = 80;
    /// Rule #2: allow source IP 10.0.0.1.
    pub const ALLOW_SRC_IP: u128 = 0x0a00_0001;
    /// Rule #3: allow TCP source port 12345.
    pub const ALLOW_SRC_PORT: u128 = 12345;
}

/// A targeted header field together with its allowed (whitelisted) value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetField {
    /// Name of the field in the OVS schema (`"ip_src"`, `"tp_src"`, `"tp_dst"`).
    pub name: &'static str,
    /// The exact value the corresponding allow rule whitelists.
    pub allow_value: u128,
}

/// The §5.2 use cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Only the destination-port allow rule, no attack traffic: the switch's full
    /// capacity (1 MFC mask).
    Baseline,
    /// Attack on the 16-bit destination port only (rules #1 + #4 of Fig. 6).
    Dp,
    /// Attack on source and destination ports (~16² = 256 masks).
    SpDp,
    /// Attack on source IP and destination port (~32·16 = 512 masks).
    SipDp,
    /// The full-blown attack on all three fields (~8200 masks).
    SipSpDp,
}

impl Scenario {
    /// All scenarios, in increasing order of attack surface.
    pub const ALL: [Scenario; 5] = [
        Scenario::Baseline,
        Scenario::Dp,
        Scenario::SpDp,
        Scenario::SipDp,
        Scenario::SipSpDp,
    ];

    /// Human-readable name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Baseline => "Baseline",
            Scenario::Dp => "Dp",
            Scenario::SpDp => "SpDp",
            Scenario::SipDp => "SipDp",
            Scenario::SipSpDp => "SipSpDp",
        }
    }

    /// The header fields this scenario's ACL matches on (in rule-priority order), i.e.
    /// the fields the adversarial trace varies.
    pub fn target_fields(&self) -> Vec<TargetField> {
        let dp = TargetField {
            name: "tp_dst",
            allow_value: fig6::ALLOW_DST_PORT,
        };
        let sip = TargetField {
            name: "ip_src",
            allow_value: fig6::ALLOW_SRC_IP,
        };
        let sp = TargetField {
            name: "tp_src",
            allow_value: fig6::ALLOW_SRC_PORT,
        };
        match self {
            Scenario::Baseline => vec![dp],
            Scenario::Dp => vec![dp],
            Scenario::SpDp => vec![dp, sp],
            Scenario::SipDp => vec![dp, sip],
            Scenario::SipSpDp => vec![dp, sip, sp],
        }
    }

    /// Whether adversarial traffic is sent at all (everything except Baseline).
    pub fn has_attack_traffic(&self) -> bool {
        !matches!(self, Scenario::Baseline)
    }

    /// The ACL for this scenario over the given OVS schema: one exact-match allow rule
    /// per targeted field plus DefaultDeny — the subset of Fig. 6 the use case installs.
    pub fn flow_table(&self, schema: &FieldSchema) -> FlowTable {
        let allows: Vec<(usize, u128)> = self
            .target_fields()
            .iter()
            .map(|t| {
                (
                    schema
                        .field_index(t.name)
                        .unwrap_or_else(|| panic!("schema lacks field {}", t.name)),
                    t.allow_value,
                )
            })
            .collect();
        FlowTable::whitelist_default_deny(schema, &allows)
    }

    /// The paper's quoted number of MFC masks attainable by the Co-located attack
    /// (§5.2): 1, 16, ~256, ~512, ~8200.
    pub fn expected_max_masks(&self, schema: &FieldSchema) -> usize {
        if !self.has_attack_traffic() {
            return 1;
        }
        self.target_fields()
            .iter()
            .map(|t| schema.width(schema.field_index(t.name).expect("field")) as usize)
            .product::<usize>()
    }

    /// The Co-located key sequence for this scenario as a lazy, cloneable iterator
    /// (see [`crate::colocated::scenario_key_iter`]); `.cycle()` it for the
    /// looping-replay attacker without materialising a trace.
    pub fn key_iter(&self, schema: &FieldSchema, base: &Key) -> crate::colocated::BitInversionKeys {
        crate::colocated::scenario_key_iter(schema, *self, base)
    }

    /// Total targeted header bits (the `h` of Eq. 1).
    pub fn targeted_bits(&self, schema: &FieldSchema) -> u32 {
        self.target_fields()
            .iter()
            .map(|t| schema.width(schema.field_index(t.name).expect("field")))
            .sum()
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tse_classifier::rule::Action;
    use tse_packet::fields::Key;

    #[test]
    fn expected_mask_counts_match_paper() {
        let schema = FieldSchema::ovs_ipv4();
        assert_eq!(Scenario::Baseline.expected_max_masks(&schema), 1);
        assert_eq!(Scenario::Dp.expected_max_masks(&schema), 16);
        assert_eq!(Scenario::SpDp.expected_max_masks(&schema), 256);
        assert_eq!(Scenario::SipDp.expected_max_masks(&schema), 512);
        assert_eq!(Scenario::SipSpDp.expected_max_masks(&schema), 8192);
    }

    #[test]
    fn flow_table_sizes() {
        let schema = FieldSchema::ovs_ipv4();
        assert_eq!(Scenario::Dp.flow_table(&schema).len(), 2);
        assert_eq!(Scenario::SipSpDp.flow_table(&schema).len(), 4);
    }

    #[test]
    fn fig6_semantics() {
        let schema = FieldSchema::ovs_ipv4();
        let table = Scenario::SipSpDp.flow_table(&schema);
        let ip_src = schema.field_index("ip_src").unwrap();
        let tp_src = schema.field_index("tp_src").unwrap();
        let tp_dst = schema.field_index("tp_dst").unwrap();
        // Port 80 traffic allowed.
        let mut h = schema.zero_value();
        h.set(tp_dst, 80);
        assert_eq!(table.lookup(&h).unwrap().action, Action::Allow);
        // 10.0.0.1 allowed regardless of ports.
        let mut h = schema.zero_value();
        h.set(ip_src, 0x0a000001);
        h.set(tp_dst, 443);
        assert_eq!(table.lookup(&h).unwrap().action, Action::Allow);
        // Source port 12345 allowed.
        let mut h = schema.zero_value();
        h.set(tp_src, 12345);
        assert_eq!(table.lookup(&h).unwrap().action, Action::Allow);
        // Anything else denied.
        let h = Key::from_values(&schema, &[1, 2, 6, 64, 1000, 9999]);
        assert_eq!(table.lookup(&h).unwrap().action, Action::Deny);
    }

    #[test]
    fn targeted_bits() {
        let schema = FieldSchema::ovs_ipv4();
        assert_eq!(Scenario::Dp.targeted_bits(&schema), 16);
        assert_eq!(Scenario::SipDp.targeted_bits(&schema), 48);
        assert_eq!(Scenario::SipSpDp.targeted_bits(&schema), 64);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Scenario::SipSpDp.name(), "SipSpDp");
        assert_eq!(Scenario::Baseline.to_string(), "Baseline");
        assert_eq!(Scenario::ALL.len(), 5);
        assert!(!Scenario::Baseline.has_attack_traffic());
        assert!(Scenario::Dp.has_attack_traffic());
    }
}
