//! Pull-based traffic sources: the streaming experiment-construction API.
//!
//! The paper's experiments all reduce to "some mix of victim traffic and crafted
//! tuple-space-explosion traffic hitting one datapath over time". This module expresses
//! that directly: a [`TrafficSource`] lazily yields timestamped classification events,
//! and a [`TrafficMix`] k-way-merges any number of sources by timestamp. An
//! [`AttackTrace`] is one source
//! ([`TraceSource`]); [`AttackGenerator`] is the lazy form that synthesizes explosion
//! traffic on the fly instead of materialising a packet vector; victim flows (in
//! `tse-simnet`) are another. The experiment runner drains the merged stream — a
//! 100-million-packet scenario never has to exist in memory at once, and multi-attacker
//! or staggered-onset mixes are just more sources.

use rand::Rng;

use tse_packet::fields::{FieldSchema, Key};
use tse_packet::flowkey::FlowKey;
use tse_packet::wire::WireFault;

use crate::trace::AttackTrace;

/// What an event means to the consumer (the experiment runner).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventPayload {
    /// A concrete packet to replay through the datapath at its timestamp. The event's
    /// cost is charged against the shared CPU budget.
    Packet,
    /// A victim-side measurement probe: the consumer refreshes the flow's fast-path
    /// entry, reads off the current per-invocation cost, and converts leftover CPU into
    /// delivered throughput for a flow offering `offered_gbps`.
    Probe {
        /// The probed flow's offered load in Gbps at this instant.
        offered_gbps: f64,
    },
    /// A raw frame that could not be classified: wire decode failed, or the decoded
    /// family does not match the experiment's schema. The event's `key` is a schema
    /// zero value (never steered); the consumer charges the frame to shard 0, exactly
    /// like the datapath's schema-mismatch path.
    Malformed {
        /// Why the frame was unclassifiable.
        fault: WireFault,
    },
}

/// One timestamped classification event emitted by a [`TrafficSource`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficEvent {
    /// Event time in seconds from the start of the experiment.
    pub time: f64,
    /// The pre-extracted header key (what the fast path classifies on).
    pub key: Key,
    /// Wire bytes carried by this event (throughput accounting).
    pub bytes: usize,
    /// How the consumer should treat the event.
    pub payload: EventPayload,
}

/// How a source participates in an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceRole {
    /// Adversarial (or generally per-packet) traffic: every event is replayed through
    /// the datapath and consumes CPU.
    Attacker,
    /// A victim flow: events are periodic probes, and the source is attributed a
    /// delivered-throughput series in the timeline.
    Victim,
    /// Benign background load (e.g. tenant flow churn): every event is replayed
    /// through the datapath and consumes CPU exactly like attacker traffic, but the
    /// packets are not attributed to any attacker series — consumers account them
    /// separately (the runner's aggregate `background_pps`).
    Background,
}

/// A pull-based stream of timestamped classification events.
///
/// Implementations must yield events in nondecreasing `time` order; [`TrafficMix`]
/// clamps regressions defensively, but a well-behaved source never relies on that.
/// Sources may be unbounded (e.g. a victim flow that runs forever, or a General-TSE
/// generator) — consumers pull only as far as the experiment horizon.
///
/// `Send` is a supertrait so the pipelined experiment runner can drain interval
/// *k + 1* on a spare pool worker while the datapath shards chew interval *k*; every
/// source is plain owned data (traces, RNG state), so this costs implementors nothing.
pub trait TrafficSource: Send {
    /// Display label (per-source attribution in timelines, e.g. `"Attacker 2"`).
    fn label(&self) -> &str;

    /// How the source participates in an experiment (default: [`SourceRole::Attacker`]).
    fn role(&self) -> SourceRole {
        SourceRole::Attacker
    }

    /// The next event, or `None` when the source is exhausted.
    fn next_event(&mut self) -> Option<TrafficEvent>;
}

/// A [`TrafficSource`] replaying a pre-materialised [`AttackTrace`].
///
/// Keys are extracted from the stored packets with the given schema, so replaying a
/// trace through the keyed event pipeline classifies exactly the packets the trace
/// holds (including their randomised noise fields, which are part of the OVS key).
#[derive(Debug, Clone)]
pub struct TraceSource<'a> {
    label: String,
    schema: FieldSchema,
    trace: &'a AttackTrace,
    cursor: usize,
}

impl<'a> TraceSource<'a> {
    /// Wrap a trace. `schema` must be the OVS schema family matching the packets
    /// (key extraction panics otherwise, exactly like [`FlowKey::to_key`]).
    pub fn new(label: impl Into<String>, trace: &'a AttackTrace, schema: &FieldSchema) -> Self {
        TraceSource {
            label: label.into(),
            schema: schema.clone(),
            trace,
            cursor: 0,
        }
    }
}

impl TrafficSource for TraceSource<'_> {
    fn label(&self) -> &str {
        &self.label
    }

    fn next_event(&mut self) -> Option<TrafficEvent> {
        let tp = self.trace.packets().get(self.cursor)?;
        self.cursor += 1;
        Some(TrafficEvent {
            time: tp.time,
            key: FlowKey::from_packet(&tp.packet).to_key(&self.schema),
            bytes: tp.packet.wire_len(),
            payload: EventPayload::Packet,
        })
    }
}

/// The lazy generator form of an attack trace: synthesizes explosion traffic on the
/// fly from a key iterator instead of materialising a `Vec<TimedPacket>`.
///
/// Packets are crafted exactly as [`AttackTrace::from_keys`] crafts them — same
/// builder, same noise randomisation, same constant-rate timestamps — so a generator
/// over the same keys, rate, start time and RNG seed emits an event stream identical
/// to replaying the materialised trace, at O(1) memory for any packet count. Combine
/// with [`crate::colocated::scenario_key_iter`] (cycled) or
/// [`crate::general::RandomKeys`] for unbounded traffic.
#[derive(Debug, Clone)]
pub struct AttackGenerator<I, R> {
    label: String,
    schema: FieldSchema,
    fields: (usize, usize, usize, usize, bool),
    keys: I,
    rng: R,
    rate_pps: f64,
    start_time: f64,
    emitted: usize,
    limit: Option<usize>,
}

impl<I, R> AttackGenerator<I, R>
where
    I: Iterator<Item = Key>,
    R: Rng,
{
    /// Create a generator over an OVS schema (IPv4 or IPv6), sending one packet per key
    /// drawn from `keys` at `rate_pps` starting at `start_time`. The stream ends when
    /// `keys` does (pass a cycled iterator plus [`AttackGenerator::with_limit`] for the
    /// "replay the pcap in a loop" attacker).
    pub fn new(
        label: impl Into<String>,
        schema: &FieldSchema,
        keys: I,
        rng: R,
        rate_pps: f64,
        start_time: f64,
    ) -> Self {
        assert!(rate_pps > 0.0, "rate must be positive");
        AttackGenerator {
            label: label.into(),
            fields: crate::trace::crafting_fields(schema),
            schema: schema.clone(),
            keys,
            rng,
            rate_pps,
            start_time,
            emitted: 0,
            limit: None,
        }
    }

    /// Cap the stream at `count` packets (the cyclic-replay form).
    pub fn with_limit(mut self, count: usize) -> Self {
        self.limit = Some(count);
        self
    }
}

impl<I, R> TrafficSource for AttackGenerator<I, R>
where
    I: Iterator<Item = Key> + Send,
    R: Rng + Send,
{
    fn label(&self) -> &str {
        &self.label
    }

    fn next_event(&mut self) -> Option<TrafficEvent> {
        if let Some(limit) = self.limit {
            if self.emitted >= limit {
                return None;
            }
        }
        let key = self.keys.next()?;
        let packet = crate::trace::craft_packet(&key, self.fields)
            .randomize_noise(&mut self.rng)
            .build();
        let time = self.start_time + self.emitted as f64 * (1.0 / self.rate_pps);
        self.emitted += 1;
        Some(TrafficEvent {
            time,
            key: FlowKey::from_packet(&packet).to_key(&self.schema),
            bytes: packet.wire_len(),
            payload: EventPayload::Packet,
        })
    }
}

/// Min-heap ordering key for the merge: earliest timestamp first, ties broken by
/// source insertion order. Timestamps are normalised (`-0.0` → `+0.0`) before they
/// enter the heap so `total_cmp` agrees with numeric comparison on every value a
/// well-behaved source can emit.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MergeKey {
    time: f64,
    index: usize,
}

impl Eq for MergeKey {}

impl Ord for MergeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.index.cmp(&other.index))
    }
}

impl PartialOrd for MergeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A timestamp-ordered k-way merge over any number of [`TrafficSource`]s.
///
/// Events are pulled lazily; ties are broken by source insertion order, so e.g. victim
/// probes sharing a timestamp are delivered in the order the victims were added. A
/// source whose stream regresses in time is clamped to its own previous timestamp, so
/// the merged stream is always nondecreasing.
///
/// The merge is heap-based: `next()` and `peek_time()` are O(log S) in the source
/// count S, so a tenant fleet with thousands of victim sources does not pay a linear
/// scan per event.
#[derive(Default)]
pub struct TrafficMix<'a> {
    sources: Vec<Box<dyn TrafficSource + 'a>>,
    /// Per-source lookahead buffer (`None` before priming or after exhaustion).
    heads: Vec<Option<TrafficEvent>>,
    /// Last timestamp emitted by each source (for the monotonicity clamp).
    last_times: Vec<f64>,
    /// One entry per source with a buffered head, keyed by (time, insertion index).
    heap: std::collections::BinaryHeap<std::cmp::Reverse<MergeKey>>,
    primed: bool,
}

impl std::fmt::Debug for TrafficMix<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrafficMix")
            .field("labels", &self.labels())
            .field("primed", &self.primed)
            .finish()
    }
}

impl<'a> TrafficMix<'a> {
    /// An empty mix.
    pub fn new() -> Self {
        TrafficMix {
            sources: Vec::new(),
            heads: Vec::new(),
            last_times: Vec::new(),
            heap: std::collections::BinaryHeap::new(),
            primed: false,
        }
    }

    /// Add a source (fluent form).
    pub fn with(mut self, source: impl TrafficSource + 'a) -> Self {
        self.push(Box::new(source));
        self
    }

    /// Add a boxed source.
    pub fn push(&mut self, source: Box<dyn TrafficSource + 'a>) {
        assert!(
            !self.primed,
            "cannot add sources to a TrafficMix after events have been pulled"
        );
        self.sources.push(source);
        self.heads.push(None);
        self.last_times.push(f64::NEG_INFINITY);
    }

    /// Number of sources in the mix.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True if the mix has no sources.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// The sources' labels, in insertion order.
    pub fn labels(&self) -> Vec<String> {
        self.sources.iter().map(|s| s.label().to_string()).collect()
    }

    /// The sources' roles, in insertion order.
    pub fn roles(&self) -> Vec<SourceRole> {
        self.sources.iter().map(|s| s.role()).collect()
    }

    fn refill(&mut self, i: usize) {
        let mut ev = self.sources[i].next_event();
        if let Some(e) = &mut ev {
            // Defensive monotonicity clamp: a regressive source cannot drag the merged
            // stream backwards in time.
            if e.time < self.last_times[i] {
                e.time = self.last_times[i];
            }
            // `+ 0.0` collapses -0.0 to +0.0 so the heap's total order matches the
            // numeric order the linear scan used.
            self.heap.push(std::cmp::Reverse(MergeKey {
                time: e.time + 0.0,
                index: i,
            }));
        }
        self.heads[i] = ev;
    }

    fn prime(&mut self) {
        if !self.primed {
            for i in 0..self.sources.len() {
                self.refill(i);
            }
            self.primed = true;
        }
    }

    /// Timestamp of the next event without consuming it.
    pub fn peek_time(&mut self) -> Option<f64> {
        self.prime();
        self.heap.peek().map(|r| r.0.time)
    }

    /// The next event in merged timestamp order, tagged with its source index.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(usize, TrafficEvent)> {
        self.prime();
        let i = self.heap.pop()?.0.index;
        let ev = self.heads[i]
            .take()
            .expect("heap entry has a buffered head");
        self.last_times[i] = ev.time;
        self.refill(i);
        Some((i, ev))
    }

    /// The next event only if its timestamp is strictly below `t_end` — the primitive
    /// the event-driven runner uses to drain one sample interval at a time.
    pub fn next_before(&mut self, t_end: f64) -> Option<(usize, TrafficEvent)> {
        if self.peek_time()? < t_end {
            self.next()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colocated::{scenario_key_iter, scenario_trace};
    use crate::scenarios::Scenario;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A scripted source for merge tests.
    struct Scripted {
        label: String,
        times: Vec<f64>,
        at: usize,
    }

    impl Scripted {
        fn new(label: &str, times: Vec<f64>) -> Self {
            Scripted {
                label: label.into(),
                times,
                at: 0,
            }
        }
    }

    impl TrafficSource for Scripted {
        fn label(&self) -> &str {
            &self.label
        }

        fn next_event(&mut self) -> Option<TrafficEvent> {
            let t = *self.times.get(self.at)?;
            self.at += 1;
            Some(TrafficEvent {
                time: t,
                key: FieldSchema::hyp().zero_value(),
                bytes: 64,
                payload: EventPayload::Packet,
            })
        }
    }

    #[test]
    fn merge_orders_by_time_with_stable_ties() {
        let mut mix = TrafficMix::new()
            .with(Scripted::new("a", vec![0.0, 2.0, 2.0, 5.0]))
            .with(Scripted::new("b", vec![1.0, 2.0, 3.0]));
        let mut got = Vec::new();
        while let Some((i, ev)) = mix.next() {
            got.push((i, ev.time));
        }
        assert_eq!(
            got,
            vec![
                (0, 0.0),
                (1, 1.0),
                (0, 2.0),
                (0, 2.0),
                (1, 2.0),
                (1, 3.0),
                (0, 5.0)
            ]
        );
    }

    #[test]
    fn next_before_respects_the_boundary() {
        let mut mix = TrafficMix::new().with(Scripted::new("a", vec![0.5, 1.5]));
        assert_eq!(mix.next_before(1.0).unwrap().1.time, 0.5);
        assert!(mix.next_before(1.0).is_none());
        assert_eq!(mix.next_before(2.0).unwrap().1.time, 1.5);
        assert!(mix.next_before(f64::INFINITY).is_none());
    }

    #[test]
    fn negative_zero_ties_keep_insertion_order() {
        // -0.0 and +0.0 are the same instant: the heap must not let total ordering of
        // the bit patterns override insertion-order tie-breaking.
        let mut mix = TrafficMix::new()
            .with(Scripted::new("a", vec![0.0]))
            .with(Scripted::new("b", vec![-0.0]));
        let got: Vec<usize> = std::iter::from_fn(|| mix.next()).map(|(i, _)| i).collect();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn many_source_merge_is_stable_and_ordered() {
        // Deterministic pseudo-random times across 17 sources: the merged stream is
        // nondecreasing and equal timestamps come out in insertion order.
        let mut state = 0x9E37u64;
        let mut step = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 8) as f64 * 0.25
        };
        let mut mix = TrafficMix::new();
        for s in 0..17 {
            let mut t = 0.0;
            let times: Vec<f64> = (0..20)
                .map(|_| {
                    t += step();
                    t
                })
                .collect();
            mix.push(Box::new(Scripted::new(&format!("s{s}"), times)));
        }
        let mut prev = (f64::NEG_INFINITY, 0usize);
        let mut n = 0;
        while let Some((i, ev)) = mix.next() {
            assert!(
                ev.time > prev.0 || (ev.time == prev.0 && i >= prev.1),
                "order violated at event {n}: {:?} then ({i}, {})",
                prev,
                ev.time
            );
            prev = (ev.time, i);
            n += 1;
        }
        assert_eq!(n, 17 * 20);
    }

    #[test]
    fn regressive_source_is_clamped() {
        let mut mix = TrafficMix::new().with(Scripted::new("bad", vec![3.0, 1.0, 4.0]));
        let times: Vec<f64> = std::iter::from_fn(|| mix.next())
            .map(|(_, e)| e.time)
            .collect();
        assert_eq!(times, vec![3.0, 3.0, 4.0]);
    }

    #[test]
    fn trace_source_replays_the_trace_exactly() {
        let schema = FieldSchema::ovs_ipv4();
        let mut rng = StdRng::seed_from_u64(5);
        let keys = scenario_trace(&schema, Scenario::Dp, &schema.zero_value());
        let trace = AttackTrace::from_keys(&mut rng, &schema, &keys, 50.0, 2.0);
        let mut src = TraceSource::new("atk", &trace, &schema);
        let mut n = 0;
        while let Some(ev) = src.next_event() {
            let tp = &trace.packets()[n];
            assert_eq!(ev.time, tp.time);
            assert_eq!(ev.key, FlowKey::from_packet(&tp.packet).to_key(&schema));
            assert_eq!(ev.bytes, tp.packet.wire_len());
            assert_eq!(ev.payload, EventPayload::Packet);
            n += 1;
        }
        assert_eq!(n, trace.len());
        assert_eq!(src.role(), SourceRole::Attacker);
    }

    #[test]
    fn generator_matches_materialised_trace() {
        // The lazy generator over the same keys, seed, rate and start time emits the
        // exact event stream of the materialised AttackTrace — without the Vec.
        let schema = FieldSchema::ovs_ipv4();
        let keys = scenario_trace(&schema, Scenario::SpDp, &schema.zero_value());
        let trace = AttackTrace::from_keys_cyclic(
            &mut StdRng::seed_from_u64(42),
            &schema,
            &keys,
            250.0,
            10.0,
            700,
        );
        let mut lazy = AttackGenerator::new(
            "atk",
            &schema,
            scenario_key_iter(&schema, Scenario::SpDp, &schema.zero_value())
                .cycle()
                .take(700),
            StdRng::seed_from_u64(42),
            250.0,
            10.0,
        );
        let mut reference = TraceSource::new("atk", &trace, &schema);
        let mut count = 0;
        loop {
            match (reference.next_event(), lazy.next_event()) {
                (None, None) => break,
                (a, b) => {
                    assert_eq!(a, b, "event {count} diverged");
                    count += 1;
                }
            }
        }
        assert_eq!(count, 700);
    }

    #[test]
    fn generator_limit_caps_an_infinite_stream() {
        let schema = FieldSchema::ovs_ipv4();
        let mut gen = AttackGenerator::new(
            "atk",
            &schema,
            scenario_key_iter(&schema, Scenario::Dp, &schema.zero_value()).cycle(),
            StdRng::seed_from_u64(1),
            100.0,
            0.0,
        )
        .with_limit(23);
        let mut n = 0;
        while gen.next_event().is_some() {
            n += 1;
        }
        assert_eq!(n, 23);
    }
}
