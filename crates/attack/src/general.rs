//! The General TSE trace generator (§6): no co-location, no knowledge of the ACL.
//!
//! The attacker simply randomises the header fields an ingress ACL *could* match on
//! (source IP, source port, destination port) and relies on the fact that random headers
//! still spark megaflow entries with probability given by Eq. 1. The only structure in
//! the trace is which fields are randomised; the values, order and timing are arbitrary
//! — which is exactly why the paper argues the attack has no signature.

use rand::Rng;

use tse_packet::fields::{FieldSchema, Key};

use crate::scenarios::Scenario;

/// Generate `n` random attack headers for a scenario: the scenario's targeted fields are
/// drawn uniformly at random, all other fields are copied from `base`.
pub fn random_trace<R: Rng + ?Sized>(
    rng: &mut R,
    schema: &FieldSchema,
    scenario: Scenario,
    base: &Key,
    n: usize,
) -> Vec<Key> {
    let fields: Vec<usize> = scenario
        .target_fields()
        .iter()
        .map(|t| schema.field_index(t.name).expect("schema field"))
        .collect();
    random_trace_on_fields(rng, schema, &fields, base, n)
}

/// Generate `n` random headers randomising an explicit set of fields.
pub fn random_trace_on_fields<R: Rng + ?Sized>(
    rng: &mut R,
    schema: &FieldSchema,
    fields: &[usize],
    base: &Key,
    n: usize,
) -> Vec<Key> {
    (0..n)
        .map(|_| {
            let mut key = base.clone();
            for &f in fields {
                key.set(f, random_field_value(rng, schema.width(f)));
            }
            key
        })
        .collect()
}

/// The unbounded, lazy form of the General TSE: an infinite iterator of random attack
/// headers, one draw per pull — the key stream behind a
/// [`AttackGenerator`](crate::source::AttackGenerator) that never materialises a trace.
/// Draws match [`random_trace`] for the same RNG state and scenario.
#[derive(Debug, Clone)]
pub struct RandomKeys<R> {
    widths: Vec<(usize, u32)>,
    base: Key,
    rng: R,
}

impl<R: Rng> RandomKeys<R> {
    /// Random headers for a scenario's targeted fields; untargeted fields keep `base`.
    pub fn new(rng: R, schema: &FieldSchema, scenario: Scenario, base: &Key) -> Self {
        let fields: Vec<usize> = scenario
            .target_fields()
            .iter()
            .map(|t| schema.field_index(t.name).expect("schema field"))
            .collect();
        Self::on_fields(rng, schema, &fields, base)
    }

    /// Random headers over an explicit field set.
    pub fn on_fields(rng: R, schema: &FieldSchema, fields: &[usize], base: &Key) -> Self {
        RandomKeys {
            widths: fields.iter().map(|&f| (f, schema.width(f))).collect(),
            base: base.clone(),
            rng,
        }
    }
}

impl<R: Rng> Iterator for RandomKeys<R> {
    type Item = Key;

    fn next(&mut self) -> Option<Key> {
        let mut key = self.base.clone();
        for &(f, width) in &self.widths {
            key.set(f, random_field_value(&mut self.rng, width));
        }
        Some(key)
    }
}

/// Draw a uniform random value of the given bit width.
pub fn random_field_value<R: Rng + ?Sized>(rng: &mut R, width: u32) -> u128 {
    let raw: u128 = ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128;
    if width == 128 {
        raw
    } else {
        raw & ((1u128 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randomises_only_targeted_fields() {
        let schema = FieldSchema::ovs_ipv4();
        let mut rng = StdRng::seed_from_u64(7);
        let ip_dst = schema.field_index("ip_dst").unwrap();
        let tp_dst = schema.field_index("tp_dst").unwrap();
        let ip_src = schema.field_index("ip_src").unwrap();
        let mut base = schema.zero_value();
        base.set(ip_dst, 0xdead_beef);
        let trace = random_trace(&mut rng, &schema, Scenario::Dp, &base, 200);
        assert_eq!(trace.len(), 200);
        // Destination IP untouched, source IP untouched (Dp only randomises tp_dst).
        assert!(trace.iter().all(|k| k.get(ip_dst) == 0xdead_beef));
        assert!(trace.iter().all(|k| k.get(ip_src) == 0));
        // Destination port actually varies.
        let distinct: std::collections::HashSet<u128> =
            trace.iter().map(|k| k.get(tp_dst)).collect();
        assert!(
            distinct.len() > 100,
            "random ports should mostly be distinct"
        );
    }

    #[test]
    fn values_respect_field_width() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(random_field_value(&mut rng, 16) < (1 << 16));
            assert!(random_field_value(&mut rng, 3) < 8);
        }
        // Width-128 values exercise the full range without panicking.
        let _ = random_field_value(&mut rng, 128);
    }

    #[test]
    fn deterministic_with_seed() {
        let schema = FieldSchema::ovs_ipv4();
        let base = schema.zero_value();
        let a = random_trace(
            &mut StdRng::seed_from_u64(3),
            &schema,
            Scenario::SipSpDp,
            &base,
            50,
        );
        let b = random_trace(
            &mut StdRng::seed_from_u64(3),
            &schema,
            Scenario::SipSpDp,
            &base,
            50,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn random_keys_stream_matches_materialised_trace() {
        let schema = FieldSchema::ovs_ipv4();
        let base = schema.zero_value();
        let eager = random_trace(
            &mut StdRng::seed_from_u64(13),
            &schema,
            Scenario::SipDp,
            &base,
            80,
        );
        let lazy: Vec<_> =
            RandomKeys::new(StdRng::seed_from_u64(13), &schema, Scenario::SipDp, &base)
                .take(80)
                .collect();
        assert_eq!(eager, lazy);
    }

    #[test]
    fn sipspdp_randomises_three_fields() {
        let schema = FieldSchema::ovs_ipv4();
        let mut rng = StdRng::seed_from_u64(11);
        let base = schema.zero_value();
        let trace = random_trace(&mut rng, &schema, Scenario::SipSpDp, &base, 64);
        let ip_src = schema.field_index("ip_src").unwrap();
        let tp_src = schema.field_index("tp_src").unwrap();
        let tp_dst = schema.field_index("tp_dst").unwrap();
        for f in [ip_src, tp_src, tp_dst] {
            let distinct: std::collections::HashSet<u128> =
                trace.iter().map(|k| k.get(f)).collect();
            assert!(distinct.len() > 10, "field {f} should vary");
        }
    }
}
