//! Shard-aware attack crafting: aiming the tuple-space explosion at a chosen PMD.
//!
//! On a multi-PMD switch every RX queue (shard) owns a private megaflow cache, and the
//! NIC's RSS hash of the 5-tuple decides which cache a packet poisons. The attacker
//! controls parts of that 5-tuple she does not need for the explosion itself — in the
//! co-located setting the destination address is her own service, so she can retag it
//! freely without changing which megaflow masks her packets spark (the ACLs of §5.2
//! never examine it, so its bits stay wildcarded). That freedom is enough to steer
//! *every* attack packet:
//!
//! * [`pin_to_shard`] retags a key stream so all keys hash to one chosen shard — the
//!   worst case from the paper's testbed, where the whole explosion lands on the PMD
//!   polling the victim's queue;
//! * [`spray_shards`] retags round-robin across all shards, poisoning every PMD's
//!   cache evenly (the strongest whole-switch attack).
//!
//! Both produce plain `Iterator<Item = Key>` adapters that compose with
//! [`AttackGenerator`](crate::source::AttackGenerator) exactly like the scenario key
//! iterators. The hash is [`tse_packet::rss`] — the same function the sharded
//! datapath steers with, so targeting is exact by construction.
//!
//! **Caveat:** the adapter hashes the keys it sees. Fields the downstream packet
//! crafting overrides must already hold their final value — in particular
//! `AttackGenerator` builds TCP packets, so set `ip_proto` to 6 in the base key the
//! scenario iterator fills in (noise fields like TTL are not hashed and stay free).

use tse_packet::fields::{FieldSchema, Key};
use tse_packet::rss;

/// Retag `key`'s `free_field` with the smallest non-negative offset from its current
/// value that steers the key to `target` among `n_shards` under the RSS hash over
/// `hash_fields`. Expected cost: `n_shards` hash evaluations.
///
/// # Panics
/// Panics if `free_field` is not one of `hash_fields` (retagging it could never move
/// the key) or if no value of the free field reaches the target shard (cannot happen
/// for a field of ≥ 16 bits and realistic shard counts; guarded with a generous try
/// cap).
pub fn retag_key_to_shard(
    schema: &FieldSchema,
    mut key: Key,
    free_field: usize,
    hash_fields: &[usize],
    n_shards: usize,
    target: usize,
) -> Key {
    assert!(target < n_shards, "target shard out of range");
    assert!(
        hash_fields.contains(&free_field),
        "free field {} must participate in the RSS hash",
        schema.fields()[free_field].name
    );
    let full = schema.fields()[free_field].full_mask();
    let base = key.get(free_field);
    let width = schema.width(free_field) as u128;
    let tries = (1u128 << width.min(20)).max(64 * n_shards as u128);
    for v in 0..tries {
        key.set(free_field, (base.wrapping_add(v)) & full);
        if rss::shard_of(&key, hash_fields, n_shards) == target {
            return key;
        }
    }
    panic!(
        "no value of field {} steers the key to shard {target}/{n_shards}",
        schema.fields()[free_field].name
    );
}

/// Whether a steered stream pins one shard or cycles through all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShardTarget {
    Pin(usize),
    Spray,
}

/// Iterator adapter steering a key stream across shards (see [`pin_to_shard`] /
/// [`spray_shards`]). `Clone` when the inner iterator is, so it cycles like the
/// scenario iterators.
#[derive(Debug, Clone)]
pub struct ShardSteeredKeys<I> {
    schema: FieldSchema,
    inner: I,
    free_field: usize,
    hash_fields: Vec<usize>,
    n_shards: usize,
    target: ShardTarget,
    next_spray: usize,
}

impl<I: Iterator<Item = Key>> Iterator for ShardSteeredKeys<I> {
    type Item = Key;

    fn next(&mut self) -> Option<Key> {
        let key = self.inner.next()?;
        let target = match self.target {
            ShardTarget::Pin(s) => s,
            ShardTarget::Spray => {
                let t = self.next_spray;
                self.next_spray = (self.next_spray + 1) % self.n_shards;
                t
            }
        };
        Some(retag_key_to_shard(
            &self.schema,
            key,
            self.free_field,
            &self.hash_fields,
            self.n_shards,
            target,
        ))
    }
}

fn steered<I>(
    schema: &FieldSchema,
    keys: I,
    free_field: usize,
    n_shards: usize,
    target: ShardTarget,
) -> ShardSteeredKeys<I> {
    assert!(n_shards > 0, "shard count must be positive");
    let hash_fields = rss::rss_fields(schema);
    assert!(
        hash_fields.contains(&free_field),
        "free field {} must participate in the RSS hash",
        schema.fields()[free_field].name
    );
    // (retag_key_to_shard re-checks the containment per key; asserting here too makes
    // a misconfigured adapter fail at construction, before any key is pulled.)
    ShardSteeredKeys {
        schema: schema.clone(),
        inner: keys,
        free_field,
        hash_fields,
        n_shards,
        target,
        next_spray: 0,
    }
}

/// Steer every key of `keys` to `shard` (of `n_shards`) by retagging `free_field` —
/// the shard-pinned explosion. `free_field` must be RSS-hashed but not examined by the
/// target ACL (the co-located attacker's own destination address is the canonical
/// choice), so the retag changes placement without changing the megaflows sparked.
pub fn pin_to_shard<I: Iterator<Item = Key>>(
    schema: &FieldSchema,
    keys: I,
    free_field: usize,
    n_shards: usize,
    shard: usize,
) -> ShardSteeredKeys<I> {
    assert!(shard < n_shards, "target shard out of range");
    steered(schema, keys, free_field, n_shards, ShardTarget::Pin(shard))
}

/// Steer the keys of `keys` round-robin over all `n_shards` shards by retagging
/// `free_field` — every PMD's cache is poisoned at the same rate.
pub fn spray_shards<I: Iterator<Item = Key>>(
    schema: &FieldSchema,
    keys: I,
    free_field: usize,
    n_shards: usize,
) -> ShardSteeredKeys<I> {
    steered(schema, keys, free_field, n_shards, ShardTarget::Spray)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colocated::scenario_key_iter;
    use crate::scenarios::Scenario;

    fn tcp_base(schema: &FieldSchema) -> Key {
        let mut base = schema.zero_value();
        base.set(schema.field_index("ip_proto").unwrap(), 6);
        base.set(schema.field_index("ip_dst").unwrap(), 0x0a00_00c8);
        base
    }

    #[test]
    fn pinned_keys_all_land_on_the_target_shard() {
        let schema = FieldSchema::ovs_ipv4();
        let ip_dst = schema.field_index("ip_dst").unwrap();
        let fields = rss::rss_fields(&schema);
        for target in 0..4 {
            let keys: Vec<Key> = pin_to_shard(
                &schema,
                scenario_key_iter(&schema, Scenario::SpDp, &tcp_base(&schema)),
                ip_dst,
                4,
                target,
            )
            .collect();
            assert_eq!(keys.len(), 17 * 17);
            for k in &keys {
                assert_eq!(rss::shard_of(k, &fields, 4), target);
            }
        }
    }

    #[test]
    fn retag_touches_only_the_free_field() {
        let schema = FieldSchema::ovs_ipv4();
        let ip_dst = schema.field_index("ip_dst").unwrap();
        let originals: Vec<Key> =
            scenario_key_iter(&schema, Scenario::SipDp, &tcp_base(&schema)).collect();
        let pinned: Vec<Key> =
            pin_to_shard(&schema, originals.iter().cloned(), ip_dst, 8, 5).collect();
        for (orig, steered) in originals.iter().zip(&pinned) {
            for f in 0..schema.field_count() {
                if f != ip_dst {
                    assert_eq!(orig.get(f), steered.get(f), "field {f} must be preserved");
                }
            }
        }
    }

    #[test]
    fn spray_cycles_through_every_shard() {
        let schema = FieldSchema::ovs_ipv4();
        let ip_dst = schema.field_index("ip_dst").unwrap();
        let fields = rss::rss_fields(&schema);
        let keys: Vec<Key> = spray_shards(
            &schema,
            scenario_key_iter(&schema, Scenario::Dp, &tcp_base(&schema)),
            ip_dst,
            3,
        )
        .collect();
        assert_eq!(keys.len(), 17);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(rss::shard_of(k, &fields, 3), i % 3);
        }
    }

    #[test]
    fn steered_iterator_is_cloneable_and_cycles() {
        let schema = FieldSchema::ovs_ipv4();
        let ip_dst = schema.field_index("ip_dst").unwrap();
        let gen = pin_to_shard(
            &schema,
            scenario_key_iter(&schema, Scenario::Dp, &tcp_base(&schema)),
            ip_dst,
            4,
            2,
        );
        let cycled: Vec<Key> = gen.clone().cycle().take(40).collect();
        let one_pass: Vec<Key> = gen.collect();
        assert_eq!(cycled[17], one_pass[0], "cycle replays deterministically");
        let fields = rss::rss_fields(&schema);
        assert!(cycled.iter().all(|k| rss::shard_of(k, &fields, 4) == 2));
    }

    #[test]
    #[should_panic(expected = "must participate in the RSS hash")]
    fn non_hashed_free_field_is_rejected() {
        let schema = FieldSchema::ovs_ipv4();
        let ttl = schema.field_index("ttl").unwrap();
        let _ = pin_to_shard(
            &schema,
            scenario_key_iter(&schema, Scenario::Dp, &schema.zero_value()),
            ttl,
            4,
            0,
        );
    }
}
