//! MFCGuard — the short-term mitigation of §8 (Algorithm 2).
//!
//! Every `interval` seconds (10 s, matching the MFC eviction cadence) the guard checks
//! the number of megaflow masks. If it exceeds `mask_threshold`, it scans the cache for
//! TSE-patterned entries and removes them — but **only entries with a drop action**
//! (requirement (i)), so traffic that is eventually allowed keeps its fast path. Removal
//! stops early if the projected slow-path CPU utilisation reaches `cpu_threshold`
//! (requirement (ii) / the balancing exit of Alg. 2).
//!
//! The reproduction also models the undocumented OVS behaviour the authors observed:
//! entries wiped by the guard are not re-sparked by the slow path (the corresponding
//! deny rules are *suppressed*), so adversarial packets keep paying the slow-path price
//! while the victim's fast path stays clean.

use tse_classifier::backend::FastPathBackend;
use tse_classifier::rule::Action;
use tse_switch::datapath::Datapath;

use crate::cpu_model::SlowPathCpuModel;
use crate::pattern::is_tse_pattern;
use crate::stack::{Mitigation, MitigationAction, MitigationCtx};

/// MFCGuard configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Run the check every this many seconds (Alg. 2 line 1).
    pub interval: f64,
    /// Mask-count threshold `m_th` above which cleaning starts.
    pub mask_threshold: usize,
    /// Slow-path CPU utilisation threshold `c_th` (percent) at which cleaning stops.
    pub cpu_threshold: f64,
    /// Whether wiped deny rules are suppressed from re-installation (the observed OVS
    /// behaviour; setting this to `false` models a datapath where deleted entries
    /// re-spark and get wiped again on the next pass).
    pub suppress_reinstall: bool,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            interval: 10.0,
            mask_threshold: 50,
            cpu_threshold: 200.0,
            suppress_reinstall: true,
        }
    }
}

/// Report of one guard pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardReport {
    /// Simulation time of the pass.
    pub time: f64,
    /// Datapath shard the pass ran on (0 for the monolithic datapath).
    pub shard: usize,
    /// Mask count before cleaning.
    pub masks_before: usize,
    /// Mask count after cleaning.
    pub masks_after: usize,
    /// Number of megaflow entries removed.
    pub entries_removed: usize,
    /// Projected slow-path CPU utilisation (percent) given the observed attack rate.
    pub projected_cpu_percent: f64,
    /// Whether cleaning stopped early because of the CPU threshold.
    pub stopped_by_cpu: bool,
}

/// The MFCGuard monitor.
#[derive(Debug, Clone)]
pub struct MfcGuard {
    config: GuardConfig,
    cpu_model: SlowPathCpuModel,
    last_run: Option<f64>,
    reports: Vec<GuardReport>,
}

impl MfcGuard {
    /// Create a guard with the given configuration and the default CPU model.
    pub fn new(config: GuardConfig) -> Self {
        MfcGuard {
            config,
            cpu_model: SlowPathCpuModel::ovs_vswitchd_default(),
            last_run: None,
            reports: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GuardConfig {
        &self.config
    }

    /// All reports generated so far.
    pub fn reports(&self) -> &[GuardReport] {
        &self.reports
    }

    /// The CPU model used for the balancing decision.
    pub fn cpu_model(&self) -> &SlowPathCpuModel {
        &self.cpu_model
    }

    /// Run the guard if the interval has elapsed. `observed_attack_pps` is the measured
    /// rate of packets currently missing the fast path (what `top` shows translated to a
    /// rate); it drives the projected-CPU exit condition.
    ///
    /// Generic over the fast-path backend: the sweep goes through
    /// [`FastPathBackend::evict_where`], so backends without per-traffic entries (the §7
    /// baselines) are left untouched — their mask count never crosses the threshold.
    pub fn maybe_run<B: FastPathBackend>(
        &mut self,
        datapath: &mut Datapath<B>,
        now: f64,
        observed_attack_pps: f64,
    ) -> Option<GuardReport> {
        self.maybe_run_on_shard(datapath, now, observed_attack_pps, 0)
    }

    /// Reset the interval gate, as if the guard had never run: the next
    /// `maybe_run*` call fires regardless of how recently the previous run's last
    /// pass was. Stored reports are kept. Used when a guard is re-armed for a new
    /// experiment whose clock restarts at zero.
    pub fn reset_interval_gate(&mut self) {
        self.last_run = None;
    }

    /// The shared interval gate: true (and the clock is advanced) when a pass is due.
    fn interval_elapsed(&mut self, now: f64) -> bool {
        if let Some(last) = self.last_run {
            if now - last < self.config.interval {
                return false;
            }
        }
        self.last_run = Some(now);
        true
    }

    /// Sharded form of [`MfcGuard::maybe_run`]: if the interval has elapsed, run one
    /// pass **per shard**, each with its own eviction budget — shard `s`'s mask count
    /// is compared against the threshold and its own `per_shard_attack_pps[s]` drives
    /// the CPU exit, so a clean PMD is never swept because a different PMD is under
    /// attack (and vice versa). Returns one report per shard, or an empty vector when
    /// gated by the interval.
    ///
    /// `per_shard_attack_pps` must have one entry per shard.
    pub fn maybe_run_sharded<B: FastPathBackend>(
        &mut self,
        datapath: &mut tse_switch::pmd::ShardedDatapath<B>,
        now: f64,
        per_shard_attack_pps: &[f64],
    ) -> Vec<GuardReport> {
        if !self.interval_elapsed(now) {
            return Vec::new();
        }
        self.run_once_sharded(datapath, now, per_shard_attack_pps)
    }

    /// Run one guard pass per shard unconditionally (see [`MfcGuard::maybe_run_sharded`]).
    pub fn run_once_sharded<B: FastPathBackend>(
        &mut self,
        datapath: &mut tse_switch::pmd::ShardedDatapath<B>,
        now: f64,
        per_shard_attack_pps: &[f64],
    ) -> Vec<GuardReport> {
        assert_eq!(
            per_shard_attack_pps.len(),
            datapath.shard_count(),
            "one observed attack rate per shard"
        );
        (0..datapath.shard_count())
            .map(|s| self.run_pass(datapath.shard_mut(s), now, per_shard_attack_pps[s], s))
            .collect()
    }

    /// Run one guard pass unconditionally (Alg. 2 lines 2–14).
    pub fn run_once<B: FastPathBackend>(
        &mut self,
        datapath: &mut Datapath<B>,
        now: f64,
        observed_attack_pps: f64,
    ) -> GuardReport {
        self.run_pass(datapath, now, observed_attack_pps, 0)
    }

    /// Interval-gated pass over one shard's datapath, recorded under `shard` — the
    /// building block [`GuardMitigation`] uses to run one *independently configured*
    /// guard per shard (each with its own cadence and thresholds), in contrast to
    /// [`MfcGuard::maybe_run_sharded`], which sweeps every shard under a single shared
    /// config whenever the shared interval elapses.
    pub fn maybe_run_on_shard<B: FastPathBackend>(
        &mut self,
        datapath: &mut Datapath<B>,
        now: f64,
        observed_attack_pps: f64,
        shard: usize,
    ) -> Option<GuardReport> {
        if !self.interval_elapsed(now) {
            return None;
        }
        Some(self.run_pass(datapath, now, observed_attack_pps, shard))
    }

    /// One guard pass over one (shard's) datapath, recorded under `shard`.
    fn run_pass<B: FastPathBackend>(
        &mut self,
        datapath: &mut Datapath<B>,
        now: f64,
        observed_attack_pps: f64,
        shard: usize,
    ) -> GuardReport {
        let masks_before = datapath.mask_count();
        let projected_cpu = self.cpu_model.utilization_percent(observed_attack_pps);
        let mut entries_removed = 0;
        let mut stopped_by_cpu = false;

        if masks_before > self.config.mask_threshold {
            if projected_cpu >= self.config.cpu_threshold {
                // Wiping would push the slow path past the budget: leave the cache alone
                // (the system is "balanced" in Alg. 2's terms).
                stopped_by_cpu = true;
            } else {
                // Remove every TSE-patterned drop entry. Requirement (i): only deny
                // entries are ever touched.
                let table = datapath.table().clone();
                entries_removed = datapath
                    .megaflow_mut()
                    .evict_where(&mut |entry| is_tse_pattern(entry, &table));
                if self.config.suppress_reinstall {
                    let deny_rules: Vec<usize> = table
                        .rules()
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.action == Action::Deny)
                        .map(|(i, _)| i)
                        .collect();
                    for r in deny_rules {
                        datapath.slow_path_mut().suppress_rule(r);
                    }
                }
            }
        }

        let report = GuardReport {
            time: now,
            shard,
            masks_before,
            masks_after: datapath.mask_count(),
            entries_removed,
            projected_cpu_percent: projected_cpu,
            stopped_by_cpu,
        };
        self.reports.push(report);
        report
    }
}

/// MFCGuard as a [`Mitigation`] stage: one guard instance **per shard**, each with its
/// own configuration (interval, mask threshold, CPU budget) and its own interval
/// gating.
///
/// By default every shard runs under the same [`GuardConfig`];
/// [`GuardMitigation::with_shard_config`] overrides individual shards — e.g. a tighter
/// mask threshold on the PMD that carries a latency-critical tenant, or a disabled
/// guard (`mask_threshold: usize::MAX`) on a shard reserved for bulk traffic. Every
/// pass surfaces its [`GuardReport`] as a
/// [`MitigationAction::GuardSweep`], so per-shard guard activity is attributable in
/// the timeline.
///
/// With a uniform config this is behaviourally identical to the pre-stack runner's
/// `Option<MfcGuard>` + [`MfcGuard::maybe_run_sharded`] plumbing (asserted bit-for-bit
/// by `tests/golden_runner_parity.rs`): per-shard gating fires at exactly the times
/// the shared gate did, because every shard observes the same clock.
pub struct GuardMitigation {
    default_config: GuardConfig,
    overrides: Vec<(usize, GuardConfig)>,
    /// One guard per shard, created on the first hook call (when the shard count is
    /// first observable).
    guards: Vec<MfcGuard>,
}

impl GuardMitigation {
    /// Guard every shard under `config`.
    pub fn new(config: GuardConfig) -> Self {
        GuardMitigation {
            default_config: config,
            overrides: Vec::new(),
            guards: Vec::new(),
        }
    }

    /// Wrap an existing [`MfcGuard`] — the compatibility shim behind the runner's
    /// `with_guard`: the guard's config becomes the uniform per-shard config.
    pub fn from_guard(guard: MfcGuard) -> Self {
        GuardMitigation::new(*guard.config())
    }

    /// Override the configuration of one shard (builder form; the last override for a
    /// shard wins). Must be called before the first sample.
    pub fn with_shard_config(mut self, shard: usize, config: GuardConfig) -> Self {
        assert!(
            self.guards.is_empty(),
            "shard overrides must be configured before the first sample"
        );
        self.overrides.retain(|(s, _)| *s != shard);
        self.overrides.push((shard, config));
        self
    }

    /// The configuration shard `shard` runs under.
    pub fn config_for(&self, shard: usize) -> GuardConfig {
        self.overrides
            .iter()
            .find(|(s, _)| *s == shard)
            .map(|(_, c)| *c)
            .unwrap_or(self.default_config)
    }

    /// Every per-shard report generated so far, flattened in (shard, pass) order.
    /// Empty until the first sample (guards are created lazily).
    pub fn reports(&self) -> Vec<GuardReport> {
        self.guards
            .iter()
            .flat_map(|g| g.reports().iter().copied())
            .collect()
    }

    fn ensure_guards(&mut self, n_shards: usize) {
        if self.guards.len() != n_shards {
            self.guards = (0..n_shards)
                .map(|s| MfcGuard::new(self.config_for(s)))
                .collect();
        }
    }
}

impl<B: FastPathBackend> Mitigation<B> for GuardMitigation {
    fn name(&self) -> &str {
        "mfcguard"
    }

    fn on_start(&mut self, ctx: &mut MitigationCtx<'_, B>) {
        // A new run's clock restarts at zero: reset every per-shard guard's interval
        // gate so a reused runner is defended from the first interval, not gated off
        // by the previous run's final pass time. Reports accumulate across runs.
        self.ensure_guards(ctx.shard_count());
        for guard in &mut self.guards {
            guard.reset_interval_gate();
        }
    }

    fn on_sample(&mut self, ctx: &mut MitigationCtx<'_, B>) -> Vec<MitigationAction> {
        let n = ctx.shard_count();
        assert_eq!(ctx.shard_attack_pps.len(), n);
        self.ensure_guards(n);
        // Each shard's sweep pairs the shard with its own guard and runs through the
        // datapath's ShardExecutor: with a thread-pool executor the per-shard passes
        // proceed in parallel, and the reports still come back in shard order, so the
        // action log is identical to the sequential walk's.
        let now = ctx.now;
        let pps = ctx.shard_attack_pps;
        ctx.datapath
            .for_each_shard_with(&mut self.guards, |shard, dp, guard| {
                guard.maybe_run_on_shard(dp, now, pps[shard], shard)
            })
            .into_iter()
            .flatten()
            .map(MitigationAction::GuardSweep)
            .collect()
    }
}

impl std::fmt::Debug for GuardMitigation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuardMitigation")
            .field("default_config", &self.default_config)
            .field("overrides", &self.overrides)
            .field("shards", &self.guards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tse_attack::colocated::scenario_trace;
    use tse_attack::scenarios::Scenario;
    use tse_classifier::rule::Action;
    use tse_packet::fields::FieldSchema;
    use tse_switch::datapath::Datapath;

    /// Build a datapath under a Dp/SipDp-style attack with the victim's allow entry
    /// installed.
    fn attacked_datapath(scenario: Scenario) -> (Datapath, tse_packet::fields::Key) {
        let schema = FieldSchema::ovs_ipv4();
        let table = scenario.flow_table(&schema);
        let mut dp = Datapath::new(table);
        // Victim: dst port 80 (allowed by rule #1).
        let tp_dst = schema.field_index("tp_dst").unwrap();
        let mut victim = schema.zero_value();
        victim.set(tp_dst, 80);
        dp.process_key(&victim, 1500, 0.0);
        // Attack trace.
        for (i, h) in scenario_trace(&schema, scenario, &schema.zero_value())
            .iter()
            .enumerate()
        {
            dp.process_key(h, 60, 0.1 + i as f64 * 1e-3);
        }
        (dp, victim)
    }

    #[test]
    fn guard_cleans_attack_masks_but_keeps_victim_entry() {
        let (mut dp, victim) = attacked_datapath(Scenario::SpDp);
        let before = dp.mask_count();
        assert!(
            before > 50,
            "attack should have exploded the tuple space: {before}"
        );
        let mut guard = MfcGuard::new(GuardConfig::default());
        let report = guard.run_once(&mut dp, 1.0, 100.0);
        assert_eq!(report.masks_before, before);
        // Only allow-side masks survive: the victim's plus the (at most w_i per field)
        // allow-decomposition masks — an order of magnitude below the attack's product.
        assert!(
            report.masks_after <= 20 && report.masks_after < before / 5,
            "deny masks should be wiped: {} -> {}",
            report.masks_before,
            report.masks_after
        );
        assert!(report.entries_removed > 50);
        // The victim still hits the fast path, now scanning only the few allow masks.
        let outcome = dp.process_key(&victim, 1500, 1.1);
        assert_eq!(outcome.action, Action::Allow);
        assert!(outcome.masks_scanned <= report.masks_after);
    }

    #[test]
    fn guard_respects_interval() {
        let (mut dp, _) = attacked_datapath(Scenario::Dp);
        let mut guard = MfcGuard::new(GuardConfig {
            interval: 10.0,
            ..GuardConfig::default()
        });
        assert!(guard.maybe_run(&mut dp, 0.0, 100.0).is_some());
        assert!(guard.maybe_run(&mut dp, 5.0, 100.0).is_none());
        assert!(guard.maybe_run(&mut dp, 10.5, 100.0).is_some());
        assert_eq!(guard.reports().len(), 2);
    }

    #[test]
    fn guard_idles_below_mask_threshold() {
        let (mut dp, _) = attacked_datapath(Scenario::Dp); // only ~16 masks
        let mut guard = MfcGuard::new(GuardConfig {
            mask_threshold: 50,
            ..GuardConfig::default()
        });
        let report = guard.run_once(&mut dp, 0.0, 100.0);
        assert_eq!(report.entries_removed, 0);
        assert_eq!(report.masks_before, report.masks_after);
    }

    #[test]
    fn guard_stops_when_cpu_budget_exceeded() {
        let (mut dp, _) = attacked_datapath(Scenario::SpDp);
        let before = dp.mask_count();
        let mut guard = MfcGuard::new(GuardConfig {
            cpu_threshold: 50.0,
            ..GuardConfig::default()
        });
        // 20 kpps of attack would drive the slow path way past 50 %.
        let report = guard.run_once(&mut dp, 0.0, 20_000.0);
        assert!(report.stopped_by_cpu);
        assert_eq!(report.entries_removed, 0);
        assert_eq!(dp.mask_count(), before);
    }

    #[test]
    fn sharded_sweep_cleans_only_the_attacked_shard() {
        use tse_switch::pmd::{ShardedDatapath, Steering};
        let schema = FieldSchema::ovs_ipv4();
        let table = Scenario::SpDp.flow_table(&schema);
        // Pin everything to shard 1 of 3: only that shard's cache explodes.
        let mut sharded = ShardedDatapath::new(table, 3, Steering::Pinned(1));
        for (i, h) in scenario_trace(&schema, Scenario::SpDp, &schema.zero_value())
            .iter()
            .enumerate()
        {
            sharded.process_key(h, 60, 0.1 + i as f64 * 1e-3);
        }
        assert!(sharded.shard(1).mask_count() > 50);
        let mut guard = MfcGuard::new(GuardConfig::default());
        let reports = guard.maybe_run_sharded(&mut sharded, 1.0, &[0.0, 100.0, 0.0]);
        assert_eq!(reports.len(), 3);
        assert_eq!(
            reports.iter().map(|r| r.shard).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        // Clean shards are below the mask threshold: untouched. The attacked shard is
        // swept under its own budget.
        assert_eq!(reports[0].entries_removed, 0);
        assert_eq!(reports[2].entries_removed, 0);
        assert!(reports[1].entries_removed > 50);
        assert!(sharded.shard(1).mask_count() < reports[1].masks_before / 5);
        // Stored reports carry the shard ids too.
        assert_eq!(guard.reports().len(), 3);
        assert_eq!(guard.reports()[1].shard, 1);
        // Interval gating applies to the whole sharded pass.
        assert!(guard
            .maybe_run_sharded(&mut sharded, 5.0, &[0.0, 100.0, 0.0])
            .is_empty());
    }

    #[test]
    fn guard_mitigation_applies_per_shard_configs() {
        use tse_switch::pmd::{ShardedDatapath, Steering};
        let schema = FieldSchema::ovs_ipv4();
        let table = Scenario::SpDp.flow_table(&schema);
        // Two shards, both exploded identically via pinned replays.
        let mut sharded = ShardedDatapath::new(table, 2, Steering::Pinned(0));
        let keys = scenario_trace(&schema, Scenario::SpDp, &schema.zero_value());
        for (i, h) in keys.iter().enumerate() {
            sharded.process_key(h, 60, 0.1 + i as f64 * 1e-3);
        }
        // Replay the same keys onto shard 1 through its direct interface.
        for (i, h) in keys.iter().enumerate() {
            sharded
                .shard_mut(1)
                .process_key(h, 60, 0.1 + i as f64 * 1e-3);
        }
        assert!(sharded.shard(0).mask_count() > 50);
        assert_eq!(sharded.shard(0).mask_count(), sharded.shard(1).mask_count());

        // Shard 0 sweeps under the default config; shard 1's threshold is set above
        // its mask count, so its guard idles.
        let mut mitigation = GuardMitigation::new(GuardConfig::default()).with_shard_config(
            1,
            GuardConfig {
                mask_threshold: usize::MAX,
                ..GuardConfig::default()
            },
        );
        assert_eq!(mitigation.config_for(1).mask_threshold, usize::MAX);
        assert_eq!(
            mitigation.config_for(0).mask_threshold,
            GuardConfig::default().mask_threshold
        );
        let pps = [100.0, 100.0];
        let zeros = [0.0, 0.0];
        let pressure = crate::stack::PressureWindow::detached();
        let mut ctx = MitigationCtx {
            datapath: &mut sharded,
            now: 1.0,
            dt: 1.0,
            shard_attack_pps: &pps,
            shard_delivered_pps: &pps,
            shard_busy_seconds: &zeros,
            pressure: &pressure,
        };
        let actions =
            Mitigation::<tse_classifier::tss::TupleSpace>::on_sample(&mut mitigation, &mut ctx);
        assert_eq!(actions.len(), 2, "one sweep report per shard");
        let reports: Vec<GuardReport> = actions
            .iter()
            .map(|a| match a {
                MitigationAction::GuardSweep(r) => *r,
                other => panic!("unexpected action {other:?}"),
            })
            .collect();
        assert_eq!(reports[0].shard, 0);
        assert!(reports[0].entries_removed > 50, "default config sweeps");
        assert_eq!(reports[1].shard, 1);
        assert_eq!(reports[1].entries_removed, 0, "override idles shard 1");
        assert!(sharded.shard(0).mask_count() < sharded.shard(1).mask_count());
        assert_eq!(mitigation.reports().len(), 2);
    }

    #[test]
    fn suppression_keeps_attack_out_of_fast_path() {
        let (mut dp, _) = attacked_datapath(Scenario::SpDp);
        let schema = FieldSchema::ovs_ipv4();
        let mut guard = MfcGuard::new(GuardConfig::default());
        guard.run_once(&mut dp, 1.0, 100.0);
        let cleaned = dp.mask_count();
        // Replay the attack: with suppression the deny megaflows are not re-created.
        for (i, h) in scenario_trace(&schema, Scenario::SpDp, &schema.zero_value())
            .iter()
            .enumerate()
        {
            dp.process_key(h, 60, 2.0 + i as f64 * 1e-3);
        }
        assert_eq!(
            dp.mask_count(),
            cleaned,
            "suppressed deny rules must not re-spark masks"
        );
        assert!(dp.slow_path().suppressed_upcalls() > 100);
    }

    #[test]
    fn without_suppression_attack_masks_return() {
        let (mut dp, _) = attacked_datapath(Scenario::SpDp);
        let schema = FieldSchema::ovs_ipv4();
        let mut guard = MfcGuard::new(GuardConfig {
            suppress_reinstall: false,
            ..GuardConfig::default()
        });
        guard.run_once(&mut dp, 1.0, 100.0);
        let cleaned = dp.mask_count();
        for (i, h) in scenario_trace(&schema, Scenario::SpDp, &schema.zero_value())
            .iter()
            .enumerate()
        {
            dp.process_key(h, 60, 2.0 + i as f64 * 1e-3);
        }
        assert!(
            dp.mask_count() > cleaned * 10,
            "without suppression the attack re-explodes the cache"
        );
    }
}
