//! The composable mitigation pipeline: an ordered stack of [`Mitigation`]s the
//! experiment runner invokes once per sample interval.
//!
//! The paper's §8 ships exactly one countermeasure (MFCGuard), and until this module
//! existed the runner hard-wired it as an `Option<MfcGuard>` — every other defense the
//! multi-PMD datapath makes possible (RSS hash-key rotation against shard-pinned
//! explosions, per-shard upcall governance, mask-pressure caps) had nowhere to plug in.
//! [`Mitigation`] is that seam: a defense observes one interval's worth of per-shard
//! telemetry through a [`MitigationCtx`], mutates the [`ShardedDatapath`] through the
//! same public interface the real tools use (`ovs-dpctl del-flow`, NIC re-configuration,
//! handler quotas), and reports what it did as [`MitigationAction`]s that land in the
//! timeline for attribution.
//!
//! Defenses compose in an ordered [`MitigationStack`]; order is observable (an eviction
//! pass sees the cache state left by the stage before it), so two stacks with the same
//! members in different orders legitimately produce different action logs. Everything
//! is deterministic: the same experiment with the same stack yields the same actions.
//! Stages run strictly in pipeline order, but *within* a stage per-shard work is free
//! to fan out through the datapath's `ShardExecutor`
//! (`ShardedDatapath::for_each_shard_with` — the per-shard guard sweeps do), so
//! executor selection on the runner/datapath propagates into the defense pipeline
//! without the stack needing its own threading knobs; action logs stay bit-for-bit
//! executor-independent.
//!
//! # Cost-model assumptions
//!
//! Mitigations run *between* sample intervals and are not charged against the shard CPU
//! budgets: sweeps and re-keying model management-plane work (`ovs-dpctl`, PF driver
//! ioctls) executed off the PMD cores. The costs they *induce* are modelled where they
//! land — packets denied a megaflow install by [`UpcallLimiter`](crate::UpcallLimiter)
//! keep paying the slow-path price per packet, entries evicted by
//! [`MaskCap`](crate::MaskCap) or the guard re-spark through upcalls (unless
//! suppressed), and a rekey strands cached entries on their old shard until the idle
//! timeout collects them.

use std::collections::VecDeque;

use tse_classifier::backend::FastPathBackend;
use tse_switch::pmd::ShardedDatapath;

use crate::guard::GuardReport;

/// A bounded ring of the last few intervals' per-shard attack rates — the "recent
/// window" adaptive mitigations read to decide whether the switch is under pressure.
///
/// The telemetry layer (the runner's `TelemetryStore`) pushes one row per sample
/// interval, keeping at most `depth` rows; a detached window (depth 0, never pushed)
/// reads as "no pressure anywhere", so stages that gate on pressure are inert when
/// driven by a consumer that does not track it. Everything is plain streaming
/// arithmetic over the retained rows: deterministic, allocation-bounded, executor-
/// independent.
#[derive(Debug, Clone, PartialEq)]
pub struct PressureWindow {
    depth: usize,
    shard_count: usize,
    rows: VecDeque<Vec<f64>>,
}

impl PressureWindow {
    /// A window retaining the last `depth` intervals for `shard_count` shards.
    pub fn new(shard_count: usize, depth: usize) -> Self {
        PressureWindow {
            depth,
            shard_count,
            rows: VecDeque::new(),
        }
    }

    /// A depth-0 window that never reports pressure — the default for consumers that
    /// do not track telemetry (e.g. driving a stack by hand in tests).
    pub const fn detached() -> Self {
        PressureWindow {
            depth: 0,
            shard_count: 0,
            rows: VecDeque::new(),
        }
    }

    /// Record one interval's per-shard attack packets-per-second row. Slices shorter
    /// or longer than the window's shard count are truncated/zero-padded defensively.
    /// A depth-0 window discards the row.
    pub fn push(&mut self, shard_attack_pps: &[f64]) {
        if self.depth == 0 {
            return;
        }
        let mut row = vec![0.0; self.shard_count];
        for (slot, v) in row.iter_mut().zip(shard_attack_pps) {
            *slot = *v;
        }
        if self.rows.len() == self.depth {
            self.rows.pop_front();
        }
        self.rows.push_back(row);
    }

    /// Number of intervals currently retained (0 ≤ len ≤ depth).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no intervals have been recorded (always true for a detached window).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Maximum number of intervals the window retains.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of shards each row covers.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Mean attack pps on `shard` over the retained intervals (0.0 when empty or out
    /// of range).
    pub fn shard_mean(&self, shard: usize) -> f64 {
        if self.rows.is_empty() || shard >= self.shard_count {
            return 0.0;
        }
        let sum: f64 = self.rows.iter().map(|r| r[shard]).sum();
        sum / self.rows.len() as f64
    }

    /// Peak attack pps on `shard` over the retained intervals (0.0 when empty or out
    /// of range).
    pub fn shard_peak(&self, shard: usize) -> f64 {
        if shard >= self.shard_count {
            return 0.0;
        }
        self.rows.iter().map(|r| r[shard]).fold(0.0, f64::max)
    }

    /// The largest per-shard windowed mean — "how hard is the hottest shard being
    /// pushed, smoothed over the window". The usual trigger for adaptive stages.
    pub fn hottest_shard_mean(&self) -> f64 {
        (0..self.shard_count)
            .map(|s| self.shard_mean(s))
            .fold(0.0, f64::max)
    }

    /// Mean switch-wide attack pps (summed over shards) over the retained intervals.
    pub fn total_mean(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.rows.iter().map(|r| r.iter().sum::<f64>()).sum();
        sum / self.rows.len() as f64
    }
}

/// One sample interval's view of the experiment, handed to every mitigation in the
/// stack. All slices have one element per datapath shard.
#[derive(Debug)]
pub struct MitigationCtx<'a, B: FastPathBackend> {
    /// The (possibly sharded) datapath under defense. Mitigations mutate it through
    /// its public per-shard interface.
    pub datapath: &'a mut ShardedDatapath<B>,
    /// End of the sample interval just measured, in simulation seconds.
    pub now: f64,
    /// Length of the sample interval, seconds. Each shard's CPU budget for the
    /// interval is exactly `dt` seconds of core time.
    pub dt: f64,
    /// Attack packets per second delivered to each shard during the interval.
    pub shard_attack_pps: &'a [f64],
    /// All packets per second (attack events plus victim probes) processed by each
    /// shard during the interval.
    pub shard_delivered_pps: &'a [f64],
    /// CPU seconds each shard spent on attack processing during the interval (out of
    /// its `dt`-second budget; the remainder went to victim traffic).
    pub shard_busy_seconds: &'a [f64],
    /// Smoothed attack pressure over the last few intervals, maintained by the
    /// telemetry store. Adaptive stages gate on this instead of the single-interval
    /// slices above; it reads as zero pressure when the consumer does not track it
    /// ([`PressureWindow::detached`]).
    pub pressure: &'a PressureWindow,
}

impl<B: FastPathBackend> MitigationCtx<'_, B> {
    /// Number of datapath shards (PMD threads).
    pub fn shard_count(&self) -> usize {
        self.datapath.shard_count()
    }
}

/// What a mitigation did during one sample interval — recorded in the timeline
/// (`TimelineSample::mitigation_actions`) so a figure can attribute cache shrinkage,
/// steering changes or install throttling to the defense that caused them.
#[derive(Debug, Clone, PartialEq)]
pub enum MitigationAction {
    /// An MFCGuard pass ran on one shard (the report carries the shard id, mask
    /// before/after counts and the balancing-exit outcome).
    GuardSweep(GuardReport),
    /// The RSS hash key was rotated — switch-wide: every shard's steering changed at
    /// once.
    Rekeyed {
        /// Simulation time of the rotation.
        time: f64,
        /// The key that was in effect before.
        old_key: u64,
        /// The key in effect from now on.
        new_key: u64,
    },
    /// A shard's megaflow-install quota denied upcall installs during the interval.
    UpcallsClamped {
        /// The shard whose slow path hit its quota.
        shard: usize,
        /// Upcalls answered without an install this interval.
        denied: u64,
        /// The per-interval install quota in force.
        quota: u64,
    },
    /// A shard exceeded the mask ceiling and its lowest-hit masks were evicted.
    MaskCapped {
        /// The shard that was over the ceiling.
        shard: usize,
        /// Number of masks evicted (enough to return to the ceiling).
        masks_evicted: usize,
        /// Megaflow entries removed along with those masks.
        entries_removed: usize,
        /// The ceiling in force.
        ceiling: usize,
    },
}

impl MitigationAction {
    /// The shard this action applies to, or `None` for switch-wide actions (a rekey
    /// re-steers every shard at once).
    pub fn shard(&self) -> Option<usize> {
        match self {
            MitigationAction::GuardSweep(report) => Some(report.shard),
            MitigationAction::Rekeyed { .. } => None,
            MitigationAction::UpcallsClamped { shard, .. }
            | MitigationAction::MaskCapped { shard, .. } => Some(*shard),
        }
    }
}

/// A countermeasure that runs once per sample interval against the datapath under
/// attack.
///
/// Implementations observe per-shard telemetry through the [`MitigationCtx`], mutate
/// the datapath, and return the [`MitigationAction`]s describing what they did (empty
/// when the interval needed no intervention). They must be deterministic: any
/// randomness (e.g. the rekeying schedule) is derived from seeds fixed at
/// construction, so a rerun of the same experiment reproduces the same action log.
///
/// Stages are stored as `Box<dyn Mitigation<B> + Send>`, so a stack — and the
/// experiment runner holding one — can cross threads alongside the sharded datapath it
/// defends (the compile-time audit in `tests/send_audit.rs` covers this).
pub trait Mitigation<B: FastPathBackend> {
    /// Short human-readable name for reports and stack listings.
    fn name(&self) -> &str;

    /// Called once before the first sample interval, with `ctx.now == 0` and zeroed
    /// telemetry — the place to arm per-shard state that must be in force *during*
    /// the first interval (e.g. install quotas). Defaults to doing nothing.
    fn on_start(&mut self, ctx: &mut MitigationCtx<'_, B>) {
        let _ = ctx;
    }

    /// Called once at the end of every sample interval, after throughput accounting.
    /// Returns the actions taken (possibly none).
    fn on_sample(&mut self, ctx: &mut MitigationCtx<'_, B>) -> Vec<MitigationAction>;

    /// Called once after the final sample interval — the place to disarm per-shard
    /// state the mitigation installed into the datapath (e.g. install quotas), so the
    /// datapath leaves the run undefended exactly as it entered it. Defaults to doing
    /// nothing.
    fn on_finish(&mut self, ctx: &mut MitigationCtx<'_, B>) {
        let _ = ctx;
    }
}

/// An ordered stack of boxed [`Mitigation`]s — the runner's defense pipeline.
///
/// Stages run strictly in insertion order each interval, and each stage sees the
/// datapath as left by the stages before it, so ordering is part of the configuration:
/// `guard → rekey` sweeps the caches the attack actually filled, while `rekey → guard`
/// sweeps them after the steering already moved. The combined action log preserves
/// stage order within the interval.
#[derive(Default)]
pub struct MitigationStack<B: FastPathBackend> {
    stages: Vec<Box<dyn Mitigation<B> + Send>>,
}

impl<B: FastPathBackend> MitigationStack<B> {
    /// An empty stack (no defense; the runner's default).
    pub fn new() -> Self {
        MitigationStack { stages: Vec::new() }
    }

    /// Append a mitigation to the end of the pipeline.
    pub fn push(&mut self, mitigation: impl Mitigation<B> + Send + 'static) {
        self.stages.push(Box::new(mitigation));
    }

    /// Builder form of [`MitigationStack::push`].
    pub fn with(mut self, mitigation: impl Mitigation<B> + Send + 'static) -> Self {
        self.push(mitigation);
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the stack has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stage names, in pipeline order.
    pub fn names(&self) -> Vec<&str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Run every stage's [`Mitigation::on_start`] hook, in order.
    pub fn on_start(&mut self, ctx: &mut MitigationCtx<'_, B>) {
        for stage in &mut self.stages {
            stage.on_start(ctx);
        }
    }

    /// Run every stage in order and concatenate their actions.
    pub fn on_sample(&mut self, ctx: &mut MitigationCtx<'_, B>) -> Vec<MitigationAction> {
        let mut actions = Vec::new();
        for stage in &mut self.stages {
            actions.extend(stage.on_sample(ctx));
        }
        actions
    }

    /// Run every stage's [`Mitigation::on_finish`] hook, in order.
    pub fn on_finish(&mut self, ctx: &mut MitigationCtx<'_, B>) {
        for stage in &mut self.stages {
            stage.on_finish(ctx);
        }
    }
}

impl<B: FastPathBackend> std::fmt::Debug for MitigationStack<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("MitigationStack")
            .field(&self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tse_classifier::flowtable::FlowTable;
    use tse_packet::fields::FieldSchema;
    use tse_switch::pmd::Steering;

    /// A test mitigation that logs a rekey-shaped action every call.
    struct Tattle(u64);

    impl<B: FastPathBackend> Mitigation<B> for Tattle {
        fn name(&self) -> &str {
            "tattle"
        }
        fn on_sample(&mut self, ctx: &mut MitigationCtx<'_, B>) -> Vec<MitigationAction> {
            vec![MitigationAction::Rekeyed {
                time: ctx.now,
                old_key: self.0,
                new_key: self.0 + 1,
            }]
        }
    }

    fn ctx_fixture() -> ShardedDatapath {
        let schema = FieldSchema::ovs_ipv4();
        let tp_dst = schema.field_index("tp_dst").unwrap();
        ShardedDatapath::new(
            FlowTable::whitelist_default_deny(&schema, &[(tp_dst, 80)]),
            2,
            Steering::Rss,
        )
    }

    #[test]
    fn stack_runs_stages_in_order() {
        let mut datapath = ctx_fixture();
        let mut stack: MitigationStack<tse_classifier::tss::TupleSpace> =
            MitigationStack::new().with(Tattle(10)).with(Tattle(20));
        assert_eq!(stack.names(), vec!["tattle", "tattle"]);
        assert_eq!(stack.len(), 2);
        let zeros = [0.0, 0.0];
        let pressure = PressureWindow::detached();
        let mut ctx = MitigationCtx {
            datapath: &mut datapath,
            now: 1.0,
            dt: 1.0,
            shard_attack_pps: &zeros,
            shard_delivered_pps: &zeros,
            shard_busy_seconds: &zeros,
            pressure: &pressure,
        };
        assert_eq!(ctx.shard_count(), 2);
        let actions = stack.on_sample(&mut ctx);
        assert_eq!(
            actions,
            vec![
                MitigationAction::Rekeyed {
                    time: 1.0,
                    old_key: 10,
                    new_key: 11
                },
                MitigationAction::Rekeyed {
                    time: 1.0,
                    old_key: 20,
                    new_key: 21
                },
            ]
        );
    }

    #[test]
    fn empty_stack_is_a_no_op() {
        let mut datapath = ctx_fixture();
        let mut stack: MitigationStack<tse_classifier::tss::TupleSpace> = MitigationStack::new();
        assert!(stack.is_empty());
        let zeros = [0.0, 0.0];
        let pressure = PressureWindow::detached();
        let mut ctx = MitigationCtx {
            datapath: &mut datapath,
            now: 1.0,
            dt: 1.0,
            shard_attack_pps: &zeros,
            shard_delivered_pps: &zeros,
            shard_busy_seconds: &zeros,
            pressure: &pressure,
        };
        stack.on_start(&mut ctx);
        assert!(stack.on_sample(&mut ctx).is_empty());
    }

    #[test]
    fn pressure_window_is_bounded_and_streaming() {
        let mut w = PressureWindow::new(2, 3);
        assert!(w.is_empty());
        assert_eq!(w.hottest_shard_mean(), 0.0);
        w.push(&[10.0, 0.0]);
        w.push(&[20.0, 2.0]);
        w.push(&[30.0, 4.0]);
        assert_eq!(w.len(), 3);
        assert_eq!(w.shard_mean(0), 20.0);
        assert_eq!(w.shard_mean(1), 2.0);
        assert_eq!(w.shard_peak(0), 30.0);
        assert_eq!(w.hottest_shard_mean(), 20.0);
        assert_eq!(w.total_mean(), 22.0);
        // A fourth push ages out the first row: the window stays depth-bounded.
        w.push(&[40.0, 6.0]);
        assert_eq!(w.len(), 3);
        assert_eq!(w.shard_mean(0), 30.0);
        // Out-of-range shard and short rows are defensive, not panics.
        assert_eq!(w.shard_mean(7), 0.0);
        w.push(&[1.0]);
        assert_eq!(w.len(), 3);
        // Detached windows never retain anything.
        let mut d = PressureWindow::detached();
        d.push(&[100.0, 100.0]);
        assert!(d.is_empty());
        assert_eq!(d.hottest_shard_mean(), 0.0);
    }

    #[test]
    fn action_shard_attribution() {
        let sweep = MitigationAction::GuardSweep(GuardReport {
            time: 1.0,
            shard: 3,
            masks_before: 10,
            masks_after: 5,
            entries_removed: 5,
            projected_cpu_percent: 1.0,
            stopped_by_cpu: false,
        });
        assert_eq!(sweep.shard(), Some(3));
        assert_eq!(
            MitigationAction::Rekeyed {
                time: 0.0,
                old_key: 0,
                new_key: 1
            }
            .shard(),
            None
        );
        assert_eq!(
            MitigationAction::UpcallsClamped {
                shard: 1,
                denied: 2,
                quota: 3
            }
            .shard(),
            Some(1)
        );
        assert_eq!(
            MitigationAction::MaskCapped {
                shard: 2,
                masks_evicted: 1,
                entries_removed: 1,
                ceiling: 64
            }
            .shard(),
            Some(2)
        );
    }
}
