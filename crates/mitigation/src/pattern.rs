//! Detection of TSE-patterned megaflow entries (Alg. 2's `lookPatternInMFC`).
//!
//! A TSE-generated entry is a *drop* megaflow whose mask un-wildcards (a prefix of) a
//! header field that one of the installed allow rules exact-matches — the "test the bits
//! of the whitelisted field one by one" signature of §4. Entries that cover permitted
//! traffic are never flagged (MFCGuard requirement (i)).

use tse_classifier::flowtable::FlowTable;
use tse_classifier::rule::Action;
use tse_classifier::tss::MegaflowEntry;

/// Does this megaflow entry look like it was spawned by a TSE attack against `table`?
///
/// Heuristic from §8: the entry drops traffic, and its mask examines bits of at least
/// one field that an allow rule of the table exact-matches — i.e. it is one of the
/// deny-side decomposition entries the attack multiplies.
pub fn is_tse_pattern(entry: &MegaflowEntry, table: &FlowTable) -> bool {
    if entry.action != Action::Deny {
        return false;
    }
    let allow_fields: Vec<usize> = allow_exact_fields(table);
    if allow_fields.is_empty() {
        return false;
    }
    allow_fields.iter().any(|&f| entry.mask.get(f) != 0)
}

/// Fields that some allow rule of the table exact-matches (the TSE target fields).
pub fn allow_exact_fields(table: &FlowTable) -> Vec<usize> {
    let schema = table.schema();
    let mut fields = Vec::new();
    for rule in table.rules() {
        if rule.action != Action::Allow {
            continue;
        }
        for f in 0..schema.field_count() {
            if rule.mask.get(f) == schema.fields()[f].full_mask() && !fields.contains(&f) {
                fields.push(f);
            }
        }
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use tse_classifier::flowtable::FlowTable;
    use tse_classifier::strategy::{generate_megaflow, MegaflowStrategy};
    use tse_classifier::tss::TupleSpace;
    use tse_packet::fields::{FieldSchema, Key};

    fn populated_fig1_cache() -> (FlowTable, TupleSpace) {
        let table = FlowTable::fig1_hyp();
        let schema = table.schema().clone();
        let strategy = MegaflowStrategy::wildcarding(&schema);
        let mut cache = TupleSpace::new(schema.clone());
        for v in [0b001u128, 0b101, 0b011, 0b000] {
            let h = Key::from_values(&schema, &[v]);
            if cache.lookup(&h, 0.0).action.is_some() {
                continue;
            }
            if let Ok(g) = generate_megaflow(&table, &cache, &h, &strategy) {
                cache.insert(g.key, g.mask, g.action, 0.0).unwrap();
            }
        }
        (table, cache)
    }

    #[test]
    fn allow_fields_detected() {
        let table = FlowTable::fig1_hyp();
        assert_eq!(allow_exact_fields(&table), vec![0]);
        let table4 = FlowTable::fig4_hyp2();
        assert_eq!(allow_exact_fields(&table4), vec![0, 1]);
    }

    #[test]
    fn deny_entries_flagged_allow_entries_not() {
        let (table, cache) = populated_fig1_cache();
        let mut flagged = 0;
        let mut spared = 0;
        for entry in cache.entries() {
            if is_tse_pattern(entry, &table) {
                assert_eq!(entry.action, Action::Deny);
                flagged += 1;
            } else {
                assert_eq!(entry.action, Action::Allow);
                spared += 1;
            }
        }
        assert_eq!(flagged, 3);
        assert_eq!(spared, 1);
    }

    #[test]
    fn no_allow_rules_means_no_pattern() {
        let schema = FieldSchema::hyp();
        let mut table = FlowTable::new(schema.clone());
        table.push(tse_classifier::rule::Rule::match_all(
            &schema,
            0,
            Action::Deny,
        ));
        let (_, cache) = populated_fig1_cache();
        for entry in cache.entries() {
            assert!(!is_tse_pattern(entry, &table));
        }
    }
}
