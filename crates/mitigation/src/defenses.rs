//! Mitigations beyond MFCGuard: RSS hash-key rotation, slow-path upcall governance,
//! and mask-pressure caps — the defenses the sharded multi-PMD datapath makes possible
//! and the composable [`Mitigation`] pipeline makes pluggable.

use tse_classifier::backend::FastPathBackend;

use crate::stack::{Mitigation, MitigationAction, MitigationCtx};

/// Pressure-gated RSS hash-key rotation: rotates like [`RssKeyRandomizer`], but only
/// while the telemetry window ([`MitigationCtx::pressure`]) shows a shard under
/// sustained attack — the benign path never pays the re-homing upcalls a blind
/// periodic rotation charges every flow.
///
/// The trigger is the hottest shard's windowed-mean attack rate
/// ([`crate::stack::PressureWindow::hottest_shard_mean`]) crossing `threshold_pps`.
/// When triggered, the stage rotates at most once per `period` seconds (the first
/// rotation fires in the first triggered interval at least `period` after the last
/// rotation, so a fresh attack is answered within one sample). Keys come from the same
/// deterministic SplitMix64 sequence as [`RssKeyRandomizer`]; driven through a
/// detached/empty pressure window the stage is provably inert.
#[derive(Debug, Clone)]
pub struct AdaptiveRekey {
    period: f64,
    threshold_pps: f64,
    state: u64,
    last_rotate: f64,
    entry_key: Option<u64>,
}

impl AdaptiveRekey {
    /// Rotate at most every `period` seconds while the hottest shard's windowed mean
    /// attack rate is at least `threshold_pps`, drawing keys from a deterministic
    /// sequence seeded by `seed`.
    ///
    /// # Panics
    /// Panics if `period` or `threshold_pps` is not positive.
    pub fn new(period: f64, threshold_pps: f64, seed: u64) -> Self {
        assert!(period > 0.0, "rekey period must be positive");
        assert!(threshold_pps > 0.0, "pressure threshold must be positive");
        AdaptiveRekey {
            period,
            threshold_pps,
            state: seed,
            last_rotate: 0.0,
            entry_key: None,
        }
    }

    /// The minimum spacing between rotations, seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// The windowed-mean attack rate (pps, hottest shard) that arms the rotation.
    pub fn threshold_pps(&self) -> f64 {
        self.threshold_pps
    }

    /// Next key in the SplitMix64 sequence, skipping the reserved default key.
    fn next_key(&mut self) -> u64 {
        loop {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let key = tse_packet::rss::splitmix64_mix(self.state);
            if key != tse_packet::rss::DEFAULT_HASH_KEY {
                return key;
            }
        }
    }
}

impl<B: FastPathBackend> Mitigation<B> for AdaptiveRekey {
    fn name(&self) -> &str {
        "adaptive-rekey"
    }

    fn on_start(&mut self, ctx: &mut MitigationCtx<'_, B>) {
        // Same re-anchor/restore contract as RssKeyRandomizer (see its on_start).
        self.last_rotate = 0.0;
        self.entry_key = Some(ctx.datapath.hash_key());
    }

    fn on_sample(&mut self, ctx: &mut MitigationCtx<'_, B>) -> Vec<MitigationAction> {
        if ctx.pressure.hottest_shard_mean() < self.threshold_pps
            || ctx.now - self.last_rotate < self.period
        {
            return Vec::new();
        }
        self.last_rotate = ctx.now;
        let old_key = ctx.datapath.hash_key();
        let new_key = self.next_key();
        ctx.datapath.rekey(new_key);
        vec![MitigationAction::Rekeyed {
            time: ctx.now,
            old_key,
            new_key,
        }]
    }

    fn on_finish(&mut self, ctx: &mut MitigationCtx<'_, B>) {
        if let Some(key) = self.entry_key.take() {
            ctx.datapath.rekey(key);
        }
    }
}

/// Periodically rotates the datapath's RSS hash key
/// ([`ShardedDatapath::rekey`](tse_switch::pmd::ShardedDatapath::rekey)), defeating
/// *shard-pinned* explosions: an attacker who retagged her 5-tuples to land on a
/// chosen PMD under the old key (`pin_to_shard`) finds them scattered pseudo-randomly
/// under the new one — her per-shard blast radius degrades from "the whole explosion
/// on the victim's cache" to roughly a 1/N spray she cannot aim.
///
/// The rotation schedule is deterministic: keys come from a SplitMix64 sequence seeded
/// at construction, and the first rotation fires at the first sample whose time is at
/// least `period` (then every `period` seconds). Rekeying changes placement only;
/// entries cached under the old key stay on their shard until the idle timeout
/// collects them (see the module docs of [`crate::stack`] for the cost model), and
/// benign flows simply re-home to their new shard, paying one slow-path upcall there.
#[derive(Debug, Clone)]
pub struct RssKeyRandomizer {
    period: f64,
    state: u64,
    last_rotate: f64,
    /// The hash key in force when the run started ([`Mitigation::on_start`]), restored
    /// by [`Mitigation::on_finish`] so the rotation does not outlive the run.
    entry_key: Option<u64>,
}

impl RssKeyRandomizer {
    /// Rotate every `period` seconds, drawing keys from a deterministic sequence
    /// seeded by `seed`.
    ///
    /// # Panics
    /// Panics if `period` is not positive.
    pub fn new(period: f64, seed: u64) -> Self {
        assert!(period > 0.0, "rekey period must be positive");
        RssKeyRandomizer {
            period,
            state: seed,
            last_rotate: 0.0,
            entry_key: None,
        }
    }

    /// The rotation period, seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Next key in the SplitMix64 sequence, skipping the reserved default key.
    fn next_key(&mut self) -> u64 {
        loop {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let key = tse_packet::rss::splitmix64_mix(self.state);
            if key != tse_packet::rss::DEFAULT_HASH_KEY {
                return key;
            }
        }
    }
}

impl<B: FastPathBackend> Mitigation<B> for RssKeyRandomizer {
    fn name(&self) -> &str {
        "rss-rekey"
    }

    fn on_start(&mut self, ctx: &mut MitigationCtx<'_, B>) {
        // Re-anchor the schedule at the new run's t = 0 (a reused runner's previous
        // run would otherwise leave `last_rotate` past the whole horizon and the
        // stage silently inert), and remember the entry key for restoration.
        self.last_rotate = 0.0;
        self.entry_key = Some(ctx.datapath.hash_key());
    }

    fn on_sample(&mut self, ctx: &mut MitigationCtx<'_, B>) -> Vec<MitigationAction> {
        if ctx.now - self.last_rotate < self.period {
            return Vec::new();
        }
        self.last_rotate = ctx.now;
        let old_key = ctx.datapath.hash_key();
        let new_key = self.next_key();
        ctx.datapath.rekey(new_key);
        vec![MitigationAction::Rekeyed {
            time: ctx.now,
            old_key,
            new_key,
        }]
    }

    fn on_finish(&mut self, ctx: &mut MitigationCtx<'_, B>) {
        // Restore the entry key: steering must not outlive the run on a reused
        // datapath (stranded cache entries still age out on their own, exactly like
        // after any mid-run rotation). Driven without on_start, there is nothing to
        // restore to and the rotated key stays — the pre-hook behaviour.
        if let Some(key) = self.entry_key.take() {
            ctx.datapath.rekey(key);
        }
    }
}

/// Clamps each shard's slow path to at most `quota` megaflow installs per sample
/// interval — the model of OVS's upcall governance (bounded `ovs-vswitchd`
/// handler/flow-put budget per revalidation pass).
///
/// Benign traffic installs a handful of entries and never feels the quota; a TSE
/// attacker needs *hundreds of distinct installs per interval* to keep her mask count
/// up against the idle timeout, so the quota directly throttles how fast the tuple
/// space can grow. Packets denied an install are still classified correctly — they
/// just keep paying the slow-path price per packet (the attacker's cost, not the
/// victim's, since upcall handling is off the PMD fast path in this model).
///
/// The quota is armed before the first interval (via [`Mitigation::on_start`]) and
/// re-armed at every sample; denials are read per interval from each shard's
/// cumulative [`SlowPath::quota_denied_upcalls`](tse_switch::slowpath::SlowPath::quota_denied_upcalls)
/// counter and surfaced as [`MitigationAction::UpcallsClamped`].
#[derive(Debug, Clone)]
pub struct UpcallLimiter {
    quota: u64,
    /// Cumulative per-shard denial counts at the previous sample.
    seen_denied: Vec<u64>,
}

impl UpcallLimiter {
    /// Allow at most `quota` megaflow installs per shard per sample interval.
    pub fn new(quota: u64) -> Self {
        UpcallLimiter {
            quota,
            seen_denied: Vec::new(),
        }
    }

    /// The per-shard, per-interval install quota.
    pub fn quota(&self) -> u64 {
        self.quota
    }

    fn arm<B: FastPathBackend>(&mut self, ctx: &mut MitigationCtx<'_, B>) {
        for shard in 0..ctx.shard_count() {
            ctx.datapath
                .shard_mut(shard)
                .slow_path_mut()
                .set_install_quota(Some(self.quota));
        }
    }
}

impl<B: FastPathBackend> Mitigation<B> for UpcallLimiter {
    fn name(&self) -> &str {
        "upcall-limiter"
    }

    fn on_start(&mut self, ctx: &mut MitigationCtx<'_, B>) {
        // Baseline from the live counters (not zero): a reused runner's shards carry
        // the previous run's cumulative denial totals.
        self.seen_denied = (0..ctx.shard_count())
            .map(|s| ctx.datapath.shard(s).slow_path().quota_denied_upcalls())
            .collect();
        self.arm(ctx);
    }

    fn on_sample(&mut self, ctx: &mut MitigationCtx<'_, B>) -> Vec<MitigationAction> {
        let n = ctx.shard_count();
        // Tolerate a stack driven without on_start (the first interval then ran
        // unclamped): initialise the baseline from the current counters.
        if self.seen_denied.len() != n {
            self.seen_denied = (0..n)
                .map(|s| ctx.datapath.shard(s).slow_path().quota_denied_upcalls())
                .collect();
        }
        let mut actions = Vec::new();
        for shard in 0..n {
            let total = ctx.datapath.shard(shard).slow_path().quota_denied_upcalls();
            let denied = total - self.seen_denied[shard];
            self.seen_denied[shard] = total;
            if denied > 0 {
                actions.push(MitigationAction::UpcallsClamped {
                    shard,
                    denied,
                    quota: self.quota,
                });
            }
        }
        self.arm(ctx);
        actions
    }

    fn on_finish(&mut self, ctx: &mut MitigationCtx<'_, B>) {
        // Disarm: the quota must not outlive the run on a reused datapath.
        for shard in 0..ctx.shard_count() {
            ctx.datapath
                .shard_mut(shard)
                .slow_path_mut()
                .set_install_quota(None);
        }
    }
}

/// Caps each shard's distinct-mask count: when a shard ends an interval above
/// `ceiling`, the excess masks are evicted in ascending hit-count order (coldest
/// first; ties broken by probe order, stably) until the shard is back at the ceiling.
///
/// This bounds the TSS lookup cost directly — Observation 1 says lookup time is
/// O(|M|), so a ceiling of `c` caps every fast-path scan at `c` probes no matter how
/// hard the tuple space is pushed. The trade-off is recall: evicted entries (benign
/// ones included, if they are cold enough) re-spark through slow-path upcalls, so an
/// undersized ceiling under a hot rule set trades fast-path time for upcall load.
/// Attack masks are the natural prey: every adversarial key is fresh, so its mask
/// accumulates almost no hits while a victim's long-lived mask is hit once per packet.
#[derive(Debug, Clone)]
pub struct MaskCap {
    ceiling: usize,
}

impl MaskCap {
    /// Evict down to at most `ceiling` masks per shard at every sample.
    ///
    /// # Panics
    /// Panics if `ceiling` is zero (a shard must be allowed at least one mask).
    pub fn new(ceiling: usize) -> Self {
        assert!(ceiling > 0, "mask ceiling must be positive");
        MaskCap { ceiling }
    }

    /// The per-shard mask ceiling.
    pub fn ceiling(&self) -> usize {
        self.ceiling
    }
}

impl<B: FastPathBackend> Mitigation<B> for MaskCap {
    fn name(&self) -> &str {
        "mask-cap"
    }

    fn on_sample(&mut self, ctx: &mut MitigationCtx<'_, B>) -> Vec<MitigationAction> {
        let mut actions = Vec::new();
        for shard in 0..ctx.shard_count() {
            let dp = ctx.datapath.shard_mut(shard);
            let count = dp.mask_count();
            if count <= self.ceiling {
                continue;
            }
            let mut usage = dp.megaflow().mask_usage();
            // Stable sort: equal hit counts keep their probe order, so the eviction
            // order is fully deterministic.
            usage.sort_by_key(|(_, hits)| *hits);
            let excess = count - self.ceiling;
            let mut entries_removed = 0;
            for (mask, _) in usage.into_iter().take(excess) {
                entries_removed += dp.megaflow_mut().evict_mask(&mask);
            }
            actions.push(MitigationAction::MaskCapped {
                shard,
                masks_evicted: excess,
                entries_removed,
                ceiling: self.ceiling,
            });
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tse_classifier::flowtable::FlowTable;
    use tse_classifier::tss::TupleSpace;
    use tse_packet::fields::FieldSchema;
    use tse_switch::pmd::{ShardedDatapath, Steering};

    fn fixture(n_shards: usize, steering: Steering) -> (FieldSchema, ShardedDatapath) {
        use tse_classifier::strategy::MegaflowStrategy;
        use tse_switch::datapath::Datapath;
        let schema = FieldSchema::ovs_ipv4();
        let tp_dst = schema.field_index("tp_dst").unwrap();
        let table = FlowTable::whitelist_default_deny(&schema, &[(tp_dst, 80)]);
        // Exact-match generation: every distinct key installs its own entry, making
        // install/quota arithmetic exact.
        let builder = Datapath::builder(table).strategy(MegaflowStrategy::exact_match(&schema));
        let dp = ShardedDatapath::from_builder(builder, n_shards, steering);
        (schema, dp)
    }

    static DETACHED: crate::stack::PressureWindow = crate::stack::PressureWindow::detached();

    fn ctx<'a>(
        datapath: &'a mut ShardedDatapath,
        now: f64,
        zeros: &'a [f64],
    ) -> MitigationCtx<'a, TupleSpace> {
        MitigationCtx {
            datapath,
            now,
            dt: 1.0,
            shard_attack_pps: zeros,
            shard_delivered_pps: zeros,
            shard_busy_seconds: zeros,
            pressure: &DETACHED,
        }
    }

    #[test]
    fn rekey_rearms_and_restores_across_runs() {
        let (_, mut dp) = fixture(4, Steering::Rss);
        let zeros = vec![0.0; 4];
        let mut rekey = RssKeyRandomizer::new(10.0, 7);
        // Run 1: arm, rotate at t = 10, disarm.
        {
            let mut c = ctx(&mut dp, 0.0, &zeros);
            Mitigation::<TupleSpace>::on_start(&mut rekey, &mut c);
        }
        let actions = {
            let mut c = ctx(&mut dp, 10.0, &zeros);
            Mitigation::<TupleSpace>::on_sample(&mut rekey, &mut c)
        };
        assert_eq!(actions.len(), 1);
        assert_ne!(dp.hash_key(), tse_packet::rss::DEFAULT_HASH_KEY);
        {
            let mut c = ctx(&mut dp, 60.0, &zeros);
            Mitigation::<TupleSpace>::on_finish(&mut rekey, &mut c);
        }
        assert_eq!(
            dp.hash_key(),
            tse_packet::rss::DEFAULT_HASH_KEY,
            "on_finish must restore the entry key — steering does not outlive the run"
        );
        // Run 2 with the same stage: the schedule re-anchors at the new t = 0 (without
        // the on_start reset, last_rotate ≈ 10 from run 1 would gate the first
        // rotations off); the stage keeps defending.
        {
            let mut c = ctx(&mut dp, 0.0, &zeros);
            Mitigation::<TupleSpace>::on_start(&mut rekey, &mut c);
        }
        let actions = {
            let mut c = ctx(&mut dp, 10.0, &zeros);
            Mitigation::<TupleSpace>::on_sample(&mut rekey, &mut c)
        };
        assert_eq!(
            actions.len(),
            1,
            "a reused stage must keep rotating in run 2"
        );
    }

    #[test]
    fn rekey_fires_on_schedule_and_is_deterministic() {
        let (_, mut dp1) = fixture(4, Steering::Rss);
        let (_, mut dp2) = fixture(4, Steering::Rss);
        let zeros = vec![0.0; 4];
        let run = |dp: &mut ShardedDatapath| {
            let mut rekey = RssKeyRandomizer::new(10.0, 42);
            let mut log = Vec::new();
            for step in 1..=30 {
                let mut c = ctx(dp, step as f64, &zeros);
                log.extend(Mitigation::<TupleSpace>::on_sample(&mut rekey, &mut c));
            }
            log
        };
        let log1 = run(&mut dp1);
        let log2 = run(&mut dp2);
        assert_eq!(log1, log2, "schedule and keys are deterministic");
        // Rotations at t=10, 20, 30.
        assert_eq!(log1.len(), 3);
        let times: Vec<f64> = log1
            .iter()
            .map(|a| match a {
                MitigationAction::Rekeyed { time, .. } => *time,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(times, vec![10.0, 20.0, 30.0]);
        // Keys chain: each rotation's old_key is the previous new_key.
        let mut prev = tse_packet::rss::DEFAULT_HASH_KEY;
        for a in &log1 {
            let MitigationAction::Rekeyed {
                old_key, new_key, ..
            } = a
            else {
                unreachable!()
            };
            assert_eq!(*old_key, prev);
            assert_ne!(*new_key, tse_packet::rss::DEFAULT_HASH_KEY);
            prev = *new_key;
        }
        assert_eq!(dp1.hash_key(), prev);
    }

    #[test]
    fn adaptive_rekey_rotates_only_under_pressure() {
        use crate::stack::PressureWindow;
        let (_, mut dp) = fixture(4, Steering::Rss);
        let zeros = vec![0.0; 4];
        let mut rekey = AdaptiveRekey::new(10.0, 500.0, 7);
        let mut pressure = PressureWindow::new(4, 3);
        {
            let mut c = ctx(&mut dp, 0.0, &zeros);
            Mitigation::<TupleSpace>::on_start(&mut rekey, &mut c);
        }
        let sample = |dp: &mut ShardedDatapath,
                      rekey: &mut AdaptiveRekey,
                      pressure: &PressureWindow,
                      now: f64,
                      zeros: &[f64]| {
            let mut c = MitigationCtx {
                datapath: dp,
                now,
                dt: 1.0,
                shard_attack_pps: zeros,
                shard_delivered_pps: zeros,
                shard_busy_seconds: zeros,
                pressure,
            };
            Mitigation::<TupleSpace>::on_sample(rekey, &mut c)
        };
        // Quiet window: no rotation, no matter how much time passes.
        pressure.push(&[0.0; 4]);
        for t in 1..=30 {
            assert!(
                sample(&mut dp, &mut rekey, &pressure, t as f64, &zeros).is_empty(),
                "must stay inert without pressure"
            );
        }
        assert_eq!(dp.hash_key(), tse_packet::rss::DEFAULT_HASH_KEY);
        // Pressure crosses the threshold on shard 2: the first triggered sample
        // rotates immediately (last rotation was 31 s ago, period is 10 s) …
        pressure.push(&[0.0, 0.0, 2000.0, 0.0]);
        pressure.push(&[0.0, 0.0, 2000.0, 0.0]);
        pressure.push(&[0.0, 0.0, 2000.0, 0.0]);
        let actions = sample(&mut dp, &mut rekey, &pressure, 31.0, &zeros);
        assert_eq!(actions.len(), 1, "first pressured sample rotates");
        assert_ne!(dp.hash_key(), tse_packet::rss::DEFAULT_HASH_KEY);
        // … then paces at the period while pressure persists.
        assert!(sample(&mut dp, &mut rekey, &pressure, 32.0, &zeros).is_empty());
        assert_eq!(
            sample(&mut dp, &mut rekey, &pressure, 41.0, &zeros).len(),
            1,
            "rotates again one period later under sustained pressure"
        );
        // Pressure subsides (windowed mean decays below threshold): inert again.
        pressure.push(&[0.0; 4]);
        pressure.push(&[0.0; 4]);
        pressure.push(&[0.0; 4]);
        assert!(sample(&mut dp, &mut rekey, &pressure, 60.0, &zeros).is_empty());
        // on_finish restores the entry key.
        {
            let mut c = ctx(&mut dp, 61.0, &zeros);
            Mitigation::<TupleSpace>::on_finish(&mut rekey, &mut c);
        }
        assert_eq!(dp.hash_key(), tse_packet::rss::DEFAULT_HASH_KEY);
    }

    #[test]
    fn upcall_limiter_clamps_per_shard_installs() {
        let (schema, mut dp) = fixture(2, Steering::Pinned(0));
        let tp_src = schema.field_index("tp_src").unwrap();
        let tp_dst = schema.field_index("tp_dst").unwrap();
        let zeros = vec![0.0; 2];
        let mut limiter = UpcallLimiter::new(5);
        {
            let mut c = ctx(&mut dp, 0.0, &zeros);
            Mitigation::<TupleSpace>::on_start(&mut limiter, &mut c);
        }
        // 20 distinct deny keys, all pinned to shard 0: 5 install, 15 are denied.
        for i in 0..20u128 {
            let mut k = schema.zero_value();
            k.set(tp_src, 2000 + i);
            k.set(tp_dst, 9000 + i);
            dp.process_key(&k, 60, 0.1 + i as f64 * 1e-3);
        }
        let actions = {
            let mut c = ctx(&mut dp, 1.0, &zeros);
            Mitigation::<TupleSpace>::on_sample(&mut limiter, &mut c)
        };
        assert_eq!(
            actions,
            vec![MitigationAction::UpcallsClamped {
                shard: 0,
                denied: 15,
                quota: 5
            }]
        );
        // The quota is re-armed: 3 more installs land next interval, and the next
        // sample reports only that interval's denials.
        for i in 0..3u128 {
            let mut k = schema.zero_value();
            k.set(tp_src, 5000 + i);
            k.set(tp_dst, 9500 + i);
            dp.process_key(&k, 60, 1.1 + i as f64 * 1e-3);
        }
        let actions = {
            let mut c = ctx(&mut dp, 2.0, &zeros);
            Mitigation::<TupleSpace>::on_sample(&mut limiter, &mut c)
        };
        assert!(actions.is_empty(), "under quota: no clamping reported");
        assert_eq!(dp.shard(0).slow_path().quota_denied_upcalls(), 15);
    }

    #[test]
    fn mask_cap_evicts_coldest_masks_first() {
        use tse_attack::colocated::scenario_trace;
        use tse_attack::scenarios::Scenario;
        let schema = FieldSchema::ovs_ipv4();
        let table = Scenario::SpDp.flow_table(&schema);
        let mut dp = ShardedDatapath::new(table, 1, Steering::Pinned(0));
        // Victim flow: one hot allow mask (dst 80), hit repeatedly.
        let tp_dst = schema.field_index("tp_dst").unwrap();
        let mut victim = schema.zero_value();
        victim.set(tp_dst, 80);
        dp.process_key(&victim, 1500, 0.0);
        for i in 0..10 {
            dp.process_key(&victim, 1500, 0.01 + i as f64 * 1e-3);
        }
        // The SpDp explosion: hundreds of cold masks, each key seen once.
        for (i, h) in scenario_trace(&schema, Scenario::SpDp, &schema.zero_value())
            .iter()
            .enumerate()
        {
            dp.process_key(h, 60, 0.5 + i as f64 * 1e-3);
        }
        let total = dp.shard(0).mask_count();
        assert!(total > 50, "attack spawned masks: {total}");
        let hottest = dp
            .shard(0)
            .megaflow()
            .mask_usage()
            .iter()
            .map(|(_, h)| *h)
            .max()
            .unwrap();
        assert!(hottest >= 10, "victim mask is hot: {hottest}");

        let zeros = vec![0.0; 1];
        let mut cap = MaskCap::new(20);
        let actions = {
            let mut c = ctx(&mut dp, 1.0, &zeros);
            Mitigation::<TupleSpace>::on_sample(&mut cap, &mut c)
        };
        assert_eq!(actions.len(), 1);
        let MitigationAction::MaskCapped {
            shard,
            masks_evicted,
            entries_removed,
            ceiling,
        } = actions[0]
        else {
            panic!("unexpected action {:?}", actions[0]);
        };
        assert_eq!((shard, ceiling), (0, 20));
        assert_eq!(masks_evicted, total - 20);
        assert!(entries_removed >= masks_evicted);
        assert_eq!(dp.shard(0).mask_count(), 20);
        // The hot victim mask survives: eviction is coldest-first.
        let survivors = dp.shard(0).megaflow().mask_usage();
        assert!(
            survivors.iter().any(|(_, h)| *h == hottest),
            "hottest mask must survive the cap"
        );
        // Under the ceiling: no action.
        let actions = {
            let mut c = ctx(&mut dp, 2.0, &zeros);
            Mitigation::<TupleSpace>::on_sample(&mut cap, &mut c)
        };
        assert!(actions.is_empty());
    }

    #[test]
    fn mask_cap_tie_break_is_probe_order_stable() {
        use tse_classifier::backend::FastPathBackend as _;
        use tse_classifier::rule::Action;
        // All-cold masks (zero hits): eviction must take them in probe order — the
        // first `excess` masks of the probe list go, the rest keep their order.
        let table = FlowTable::fig1_hyp();
        let schema = table.schema().clone();
        let mut dp = ShardedDatapath::new(table, 1, Steering::Pinned(0));
        let k = |v: u128| tse_packet::fields::Key::from_values(&schema, &[v]);
        // The Fig. 3 cache: three distinct masks (111, 100, 110), all with zero hits.
        let backend = dp.shard_mut(0).megaflow_mut();
        backend
            .insert_megaflow(k(0b001), k(0b111), Action::Allow, 0.0)
            .unwrap();
        backend
            .insert_megaflow(k(0b100), k(0b100), Action::Deny, 0.0)
            .unwrap();
        backend
            .insert_megaflow(k(0b010), k(0b110), Action::Deny, 0.0)
            .unwrap();
        let before: Vec<_> = dp.shard(0).megaflow().mask_usage();
        assert_eq!(before.len(), 3);
        assert!(before.iter().all(|(_, h)| *h == 0));
        let expected_survivors: Vec<_> = before.iter().skip(1).map(|(m, _)| m.clone()).collect();
        let zeros = vec![0.0; 1];
        let mut cap = MaskCap::new(2);
        let mut c = ctx(&mut dp, 1.0, &zeros);
        Mitigation::<TupleSpace>::on_sample(&mut cap, &mut c);
        let after: Vec<_> = dp
            .shard(0)
            .megaflow()
            .mask_usage()
            .into_iter()
            .map(|(m, _)| m)
            .collect();
        assert_eq!(after, expected_survivors);
    }
}
