//! # tse-mitigation
//!
//! The short-term mitigation of §8: **MFCGuard**, a monitor that keeps the tuple space
//! small for traffic that is eventually allowed.
//!
//! * [`guard`] — Algorithm 2: periodic mask-count check, TSE-pattern scan, drop-only
//!   entry eviction bounded by a slow-path CPU budget;
//! * [`pattern`] — the TSE-entry detector (deny megaflows that test bits of a
//!   whitelisted field);
//! * [`cpu_model`] — the `ovs-vswitchd` CPU model calibrated against Fig. 9c, used both
//!   for Alg. 2's balancing exit and for regenerating that figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu_model;
pub mod guard;
pub mod pattern;

pub use cpu_model::SlowPathCpuModel;
pub use guard::{GuardConfig, GuardReport, MfcGuard};
pub use pattern::{allow_exact_fields, is_tse_pattern};
