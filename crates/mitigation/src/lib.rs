//! # tse-mitigation
//!
//! The defense layer: the short-term mitigation of §8 (**MFCGuard**) plus the
//! composable [`Mitigation`] pipeline the multi-PMD datapath enables — an ordered,
//! per-shard-configurable stack of countermeasures the experiment runner invokes once
//! per sample interval.
//!
//! * [`stack`] — the [`Mitigation`] trait, the per-interval [`MitigationCtx`]
//!   telemetry view, the [`MitigationAction`] attribution records, and the ordered
//!   [`MitigationStack`];
//! * [`guard`] — Algorithm 2: periodic mask-count check, TSE-pattern scan, drop-only
//!   entry eviction bounded by a slow-path CPU budget; [`GuardMitigation`] runs one
//!   independently configured guard per shard;
//! * [`defenses`] — [`RssKeyRandomizer`] (hash-key rotation against shard-pinned
//!   explosions), [`AdaptiveRekey`] (the pressure-gated form: rotates only while the
//!   telemetry window shows a shard under sustained attack), [`UpcallLimiter`]
//!   (per-shard megaflow-install quotas) and [`MaskCap`] (per-shard mask ceilings,
//!   coldest-first eviction);
//! * [`pattern`] — the TSE-entry detector (deny megaflows that test bits of a
//!   whitelisted field);
//! * [`cpu_model`] — the `ovs-vswitchd` CPU model calibrated against Fig. 9c, used both
//!   for Alg. 2's balancing exit and for regenerating that figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu_model;
pub mod defenses;
pub mod guard;
pub mod pattern;
pub mod stack;

pub use cpu_model::SlowPathCpuModel;
pub use defenses::{AdaptiveRekey, MaskCap, RssKeyRandomizer, UpcallLimiter};
pub use guard::{GuardConfig, GuardMitigation, GuardReport, MfcGuard};
pub use pattern::{allow_exact_fields, is_tse_pattern};
pub use stack::{Mitigation, MitigationAction, MitigationCtx, MitigationStack, PressureWindow};
