//! Slow-path CPU model for MFCGuard's balancing decision (Alg. 2, Fig. 9c).
//!
//! Removing drop entries from the MFC sends the matching (adversarial) packets back to
//! the slow path, so `ovs-vswitchd` burns CPU proportionally to the attack packet rate.
//! The model is calibrated against Fig. 9c: ≈15 % CPU at 1 000 pps, ≈80 % at 10 000 pps,
//! saturating around 250 % (the daemon spreads over a handful of handler threads) at
//! 50 000 pps.

/// CPU model of the slow-path daemon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowPathCpuModel {
    /// Idle/base utilisation of the daemon in percent (bookkeeping, revalidation).
    pub base_percent: f64,
    /// Seconds of CPU consumed per upcall.
    pub per_upcall_seconds: f64,
    /// Saturation ceiling in percent (total across handler threads).
    pub max_percent: f64,
}

impl SlowPathCpuModel {
    /// Calibration matching Fig. 9c.
    pub fn ovs_vswitchd_default() -> Self {
        SlowPathCpuModel {
            base_percent: 7.0,
            per_upcall_seconds: 75e-6,
            max_percent: 250.0,
        }
    }

    /// CPU utilisation (percent) at a sustained upcall rate (packets/s hitting the slow
    /// path).
    pub fn utilization_percent(&self, upcall_rate_pps: f64) -> f64 {
        let raw = self.base_percent + upcall_rate_pps * self.per_upcall_seconds * 100.0;
        raw.min(self.max_percent)
    }

    /// Inverse: the upcall rate that would drive the daemon to the given utilisation.
    pub fn rate_for_utilization(&self, percent: f64) -> f64 {
        ((percent - self.base_percent).max(0.0) / 100.0) / self.per_upcall_seconds
    }
}

impl Default for SlowPathCpuModel {
    fn default() -> Self {
        Self::ovs_vswitchd_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9c_anchor_points() {
        let m = SlowPathCpuModel::ovs_vswitchd_default();
        let at_1k = m.utilization_percent(1_000.0);
        let at_10k = m.utilization_percent(10_000.0);
        let at_50k = m.utilization_percent(50_000.0);
        assert!(
            (10.0..=20.0).contains(&at_1k),
            "≈15 % at 1 kpps, got {at_1k}"
        );
        assert!(
            (60.0..=100.0).contains(&at_10k),
            "≈80 % at 10 kpps, got {at_10k}"
        );
        assert!(
            (200.0..=250.0).contains(&at_50k),
            "saturates near 250 %, got {at_50k}"
        );
    }

    #[test]
    fn monotone_and_capped() {
        let m = SlowPathCpuModel::ovs_vswitchd_default();
        let mut prev = 0.0;
        for rate in [0.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6] {
            let u = m.utilization_percent(rate);
            assert!(u >= prev);
            assert!(u <= m.max_percent);
            prev = u;
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let m = SlowPathCpuModel::ovs_vswitchd_default();
        let rate = m.rate_for_utilization(80.0);
        assert!((m.utilization_percent(rate) - 80.0).abs() < 1e-6);
        assert_eq!(m.rate_for_utilization(0.0), 0.0);
    }
}
