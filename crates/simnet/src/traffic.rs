//! Victim traffic sources: iperf-like bulk flows between tenant workloads.

use tse_packet::builder::PacketBuilder;
use tse_packet::fields::{FieldSchema, Key};
use tse_packet::flowkey::FlowKey;
use tse_packet::l4::IpProto;
use tse_packet::Packet;

/// An iperf-like victim flow: a single long-lived TCP or UDP stream offered at a fixed
/// rate between two tenant endpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct VictimFlow {
    /// Display name (e.g. "Victim 1").
    pub name: String,
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address (the victim's service address).
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port (80 for the canonical web-service victim).
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: IpProto,
    /// Offered load in Gbps (iperf tries to fill the pipe).
    pub offered_gbps: f64,
    /// Time the flow starts, seconds.
    pub start: f64,
    /// Time the flow stops, seconds (`f64::INFINITY` for "runs forever").
    pub stop: f64,
}

impl VictimFlow {
    /// A full-rate TCP iperf session to the victim web service on port 80.
    pub fn iperf_tcp(name: impl Into<String>, src_ip: u32, dst_ip: u32, offered_gbps: f64) -> Self {
        VictimFlow {
            name: name.into(),
            src_ip,
            dst_ip,
            src_port: 40_000,
            dst_port: 80,
            proto: IpProto::Tcp,
            offered_gbps,
            start: 0.0,
            stop: f64::INFINITY,
        }
    }

    /// A full-rate UDP iperf session (the OpenStack experiment of Fig. 8b).
    pub fn iperf_udp(name: impl Into<String>, src_ip: u32, dst_ip: u32, offered_gbps: f64) -> Self {
        VictimFlow {
            proto: IpProto::Udp,
            ..Self::iperf_tcp(name, src_ip, dst_ip, offered_gbps)
        }
    }

    /// Restrict the flow to a time window.
    pub fn active_between(mut self, start: f64, stop: f64) -> Self {
        self.start = start;
        self.stop = stop;
        self
    }

    /// Use a distinct source port (so concurrent victim flows are distinct microflows).
    pub fn with_src_port(mut self, port: u16) -> Self {
        self.src_port = port;
        self
    }

    /// Is the flow offering traffic at time `t`?
    pub fn is_active(&self, t: f64) -> bool {
        t >= self.start && t < self.stop
    }

    /// A representative packet of the flow (used to probe the datapath's current cost
    /// for this flow and to install/refresh its megaflow entry).
    pub fn representative_packet(&self) -> Packet {
        PacketBuilder::from_numeric_v4(
            self.src_ip,
            self.dst_ip,
            self.proto,
            self.src_port,
            self.dst_port,
        )
        .payload_len(1460)
        .build()
    }

    /// The flow's classification key under the given schema.
    pub fn key(&self, schema: &FieldSchema) -> Key {
        FlowKey::from_packet(&self.representative_packet()).to_key(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_window() {
        let f = VictimFlow::iperf_tcp("v", 1, 2, 10.0).active_between(30.0, 60.0);
        assert!(!f.is_active(29.9));
        assert!(f.is_active(30.0));
        assert!(f.is_active(59.9));
        assert!(!f.is_active(60.0));
    }

    #[test]
    fn default_flow_runs_forever() {
        let f = VictimFlow::iperf_tcp("v", 1, 2, 10.0);
        assert!(f.is_active(0.0));
        assert!(f.is_active(1e9));
    }

    #[test]
    fn representative_packet_matches_fields() {
        let f = VictimFlow::iperf_udp("v", 0x0a000005, 0x0a000063, 1.0).with_src_port(555);
        let p = f.representative_packet();
        let k = FlowKey::from_packet(&p);
        assert_eq!(k.ip_src, 0x0a000005);
        assert_eq!(k.ip_dst, 0x0a000063);
        assert_eq!(k.tp_src, 555);
        assert_eq!(k.tp_dst, 80);
        assert_eq!(k.ip_proto, 17);
    }

    #[test]
    fn key_extraction_uses_schema() {
        let schema = FieldSchema::ovs_ipv4();
        let f = VictimFlow::iperf_tcp("v", 7, 9, 1.0);
        let k = f.key(&schema);
        assert_eq!(k.get(schema.field_index("ip_src").unwrap()), 7);
        assert_eq!(k.get(schema.field_index("tp_dst").unwrap()), 80);
    }
}
