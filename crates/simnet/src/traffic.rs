//! Victim traffic sources: iperf-like bulk flows between tenant workloads, and their
//! streaming form ([`VictimSource`]) for the event-driven experiment runner.

use tse_attack::source::{EventPayload, SourceRole, TrafficEvent, TrafficSource};
use tse_packet::builder::PacketBuilder;
use tse_packet::fields::{FieldSchema, Key};
use tse_packet::flowkey::FlowKey;
use tse_packet::l4::IpProto;
use tse_packet::{rss, Packet};
use tse_switch::pmd::Steering;

/// An iperf-like victim flow: a single long-lived TCP or UDP stream offered at a fixed
/// rate between two tenant endpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct VictimFlow {
    /// Display name (e.g. "Victim 1").
    pub name: String,
    /// Source IP address (an IPv4 address in the low 32 bits unless
    /// [`VictimFlow::v6`]).
    pub src_ip: u128,
    /// Destination IP address — the victim's service address (an IPv4 address in the
    /// low 32 bits unless [`VictimFlow::v6`]).
    pub dst_ip: u128,
    /// Address family: when set the endpoints are IPv6 and the representative packet
    /// carries an IPv6 header (classify under [`FieldSchema::ovs_ipv6`]).
    pub v6: bool,
    /// Source port.
    pub src_port: u16,
    /// Destination port (80 for the canonical web-service victim).
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: IpProto,
    /// Offered load in Gbps (iperf tries to fill the pipe).
    pub offered_gbps: f64,
    /// Time the flow starts, seconds.
    pub start: f64,
    /// Time the flow stops, seconds (`f64::INFINITY` for "runs forever").
    pub stop: f64,
}

impl VictimFlow {
    /// A full-rate TCP iperf session to the victim web service on port 80.
    pub fn iperf_tcp(name: impl Into<String>, src_ip: u32, dst_ip: u32, offered_gbps: f64) -> Self {
        VictimFlow {
            name: name.into(),
            src_ip: src_ip.into(),
            dst_ip: dst_ip.into(),
            v6: false,
            src_port: 40_000,
            dst_port: 80,
            proto: IpProto::Tcp,
            offered_gbps,
            start: 0.0,
            stop: f64::INFINITY,
        }
    }

    /// A full-rate UDP iperf session (the OpenStack experiment of Fig. 8b).
    pub fn iperf_udp(name: impl Into<String>, src_ip: u32, dst_ip: u32, offered_gbps: f64) -> Self {
        VictimFlow {
            proto: IpProto::Udp,
            ..Self::iperf_tcp(name, src_ip, dst_ip, offered_gbps)
        }
    }

    /// A full-rate TCP iperf session between IPv6 tenant endpoints — the victim of
    /// the IPv6 explosion experiments. Classify under [`FieldSchema::ovs_ipv6`].
    pub fn iperf_tcp_v6(
        name: impl Into<String>,
        src_ip: u128,
        dst_ip: u128,
        offered_gbps: f64,
    ) -> Self {
        VictimFlow {
            name: name.into(),
            src_ip,
            dst_ip,
            v6: true,
            src_port: 40_000,
            dst_port: 80,
            proto: IpProto::Tcp,
            offered_gbps,
            start: 0.0,
            stop: f64::INFINITY,
        }
    }

    /// The UDP form of [`VictimFlow::iperf_tcp_v6`].
    pub fn iperf_udp_v6(
        name: impl Into<String>,
        src_ip: u128,
        dst_ip: u128,
        offered_gbps: f64,
    ) -> Self {
        VictimFlow {
            proto: IpProto::Udp,
            ..Self::iperf_tcp_v6(name, src_ip, dst_ip, offered_gbps)
        }
    }

    /// Restrict the flow to a time window.
    pub fn active_between(mut self, start: f64, stop: f64) -> Self {
        self.start = start;
        self.stop = stop;
        self
    }

    /// Use a distinct source port (so concurrent victim flows are distinct microflows).
    pub fn with_src_port(mut self, port: u16) -> Self {
        self.src_port = port;
        self
    }

    /// Scan source ports upward from the current one until the flow's key steers to
    /// `shard` of `n_shards` under `steering` — how an experiment places a victim on a
    /// chosen PMD of a [`ShardedDatapath`](tse_switch::pmd::ShardedDatapath).
    ///
    /// # Panics
    /// Panics if the steering policy does not depend on the source port (a
    /// [`Steering::Pinned`] flow or a [`Steering::PerTenant`] hash of the source
    /// address — no port can move those) and the flow does not already land on
    /// `shard`, or if the scan exhausts all ports without reaching it.
    pub fn steered_to_shard(
        mut self,
        schema: &FieldSchema,
        steering: Steering,
        n_shards: usize,
        shard: usize,
    ) -> Self {
        assert!(shard < n_shards, "target shard out of range");
        let fields = steering.steer_fields(schema);
        let shard_of = |flow: &VictimFlow| match steering {
            Steering::Pinned(i) => i,
            _ => rss::shard_of(&flow.key(schema), &fields, n_shards),
        };
        if shard_of(&self) == shard {
            return self;
        }
        let port_moves_hash = schema
            .field_index("tp_src")
            .is_some_and(|tp_src| fields.contains(&tp_src));
        assert!(
            port_moves_hash,
            "{steering:?} ignores the source port: {} cannot be moved to shard {shard}",
            self.name
        );
        let start = self.src_port;
        for port in start..=u16::MAX {
            self.src_port = port;
            if shard_of(&self) == shard {
                return self;
            }
        }
        panic!(
            "no source port in {start}..=65535 steers {} to shard {shard}/{n_shards}",
            self.name
        );
    }

    /// Is the flow offering traffic at time `t`?
    pub fn is_active(&self, t: f64) -> bool {
        t >= self.start && t < self.stop
    }

    /// A representative packet of the flow (used to probe the datapath's current cost
    /// for this flow and to install/refresh its megaflow entry).
    pub fn representative_packet(&self) -> Packet {
        let builder = if self.v6 {
            PacketBuilder::from_numeric_v6(
                self.src_ip,
                self.dst_ip,
                self.proto,
                self.src_port,
                self.dst_port,
            )
        } else {
            PacketBuilder::from_numeric_v4(
                self.src_ip as u32,
                self.dst_ip as u32,
                self.proto,
                self.src_port,
                self.dst_port,
            )
        };
        builder.payload_len(1460).build()
    }

    /// The flow's classification key under the given schema.
    ///
    /// Note this builds a representative packet and re-derives the key on every call;
    /// hot paths should derive it once — [`VictimSource`] caches it at construction,
    /// which is how the experiment runner uses victim flows.
    pub fn key(&self, schema: &FieldSchema) -> Key {
        FlowKey::from_packet(&self.representative_packet()).to_key(schema)
    }

    /// View the flow as a pull-based [`TrafficSource`] of measurement probes on the
    /// runner's sampling grid (see [`VictimSource`]).
    pub fn source(&self, schema: &FieldSchema, sample_interval: f64) -> VictimSource {
        VictimSource::new(self.clone(), schema, sample_interval)
    }
}

/// The streaming form of a [`VictimFlow`]: a [`TrafficSource`] emitting one measurement
/// probe per sampling interval while the flow is active (mid-interval, at
/// `k·dt + dt/2` for every grid point `k·dt` inside the flow's activity window).
///
/// `sample_interval` must match the consuming runner's `sample_interval` (pass
/// `runner.sample_interval`, as the runner's own `run` shim does): the runner treats
/// an interval without a probe as "flow inactive", so a coarser probe cadence shows
/// up as spurious zero-throughput samples, and a finer one wastes probes (the last
/// probe per interval wins).
///
/// The schema-derived key and probe size are computed **once** at construction — the
/// per-call packet build of [`VictimFlow::key`] never runs on the event path. A flow
/// with `stop = f64::INFINITY` is an unbounded source; the runner pulls only up to the
/// experiment horizon.
#[derive(Debug, Clone)]
pub struct VictimSource {
    flow: VictimFlow,
    offered_gbps: f64,
    key: Key,
    bytes: usize,
    dt: f64,
    /// Next grid step `k` to probe (probe fires at `k*dt + dt/2`).
    next_step: u64,
}

impl VictimSource {
    /// Wrap a flow for a given sampling interval, pre-deriving its key under `schema`.
    pub fn new(flow: VictimFlow, schema: &FieldSchema, sample_interval: f64) -> Self {
        assert!(sample_interval > 0.0, "sample interval must be positive");
        let probe = flow.representative_packet();
        let key = FlowKey::from_packet(&probe).to_key(schema);
        let bytes = probe.wire_len();
        // Smallest k >= 0 with k*dt >= start (the first interval whose *start* falls
        // inside the activity window, matching `is_active` sampled at interval starts).
        let mut k = if flow.start <= 0.0 {
            0
        } else {
            (flow.start / sample_interval).ceil() as u64
        };
        while (k as f64) * sample_interval < flow.start {
            k += 1;
        }
        while k > 0 && ((k - 1) as f64) * sample_interval >= flow.start {
            k -= 1;
        }
        VictimSource {
            offered_gbps: flow.offered_gbps,
            flow,
            key,
            bytes,
            dt: sample_interval,
            next_step: k,
        }
    }

    /// The wrapped flow.
    pub fn flow(&self) -> &VictimFlow {
        &self.flow
    }
}

impl TrafficSource for VictimSource {
    fn label(&self) -> &str {
        &self.flow.name
    }

    fn role(&self) -> SourceRole {
        SourceRole::Victim
    }

    fn next_event(&mut self) -> Option<TrafficEvent> {
        let t = self.next_step as f64 * self.dt;
        if !self.flow.is_active(t) {
            return None;
        }
        self.next_step += 1;
        Some(TrafficEvent {
            time: t + self.dt * 0.5,
            key: self.key.clone(),
            bytes: self.bytes,
            payload: EventPayload::Probe {
                offered_gbps: self.offered_gbps,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_window() {
        let f = VictimFlow::iperf_tcp("v", 1, 2, 10.0).active_between(30.0, 60.0);
        assert!(!f.is_active(29.9));
        assert!(f.is_active(30.0));
        assert!(f.is_active(59.9));
        assert!(!f.is_active(60.0));
    }

    #[test]
    fn default_flow_runs_forever() {
        let f = VictimFlow::iperf_tcp("v", 1, 2, 10.0);
        assert!(f.is_active(0.0));
        assert!(f.is_active(1e9));
    }

    #[test]
    fn representative_packet_matches_fields() {
        let f = VictimFlow::iperf_udp("v", 0x0a000005, 0x0a000063, 1.0).with_src_port(555);
        let p = f.representative_packet();
        let k = FlowKey::from_packet(&p);
        assert_eq!(k.ip_src, 0x0a000005);
        assert_eq!(k.ip_dst, 0x0a000063);
        assert_eq!(k.tp_src, 555);
        assert_eq!(k.tp_dst, 80);
        assert_eq!(k.ip_proto, 17);
    }

    #[test]
    fn v6_flow_builds_v6_packets_and_keys() {
        const SRC: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0005;
        const DST: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0063;
        let schema = FieldSchema::ovs_ipv6();
        let f = VictimFlow::iperf_udp_v6("v6", SRC, DST, 2.0).with_src_port(777);
        let k = FlowKey::from_packet(&f.representative_packet());
        assert!(k.is_v6);
        assert_eq!(k.ip_src, SRC);
        assert_eq!(k.ip_dst, DST);
        assert_eq!(k.ip_proto, 17);
        assert_eq!(k.tp_src, 777);
        let key = f.key(&schema);
        assert_eq!(key.get(schema.field_index("ip6_src").unwrap()), SRC);
        assert_eq!(key.get(schema.field_index("tp_dst").unwrap()), 80);
    }

    #[test]
    fn key_extraction_uses_schema() {
        let schema = FieldSchema::ovs_ipv4();
        let f = VictimFlow::iperf_tcp("v", 7, 9, 1.0);
        let k = f.key(&schema);
        assert_eq!(k.get(schema.field_index("ip_src").unwrap()), 7);
        assert_eq!(k.get(schema.field_index("tp_dst").unwrap()), 80);
    }

    #[test]
    fn steered_to_shard_lands_on_the_requested_shard() {
        let schema = FieldSchema::ovs_ipv4();
        for shard in 0..4 {
            let flow = VictimFlow::iperf_tcp("v", 0x0a000005, 0x0a000063, 4.0)
                .with_src_port(40_000)
                .steered_to_shard(&schema, Steering::Rss, 4, shard);
            assert_eq!(
                Steering::Rss.shard_of(&schema, &flow.key(&schema), 4),
                shard
            );
            assert!(flow.src_port >= 40_000);
        }
        // Pinned steering: reachable iff the pin matches.
        let flow = VictimFlow::iperf_tcp("v", 1, 2, 1.0).steered_to_shard(
            &schema,
            Steering::Pinned(2),
            4,
            2,
        );
        assert_eq!(flow.src_port, 40_000, "first candidate port already works");
    }

    #[test]
    #[should_panic(expected = "ignores the source port")]
    fn steered_to_shard_rejects_port_independent_steering() {
        let schema = FieldSchema::ovs_ipv4();
        // An ip_src whose PerTenant hash misses shard 0: no port can move it.
        let src_ip = (1u32..)
            .find(|&ip| {
                Steering::PerTenant.shard_of(
                    &schema,
                    &VictimFlow::iperf_tcp("v", ip, 2, 1.0).key(&schema),
                    4,
                ) != 0
            })
            .unwrap();
        let _ = VictimFlow::iperf_tcp("v", src_ip, 2, 1.0).steered_to_shard(
            &schema,
            Steering::PerTenant,
            4,
            0,
        );
    }

    #[test]
    fn victim_source_probes_mid_interval_while_active() {
        let schema = FieldSchema::ovs_ipv4();
        let f = VictimFlow::iperf_tcp("v", 1, 2, 4.0).active_between(3.0, 6.0);
        let mut src = f.source(&schema, 1.0);
        assert_eq!(src.label(), "v");
        assert_eq!(src.role(), SourceRole::Victim);
        let mut events = Vec::new();
        while let Some(ev) = src.next_event() {
            events.push(ev);
        }
        // Probes at 3.5, 4.5, 5.5 — one per interval whose start is inside [3, 6).
        assert_eq!(
            events.iter().map(|e| e.time).collect::<Vec<_>>(),
            vec![3.5, 4.5, 5.5]
        );
        for ev in &events {
            assert_eq!(
                ev.key,
                f.key(&schema),
                "cached key must match VictimFlow::key"
            );
            assert_eq!(ev.payload, EventPayload::Probe { offered_gbps: 4.0 });
        }
    }

    #[test]
    fn always_on_victim_source_is_unbounded() {
        let schema = FieldSchema::ovs_ipv4();
        let mut src = VictimFlow::iperf_udp("v", 1, 2, 1.0).source(&schema, 0.5);
        for step in 0..1000 {
            let ev = src.next_event().expect("infinite source");
            assert_eq!(ev.time, step as f64 * 0.5 + 0.25);
        }
    }

    #[test]
    fn victim_source_respects_unaligned_start() {
        let schema = FieldSchema::ovs_ipv4();
        // Start at 2.3 with dt=1: the first interval whose *start* is active is t=3.
        let f = VictimFlow::iperf_tcp("v", 1, 2, 1.0).active_between(2.3, 5.0);
        let mut src = f.source(&schema, 1.0);
        assert_eq!(src.next_event().unwrap().time, 3.5);
    }
}
