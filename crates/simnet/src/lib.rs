//! # tse-simnet
//!
//! The evaluation substrate of the reproduction: everything the paper's testbed provides
//! around the switch.
//!
//! * [`offload`] — NIC offload configurations (GRO on/off, full hardware offload, UDP)
//!   and their effect on bytes-per-classifier-invocation (§5.4);
//! * [`traffic`] — iperf-like victim flows and their streaming form
//!   ([`traffic::VictimSource`]);
//! * [`runner`] — the event-driven timeline experiment runner producing the Fig. 8
//!   time series: a [`TrafficMix`] of attacker and victim sources drained through the
//!   datapath, victim throughput derived from the measured per-invocation cost and the
//!   CPU left over, attributed per source;
//! * [`cloud`] — the platform models (synthetic, OpenStack/OVN, Kubernetes/OVN) with
//!   their ACL expressiveness limits and link rates (§5.5, §5.6, §7);
//! * [`telemetry`] — the two-tier hot/cold telemetry store: a bounded ring of recent
//!   samples plus streaming whole-run aggregates and per-tenant SLO trackers, so
//!   hour-long tenant-scale runs hold constant memory;
//! * [`fleet`] — tenant-scale workload builders: [`fleet::TenantFleet`] (hundreds to
//!   thousands of tenants behind one gateway, a few of them hostile) and
//!   [`fleet::ChurnSource`] (Poisson benign flow churn as background traffic).
//!
//! The traffic-source abstraction itself ([`TrafficSource`], [`TrafficMix`], the
//! attack-side sources) lives in `tse-attack`'s `source` module and is re-exported
//! here for convenience.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cloud;
pub mod fleet;
pub mod offload;
pub mod runner;
pub mod telemetry;
pub mod traffic;

pub use cloud::{section7_mask_ceiling, CloudPlatform};
pub use fleet::{ChurnConfig, ChurnSource, FleetConfig, TenantFleet};
pub use offload::OffloadConfig;
pub use runner::{ExperimentRunner, Timeline, TimelineSample};
pub use telemetry::{
    LogHistogram, SeriesAgg, SloConfig, SloTracker, TelemetryConfig, TelemetryStore,
};
pub use traffic::{VictimFlow, VictimSource};
pub use tse_attack::source::{
    AttackGenerator, EventPayload, SourceRole, TraceSource, TrafficEvent, TrafficMix, TrafficSource,
};
