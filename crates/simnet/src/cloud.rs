//! Cloud-platform models: which ACLs a tenant can express and what the fabric looks
//! like in the three evaluation environments of Table 1 / §5.5 / §5.6 / §7.

use tse_attack::scenarios::Scenario;
use tse_packet::fields::FieldSchema;
use tse_switch::tenant::{AclField, AllowClause, TenantAcl};

/// The evaluation environments of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CloudPlatform {
    /// The standalone synthetic testbed (§5.4): the operator bootstraps the OVS flow
    /// table manually, so every field of Fig. 6 is available.
    Synthetic,
    /// OpenStack with the OVN backend (§5.5): security groups filter on source IP and
    /// destination port only, and the CMS's anti-spoofing prevents in-DC source-IP
    /// spoofing.
    OpenStack,
    /// Kubernetes with OVN (§5.6): network policies filter on source IP and destination
    /// port; Calico-style source-port rules have to be injected manually via the CLI,
    /// which the paper does to reach the full SipSpDp pattern.
    Kubernetes,
}

impl CloudPlatform {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            CloudPlatform::Synthetic => "synthetic",
            CloudPlatform::OpenStack => "OpenStack/OVN",
            CloudPlatform::Kubernetes => "Kubernetes/OVN",
        }
    }

    /// Header fields a tenant ACL may reference on this platform (§7).
    pub fn allowed_fields(&self) -> Vec<AclField> {
        match self {
            CloudPlatform::Synthetic | CloudPlatform::Kubernetes => {
                vec![AclField::DstPort, AclField::SrcIp, AclField::SrcPort]
            }
            CloudPlatform::OpenStack => vec![AclField::DstPort, AclField::SrcIp],
        }
    }

    /// The most aggressive scenario expressible on this platform: SipSpDp for the
    /// synthetic testbed and Kubernetes (with the manual source-port injection), SipDp
    /// for OpenStack.
    pub fn max_scenario(&self) -> Scenario {
        match self {
            CloudPlatform::Synthetic | CloudPlatform::Kubernetes => Scenario::SipSpDp,
            CloudPlatform::OpenStack => Scenario::SipDp,
        }
    }

    /// Link/line rate between the tenant workloads in Gbps (Table 1: 10 G NICs for the
    /// synthetic testbed, ~1.4 Gbps measured ceiling for the OpenStack VMs, 1 Gbps
    /// virtio links for the Kubernetes vagrant boxes).
    pub fn line_rate_gbps(&self) -> f64 {
        match self {
            CloudPlatform::Synthetic => 10.0,
            CloudPlatform::OpenStack => 1.4,
            CloudPlatform::Kubernetes => 1.0,
        }
    }

    /// Clamp a requested attack scenario to what this platform's CMS API can express.
    pub fn clamp_scenario(&self, requested: Scenario) -> Scenario {
        let allowed = self.allowed_fields();
        let ok = requested
            .target_fields()
            .iter()
            .all(|t| allowed.iter().any(|f| field_name(*f) == t.name));
        if ok {
            requested
        } else {
            self.max_scenario()
        }
    }

    /// Build the attacker tenant's ACL for a scenario on this platform, clamped to the
    /// expressible fields.
    pub fn attacker_acl(&self, scenario: Scenario, service_ip: u128) -> TenantAcl {
        let scenario = self.clamp_scenario(scenario);
        let allows = scenario
            .target_fields()
            .iter()
            .map(|t| AllowClause {
                field: field_from_name(t.name),
                value: t.allow_value,
            })
            .collect();
        TenantAcl::new(format!("attacker-{}", self.name()), service_ip, allows)
    }
}

fn field_name(f: AclField) -> &'static str {
    match f {
        AclField::SrcIp => "ip_src",
        AclField::SrcPort => "tp_src",
        AclField::DstPort => "tp_dst",
    }
}

fn field_from_name(name: &str) -> AclField {
    match name {
        "ip_src" | "ip6_src" => AclField::SrcIp,
        "tp_src" => AclField::SrcPort,
        "tp_dst" => AclField::DstPort,
        other => panic!("unknown ACL field {other}"),
    }
}

/// Per-platform expected maximum mask counts quoted in §7: 512 for OpenStack/Kubernetes
/// ingress policies, 8192 when source-port filtering is available.
pub fn section7_mask_ceiling(platform: CloudPlatform, schema: &FieldSchema) -> usize {
    platform.max_scenario().expected_max_masks(schema)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn openstack_cannot_express_source_port_rules() {
        let p = CloudPlatform::OpenStack;
        assert_eq!(p.max_scenario(), Scenario::SipDp);
        assert_eq!(p.clamp_scenario(Scenario::SipSpDp), Scenario::SipDp);
        assert_eq!(p.clamp_scenario(Scenario::Dp), Scenario::Dp);
    }

    #[test]
    fn kubernetes_reaches_full_blown_attack() {
        let p = CloudPlatform::Kubernetes;
        assert_eq!(p.clamp_scenario(Scenario::SipSpDp), Scenario::SipSpDp);
    }

    #[test]
    fn section7_ceilings() {
        let schema = FieldSchema::ovs_ipv4();
        assert_eq!(
            section7_mask_ceiling(CloudPlatform::OpenStack, &schema),
            512
        );
        assert_eq!(
            section7_mask_ceiling(CloudPlatform::Kubernetes, &schema),
            8192
        );
        assert_eq!(
            section7_mask_ceiling(CloudPlatform::Synthetic, &schema),
            8192
        );
    }

    #[test]
    fn attacker_acl_respects_platform() {
        let os = CloudPlatform::OpenStack.attacker_acl(Scenario::SipSpDp, 42);
        assert_eq!(os.len(), 2); // clamped to SipDp: dst port + src ip
        let k8s = CloudPlatform::Kubernetes.attacker_acl(Scenario::SipSpDp, 42);
        assert_eq!(k8s.len(), 3);
        assert_eq!(k8s.service_ip, 42);
    }

    #[test]
    fn line_rates_match_table1() {
        assert_eq!(CloudPlatform::Synthetic.line_rate_gbps(), 10.0);
        assert!(CloudPlatform::OpenStack.line_rate_gbps() < 2.0);
        assert_eq!(CloudPlatform::Kubernetes.line_rate_gbps(), 1.0);
    }
}
