//! The timeline experiment runner: victims + attacker sharing one datapath, sampled once
//! per second — the machinery behind Fig. 8a/8b/8c.
//!
//! Attack packets are low-rate and are pushed through the datapath one by one (they are
//! what mutates the cache). Victim flows are multi-gigabit, so simulating them per packet
//! would be pointless; instead each interval probes the datapath with one representative
//! packet per victim flow (which also keeps the victim's megaflow entry alive, exactly
//! like the real traffic would), reads off the per-invocation cost, and converts the CPU
//! budget left over from attack processing into achieved victim throughput.

use tse_attack::trace::AttackTrace;
use tse_classifier::backend::FastPathBackend;
use tse_classifier::tss::TupleSpace;
use tse_mitigation::guard::MfcGuard;
use tse_switch::datapath::Datapath;

use crate::offload::OffloadConfig;
use crate::traffic::VictimFlow;

/// One per-interval sample of the experiment timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSample {
    /// Interval start time, seconds.
    pub time: f64,
    /// Achieved throughput of each victim flow, Gbps (0 when the flow is inactive).
    pub victim_gbps: Vec<f64>,
    /// Attack packets sent during this interval.
    pub attacker_pps: f64,
    /// Megaflow masks at the end of the interval.
    pub mask_count: usize,
    /// Megaflow entries at the end of the interval.
    pub entry_count: usize,
    /// Masks scanned by a victim fast-path lookup during this interval (0 if no victim
    /// is active).
    pub victim_masks_scanned: usize,
}

impl TimelineSample {
    /// Aggregate victim throughput ("Victim SUM" in Fig. 8a).
    pub fn total_victim_gbps(&self) -> f64 {
        self.victim_gbps.iter().sum()
    }
}

/// A complete experiment timeline.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Victim flow names, in the order of [`TimelineSample::victim_gbps`].
    pub victim_names: Vec<String>,
    /// Per-second samples.
    pub samples: Vec<TimelineSample>,
}

impl Timeline {
    /// Minimum aggregate victim throughput over a time window.
    pub fn min_total_between(&self, start: f64, stop: f64) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.time >= start && s.time < stop)
            .map(TimelineSample::total_victim_gbps)
            .fold(f64::INFINITY, f64::min)
    }

    /// Mean aggregate victim throughput over a time window.
    pub fn mean_total_between(&self, start: f64, stop: f64) -> f64 {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.time >= start && s.time < stop)
            .map(TimelineSample::total_victim_gbps)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Render the timeline as an aligned text table (one row per second), the textual
    /// equivalent of the Fig. 8 plots.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("time_s");
        for name in &self.victim_names {
            out.push_str(&format!("\t{name}_gbps"));
        }
        out.push_str("\tvictim_sum_gbps\tattack_pps\tmfc_masks\tmfc_entries\n");
        for s in &self.samples {
            out.push_str(&format!("{:6.0}", s.time));
            for v in &s.victim_gbps {
                out.push_str(&format!("\t{v:9.3}"));
            }
            out.push_str(&format!(
                "\t{:9.3}\t{:10.0}\t{:9}\t{:11}\n",
                s.total_victim_gbps(),
                s.attacker_pps,
                s.mask_count,
                s.entry_count
            ));
        }
        out
    }
}

/// The experiment runner, generic over the datapath's fast-path backend — a Fig. 8
/// timeline can be produced for the TSS cache (the default) or for any of the §7
/// attack-immune baselines, which is how the backend comparison of Fig. 9 is run
/// through the real pipeline instead of bare classify loops.
#[derive(Debug)]
pub struct ExperimentRunner<B: FastPathBackend = TupleSpace> {
    /// The shared hypervisor datapath under test.
    pub datapath: Datapath<B>,
    /// Victim flows.
    pub victims: Vec<VictimFlow>,
    /// Victim-side offload configuration (bytes per classifier invocation, line rate).
    pub offload: OffloadConfig,
    /// Optional MFCGuard instance protecting the datapath.
    pub guard: Option<MfcGuard>,
    /// Sampling/measurement interval in seconds.
    pub sample_interval: f64,
}

impl<B: FastPathBackend> ExperimentRunner<B> {
    /// Create a runner with a 1-second sampling interval and no guard.
    pub fn new(datapath: Datapath<B>, victims: Vec<VictimFlow>, offload: OffloadConfig) -> Self {
        ExperimentRunner {
            datapath,
            victims,
            offload,
            guard: None,
            sample_interval: 1.0,
        }
    }

    /// Attach an MFCGuard instance.
    pub fn with_guard(mut self, guard: MfcGuard) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Run the experiment for `duration` seconds against the given attack trace and
    /// return the timeline.
    pub fn run(&mut self, attack: &AttackTrace, duration: f64) -> Timeline {
        let dt = self.sample_interval;
        let mut timeline = Timeline {
            victim_names: self.victims.iter().map(|v| v.name.clone()).collect(),
            samples: Vec::new(),
        };
        let mut attack_iter = attack.packets().iter().peekable();
        let steps = (duration / dt).ceil() as usize;
        for step in 0..steps {
            let t = step as f64 * dt;
            let t_end = t + dt;

            // 1. Replay the attack packets that fall into this interval.
            let mut attack_packets = 0u64;
            let mut attack_busy = 0.0f64;
            while let Some(tp) = attack_iter.peek() {
                if tp.time >= t_end {
                    break;
                }
                let tp = attack_iter.next().expect("peeked");
                if tp.time >= t {
                    let outcome = self.datapath.process_packet(&tp.packet, tp.time);
                    attack_packets += 1;
                    attack_busy += outcome.cost;
                }
            }
            self.datapath.maybe_expire(t_end);

            // 2. Probe each active victim flow once: refreshes its megaflow entry and
            //    yields the current per-invocation cost.
            let mut victim_costs = Vec::with_capacity(self.victims.len());
            let mut victim_masks_scanned = 0;
            for flow in &self.victims {
                if !flow.is_active(t) {
                    victim_costs.push(None);
                    continue;
                }
                let probe = flow.representative_packet();
                let outcome = self.datapath.process_packet(&probe, t + dt * 0.5);
                victim_masks_scanned = victim_masks_scanned.max(outcome.masks_scanned);
                // Per-invocation cost under this experiment's offload model: re-price the
                // scan with the offload's cost model (the datapath's own model prices the
                // attack packets). Work units go through the backend's cost hook, exactly
                // as the datapath itself charges them.
                let units = self.datapath.megaflow().cost_units(outcome.masks_scanned);
                let cost = match outcome.path {
                    tse_switch::stats::PathTaken::SlowPath => self.offload.cost.slow_path(units),
                    tse_switch::stats::PathTaken::Microflow => self.offload.cost.microflow(),
                    _ => self.offload.cost.fast_path(units),
                };
                victim_costs.push(Some(cost));
            }

            // 3. Convert the CPU left after attack processing into victim throughput.
            let available_cpu = (dt - attack_busy).max(0.0);
            let active: Vec<usize> = victim_costs
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.map(|_| i))
                .collect();
            let mut victim_gbps = vec![0.0; self.victims.len()];
            if !active.is_empty() {
                let share = available_cpu / active.len() as f64;
                let mut leftover = 0.0;
                for &i in &active {
                    let cost = victim_costs[i].expect("active flow has a cost");
                    let offered_pps = self.victims[i].offered_gbps * 1e9
                        / 8.0
                        / self.offload.bytes_per_invocation as f64;
                    let achievable_pps = share / cost / dt;
                    let pps = achievable_pps.min(offered_pps);
                    leftover += (achievable_pps - pps).max(0.0) * cost * dt;
                    victim_gbps[i] = pps * self.offload.bytes_per_invocation as f64 * 8.0 / 1e9;
                }
                // One redistribution pass: give unused CPU to still-limited flows.
                if leftover > 1e-12 {
                    let limited: Vec<usize> = active
                        .iter()
                        .copied()
                        .filter(|&i| {
                            victim_gbps[i] + 1e-9
                                < self.victims[i]
                                    .offered_gbps
                                    .min(self.offload.line_rate_gbps)
                        })
                        .collect();
                    if !limited.is_empty() {
                        let extra = leftover / limited.len() as f64;
                        for &i in &limited {
                            let cost = victim_costs[i].expect("active");
                            let extra_gbps =
                                extra / cost / dt * self.offload.bytes_per_invocation as f64 * 8.0
                                    / 1e9;
                            victim_gbps[i] =
                                (victim_gbps[i] + extra_gbps).min(self.victims[i].offered_gbps);
                        }
                    }
                }
                // Line-rate cap on the aggregate.
                let total: f64 = victim_gbps.iter().sum();
                if total > self.offload.line_rate_gbps {
                    let scale = self.offload.line_rate_gbps / total;
                    for v in &mut victim_gbps {
                        *v *= scale;
                    }
                }
            }

            // 4. Let MFCGuard run if attached.
            if let Some(guard) = &mut self.guard {
                guard.maybe_run(&mut self.datapath, t_end, attack_packets as f64 / dt);
            }

            timeline.samples.push(TimelineSample {
                time: t,
                victim_gbps,
                attacker_pps: attack_packets as f64 / dt,
                mask_count: self.datapath.mask_count(),
                entry_count: self.datapath.entry_count(),
                victim_masks_scanned,
            });
        }
        timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tse_attack::colocated::scenario_trace;
    use tse_attack::scenarios::Scenario;
    use tse_attack::trace::AttackTrace;
    use tse_packet::fields::FieldSchema;
    use tse_switch::datapath::Datapath;

    const VICTIM_IP: u32 = 0x0a00_0063;

    fn setup(scenario: Scenario) -> (ExperimentRunner, AttackTrace) {
        let schema = FieldSchema::ovs_ipv4();
        let table = scenario.flow_table(&schema);
        let datapath = Datapath::new(table);
        let victims = vec![VictimFlow::iperf_tcp(
            "Victim 1", 0x0a000005, VICTIM_IP, 10.0,
        )];
        let runner = ExperimentRunner::new(datapath, victims, OffloadConfig::gro_off());
        // Attack: co-located trace at 100 pps between t=30 s and t≈when the trace ends.
        let mut rng = StdRng::seed_from_u64(99);
        let keys = scenario_trace(&schema, scenario, &schema.zero_value());
        let trace = AttackTrace::from_keys_cyclic(&mut rng, &schema, &keys, 100.0, 30.0, 3000);
        (runner, trace)
    }

    #[test]
    fn victim_runs_at_baseline_before_attack_and_degrades_during() {
        let (mut runner, attack) = setup(Scenario::SipDp);
        let timeline = runner.run(&attack, 90.0);
        assert_eq!(timeline.samples.len(), 90);
        let before = timeline.mean_total_between(5.0, 29.0);
        let during = timeline.mean_total_between(45.0, 59.0);
        assert!(
            before > 8.0,
            "baseline should be near 10 Gbps, got {before}"
        );
        assert!(
            during < before * 0.25,
            "SipDp attack should cut throughput by >75 %: {before} -> {during}"
        );
    }

    #[test]
    fn victim_recovers_after_idle_timeout() {
        let (mut runner, attack) = setup(Scenario::SipDp);
        // Attack packets span t=30..60 s (3000 packets at 100 pps).
        let timeline = runner.run(&attack, 90.0);
        let recovered = timeline.mean_total_between(75.0, 89.0);
        assert!(
            recovered > 8.0,
            "victim should recover ~10 s after the attack stops: {recovered}"
        );
        // Mask count also collapses back.
        let final_masks = timeline.samples.last().unwrap().mask_count;
        assert!(
            final_masks < 20,
            "attack masks should expire: {final_masks}"
        );
    }

    #[test]
    fn masks_grow_during_attack() {
        let (mut runner, attack) = setup(Scenario::SpDp);
        let timeline = runner.run(&attack, 70.0);
        let peak = timeline.samples.iter().map(|s| s.mask_count).max().unwrap();
        assert!(peak > 100, "SpDp should spawn >100 masks, got {peak}");
    }

    #[test]
    fn guarded_run_keeps_victim_fast() {
        use tse_mitigation::guard::{GuardConfig, MfcGuard};
        let (runner, attack) = setup(Scenario::SipDp);
        let mut runner = runner.with_guard(MfcGuard::new(GuardConfig {
            interval: 10.0,
            mask_threshold: 30,
            ..GuardConfig::default()
        }));
        let timeline = runner.run(&attack, 90.0);
        // With the guard wiping drop entries every 10 s, the victim's average rate during
        // the attack stays much higher than the unguarded run.
        let during = timeline.mean_total_between(45.0, 59.0);
        assert!(
            during > 5.0,
            "guarded victim should keep most of its throughput: {during}"
        );
    }

    #[test]
    fn inactive_victims_report_zero() {
        let schema = FieldSchema::ovs_ipv4();
        let table = Scenario::Dp.flow_table(&schema);
        let victims =
            vec![VictimFlow::iperf_udp("late", 1, VICTIM_IP, 1.0).active_between(30.0, 60.0)];
        let mut runner = ExperimentRunner::new(Datapath::new(table), victims, OffloadConfig::udp());
        let timeline = runner.run(&AttackTrace::default(), 40.0);
        assert_eq!(timeline.samples[10].total_victim_gbps(), 0.0);
        assert!(timeline.samples[35].total_victim_gbps() > 0.5);
    }

    #[test]
    fn render_table_has_header_and_rows() {
        let (mut runner, attack) = setup(Scenario::Dp);
        let timeline = runner.run(&attack, 5.0);
        let table = timeline.render_table();
        assert!(table.starts_with("time_s"));
        assert_eq!(table.lines().count(), 6);
        assert!(table.contains("mfc_masks"));
    }
}
