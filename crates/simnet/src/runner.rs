//! The timeline experiment runner: an event-driven loop over composable traffic
//! sources sharing one datapath, sampled once per second — the machinery behind
//! Fig. 8a/8b/8c and any mix the streaming API can express.
//!
//! The runner drains a [`TrafficMix`] one sample interval at a time. Packet events
//! (attack traffic) are low-rate and are pushed through the datapath in timestamped
//! [`Datapath::process_timed_batch`] chunks (they are what mutates the cache). Victim
//! flows are multi-gigabit, so simulating them per packet would be pointless; instead
//! each victim source emits one mid-interval *probe* event per interval (which also
//! keeps the victim's megaflow entry alive, exactly like the real traffic would), the
//! runner reads off the per-invocation cost, and converts the CPU budget left over from
//! attack processing into achieved victim throughput — attributed per source in the
//! [`TimelineSample`]s.
//!
//! [`ExperimentRunner::run`] is the single-attack-trace entry point the original
//! figure experiments use; it is a thin shim that wraps the trace and the stored
//! victims into a [`TrafficMix`] and produces a timeline identical to the
//! pre-streaming runner (asserted bit-for-bit by `tests/golden_runner_parity.rs`).

use tse_attack::source::{EventPayload, SourceRole, TrafficEvent, TrafficMix};
use tse_attack::trace::AttackTrace;
use tse_classifier::backend::FastPathBackend;
use tse_classifier::flowtable::FlowTable;
use tse_classifier::tss::TupleSpace;
use tse_mitigation::guard::{GuardMitigation, MfcGuard};
use tse_mitigation::stack::{Mitigation, MitigationAction, MitigationCtx, MitigationStack};
use tse_packet::fields::Key;
use tse_packet::wire::WireFault;
use tse_switch::datapath::Datapath;
use tse_switch::exec::ShardExecutor;
use tse_switch::pmd::{Prepartition, ShardedDatapath, SteeringView};

use crate::offload::OffloadConfig;
use crate::telemetry::{TelemetryConfig, TelemetryStore};
use crate::traffic::{VictimFlow, VictimSource};

/// One per-interval sample of the experiment timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSample {
    /// Interval start time, seconds.
    pub time: f64,
    /// Achieved throughput of each victim flow, Gbps (0 when the flow is inactive),
    /// in the order of [`Timeline::victim_names`].
    pub victim_gbps: Vec<f64>,
    /// Attack packets sent during this interval (all attacker sources combined).
    pub attacker_pps: f64,
    /// Attack packets per second delivered by each attacker source during this
    /// interval, in the order of [`Timeline::attacker_names`].
    pub attacker_pps_by_source: Vec<f64>,
    /// Benign background packets per second replayed through the datapath during this
    /// interval ([`SourceRole::Background`] sources — e.g. tenant flow churn). The
    /// packets consume CPU like any other traffic but are attributed to no attacker
    /// series (0.0 in every mix without background sources).
    pub background_pps: f64,
    /// Raw frames per second the wire parser could not turn into a classifiable key
    /// this interval ([`EventPayload::Malformed`] events — truncated/garbled frames or
    /// an address family the installed table cannot express). Each is charged to
    /// shard 0, the ingestion point, and counted here rather than in any attacker
    /// series (always 0.0 for key-level sources, which cannot emit malformed events).
    pub malformed_pps: f64,
    /// Megaflow masks at the end of the interval (all shards combined).
    pub mask_count: usize,
    /// Megaflow entries at the end of the interval (all shards combined).
    pub entry_count: usize,
    /// Masks scanned by a victim fast-path lookup during this interval (0 if no victim
    /// is active).
    pub victim_masks_scanned: usize,
    /// Megaflow masks per datapath shard at the end of the interval (a singleton for
    /// the default 1-shard runner; sums to [`TimelineSample::mask_count`]).
    pub shard_masks: Vec<usize>,
    /// Megaflow entries per datapath shard at the end of the interval.
    pub shard_entries: Vec<usize>,
    /// Attack packets per second delivered to each shard during this interval — the
    /// shard-local blast radius series.
    pub shard_attacker_pps: Vec<f64>,
    /// What the mitigation stack did at the end of this interval, in pipeline order
    /// (empty when no stack is attached or no stage intervened). Per-shard actions
    /// carry their shard id ([`MitigationAction::shard`]); a rekey is switch-wide.
    pub mitigation_actions: Vec<MitigationAction>,
}

impl TimelineSample {
    /// Aggregate victim throughput ("Victim SUM" in Fig. 8a).
    pub fn total_victim_gbps(&self) -> f64 {
        self.victim_gbps.iter().sum()
    }

    /// The mitigation actions that apply to `shard` this interval: the shard's own
    /// actions plus switch-wide ones (rekeys), in pipeline order.
    pub fn actions_on_shard(&self, shard: usize) -> Vec<&MitigationAction> {
        self.mitigation_actions
            .iter()
            .filter(|a| a.shard().map(|s| s == shard).unwrap_or(true))
            .collect()
    }
}

/// A complete experiment timeline.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Victim source names, in the order of [`TimelineSample::victim_gbps`].
    pub victim_names: Vec<String>,
    /// Attacker source names, in the order of
    /// [`TimelineSample::attacker_pps_by_source`].
    pub attacker_names: Vec<String>,
    /// Number of datapath shards the experiment ran over (1 for the monolithic runner).
    pub shard_count: usize,
    /// Per-second samples.
    pub samples: Vec<TimelineSample>,
}

impl Timeline {
    /// Minimum aggregate victim throughput over a time window (0.0 for an empty or
    /// out-of-range window — not `+∞`, which would poison downstream JSON/metrics).
    pub fn min_total_between(&self, start: f64, stop: f64) -> f64 {
        let min = self
            .samples
            .iter()
            .filter(|s| s.time >= start && s.time < stop)
            .map(TimelineSample::total_victim_gbps)
            .fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            min
        } else {
            0.0
        }
    }

    /// Mean aggregate victim throughput over a time window.
    pub fn mean_total_between(&self, start: f64, stop: f64) -> f64 {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.time >= start && s.time < stop)
            .map(TimelineSample::total_victim_gbps)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Mean delivered rate of one attacker source (by label) over a time window, pps.
    pub fn mean_attacker_pps_between(&self, label: &str, start: f64, stop: f64) -> f64 {
        let Some(idx) = self.attacker_names.iter().position(|n| n == label) else {
            return 0.0;
        };
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.time >= start && s.time < stop)
            // Defensive: a hand-built (or spill-reloaded) sample may carry fewer
            // per-source entries than the timeline has attacker names.
            .map(|s| s.attacker_pps_by_source.get(idx).copied().unwrap_or(0.0))
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Render the timeline as an aligned text table (one row per second), the textual
    /// equivalent of the Fig. 8 plots. With more than one attacker source, a delivered
    /// pps column is appended per attacker; with more than one datapath shard, a
    /// per-shard mask-count column is appended per shard (single-shard output is
    /// unchanged from the monolithic runner's).
    pub fn render_table(&self) -> String {
        let multi_attacker = self.attacker_names.len() > 1;
        let multi_shard = self.shard_count > 1;
        let mut out = String::new();
        out.push_str("time_s");
        for name in &self.victim_names {
            out.push_str(&format!("\t{name}_gbps"));
        }
        out.push_str("\tvictim_sum_gbps\tattack_pps\tmfc_masks\tmfc_entries");
        if multi_attacker {
            for name in &self.attacker_names {
                out.push_str(&format!("\t{name}_pps"));
            }
        }
        if multi_shard {
            for i in 0..self.shard_count {
                out.push_str(&format!("\tshard{i}_masks"));
            }
        }
        out.push('\n');
        for s in &self.samples {
            out.push_str(&format!("{:6.0}", s.time));
            for v in &s.victim_gbps {
                out.push_str(&format!("\t{v:9.3}"));
            }
            out.push_str(&format!(
                "\t{:9.3}\t{:10.0}\t{:9}\t{:11}",
                s.total_victim_gbps(),
                s.attacker_pps,
                s.mask_count,
                s.entry_count
            ));
            if multi_attacker {
                for pps in &s.attacker_pps_by_source {
                    out.push_str(&format!("\t{pps:10.0}"));
                }
            }
            if multi_shard {
                for m in &s.shard_masks {
                    out.push_str(&format!("\t{m:12}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// The experiment runner, generic over the datapath's fast-path backend — a Fig. 8
/// timeline can be produced for the TSS cache (the default) or for any of the §7
/// attack-immune baselines, which is how the backend comparison of Fig. 9 is run
/// through the real pipeline instead of bare classify loops.
///
/// The datapath under test is a [`ShardedDatapath`]: [`ExperimentRunner::new`] wraps a
/// plain [`Datapath`] as a single shard (bit-for-bit the monolithic behaviour, see
/// `tests/golden_runner_parity.rs`), while [`ExperimentRunner::sharded`] runs a true
/// multi-PMD experiment — every shard owns a private cache *and a private CPU budget*,
/// so an attack only costs the victims steered to the shards it actually hits.
///
/// Workloads are composed as [`TrafficMix`]es of [`TrafficSource`]s
/// (see [`ExperimentRunner::run_mix`]); [`ExperimentRunner::run`] is the legacy
/// one-trace-plus-stored-victims entry point, now a shim over the mix form.
///
/// [`TrafficSource`]: tse_attack::source::TrafficSource
#[derive(Debug)]
pub struct ExperimentRunner<B: FastPathBackend = TupleSpace> {
    /// The (possibly sharded) hypervisor datapath under test.
    pub datapath: ShardedDatapath<B>,
    /// Victim flows used by the [`ExperimentRunner::run`] shim (wrapped into
    /// [`VictimSource`]s; [`ExperimentRunner::run_mix`] ignores them).
    pub victims: Vec<VictimFlow>,
    /// Victim-side offload configuration (bytes per classifier invocation, line rate).
    pub offload: OffloadConfig,
    /// The ordered mitigation pipeline protecting the datapath, invoked once per
    /// sample interval (empty by default — no defense).
    pub mitigations: MitigationStack<B>,
    /// Sampling/measurement interval in seconds.
    pub sample_interval: f64,
    /// Telemetry recording configuration ([`TelemetryConfig::default`] keeps every
    /// classic short-horizon run inside the hot ring, so the returned [`Timeline`] is
    /// unchanged bit-for-bit; shrink [`TelemetryConfig::hot_capacity`] for hour-long
    /// runs that must hold constant memory).
    pub telemetry_config: TelemetryConfig,
    /// The telemetry store of the most recent `run`/`run_mix`, if any.
    last_telemetry: Option<TelemetryStore>,
    /// Scheduled flow-table replacements `(time, table)`, applied at the start of the
    /// first interval whose start time is ≥ the scheduled time (sorted by time).
    table_updates: Vec<(f64, FlowTable)>,
}

impl<B: FastPathBackend> ExperimentRunner<B> {
    /// Create a runner over a monolithic datapath (wrapped as one shard) with a
    /// 1-second sampling interval and no guard.
    pub fn new(datapath: Datapath<B>, victims: Vec<VictimFlow>, offload: OffloadConfig) -> Self {
        Self::sharded(ShardedDatapath::single(datapath), victims, offload)
    }

    /// Create a runner over a sharded multi-PMD datapath with a 1-second sampling
    /// interval and no guard.
    pub fn sharded(
        datapath: ShardedDatapath<B>,
        victims: Vec<VictimFlow>,
        offload: OffloadConfig,
    ) -> Self {
        ExperimentRunner {
            datapath,
            victims,
            offload,
            mitigations: MitigationStack::new(),
            sample_interval: 1.0,
            telemetry_config: TelemetryConfig::default(),
            last_telemetry: None,
            table_updates: Vec::new(),
        }
    }

    /// Configure telemetry recording (builder form): hot-ring capacity, per-tenant
    /// SLO tracking, pressure-window depth and cold spill. See [`TelemetryStore`].
    pub fn with_telemetry(mut self, config: TelemetryConfig) -> Self {
        self.telemetry_config = config;
        self
    }

    /// Schedule mid-run flow-table replacements (builder form): at the start of the
    /// first sample interval whose start time is ≥ each entry's time, the table is
    /// installed on every shard via [`ShardedDatapath::install_table`] — megaflows
    /// are revalidated against the new ACL and the microflow cache is flushed,
    /// exactly like an OVS controller update. Entries are applied in time order.
    pub fn with_table_updates(mut self, mut updates: Vec<(f64, FlowTable)>) -> Self {
        updates.sort_by(|a, b| a.0.total_cmp(&b.0));
        self.table_updates = updates;
        self
    }

    /// The telemetry store recorded by the most recent [`ExperimentRunner::run`] /
    /// [`ExperimentRunner::run_mix`]: whole-run streaming aggregates, per-tenant SLO
    /// trackers and the hot sample window.
    pub fn last_telemetry(&self) -> Option<&TelemetryStore> {
        self.last_telemetry.as_ref()
    }

    /// Take ownership of the most recent run's telemetry store.
    pub fn take_telemetry(&mut self) -> Option<TelemetryStore> {
        self.last_telemetry.take()
    }

    /// Append a mitigation to the runner's defense pipeline (builder form; stages run
    /// in the order they were added, once per sample interval).
    pub fn with_mitigation(mut self, mitigation: impl Mitigation<B> + Send + 'static) -> Self {
        self.mitigations.push(mitigation);
        self
    }

    /// Select the shard-execution model of the datapath under test (builder form):
    /// [`SequentialExecutor`](tse_switch::exec::SequentialExecutor) by default, a
    /// [`PersistentPoolExecutor`](tse_switch::exec::PersistentPoolExecutor) for
    /// long-lived parked workers (the PMD-thread model — spawn cost paid once), or a
    /// [`ThreadPoolExecutor`](tse_switch::exec::ThreadPoolExecutor) for per-batch
    /// scoped threads. Timelines are bit-for-bit identical on every executor
    /// (`tests/executor_parity.rs`); only wall-clock time changes. On a pooled
    /// executor with a spare worker, [`ExperimentRunner::run_mix`] additionally
    /// pipelines the hot loop: interval *k + 1* is drained and pre-partitioned while
    /// the shards chew interval *k*.
    pub fn with_executor(mut self, executor: impl ShardExecutor + 'static) -> Self {
        self.datapath.set_executor(executor);
        self
    }

    /// Attach an MFCGuard instance — compatibility shim over the mitigation pipeline:
    /// the guard is wrapped as a uniform [`GuardMitigation`] stage, which sweeps every
    /// shard under the guard's configuration exactly as the pre-stack runner's
    /// hard-wired `Option<MfcGuard>` did (asserted bit-for-bit by
    /// `tests/golden_runner_parity.rs`).
    pub fn with_guard(self, guard: MfcGuard) -> Self {
        self.with_mitigation(GuardMitigation::from_guard(guard))
    }

    /// Run the experiment for `duration` seconds against the given attack trace and
    /// the runner's stored victim flows, and return the timeline.
    ///
    /// This is the classic single-attacker entry point; it wraps the trace and victims
    /// into a [`TrafficMix`] and defers to [`ExperimentRunner::run_mix`]. For the
    /// paper's datapath configuration — the kernel datapath, whose experiment configs
    /// leave the microflow cache disabled (`microflow_capacity = 0`, the default) —
    /// the produced timeline is identical bit-for-bit to the pre-streaming runner's
    /// (asserted by `tests/golden_runner_parity.rs`). With a non-zero microflow
    /// capacity the event path diverges slightly: it classifies pre-extracted keys,
    /// which carry no microflow identity and therefore never hit the EMC, whereas the
    /// old per-packet runner could.
    pub fn run(&mut self, attack: &AttackTrace, duration: f64) -> Timeline {
        let schema = self.datapath.table().schema().clone();
        let mut mix = TrafficMix::new();
        for flow in &self.victims {
            mix.push(Box::new(VictimSource::new(
                flow.clone(),
                &schema,
                self.sample_interval,
            )));
        }
        mix.push(Box::new(attack.source("Attacker", &schema)));
        self.run_mix(mix, duration)
    }

    /// Run the experiment for `duration` seconds over an arbitrary [`TrafficMix`] —
    /// any number of attacker sources (materialised traces, lazy generators) and
    /// victim sources, merged by timestamp — and return the timeline.
    ///
    /// Per sample interval `[t, t + dt)` the loop:
    ///
    /// 1. drains all events below `t + dt` from the mix: packet events are replayed
    ///    through [`Datapath::process_timed_batch`] in per-source chunks (merged
    ///    timestamp order, each packet at its own time), probe events are set aside;
    /// 2. runs the idle-expiry sweep at the interval end;
    /// 3. replays the probes: each refreshes its victim's fast-path entry and yields
    ///    the current per-invocation cost under the runner's offload model;
    /// 4. splits the CPU left over from attack processing across the active victims
    ///    (equal shares, one redistribution pass, aggregate line-rate cap);
    /// 5. runs the mitigation pipeline ([`MitigationStack::on_sample`], stages in
    ///    order, each seeing per-shard telemetry for the interval), then emits the
    ///    [`TimelineSample`] with per-attacker delivered-pps attribution and the
    ///    stack's [`MitigationAction`]s.
    ///
    /// Before the first interval the stack's [`Mitigation::on_start`] hooks run with
    /// zeroed telemetry, so defenses that must be armed *during* the first interval
    /// (install quotas) are in force from t = 0; after the last interval the
    /// [`Mitigation::on_finish`] hooks disarm whatever per-shard state the stages
    /// installed, so a reused runner or datapath leaves the run undefended.
    ///
    /// The loop is double-buffered: while the shards process interval *k*'s largest
    /// chunk, a spare executor worker drains interval *k + 1* from the mix and
    /// pre-partitions its chunks against a [`SteeringView`] snapshot
    /// ([`ShardedDatapath::process_timed_batch_with`]). Draining never touches the
    /// datapath and a partition staled by a mitigation rekey is recomputed at
    /// dispatch, so the timeline is bit-for-bit the unpipelined one on every executor
    /// — on the [`SequentialExecutor`](tse_switch::exec::SequentialExecutor) the
    /// "overlap" simply runs first.
    pub fn run_mix(&mut self, mut mix: TrafficMix<'_>, duration: f64) -> Timeline {
        let dt = self.sample_interval;
        let roles = mix.roles();
        let labels = mix.labels();
        // Map each source index to its victim/attacker slot.
        let mut victim_slot = vec![usize::MAX; roles.len()];
        let mut attacker_slot = vec![usize::MAX; roles.len()];
        let mut background_src = vec![false; roles.len()];
        let mut victim_names = Vec::new();
        let mut attacker_names = Vec::new();
        for (i, role) in roles.iter().enumerate() {
            match role {
                SourceRole::Victim => {
                    victim_slot[i] = victim_names.len();
                    victim_names.push(labels[i].clone());
                }
                SourceRole::Attacker => {
                    attacker_slot[i] = attacker_names.len();
                    attacker_names.push(labels[i].clone());
                }
                SourceRole::Background => {
                    background_src[i] = true;
                }
            }
        }
        let n_victims = victim_names.len();
        let n_attackers = attacker_names.len();
        let n_shards = self.datapath.shard_count();
        let mut store = TelemetryStore::new(
            self.telemetry_config.clone(),
            dt,
            victim_names,
            attacker_names,
            n_shards,
        );
        let mut update_cursor = 0usize;
        let steps = (duration / dt).ceil() as usize;
        // Double buffers of the pipelined drain: `batch_cur` holds the interval being
        // processed, `batch_next` is filled (and pre-partitioned) by the overlap job.
        // Both recycle their chunk/probe/partition buffers across the whole run.
        let mut batch_cur = IntervalBatch::default();
        let mut batch_next = IntervalBatch::default();
        if !self.mitigations.is_empty() {
            let zeros = vec![0.0f64; n_shards];
            let mut ctx = MitigationCtx {
                datapath: &mut self.datapath,
                now: 0.0,
                dt,
                shard_attack_pps: &zeros,
                shard_delivered_pps: &zeros,
                shard_busy_seconds: &zeros,
                pressure: store.pressure(),
            };
            self.mitigations.on_start(&mut ctx);
        }
        // Prefetch interval 0 (sequentially — there is nothing to overlap with yet);
        // every later interval is drained by the previous one's overlap job.
        if steps > 0 {
            drain_interval(&mut mix, 0.0, dt, &mut batch_cur);
        }
        for step in 0..steps {
            let t = step as f64 * dt;
            let t_end = t + dt;

            // 0. Apply any flow-table replacement scheduled at or before this
            //    interval's start — the controller-side half of tenant churn.
            while update_cursor < self.table_updates.len()
                && self.table_updates[update_cursor].0 <= t
            {
                let table = self.table_updates[update_cursor].1.clone();
                self.datapath.install_table(table);
                update_cursor += 1;
            }

            // 1. Replay this interval's packet chunks (drained ahead of time — by the
            //    previous interval's overlap job, or by the prefetch for step 0) in
            //    merged timestamp order. Attack cost and packet counts are tracked per
            //    shard: every shard is a PMD thread with a private CPU budget. While
            //    the shards chew the largest chunk, a spare executor worker drains and
            //    pre-partitions interval k + 1.
            let mut attack_packets = 0u64;
            let mut background_packets = 0u64;
            let mut shard_busy = vec![0.0f64; n_shards];
            let mut shard_packets = vec![0u64; n_shards];
            let mut per_attacker = vec![0u64; n_attackers];
            // The overlap job rides the chunk with the most events (deterministic:
            // first on ties) — the longest window to hide the drain in. On the last
            // interval there is nothing left to drain.
            let overlap_chunk = if step + 1 < steps {
                (0..batch_cur.n_chunks)
                    .max_by_key(|&i| (batch_cur.chunks[i].events.len(), usize::MAX - i))
            } else {
                None
            };
            if overlap_chunk.is_none() && step + 1 < steps {
                // A packet-less interval (probes only): nothing to hide the drain
                // behind, so drain inline.
                let view = self.datapath.steering_view();
                drain_interval(&mut mix, t_end, t_end + dt, &mut batch_next);
                batch_next.prepartition(&view);
            }
            for i in 0..batch_cur.n_chunks {
                let chunk = &mut batch_cur.chunks[i];
                let src = chunk.src;
                // Disjoint field borrows: the events slice feeds the shards while the
                // partition is consumed (and recomputed if a rekey staled it).
                let SourceChunk { events, prep, .. } = chunk;
                let report = if overlap_chunk == Some(i) {
                    let view = self.datapath.steering_view();
                    let mix = &mut mix;
                    let next = &mut batch_next;
                    let (report, ()) =
                        self.datapath
                            .process_timed_batch_with(events, prep, move || {
                                drain_interval(mix, t_end, t_end + dt, next);
                                next.prepartition(&view);
                            });
                    report
                } else {
                    self.datapath
                        .process_timed_batch_prepartitioned(events, prep)
                };
                // A chunk belongs to one source, so its packets are all-attack or
                // all-background: background chunks charge shard CPU like any traffic
                // but stay out of the attack-attribution series.
                let is_background = background_src[src];
                for (s, r) in report.per_shard.iter().enumerate() {
                    shard_busy[s] += r.total_cost;
                    if !is_background {
                        shard_packets[s] += r.processed as u64;
                    }
                }
                let n = events.len() as u64;
                if attacker_slot[src] != usize::MAX {
                    per_attacker[attacker_slot[src]] += n;
                }
                if is_background {
                    background_packets += n;
                } else {
                    attack_packets += n;
                }
            }
            // Malformed frames (wire-level sources only): each is charged to shard 0 —
            // the ingestion point, matching `ShardedDatapath::process_wire` — at its
            // own timestamp, consuming shard 0's CPU budget without joining any
            // attack-attribution series.
            let malformed_frames = batch_cur.faults.len() as u64;
            for &(fault, bytes, time) in &batch_cur.faults {
                let out = self.datapath.note_wire_fault(fault, bytes, time);
                shard_busy[0] += out.cost;
            }
            self.datapath.maybe_expire(t_end);

            // 2. Replay the probes (already in time-then-insertion order): refresh each
            //    active victim's megaflow entry *on the shard it is steered to* and
            //    read its current per-invocation cost. Work units go through the
            //    backend's cost hook, and the scan is re-priced with this experiment's
            //    offload cost model (the datapath's own model prices the attack
            //    packets).
            let mut victim_costs: Vec<Option<f64>> = vec![None; n_victims];
            let mut victim_offered = vec![0.0f64; n_victims];
            let mut victim_shard = vec![0usize; n_victims];
            let mut victim_masks_scanned = 0;
            let mut shard_probes = vec![0u64; n_shards];
            for (src, ev) in &batch_cur.probes {
                let EventPayload::Probe { offered_gbps } = ev.payload else {
                    continue;
                };
                if victim_slot[*src] == usize::MAX {
                    continue; // probe from a non-victim source: nothing to attribute
                }
                let slot = victim_slot[*src];
                let shard = self.datapath.shard_of_key(&ev.key);
                shard_probes[shard] += 1;
                let outcome = self
                    .datapath
                    .shard_mut(shard)
                    .process_key(&ev.key, ev.bytes, ev.time);
                victim_masks_scanned = victim_masks_scanned.max(outcome.masks_scanned);
                let units = self
                    .datapath
                    .shard(shard)
                    .megaflow()
                    .cost_units(outcome.masks_scanned);
                let cost = match outcome.path {
                    tse_switch::stats::PathTaken::SlowPath => self.offload.cost.slow_path(units),
                    tse_switch::stats::PathTaken::Microflow => self.offload.cost.microflow(),
                    _ => self.offload.cost.fast_path(units),
                };
                victim_costs[slot] = Some(cost);
                victim_offered[slot] = offered_gbps;
                victim_shard[slot] = shard;
            }

            // 3. Convert the CPU left after attack processing into victim throughput —
            //    per shard: each PMD splits *its own* leftover cycles across the
            //    victims steered to it, so an attack pinned to one shard starves only
            //    that shard's victims.
            let mut victim_gbps = vec![0.0; n_victims];
            for (shard, busy) in shard_busy.iter().enumerate() {
                let available_cpu = (dt - busy).max(0.0);
                let active: Vec<usize> = victim_costs
                    .iter()
                    .enumerate()
                    .filter_map(|(i, c)| c.map(|_| i))
                    .filter(|&i| victim_shard[i] == shard)
                    .collect();
                if active.is_empty() {
                    continue;
                }
                let share = available_cpu / active.len() as f64;
                let mut leftover = 0.0;
                for &i in &active {
                    let cost = victim_costs[i].expect("active flow has a cost");
                    let offered_pps =
                        victim_offered[i] * 1e9 / 8.0 / self.offload.bytes_per_invocation as f64;
                    let achievable_pps = share / cost / dt;
                    let pps = achievable_pps.min(offered_pps);
                    leftover += (achievable_pps - pps).max(0.0) * cost * dt;
                    victim_gbps[i] = pps * self.offload.bytes_per_invocation as f64 * 8.0 / 1e9;
                }
                // One redistribution pass: give unused CPU to still-limited flows on
                // the same shard.
                if leftover > 1e-12 {
                    let limited: Vec<usize> = active
                        .iter()
                        .copied()
                        .filter(|&i| {
                            victim_gbps[i] + 1e-9
                                < victim_offered[i].min(self.offload.line_rate_gbps)
                        })
                        .collect();
                    if !limited.is_empty() {
                        let extra = leftover / limited.len() as f64;
                        for &i in &limited {
                            let cost = victim_costs[i].expect("active");
                            let extra_gbps =
                                extra / cost / dt * self.offload.bytes_per_invocation as f64 * 8.0
                                    / 1e9;
                            victim_gbps[i] = (victim_gbps[i] + extra_gbps).min(victim_offered[i]);
                        }
                    }
                }
            }
            // Line-rate cap on the aggregate: the NIC is shared by all shards.
            let total: f64 = victim_gbps.iter().sum();
            if total > self.offload.line_rate_gbps {
                let scale = self.offload.line_rate_gbps / total;
                for v in &mut victim_gbps {
                    *v *= scale;
                }
            }

            // 4. Run the mitigation pipeline — each stage sees this interval's
            //    per-shard telemetry (including the rolling pressure window, updated
            //    first so adaptive stages see the interval just measured) and the
            //    datapath as left by the stages before it.
            let shard_attacker_pps: Vec<f64> =
                shard_packets.iter().map(|&c| c as f64 / dt).collect();
            store.note_pressure(&shard_attacker_pps);
            let mitigation_actions = if self.mitigations.is_empty() {
                Vec::new()
            } else {
                let delivered_pps: Vec<f64> = shard_packets
                    .iter()
                    .zip(&shard_probes)
                    .map(|(&pkts, &probes)| (pkts + probes) as f64 / dt)
                    .collect();
                let mut ctx = MitigationCtx {
                    datapath: &mut self.datapath,
                    now: t_end,
                    dt,
                    shard_attack_pps: &shard_attacker_pps,
                    shard_delivered_pps: &delivered_pps,
                    shard_busy_seconds: &shard_busy,
                    pressure: store.pressure(),
                };
                self.mitigations.on_sample(&mut ctx)
            };

            // 5. Record into the telemetry store: the hot ring keeps the sample in
            //    full detail (aging into the cold aggregates past capacity), SLO
            //    trackers fold in the delivered rates of the victims active this
            //    interval.
            let victim_active: Vec<bool> = victim_costs.iter().map(Option::is_some).collect();
            store.record(
                TimelineSample {
                    time: t,
                    victim_gbps,
                    attacker_pps: attack_packets as f64 / dt,
                    attacker_pps_by_source: per_attacker.iter().map(|&c| c as f64 / dt).collect(),
                    background_pps: background_packets as f64 / dt,
                    malformed_pps: malformed_frames as f64 / dt,
                    mask_count: self.datapath.mask_count(),
                    entry_count: self.datapath.entry_count(),
                    victim_masks_scanned,
                    shard_masks: self.datapath.shard_mask_counts(),
                    shard_entries: self.datapath.shard_entry_counts(),
                    shard_attacker_pps,
                    mitigation_actions,
                },
                &victim_active,
            );

            // 6. Flip the double buffer: the interval the overlap job just drained
            //    becomes current; its own buffers are recycled for interval k + 2.
            std::mem::swap(&mut batch_cur, &mut batch_next);
        }
        if !self.mitigations.is_empty() {
            // Teardown: stages disarm whatever per-shard state they installed (e.g.
            // upcall quotas), so a reused runner/datapath leaves the run undefended.
            let zeros = vec![0.0f64; n_shards];
            let mut ctx = MitigationCtx {
                datapath: &mut self.datapath,
                now: steps as f64 * dt,
                dt,
                shard_attack_pps: &zeros,
                shard_delivered_pps: &zeros,
                shard_busy_seconds: &zeros,
                pressure: store.pressure(),
            };
            self.mitigations.on_finish(&mut ctx);
        }
        store.finish();
        // The returned timeline is the store's recent window — bit-for-bit the classic
        // unbounded timeline whenever the horizon fits the hot ring (the default for
        // every short-horizon experiment; `tests/golden_runner_parity.rs`).
        let timeline = store.recent_timeline();
        self.last_telemetry = Some(store);
        timeline
    }
}

/// One source's contiguous packet run within an interval, plus its shard partition.
///
/// The buffers (events and partition scratch) are recycled across intervals — a chunk
/// slot that existed in a previous interval reuses its allocations.
#[derive(Debug, Default)]
struct SourceChunk {
    /// Index of the source the packets came from.
    src: usize,
    /// The packets, in timestamp order.
    events: Vec<(Key, usize, f64)>,
    /// Shard partition of `events`, computed by the overlap job against a steering
    /// snapshot; transparently recomputed at dispatch if a rekey staled it.
    prep: Prepartition,
}

/// One sample interval's worth of drained traffic: packet chunks (per-source runs, in
/// merged timestamp order) and probe events. Two of these double-buffer the pipelined
/// [`ExperimentRunner::run_mix`] loop.
#[derive(Debug, Default)]
struct IntervalBatch {
    /// Chunk slots; only the first [`IntervalBatch::n_chunks`] are live this interval
    /// (the rest are kept for their buffer capacity).
    chunks: Vec<SourceChunk>,
    /// Number of live chunks.
    n_chunks: usize,
    /// Probe events, in drain order.
    probes: Vec<(usize, TrafficEvent)>,
    /// Malformed-frame events as `(fault, wire bytes, time)`, in drain order. Charged
    /// to shard 0 (the ingestion point) when the interval is processed.
    faults: Vec<(WireFault, usize, f64)>,
}

impl IntervalBatch {
    /// Open a fresh chunk for `src` (recycling a retired slot's buffers if one is
    /// available) and return it.
    fn open_chunk(&mut self, src: usize) -> &mut SourceChunk {
        if self.n_chunks == self.chunks.len() {
            self.chunks.push(SourceChunk::default());
        }
        let chunk = &mut self.chunks[self.n_chunks];
        self.n_chunks += 1;
        chunk.src = src;
        chunk.events.clear();
        chunk.prep.clear();
        chunk
    }

    /// Partition every live chunk against the steering snapshot `view`. With a single
    /// shard there is nothing to partition (the dispatch fast path ignores it).
    fn prepartition(&mut self, view: &SteeringView) {
        if view.shard_count() == 1 {
            return;
        }
        for chunk in &mut self.chunks[..self.n_chunks] {
            chunk.prep.compute(view, &chunk.events);
        }
    }
}

/// Drain every event of `[t, t_end)` from the mix into `batch`: packet events append
/// to per-source chunks (a new chunk opens whenever the source changes — chunks
/// preserve merged timestamp order), probe events are set aside verbatim, and
/// malformed-frame events land in the faults list (they carry no steerable key, so
/// they never join a chunk). Packet and malformed events that predate the window
/// (possible in the very first interval) are consumed without being recorded, like
/// the classic replay loop; probes are always kept.
///
/// This touches only the mix and the batch — never the datapath — which is what lets
/// the pipelined runner execute it on a spare worker while the shards are busy.
fn drain_interval(mix: &mut TrafficMix<'_>, t: f64, t_end: f64, batch: &mut IntervalBatch) {
    batch.n_chunks = 0;
    batch.probes.clear();
    batch.faults.clear();
    let mut chunk_src = usize::MAX;
    while let Some((src, ev)) = mix.next_before(t_end) {
        match ev.payload {
            EventPayload::Packet => {
                if ev.time < t {
                    continue;
                }
                if src != chunk_src {
                    batch.open_chunk(src);
                    chunk_src = src;
                }
                batch.chunks[batch.n_chunks - 1]
                    .events
                    .push((ev.key, ev.bytes, ev.time));
            }
            EventPayload::Probe { .. } => batch.probes.push((src, ev)),
            EventPayload::Malformed { fault } => {
                if ev.time < t {
                    continue;
                }
                batch.faults.push((fault, ev.bytes, ev.time));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tse_attack::colocated::scenario_trace;
    use tse_attack::scenarios::Scenario;
    use tse_attack::source::AttackGenerator;
    use tse_attack::trace::AttackTrace;
    use tse_packet::fields::FieldSchema;
    use tse_switch::datapath::Datapath;

    const VICTIM_IP: u32 = 0x0a00_0063;

    fn setup(scenario: Scenario) -> (ExperimentRunner, AttackTrace) {
        let schema = FieldSchema::ovs_ipv4();
        let table = scenario.flow_table(&schema);
        let datapath = Datapath::new(table);
        let victims = vec![VictimFlow::iperf_tcp(
            "Victim 1", 0x0a000005, VICTIM_IP, 10.0,
        )];
        let runner = ExperimentRunner::new(datapath, victims, OffloadConfig::gro_off());
        // Attack: co-located trace at 100 pps between t=30 s and t≈when the trace ends.
        let mut rng = StdRng::seed_from_u64(99);
        let keys = scenario_trace(&schema, scenario, &schema.zero_value());
        let trace = AttackTrace::from_keys_cyclic(&mut rng, &schema, &keys, 100.0, 30.0, 3000);
        (runner, trace)
    }

    #[test]
    fn victim_runs_at_baseline_before_attack_and_degrades_during() {
        let (mut runner, attack) = setup(Scenario::SipDp);
        let timeline = runner.run(&attack, 90.0);
        assert_eq!(timeline.samples.len(), 90);
        let before = timeline.mean_total_between(5.0, 29.0);
        let during = timeline.mean_total_between(45.0, 59.0);
        assert!(
            before > 8.0,
            "baseline should be near 10 Gbps, got {before}"
        );
        assert!(
            during < before * 0.25,
            "SipDp attack should cut throughput by >75 %: {before} -> {during}"
        );
    }

    #[test]
    fn victim_recovers_after_idle_timeout() {
        let (mut runner, attack) = setup(Scenario::SipDp);
        // Attack packets span t=30..60 s (3000 packets at 100 pps).
        let timeline = runner.run(&attack, 90.0);
        let recovered = timeline.mean_total_between(75.0, 89.0);
        assert!(
            recovered > 8.0,
            "victim should recover ~10 s after the attack stops: {recovered}"
        );
        // Mask count also collapses back.
        let final_masks = timeline.samples.last().unwrap().mask_count;
        assert!(
            final_masks < 20,
            "attack masks should expire: {final_masks}"
        );
    }

    #[test]
    fn masks_grow_during_attack() {
        let (mut runner, attack) = setup(Scenario::SpDp);
        let timeline = runner.run(&attack, 70.0);
        let peak = timeline.samples.iter().map(|s| s.mask_count).max().unwrap();
        assert!(peak > 100, "SpDp should spawn >100 masks, got {peak}");
    }

    #[test]
    fn guarded_run_keeps_victim_fast() {
        use tse_mitigation::guard::{GuardConfig, MfcGuard};
        let (runner, attack) = setup(Scenario::SipDp);
        let mut runner = runner.with_guard(MfcGuard::new(GuardConfig {
            interval: 10.0,
            mask_threshold: 30,
            ..GuardConfig::default()
        }));
        let timeline = runner.run(&attack, 90.0);
        // With the guard wiping drop entries every 10 s, the victim's average rate during
        // the attack stays much higher than the unguarded run.
        let during = timeline.mean_total_between(45.0, 59.0);
        assert!(
            during > 5.0,
            "guarded victim should keep most of its throughput: {during}"
        );
    }

    #[test]
    fn mitigation_actions_land_in_the_timeline() {
        use tse_mitigation::guard::{GuardConfig, GuardMitigation};
        use tse_mitigation::stack::MitigationAction;
        let (runner, attack) = setup(Scenario::SipDp);
        let mut runner = runner.with_mitigation(GuardMitigation::new(GuardConfig {
            interval: 10.0,
            mask_threshold: 30,
            ..GuardConfig::default()
        }));
        assert_eq!(runner.mitigations.names(), vec!["mfcguard"]);
        let timeline = runner.run(&attack, 60.0);
        // Guard passes fire once per 10 s interval, one report per shard (1 shard
        // here); during the attack they actually sweep.
        let sweeps: Vec<&MitigationAction> = timeline
            .samples
            .iter()
            .flat_map(|s| s.mitigation_actions.iter())
            .collect();
        assert!(!sweeps.is_empty());
        let swept_entries: usize = sweeps
            .iter()
            .map(|a| match a {
                MitigationAction::GuardSweep(r) => r.entries_removed,
                other => panic!("unexpected action {other:?}"),
            })
            .sum();
        assert!(
            swept_entries > 50,
            "guard swept the explosion: {swept_entries}"
        );
        // Shard attribution helper: every action here applies to shard 0.
        for s in &timeline.samples {
            assert_eq!(s.actions_on_shard(0).len(), s.mitigation_actions.len());
        }
        // An undefended runner reports no actions.
        let (mut plain, attack) = setup(Scenario::SipDp);
        let tl = plain.run(&attack, 20.0);
        assert!(tl.samples.iter().all(|s| s.mitigation_actions.is_empty()));
    }

    #[test]
    fn reused_runner_stays_defended_and_restores_steering() {
        use tse_mitigation::defenses::RssKeyRandomizer;
        use tse_mitigation::guard::{GuardConfig, GuardMitigation};
        use tse_mitigation::stack::MitigationAction;
        let (runner, attack) = setup(Scenario::SipDp);
        let mut runner = runner
            .with_mitigation(GuardMitigation::new(GuardConfig {
                interval: 10.0,
                mask_threshold: 30,
                // Suppression persists in the slow path by design (the observed OVS
                // behaviour), which would leave run 2 with nothing to sweep; disable
                // it so the second run re-explodes and must be re-defended.
                suppress_reinstall: false,
                ..GuardConfig::default()
            }))
            .with_mitigation(RssKeyRandomizer::new(15.0, 9));
        let count = |tl: &Timeline| {
            let mut sweeps = 0;
            let mut rekeys = 0;
            for s in &tl.samples {
                for a in &s.mitigation_actions {
                    match a {
                        MitigationAction::GuardSweep(r) if r.entries_removed > 0 => sweeps += 1,
                        MitigationAction::Rekeyed { .. } => rekeys += 1,
                        _ => {}
                    }
                }
            }
            (sweeps, rekeys)
        };
        let tl1 = runner.run(&attack, 60.0);
        let (sweeps1, rekeys1) = count(&tl1);
        assert!(
            sweeps1 > 0 && rekeys1 > 0,
            "run 1 defends: {sweeps1}/{rekeys1}"
        );
        // The rotation must not outlive the run: steering is back on the entry key.
        assert_eq!(
            runner.datapath.hash_key(),
            tse_packet::rss::DEFAULT_HASH_KEY
        );
        // Run 2 on the same runner: the stages re-arm (interval gates and the rekey
        // schedule re-anchor at the new t = 0) instead of staying silently inert.
        let tl2 = runner.run(&attack, 60.0);
        let (sweeps2, rekeys2) = count(&tl2);
        assert!(
            sweeps2 > 0 && rekeys2 > 0,
            "run 2 must stay defended: {sweeps2} sweeps, {rekeys2} rekeys"
        );
        assert_eq!(
            rekeys2, rekeys1,
            "same schedule, same horizon, same rotations"
        );
    }

    #[test]
    fn upcall_quota_is_disarmed_after_the_run() {
        use tse_mitigation::UpcallLimiter;
        let (runner, attack) = setup(Scenario::Dp);
        let mut runner = runner.with_mitigation(UpcallLimiter::new(3));
        runner.run(&attack, 40.0);
        assert_eq!(
            runner
                .datapath
                .shard(0)
                .slow_path()
                .install_quota_remaining(),
            None,
            "on_finish must remove the install quota from every shard"
        );
    }

    #[test]
    fn inactive_victims_report_zero() {
        let schema = FieldSchema::ovs_ipv4();
        let table = Scenario::Dp.flow_table(&schema);
        let victims =
            vec![VictimFlow::iperf_udp("late", 1, VICTIM_IP, 1.0).active_between(30.0, 60.0)];
        let mut runner = ExperimentRunner::new(Datapath::new(table), victims, OffloadConfig::udp());
        let timeline = runner.run(&AttackTrace::default(), 40.0);
        assert_eq!(timeline.samples[10].total_victim_gbps(), 0.0);
        assert!(timeline.samples[35].total_victim_gbps() > 0.5);
    }

    #[test]
    fn timeline_window_accessors_are_total_on_degenerate_input() {
        // Empty timeline: every window accessor answers 0.0, never NaN/∞/panic.
        let empty = Timeline::default();
        assert_eq!(empty.min_total_between(0.0, 100.0), 0.0);
        assert_eq!(empty.mean_total_between(0.0, 100.0), 0.0);
        assert_eq!(empty.mean_attacker_pps_between("atk", 0.0, 100.0), 0.0);

        let tl = Timeline {
            victim_names: vec!["v".into()],
            attacker_names: vec!["atk".into()],
            shard_count: 1,
            samples: vec![TimelineSample {
                time: 0.0,
                victim_gbps: vec![1.0],
                attacker_pps: 50.0,
                // Deliberately narrower than `attacker_names`, as a hand-built or
                // spill-reloaded sample may be.
                attacker_pps_by_source: Vec::new(),
                background_pps: 0.0,
                malformed_pps: 0.0,
                mask_count: 0,
                entry_count: 0,
                victim_masks_scanned: 0,
                shard_masks: vec![0],
                shard_entries: vec![0],
                shard_attacker_pps: vec![50.0],
                mitigation_actions: Vec::new(),
            }],
        };
        // Out-of-range and inverted windows select nothing and answer 0.0.
        assert_eq!(tl.min_total_between(10.0, 20.0), 0.0);
        assert_eq!(tl.min_total_between(5.0, 1.0), 0.0);
        assert_eq!(tl.mean_total_between(10.0, 20.0), 0.0);
        // Unknown labels and missing per-source entries degrade to 0.0, not a panic.
        assert_eq!(tl.mean_attacker_pps_between("nope", 0.0, 1.0), 0.0);
        assert_eq!(tl.mean_attacker_pps_between("atk", 0.0, 1.0), 0.0);
        // A well-formed window still answers exactly.
        assert_eq!(tl.min_total_between(0.0, 1.0), 1.0);
        assert_eq!(tl.mean_total_between(0.0, 1.0), 1.0);
    }

    #[test]
    fn render_table_has_header_and_rows() {
        let (mut runner, attack) = setup(Scenario::Dp);
        let timeline = runner.run(&attack, 5.0);
        let table = timeline.render_table();
        assert!(table.starts_with("time_s"));
        assert_eq!(table.lines().count(), 6);
        assert!(table.contains("mfc_masks"));
    }

    #[test]
    fn run_mix_with_lazy_generator_matches_trace_replay() {
        // A lazy AttackGenerator over the same keys/seed/rate is a drop-in replacement
        // for a materialised AttackTrace: the timelines agree exactly.
        let schema = FieldSchema::ovs_ipv4();
        let scenario = Scenario::SipDp;
        let keys = scenario_trace(&schema, scenario, &schema.zero_value());
        let trace = AttackTrace::from_keys_cyclic(
            &mut StdRng::seed_from_u64(7),
            &schema,
            &keys,
            100.0,
            10.0,
            2000,
        );
        let (mut by_trace, mut by_gen) = (
            ExperimentRunner::new(
                Datapath::new(scenario.flow_table(&schema)),
                vec![VictimFlow::iperf_tcp("V", 0x0a000005, VICTIM_IP, 10.0)],
                OffloadConfig::gro_off(),
            ),
            ExperimentRunner::new(
                Datapath::new(scenario.flow_table(&schema)),
                vec![],
                OffloadConfig::gro_off(),
            ),
        );
        let tl_trace = by_trace.run(&trace, 40.0);
        let mix = TrafficMix::new()
            .with(VictimSource::new(
                VictimFlow::iperf_tcp("V", 0x0a000005, VICTIM_IP, 10.0),
                &schema,
                1.0,
            ))
            .with(AttackGenerator::new(
                "Attacker",
                &schema,
                scenario
                    .key_iter(&schema, &schema.zero_value())
                    .cycle()
                    .take(2000),
                StdRng::seed_from_u64(7),
                100.0,
                10.0,
            ));
        let tl_gen = by_gen.run_mix(mix, 40.0);
        assert_eq!(tl_trace.victim_names, tl_gen.victim_names);
        for (a, b) in tl_trace.samples.iter().zip(&tl_gen.samples) {
            assert_eq!(a, b, "samples diverged at t={}", a.time);
        }
    }

    #[test]
    fn wire_mix_reproduces_key_level_timeline_and_charges_malformed_to_shard_zero() {
        use tse_attack::wire::{wire_trace, WireSource};
        use tse_packet::wire::Encap;
        let schema = FieldSchema::ovs_ipv4();
        let scenario = Scenario::SipDp;
        let table = scenario.flow_table(&schema);
        let victim = VictimFlow::iperf_tcp("V", 0x0a000005, VICTIM_IP, 10.0);
        let keys = scenario_trace(&schema, scenario, &schema.zero_value());
        let mut rng = StdRng::seed_from_u64(99);
        let trace = AttackTrace::from_keys_cyclic(&mut rng, &schema, &keys, 100.0, 10.0, 2000);

        // Key-level reference run.
        let mut by_key = ExperimentRunner::new(
            Datapath::new(table.clone()),
            vec![victim.clone()],
            OffloadConfig::gro_off(),
        );
        let tl_key = by_key.run(&trace, 40.0);

        // The same attack serialised to raw Ethernet frames and re-parsed: the
        // timeline is reproduced bit-for-bit (frame length == modelled wire length).
        let mut by_wire = ExperimentRunner::new(
            Datapath::new(table.clone()),
            vec![],
            OffloadConfig::gro_off(),
        );
        let mix = TrafficMix::new()
            .with(VictimSource::new(victim.clone(), &schema, 1.0))
            .with(WireSource::from_attack_trace(
                "Attacker",
                &trace,
                &schema,
                Encap::None,
            ));
        let tl_wire = by_wire.run_mix(mix, 40.0);
        assert_eq!(tl_key.samples, tl_wire.samples);
        assert!(tl_wire.samples.iter().all(|s| s.malformed_pps == 0.0));

        // Now corrupt the wire: append truncated frames. They never reach the cache
        // (same masks/entries), are charged to shard 0's counters, and surface in the
        // malformed series instead of any attacker series.
        let mut frames = wire_trace(&trace, Encap::None);
        let garbled = frames.frame(0)[..9].to_vec();
        for i in 0..50 {
            // After the last well-formed frame (~t = 30 s): frame times are monotonic.
            frames.push(30.0 + i as f64 * 0.01, &garbled);
        }
        let mut by_bad =
            ExperimentRunner::new(Datapath::new(table), vec![], OffloadConfig::gro_off());
        let mix = TrafficMix::new()
            .with(VictimSource::new(victim, &schema, 1.0))
            .with(WireSource::replay("Attacker", frames, &schema));
        let tl_bad = by_bad.run_mix(mix, 40.0);
        let malformed: f64 = tl_bad.samples.iter().map(|s| s.malformed_pps).sum();
        assert_eq!(malformed.round() as u64, 50);
        assert_eq!(by_bad.datapath.shard(0).stats().truncated, 50);
        for (a, b) in tl_key.samples.iter().zip(&tl_bad.samples) {
            assert_eq!(a.mask_count, b.mask_count, "t={}", a.time);
            assert_eq!(a.attacker_pps, b.attacker_pps, "t={}", a.time);
        }
        let store = by_bad.last_telemetry().expect("telemetry recorded");
        assert_eq!(store.malformed_series().count(), 40);
        assert!(store.malformed_series().max() > 0.0);
    }

    #[test]
    fn per_attacker_attribution_sums_to_total() {
        let schema = FieldSchema::ovs_ipv4();
        let scenario = Scenario::SpDp;
        let keys = scenario_trace(&schema, scenario, &schema.zero_value());
        let mut rng = StdRng::seed_from_u64(1);
        let a1 = AttackTrace::from_keys_cyclic(&mut rng, &schema, &keys, 100.0, 5.0, 500);
        let a2 = AttackTrace::from_keys_cyclic(&mut rng, &schema, &keys, 200.0, 10.0, 600);
        let mut runner = ExperimentRunner::new(
            Datapath::new(scenario.flow_table(&schema)),
            vec![],
            OffloadConfig::gro_off(),
        );
        let mix = TrafficMix::new()
            .with(a1.source("atk-1", &schema))
            .with(a2.source("atk-2", &schema));
        let tl = runner.run_mix(mix, 20.0);
        assert_eq!(tl.attacker_names, vec!["atk-1", "atk-2"]);
        let mut delivered = [0.0f64; 2];
        for s in &tl.samples {
            assert_eq!(s.attacker_pps_by_source.len(), 2);
            let sum: f64 = s.attacker_pps_by_source.iter().sum();
            assert!((sum - s.attacker_pps).abs() < 1e-9);
            delivered[0] += s.attacker_pps_by_source[0];
            delivered[1] += s.attacker_pps_by_source[1];
        }
        assert_eq!(delivered[0].round() as u64, 500);
        assert_eq!(delivered[1].round() as u64, 600);
        // atk-2 only starts at t=10 s.
        assert_eq!(tl.mean_attacker_pps_between("atk-2", 0.0, 10.0), 0.0);
        assert!(tl.mean_attacker_pps_between("atk-2", 10.0, 13.0) > 100.0);
    }
}
