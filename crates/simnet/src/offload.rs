//! NIC offload configurations (§5.4): GRO on/off, jumbo frames, full hardware offload,
//! and plain UDP.
//!
//! Offloads change how many classifier invocations a byte of victim traffic costs: GRO
//! and jumbo frames let the NIC aggregate many small TCP segments into one large buffer
//! before OVS sees it, and the Mellanox full-hardware-offload path classifies at NIC
//! speed — but all of them still run TSS underneath, so the degradation merely shifts.

use tse_switch::cost::CostModel;

/// A victim-side traffic/offload configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadConfig {
    /// Display name (the Fig. 9a legend).
    pub name: &'static str,
    /// Bytes of victim traffic carried per classifier invocation: the MTU for plain
    /// traffic, the aggregated buffer size when GRO/jumbo frames apply.
    pub bytes_per_invocation: usize,
    /// Link line rate in Gbps (the upper bound of Fig. 9a's y-axis for this config).
    pub line_rate_gbps: f64,
    /// The datapath cost model this configuration runs with.
    pub cost: CostModel,
}

impl Default for OffloadConfig {
    /// The paper's default measurement configuration: GRO OFF (every MTU-sized TCP
    /// segment classified individually) — the setting the headline Fig. 8 numbers use.
    fn default() -> Self {
        Self::gro_off()
    }
}

impl OffloadConfig {
    /// TCP with GRO/TSO disabled: every MTU-sized segment is classified individually —
    /// the configuration most exposed to the attack.
    pub fn gro_off() -> Self {
        OffloadConfig {
            name: "GRO OFF (TCP)",
            bytes_per_invocation: 1538,
            line_rate_gbps: 10.0,
            cost: CostModel::ovs_kernel_default(),
        }
    }

    /// TCP with GRO + jumbo frames: the NIC hands OVS ~24 kB buffers, cutting the
    /// effective packet rate by an order of magnitude (§5.4).
    pub fn gro_on() -> Self {
        OffloadConfig {
            name: "GRO ON (TCP)",
            bytes_per_invocation: 24_000,
            line_rate_gbps: 10.0,
            cost: CostModel::ovs_kernel_default(),
        }
    }

    /// Full hardware offload on the Mellanox CX-4 (~30 Gbps baseline) — still TSS, still
    /// vulnerable once the mask count grows.
    pub fn full_hw_offload() -> Self {
        OffloadConfig {
            name: "FHO ON (TCP)",
            bytes_per_invocation: 1538,
            line_rate_gbps: 30.0,
            cost: CostModel::full_hw_offload(),
        }
    }

    /// Plain UDP (the QUIC-relevant case): offloads do not apply, every datagram is
    /// classified.
    pub fn udp() -> Self {
        OffloadConfig {
            name: "UDP",
            bytes_per_invocation: 1538,
            line_rate_gbps: 10.0,
            cost: CostModel::ovs_kernel_default(),
        }
    }

    /// The four configurations of Fig. 9a, in legend order.
    pub fn fig9a_set() -> Vec<OffloadConfig> {
        vec![
            Self::full_hw_offload(),
            Self::gro_on(),
            Self::gro_off(),
            Self::udp(),
        ]
    }

    /// Victim throughput in Gbps when every classifier invocation scans `masks` masks.
    pub fn victim_gbps(&self, masks: usize) -> f64 {
        self.cost
            .capacity_gbps(masks, self.bytes_per_invocation, self.line_rate_gbps)
    }

    /// The Baseline (1 mask) capacity of this configuration.
    pub fn baseline_gbps(&self) -> f64 {
        self.victim_gbps(1)
    }

    /// Victim throughput as a percentage of this configuration's own baseline.
    pub fn degradation_percent(&self, masks: usize) -> f64 {
        100.0 * self.victim_gbps(masks) / self.baseline_gbps()
    }

    /// Flow-completion time in seconds of a transfer of `gigabytes` at the degraded
    /// rate (the secondary axis of Fig. 9a, 1 GB TCP with GRO OFF).
    pub fn flow_completion_time(&self, masks: usize, gigabytes: f64) -> f64 {
        gigabytes * 8.0 / self.victim_gbps(masks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_gro_off() {
        assert_eq!(OffloadConfig::default(), OffloadConfig::gro_off());
    }

    #[test]
    fn baselines_match_testbed() {
        assert!((9.0..=10.5).contains(&OffloadConfig::gro_off().baseline_gbps()));
        assert_eq!(OffloadConfig::gro_on().baseline_gbps(), 10.0); // line-rate limited
        assert!((25.0..=30.5).contains(&OffloadConfig::full_hw_offload().baseline_gbps()));
    }

    #[test]
    fn section_5_4_degradation_anchors() {
        // §5.4: at 17/260/516/8200 masks the victim keeps roughly
        //   GRO ON:  97 / 95 / 76 / 3.9 %
        //   FHO ON:  88 / 43 / 29 / 2.1 %
        //   GRO OFF: 53 / 10 / 4.7 / 0.2 %
        // of its baseline. The model reproduces the ordering and the rough magnitudes.
        let gro_on = OffloadConfig::gro_on();
        let fho = OffloadConfig::full_hw_offload();
        let gro_off = OffloadConfig::gro_off();
        for &(masks, on_lo, fho_lo, off_hi) in &[
            (17usize, 90.0, 70.0, 70.0),
            (260, 80.0, 25.0, 20.0),
            (516, 50.0, 15.0, 10.0),
        ] {
            assert!(
                gro_on.degradation_percent(masks) >= on_lo,
                "GRO ON @{masks}"
            );
            assert!(fho.degradation_percent(masks) >= fho_lo, "FHO @{masks}");
            assert!(
                gro_off.degradation_percent(masks) <= off_hi,
                "GRO OFF @{masks}"
            );
        }
        // Full-blown attack: everything collapses below ~5 %.
        for cfg in OffloadConfig::fig9a_set() {
            assert!(cfg.degradation_percent(8200) < 6.0, "{} @8200", cfg.name);
        }
    }

    #[test]
    fn ordering_between_configs_preserved() {
        // For any mask count, GRO ON >= FHO-relative? Not necessarily; but GRO ON and
        // FHO must always beat GRO OFF in absolute throughput.
        for masks in [1usize, 17, 260, 516, 8200] {
            let off = OffloadConfig::gro_off().victim_gbps(masks);
            assert!(OffloadConfig::gro_on().victim_gbps(masks) >= off);
            assert!(OffloadConfig::full_hw_offload().victim_gbps(masks) >= off);
        }
    }

    #[test]
    fn flow_completion_time_grows_with_masks() {
        let cfg = OffloadConfig::gro_off();
        let base = cfg.flow_completion_time(1, 1.0);
        assert!(
            (0.5..=2.0).contains(&base),
            "1 GB at ~10 Gbps is ~1 s: {base}"
        );
        assert!(cfg.flow_completion_time(8200, 1.0) > 100.0 * base);
    }

    #[test]
    fn udp_tracks_gro_off() {
        for masks in [1usize, 260, 8200] {
            let udp = OffloadConfig::udp().victim_gbps(masks);
            let off = OffloadConfig::gro_off().victim_gbps(masks);
            assert!((udp - off).abs() / off < 0.2);
        }
    }
}
