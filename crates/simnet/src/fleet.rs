//! Tenant-scale workload builders: gateway fleets of hundreds to thousands of tenants
//! behind one hypervisor switch, plus the benign flow churn that keeps a real
//! multi-tenant cache busy.
//!
//! Two pieces:
//!
//! * [`ChurnSource`] — a [`TrafficSource`] of Poisson-like benign flow arrivals
//!   ([`SourceRole::Background`]): short-lived client flows against a set of tenant
//!   services, a mix of ACL-allowed and ACL-denied traffic, so the megaflow cache sees
//!   realistic install/expire churn even with no attack running. Reusable standalone
//!   in any [`TrafficMix`].
//! * [`TenantFleet`] — the §3.3 cloud gateway at scale: `n` tenants, each with a
//!   WhiteList+DefaultDeny web ACL and an iperf-like victim flow, a few of them
//!   hostile. Attackers start benign and *turn* hostile mid-run: at staggered onsets
//!   their ACL is replaced with the shard-pinned SpDp attack pattern (a scheduled
//!   [`install_table`](tse_switch::pmd::ShardedDatapath::install_table) update, i.e. a
//!   CMS policy change with megaflow revalidation), after which they replay the
//!   bit-inversion outer product from a single client address — pinning the mask
//!   explosion to one RX queue under [`Steering::PerTenant`](tse_switch::pmd::Steering).
//!
//! All randomness is drawn from the vendored deterministic [`rand`] stub on fixed
//! grids (discretized geometric inter-arrivals — no `ln`), so fleets are bit-for-bit
//! reproducible across runs, executors and platforms.

use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tse_attack::colocated::bit_inversion_keys;
use tse_attack::source::{
    AttackGenerator, EventPayload, SourceRole, TrafficEvent, TrafficMix, TrafficSource,
};
use tse_classifier::flowtable::FlowTable;
use tse_packet::builder::PacketBuilder;
use tse_packet::fields::{FieldSchema, Key};
use tse_packet::flowkey::FlowKey;
use tse_packet::l4::IpProto;
use tse_switch::tenant::{merge_tenant_acls, AclField, TenantAcl};

use crate::traffic::{VictimFlow, VictimSource};

/// Configuration of a [`ChurnSource`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnConfig {
    /// Mean new-flow arrivals per second (Poisson, discretized on a 1 ms grid).
    pub arrival_rate: f64,
    /// Mean flow lifetime, seconds (geometric continuation per packet — the
    /// discretized exponential).
    pub mean_lifetime: f64,
    /// Packets per second each live flow sends.
    pub flow_pps: f64,
    /// Fraction (numerator over 4) of flows aimed at the allowed port 80; the rest hit
    /// a random high port and are dropped by the tenant ACL — both kinds still install
    /// megaflows and burn CPU, which is the point.
    pub allowed_in_4: u32,
    /// First arrival not before this time, seconds.
    pub start: f64,
    /// No arrivals at or after this time (live flows also stop emitting past it).
    /// `f64::INFINITY` keeps churning for as long as the experiment pulls.
    pub stop: f64,
    /// Seed for the source's private deterministic RNG.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            arrival_rate: 20.0,
            mean_lifetime: 10.0,
            flow_pps: 5.0,
            allowed_in_4: 3,
            start: 0.0,
            stop: f64::INFINITY,
            seed: 0x5eed_c0de,
        }
    }
}

/// A pending packet emission of one live churn flow. Ordered by time, then by spawn
/// sequence number — a total order (`total_cmp`), so the heap pop order is
/// deterministic even under exact timestamp ties.
#[derive(Debug, Clone, PartialEq)]
struct ChurnFlow {
    time: f64,
    seq: u64,
    key: Key,
    bytes: usize,
    interval: f64,
}

impl Eq for ChurnFlow {}

impl Ord for ChurnFlow {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for ChurnFlow {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Benign tenant flow churn as a background [`TrafficSource`] — see the
/// [module docs](self).
#[derive(Debug)]
pub struct ChurnSource {
    label: String,
    schema: FieldSchema,
    services: Vec<u32>,
    config: ChurnConfig,
    rng: StdRng,
    next_arrival: f64,
    spawned: u64,
    heap: BinaryHeap<ChurnFlow>,
    continue_p: f64,
}

impl ChurnSource {
    /// A churn source over the given tenant service addresses (each new flow picks one
    /// uniformly).
    ///
    /// # Panics
    /// Panics if `services` is empty or the config's rates/lifetime are not positive.
    pub fn new(
        label: impl Into<String>,
        schema: &FieldSchema,
        services: Vec<u32>,
        config: ChurnConfig,
    ) -> Self {
        assert!(!services.is_empty(), "churn needs at least one service");
        assert!(config.arrival_rate > 0.0, "arrival rate must be positive");
        assert!(config.mean_lifetime > 0.0, "mean lifetime must be positive");
        assert!(config.flow_pps > 0.0, "flow pps must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Each packet continues the flow with probability 1 - 1/(lifetime · pps):
        // geometric packet counts with the configured mean — the discretized
        // exponential lifetime, with no platform-dependent `ln` involved.
        let mean_packets = (config.mean_lifetime * config.flow_pps).max(1.0);
        let continue_p = 1.0 - 1.0 / mean_packets;
        let start = config.start;
        let mut source = ChurnSource {
            label: label.into(),
            schema: schema.clone(),
            services,
            rng: StdRng::seed_from_u64(0),
            next_arrival: start,
            spawned: 0,
            heap: BinaryHeap::new(),
            continue_p,
            config,
        };
        source.next_arrival = start + Self::arrival_gap(&mut rng, source.config.arrival_rate);
        source.rng = rng;
        source
    }

    /// One Poisson inter-arrival gap, discretized on a 1 ms grid: count Bernoulli
    /// ticks until the first success. Integer/compare-only, hence bit-deterministic.
    fn arrival_gap(rng: &mut StdRng, rate: f64) -> f64 {
        let p = (rate * 0.001).clamp(1e-9, 1.0);
        let mut ticks = 1u64;
        while rng.gen_range(0.0..1.0) >= p {
            ticks += 1;
        }
        ticks as f64 * 0.001
    }

    fn spawn_flow(&mut self) {
        let t = self.next_arrival;
        self.next_arrival = t + Self::arrival_gap(&mut self.rng, self.config.arrival_rate);
        let service = self.services[self.rng.gen_range(0..self.services.len())];
        let src_ip = 0x0c00_0000u32 | self.rng.gen_range(0u32..=0xffff);
        let src_port: u16 = self.rng.gen_range(1024u16..=65000);
        let dst_port: u16 = if self.rng.gen_range(0u32..4) < self.config.allowed_in_4 {
            80
        } else {
            self.rng.gen_range(1024u16..=65000)
        };
        let packet =
            PacketBuilder::from_numeric_v4(src_ip, service, IpProto::Tcp, src_port, dst_port)
                .randomize_noise(&mut self.rng)
                .build();
        let key = FlowKey::from_packet(&packet).to_key(&self.schema);
        self.heap.push(ChurnFlow {
            time: t,
            seq: self.spawned,
            key,
            bytes: packet.wire_len(),
            interval: 1.0 / self.config.flow_pps,
        });
        self.spawned += 1;
    }

    /// Flows spawned so far (monotone; exposed for tests).
    pub fn flows_spawned(&self) -> u64 {
        self.spawned
    }

    /// Flows currently live (with a pending packet).
    pub fn flows_live(&self) -> usize {
        self.heap.len()
    }
}

impl TrafficSource for ChurnSource {
    fn label(&self) -> &str {
        &self.label
    }

    fn role(&self) -> SourceRole {
        SourceRole::Background
    }

    fn next_event(&mut self) -> Option<TrafficEvent> {
        // Admit every arrival due before the earliest pending packet, so events come
        // out in nondecreasing time order.
        while self.next_arrival < self.config.stop
            && self
                .heap
                .peek()
                .map(|f| self.next_arrival <= f.time)
                .unwrap_or(true)
        {
            self.spawn_flow();
        }
        let flow = self.heap.pop()?;
        let event = TrafficEvent {
            time: flow.time,
            key: flow.key.clone(),
            bytes: flow.bytes,
            payload: EventPayload::Packet,
        };
        let next_time = flow.time + flow.interval;
        if next_time < self.config.stop && self.rng.gen_range(0.0..1.0) < self.continue_p {
            self.heap.push(ChurnFlow {
                time: next_time,
                ..flow
            });
        }
        Some(event)
    }
}

/// Configuration of a [`TenantFleet`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Total tenants behind the gateway (each gets a service IP and a web ACL).
    pub tenants: usize,
    /// How many of them (the last ones) turn hostile mid-run. Must be < `tenants`.
    pub attackers: usize,
    /// Offered load per benign tenant flow, Gbps.
    pub offered_gbps: f64,
    /// Attack packet rate per hostile tenant, pps.
    pub attack_rate_pps: f64,
    /// Experiment horizon, seconds (attack onsets are staggered across it).
    pub duration: f64,
    /// Benign background flow churn (`None` for a sterile fleet).
    pub churn: Option<ChurnConfig>,
    /// Base seed for all fleet randomness.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            tenants: 1000,
            attackers: 3,
            offered_gbps: 0.01,
            attack_rate_pps: 200.0,
            duration: 3600.0,
            churn: Some(ChurnConfig::default()),
            seed: 2026,
        }
    }
}

/// A multi-tenant gateway workload: per-tenant ACLs, per-tenant victim flows,
/// staggered mid-run attackers and optional background churn — everything an
/// [`ExperimentRunner`](crate::runner::ExperimentRunner) needs for the tenant-scale
/// scenario. See the [module docs](self).
#[derive(Debug)]
pub struct TenantFleet {
    schema: FieldSchema,
    config: FleetConfig,
}

impl TenantFleet {
    /// Build a fleet over `schema` (the OVS IPv4 schema in every figure experiment).
    ///
    /// # Panics
    /// Panics unless `0 < attackers < tenants` and the rates/duration are positive.
    pub fn new(schema: &FieldSchema, config: FleetConfig) -> Self {
        assert!(config.tenants >= 2, "a fleet needs at least 2 tenants");
        assert!(
            config.attackers < config.tenants,
            "attackers must leave at least one benign tenant"
        );
        assert!(config.duration > 0.0, "duration must be positive");
        assert!(config.offered_gbps > 0.0, "offered load must be positive");
        assert!(config.attack_rate_pps > 0.0, "attack rate must be positive");
        TenantFleet {
            schema: schema.clone(),
            config,
        }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Tenant `i`'s service address (10.16.0.0/16 space).
    pub fn service_ip(&self, i: usize) -> u32 {
        0x0a10_0000u32 + i as u32
    }

    /// Tenant `i`'s client source address (10.0.0.0/16 space) — what per-tenant
    /// steering hashes, so it decides the tenant's RX queue.
    pub fn client_ip(&self, i: usize) -> u32 {
        0x0a00_0000u32 + i as u32
    }

    /// True if tenant `i` is one of the hostile tenants (the last
    /// [`FleetConfig::attackers`] indices).
    pub fn is_attacker(&self, i: usize) -> bool {
        i >= self.config.tenants - self.config.attackers
    }

    /// Benign tenant indices, in victim-series order.
    pub fn benign_tenants(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.config.tenants).filter(|&i| !self.is_attacker(i))
    }

    /// Display name of tenant `i`.
    pub fn tenant_name(&self, i: usize) -> String {
        if self.is_attacker(i) {
            format!("attacker-{i:04}")
        } else {
            format!("tenant-{i:04}")
        }
    }

    /// When the `j`-th attacker (0-based) starts sending attack traffic: staggered
    /// from 20 % to 80 % of the horizon, so short smoke runs and hour-long runs both
    /// exercise every onset.
    pub fn attack_onset(&self, j: usize) -> f64 {
        let n = self.config.attackers.max(1);
        let frac = if n == 1 {
            0.2
        } else {
            0.2 + 0.6 * j as f64 / (n - 1) as f64
        };
        self.config.duration * frac
    }

    fn acls(&self, hostile_through: Option<usize>) -> Vec<TenantAcl> {
        (0..self.config.tenants)
            .map(|i| {
                let hostile = match hostile_through {
                    Some(j) => {
                        self.is_attacker(i) && {
                            let rank = i - (self.config.tenants - self.config.attackers);
                            rank <= j
                        }
                    }
                    None => false,
                };
                if hostile {
                    TenantAcl::sp_dp_attack(self.tenant_name(i), self.service_ip(i) as u128)
                } else {
                    TenantAcl::web_service(self.tenant_name(i), self.service_ip(i) as u128)
                }
            })
            .collect()
    }

    /// The initial merged flow table: every tenant (hostile ones included) runs the
    /// benign web ACL — nobody has attacked yet.
    pub fn table(&self) -> FlowTable {
        merge_tenant_acls(&self.schema, &self.acls(None))
    }

    /// The scheduled ACL changes: 2 s before each attacker's onset, the merged table
    /// is replaced with one where that attacker (and every earlier one) runs the SpDp
    /// attack ACL — the CMS-side policy update that arms the attack, flushing the
    /// microflow cache and revalidating megaflows on install. Feed to
    /// [`ExperimentRunner::with_table_updates`](crate::runner::ExperimentRunner::with_table_updates).
    pub fn table_updates(&self) -> Vec<(f64, FlowTable)> {
        (0..self.config.attackers)
            .map(|j| {
                let t = (self.attack_onset(j) - 2.0).max(0.0);
                (t, merge_tenant_acls(&self.schema, &self.acls(Some(j))))
            })
            .collect()
    }

    /// The traffic mix: one victim flow per benign tenant (probed every
    /// `sample_interval`), one bit-inversion attack generator per hostile tenant
    /// (starting at its onset, running to the horizon), plus background churn over
    /// every benign service when configured.
    pub fn mix(&self, sample_interval: f64) -> TrafficMix<'static> {
        let mut mix = TrafficMix::new();
        for i in self.benign_tenants() {
            let flow = VictimFlow::iperf_tcp(
                self.tenant_name(i),
                self.client_ip(i),
                self.service_ip(i),
                self.config.offered_gbps,
            );
            mix.push(Box::new(VictimSource::new(
                flow,
                &self.schema,
                sample_interval,
            )));
        }
        let first_attacker = self.config.tenants - self.config.attackers;
        for j in 0..self.config.attackers {
            let i = first_attacker + j;
            let onset = self.attack_onset(j);
            let tp_src = AclField::SrcPort.schema_index(&self.schema);
            let tp_dst = AclField::DstPort.schema_index(&self.schema);
            let ip_src = AclField::SrcIp.schema_index(&self.schema);
            let ip_dst = self
                .schema
                .field_index("ip_dst")
                .expect("IPv4 schema has ip_dst");
            let mut base = self.schema.zero_value();
            // One fixed client address: under per-tenant steering the whole outer
            // product lands on the attacker's own RX queue.
            base.set(ip_src, self.client_ip(i) as u128);
            base.set(ip_dst, self.service_ip(i) as u128);
            let keys =
                bit_inversion_keys(&self.schema, &[(tp_dst, 80), (tp_src, 12345)], &base).cycle();
            let packets = (self.config.attack_rate_pps * (self.config.duration - onset))
                .ceil()
                .max(0.0) as usize;
            mix.push(Box::new(
                AttackGenerator::new(
                    self.tenant_name(i),
                    &self.schema,
                    keys,
                    StdRng::seed_from_u64(self.config.seed ^ (0xa77a << 16) ^ j as u64),
                    self.config.attack_rate_pps,
                    onset,
                )
                .with_limit(packets),
            ));
        }
        if let Some(churn) = &self.config.churn {
            let mut churn = churn.clone();
            if !churn.stop.is_finite() {
                churn.stop = self.config.duration;
            }
            churn.seed ^= self.config.seed;
            let services: Vec<u32> = self.benign_tenants().map(|i| self.service_ip(i)).collect();
            mix.push(Box::new(ChurnSource::new(
                "churn",
                &self.schema,
                services,
                churn,
            )));
        }
        mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_emits_ordered_background_events() {
        let schema = FieldSchema::ovs_ipv4();
        let mut churn = ChurnSource::new(
            "churn",
            &schema,
            vec![0x0a10_0001],
            ChurnConfig {
                arrival_rate: 50.0,
                mean_lifetime: 0.5,
                flow_pps: 10.0,
                stop: 5.0,
                ..ChurnConfig::default()
            },
        );
        assert_eq!(churn.role(), SourceRole::Background);
        let mut last = f64::NEG_INFINITY;
        let mut count = 0usize;
        let mut allowed = 0usize;
        let dst_port = schema.field_index("tp_dst").unwrap();
        while let Some(ev) = churn.next_event() {
            assert!(ev.time >= last, "events must be time-ordered");
            assert!(ev.time < 5.0 + 0.2, "no packets past stop");
            last = ev.time;
            count += 1;
            if ev.key.get(dst_port) == 80 {
                allowed += 1;
            }
        }
        assert!(count > 100, "5 s of churn should emit plenty: {count}");
        assert!(
            allowed > count / 3 && allowed < count,
            "mixed allowed/denied traffic: {allowed}/{count}"
        );
        assert!(churn.flows_spawned() > 50);
    }

    #[test]
    fn churn_is_deterministic() {
        let schema = FieldSchema::ovs_ipv4();
        let cfg = ChurnConfig {
            stop: 3.0,
            ..ChurnConfig::default()
        };
        let collect = |cfg: &ChurnConfig| {
            let mut s = ChurnSource::new("c", &schema, vec![1, 2, 3], cfg.clone());
            let mut events = Vec::new();
            while let Some(ev) = s.next_event() {
                events.push(ev);
            }
            events
        };
        assert_eq!(collect(&cfg), collect(&cfg), "bit-identical replay");
    }

    #[test]
    fn fleet_builds_tables_updates_and_mix() {
        let schema = FieldSchema::ovs_ipv4();
        let fleet = TenantFleet::new(
            &schema,
            FleetConfig {
                tenants: 16,
                attackers: 2,
                duration: 100.0,
                ..FleetConfig::default()
            },
        );
        // 16 single-clause web ACLs + DefaultDeny.
        assert_eq!(fleet.table().len(), 17);
        let updates = fleet.table_updates();
        assert_eq!(updates.len(), 2);
        assert_eq!(updates[0].0, 18.0); // onset 20.0 - 2 s lead
        assert_eq!(updates[1].0, 78.0);
        // Second update: both attackers hostile, 2 clauses each -> 14 + 4 + 1 rules.
        assert_eq!(updates[1].1.len(), 19);
        let roles = fleet.mix(1.0).roles();
        let victims = roles.iter().filter(|r| **r == SourceRole::Victim).count();
        let attackers = roles.iter().filter(|r| **r == SourceRole::Attacker).count();
        let background = roles
            .iter()
            .filter(|r| **r == SourceRole::Background)
            .count();
        assert_eq!((victims, attackers, background), (14, 2, 1));
        assert!(fleet.is_attacker(15) && fleet.is_attacker(14) && !fleet.is_attacker(13));
    }

    #[test]
    fn attack_onsets_are_staggered_inside_the_horizon() {
        let schema = FieldSchema::ovs_ipv4();
        let fleet = TenantFleet::new(
            &schema,
            FleetConfig {
                tenants: 8,
                attackers: 3,
                duration: 3600.0,
                ..FleetConfig::default()
            },
        );
        assert_eq!(fleet.attack_onset(0), 720.0);
        assert_eq!(fleet.attack_onset(1), 1800.0);
        assert_eq!(fleet.attack_onset(2), 2880.0);
    }
}
