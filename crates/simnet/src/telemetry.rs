//! Two-tier hot/cold telemetry: constant-memory experiment recording for
//! tenant-scale, hour-long horizons.
//!
//! The paper's cloud model (§3.3) is many tenants sharing one hypervisor switch, but a
//! [`Timeline`] keeps every per-interval [`TimelineSample`] — with per-shard and
//! per-source vectors — for the whole horizon, so memory grows as `horizon × tenants`.
//! This module decouples *recent detail* from *run-length history*:
//!
//! * a **hot tier**: a bounded ring of the most recent samples, bit-identical to what
//!   the unbounded timeline would hold for that window (when a run fits entirely in
//!   the ring, [`TelemetryStore::recent_timeline`] *is* the classic timeline,
//!   bit-for-bit — proven by the golden-parity suite);
//! * a **cold tier**: streaming per-series aggregates ([`SeriesAgg`]: count / sum /
//!   min / max plus a fixed-log-bucket [`LogHistogram`] for p50/p99) updated on every
//!   record. Nothing in the cold tier allocates per sample, so an hour-long
//!   10k-tenant run retains exactly as much telemetry as a 60-second one plus the
//!   fixed ring;
//! * per-tenant [`SloTracker`]s: delivered-throughput quantiles against a configured
//!   SLO floor, violation episodes, time-to-detect and time-to-recover;
//! * a [`PressureWindow`] over the last few intervals' per-shard attack rates, which
//!   the runner hands to adaptive [`Mitigation`](tse_mitigation::stack::Mitigation)
//!   stages;
//! * optional **cold spill**: samples aged out of the hot ring can be appended to a
//!   JSON-lines file, so full detail survives on disk while memory stays bounded.
//!
//! Everything is deterministic: bucket boundaries are fixed functions of the f64 bit
//! pattern (no data-dependent allocation), sums are accumulated in sample order, and
//! the store's contents are bit-for-bit identical across shard executors and re-runs
//! (`tests/telemetry_store.rs`).

use std::collections::VecDeque;
use std::io::Write;
use std::path::PathBuf;

use tse_mitigation::stack::PressureWindow;

use crate::runner::{Timeline, TimelineSample};

/// Number of sub-buckets per octave (power of two) in [`LogHistogram`]: the exponent
/// plus the top 3 mantissa bits of the f64 bit pattern.
const SUB_BUCKETS_PER_OCTAVE_BITS: u32 = 3;
/// Lowest tracked value, 2⁻³² (biased exponent 991). Everything at or below collapses
/// into the underflow bucket.
const MIN_TRACKED: f64 = f64::from_bits(991u64 << 52);
/// Highest tracked value, 2³². Everything at or above collapses into the overflow
/// bucket.
const MAX_TRACKED: f64 = 4294967296.0;
/// `(bits >> 49)` of `MIN_TRACKED`: the biased exponent 991 shifted past the 3
/// mantissa bits that survive the shift.
const BIAS_OFFSET: usize = 991 << SUB_BUCKETS_PER_OCTAVE_BITS;
/// 64 octaves (2⁻³²..2³²) × 8 sub-buckets, plus underflow and overflow buckets.
const BUCKETS: usize = 64 * 8 + 2;

/// A deterministic fixed-log-bucket histogram for streaming quantiles.
///
/// Bucket boundaries are a pure function of the f64 bit pattern: `value.to_bits() >>
/// 49` keeps the biased exponent and the top 3 mantissa bits, giving 8 equal-width
/// sub-buckets per octave over the clamped domain `[2⁻³², 2³²)` (plus an underflow
/// bucket for `≤ 2⁻³²`, zero and negatives, and an overflow bucket for `≥ 2³²`). The
/// bucket array is a fixed 514-slot allocation — recording never allocates, so the
/// histogram is bit-identical across executors, re-runs and record order.
///
/// # Error bound
///
/// [`LogHistogram::quantile`] returns the lower bound of the bucket containing the
/// requested rank. Within an octave the 8 sub-buckets are linear, so the worst
/// bucket's upper/lower ratio is 9/8 (the first sub-bucket of each octave): for any
/// in-domain value `v` falling in a bucket with lower bound `L`,
/// `L ≤ v < L * 9/8` — the quantile estimate underestimates by **less than 12.5 %**
/// (proptested in `tests/telemetry_store.rs`).
#[derive(Clone, PartialEq)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("total", &self.total)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: [0; BUCKETS],
            total: 0,
        }
    }

    /// Number of bucket slots (fixed; exposed for footprint accounting).
    pub const fn bucket_count() -> usize {
        BUCKETS
    }

    fn bucket_index(v: f64) -> usize {
        // NaN fails this comparison too, so it lands in the underflow bucket along
        // with negatives, zero and subnormals below the tracked range.
        if v < MIN_TRACKED || v.is_nan() {
            return 0;
        }
        if v >= MAX_TRACKED {
            return BUCKETS - 1;
        }
        ((v.to_bits() >> 49) as usize) - BIAS_OFFSET + 1
    }

    fn bucket_lower_bound(idx: usize) -> f64 {
        if idx == 0 {
            0.0
        } else if idx == BUCKETS - 1 {
            MAX_TRACKED
        } else {
            f64::from_bits(((idx - 1 + BIAS_OFFSET) as u64) << 49)
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: f64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.total += 1;
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The q-quantile estimate (`q` clamped to `[0, 1]`): the lower bound of the
    /// bucket containing rank `max(1, ceil(q · n))`. Returns 0.0 for an empty
    /// histogram. See the type docs for the ≤ 12.5 % error bound.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_lower_bound(i);
            }
        }
        MAX_TRACKED
    }
}

/// Streaming aggregate of one telemetry series: count, sum, min, max and a
/// [`LogHistogram`] for quantiles. Sums are accumulated in record order, so the fold
/// of a sample stream is bit-for-bit the in-order exact computation.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesAgg {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    hist: LogHistogram,
}

impl Default for SeriesAgg {
    fn default() -> Self {
        Self::new()
    }
}

impl SeriesAgg {
    /// An empty aggregate.
    pub fn new() -> Self {
        SeriesAgg {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            hist: LogHistogram::new(),
        }
    }

    /// Fold one observation in.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.hist.record(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running sum (in-order f64 accumulation).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The quantile histogram.
    pub fn histogram(&self) -> &LogHistogram {
        &self.hist
    }

    /// Shortcut for `histogram().quantile(q)`.
    pub fn quantile(&self, q: f64) -> f64 {
        self.hist.quantile(q)
    }
}

/// Per-tenant SLO configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Delivered-throughput floor, Gbps: a sample below this (while the flow is
    /// active) is an SLO violation.
    pub floor_gbps: f64,
}

/// Maximum violation episodes stored as explicit `(start, end)` intervals per tracker
/// — counters keep counting past this, so the tracker's memory stays bounded no
/// matter how long the run or how flappy the tenant.
pub const MAX_STORED_EPISODES: usize = 16;

/// Streaming per-tenant SLO tracking: delivered-throughput distribution against a
/// configured floor, violation episodes, time-to-detect and time-to-recover. All
/// state is O(1) per tenant (episode intervals capped at [`MAX_STORED_EPISODES`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SloTracker {
    name: String,
    floor_gbps: f64,
    delivered: SeriesAgg,
    in_violation: bool,
    episode_start: f64,
    episode_seconds: f64,
    violating_intervals: u64,
    episode_count: u64,
    first_violation: Option<f64>,
    longest_episode_seconds: f64,
    total_violation_seconds: f64,
    episodes: Vec<(f64, f64)>,
}

impl SloTracker {
    /// A tracker for the named tenant flow against `floor_gbps`.
    pub fn new(name: impl Into<String>, floor_gbps: f64) -> Self {
        SloTracker {
            name: name.into(),
            floor_gbps,
            delivered: SeriesAgg::new(),
            in_violation: false,
            episode_start: 0.0,
            episode_seconds: 0.0,
            violating_intervals: 0,
            episode_count: 0,
            first_violation: None,
            longest_episode_seconds: 0.0,
            total_violation_seconds: 0.0,
            episodes: Vec::new(),
        }
    }

    /// The tracked flow's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The SLO floor, Gbps.
    pub fn floor_gbps(&self) -> f64 {
        self.floor_gbps
    }

    /// Observe one sample interval `[t, t + dt)` in which the flow delivered `gbps`.
    /// Call only for intervals where the flow was active (an idle flow is not
    /// violating anything).
    pub fn observe(&mut self, t: f64, dt: f64, gbps: f64) {
        self.delivered.observe(gbps);
        let violated = gbps < self.floor_gbps;
        if violated {
            self.violating_intervals += 1;
            self.total_violation_seconds += dt;
            if !self.in_violation {
                self.in_violation = true;
                self.episode_start = t;
                self.episode_seconds = 0.0;
                self.episode_count += 1;
                if self.first_violation.is_none() {
                    self.first_violation = Some(t);
                }
            }
            self.episode_seconds += dt;
            self.longest_episode_seconds = self.longest_episode_seconds.max(self.episode_seconds);
        } else if self.in_violation {
            self.close_episode();
        }
    }

    fn close_episode(&mut self) {
        self.in_violation = false;
        if self.episodes.len() < MAX_STORED_EPISODES {
            self.episodes.push((
                self.episode_start,
                self.episode_start + self.episode_seconds,
            ));
        }
    }

    /// Close any open violation episode at the end of the run.
    pub fn finish(&mut self) {
        if self.in_violation {
            self.close_episode();
        }
    }

    /// The delivered-throughput aggregate (count/sum/min/max + quantile histogram).
    pub fn delivered(&self) -> &SeriesAgg {
        &self.delivered
    }

    /// Median delivered throughput, Gbps.
    pub fn p50_gbps(&self) -> f64 {
        self.delivered.quantile(0.5)
    }

    /// 99th-percentile *low* tail — note the delivered histogram is a distribution of
    /// per-interval rates, so p99 here is "the rate exceeded by the top 1 % of
    /// intervals".
    pub fn p99_gbps(&self) -> f64 {
        self.delivered.quantile(0.99)
    }

    /// Number of sample intervals that violated the floor.
    pub fn violating_intervals(&self) -> u64 {
        self.violating_intervals
    }

    /// Number of distinct violation episodes (runs of consecutive violating samples).
    pub fn episode_count(&self) -> u64 {
        self.episode_count
    }

    /// Time of the first violating sample, if any.
    pub fn first_violation(&self) -> Option<f64> {
        self.first_violation
    }

    /// Seconds from `event_time` (e.g. attack onset) to the first violating sample —
    /// the tenant-visible time-to-detect. `None` if the SLO never broke.
    pub fn time_to_detect(&self, event_time: f64) -> Option<f64> {
        self.first_violation.map(|t| t - event_time)
    }

    /// Length of the longest violation episode, seconds — the worst time-to-recover.
    pub fn longest_episode_seconds(&self) -> f64 {
        self.longest_episode_seconds
    }

    /// Total seconds spent below the floor.
    pub fn total_violation_seconds(&self) -> f64 {
        self.total_violation_seconds
    }

    /// The first [`MAX_STORED_EPISODES`] violation episodes as `(start, end)` times.
    pub fn episodes(&self) -> &[(f64, f64)] {
        &self.episodes
    }

    /// True if the tracker is currently inside an open violation episode.
    pub fn in_violation(&self) -> bool {
        self.in_violation
    }
}

/// Configuration of a [`TelemetryStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Hot-ring capacity: how many recent [`TimelineSample`]s are kept in full
    /// detail. Runs no longer than this (in sample intervals) reproduce the classic
    /// unbounded [`Timeline`] bit-for-bit. Must be at least 1.
    pub hot_capacity: usize,
    /// Per-tenant SLO tracking: when set, every victim source gets an [`SloTracker`]
    /// against this floor.
    pub slo: Option<SloConfig>,
    /// Depth (in sample intervals) of the [`PressureWindow`] handed to adaptive
    /// mitigation stages.
    pub pressure_depth: usize,
    /// When set, samples aged out of the hot ring are appended to this file as JSON
    /// lines (the cold spill), so full detail survives on disk while memory stays
    /// bounded. Mitigation actions are spilled as a count, not structurally.
    pub spill: Option<PathBuf>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            // Large enough that every classic (≤ 90 s, 1 s interval) scenario fits the
            // hot tier entirely: short-horizon runs keep today's Timeline bit-for-bit.
            hot_capacity: 4096,
            slo: None,
            pressure_depth: 5,
            spill: None,
        }
    }
}

impl TelemetryConfig {
    /// Default config with a custom hot-ring capacity.
    pub fn with_hot_capacity(capacity: usize) -> Self {
        TelemetryConfig {
            hot_capacity: capacity,
            ..TelemetryConfig::default()
        }
    }

    /// Builder: track per-tenant SLOs against `floor_gbps`.
    pub fn with_slo_floor(mut self, floor_gbps: f64) -> Self {
        self.slo = Some(SloConfig { floor_gbps });
        self
    }

    /// Builder: spill aged-out samples to a JSON-lines file.
    pub fn with_spill(mut self, path: impl Into<PathBuf>) -> Self {
        self.spill = Some(path.into());
        self
    }
}

/// Scalar slots retained by one hot sample (footprint accounting): the fixed fields
/// plus each per-source/per-shard vector entry, with mitigation actions charged a
/// conservative 4 slots each.
fn sample_units(s: &TimelineSample) -> u64 {
    (7 + s.victim_gbps.len()
        + s.attacker_pps_by_source.len()
        + s.shard_masks.len()
        + s.shard_entries.len()
        + s.shard_attacker_pps.len()
        + 4 * s.mitigation_actions.len()) as u64
}

/// Scalar slots per [`SeriesAgg`].
const AGG_UNITS: u64 = 4 + BUCKETS as u64;

/// The two-tier telemetry store: a bounded hot ring of recent samples plus streaming
/// cold aggregates, per-tenant SLO trackers and the mitigation pressure window. See
/// the [module docs](self) for the architecture.
///
/// The store is created per run by
/// [`ExperimentRunner::run_mix`](crate::runner::ExperimentRunner::run_mix) (and
/// retrievable afterwards via
/// [`ExperimentRunner::last_telemetry`](crate::runner::ExperimentRunner::last_telemetry)),
/// but is equally usable standalone: feed it [`TimelineSample`]s via
/// [`TelemetryStore::record`].
#[derive(Debug)]
pub struct TelemetryStore {
    config: TelemetryConfig,
    sample_interval: f64,
    victim_names: Vec<String>,
    attacker_names: Vec<String>,
    shard_count: usize,
    hot: VecDeque<TimelineSample>,
    aged: u64,
    recorded: u64,
    victim_gbps: Vec<SeriesAgg>,
    attacker_pps: Vec<SeriesAgg>,
    shard_attacker_pps: Vec<SeriesAgg>,
    shard_masks: Vec<SeriesAgg>,
    total_victim_gbps: SeriesAgg,
    total_attacker_pps: SeriesAgg,
    background_pps: SeriesAgg,
    malformed_pps: SeriesAgg,
    mask_count: SeriesAgg,
    entry_count: SeriesAgg,
    slo: Vec<SloTracker>,
    pressure: PressureWindow,
    spill: Option<std::io::BufWriter<std::fs::File>>,
    spill_error: Option<String>,
}

impl TelemetryStore {
    /// Create a store for a run over the given sources and shard count.
    ///
    /// # Panics
    /// Panics if `config.hot_capacity` is 0 or `sample_interval` is not positive.
    pub fn new(
        config: TelemetryConfig,
        sample_interval: f64,
        victim_names: Vec<String>,
        attacker_names: Vec<String>,
        shard_count: usize,
    ) -> Self {
        assert!(config.hot_capacity >= 1, "hot ring needs capacity >= 1");
        assert!(sample_interval > 0.0, "sample interval must be positive");
        let slo = match &config.slo {
            Some(slo) => victim_names
                .iter()
                .map(|n| SloTracker::new(n.clone(), slo.floor_gbps))
                .collect(),
            None => Vec::new(),
        };
        let pressure = PressureWindow::new(shard_count, config.pressure_depth);
        TelemetryStore {
            hot: VecDeque::with_capacity(config.hot_capacity),
            aged: 0,
            recorded: 0,
            victim_gbps: vec![SeriesAgg::new(); victim_names.len()],
            attacker_pps: vec![SeriesAgg::new(); attacker_names.len()],
            shard_attacker_pps: vec![SeriesAgg::new(); shard_count],
            shard_masks: vec![SeriesAgg::new(); shard_count],
            total_victim_gbps: SeriesAgg::new(),
            total_attacker_pps: SeriesAgg::new(),
            background_pps: SeriesAgg::new(),
            malformed_pps: SeriesAgg::new(),
            mask_count: SeriesAgg::new(),
            entry_count: SeriesAgg::new(),
            slo,
            pressure,
            spill: None,
            spill_error: None,
            config,
            sample_interval,
            victim_names,
            attacker_names,
            shard_count,
        }
    }

    /// Record one sample with every victim considered active (the standalone form;
    /// the runner uses [`TelemetryStore::record`] with real activity flags).
    pub fn record_sample(&mut self, sample: TimelineSample) {
        self.record(sample, &[]);
    }

    /// Record one sample. `victim_active[i]` says whether victim `i` was active this
    /// interval (an inactive victim's 0 Gbps is idleness, not an SLO violation);
    /// victims beyond the slice are treated as active.
    pub fn record(&mut self, sample: TimelineSample, victim_active: &[bool]) {
        // Cold tier: stream every series in sample order.
        for (i, agg) in self.victim_gbps.iter_mut().enumerate() {
            agg.observe(sample.victim_gbps.get(i).copied().unwrap_or(0.0));
        }
        for (i, agg) in self.attacker_pps.iter_mut().enumerate() {
            agg.observe(sample.attacker_pps_by_source.get(i).copied().unwrap_or(0.0));
        }
        for (i, agg) in self.shard_attacker_pps.iter_mut().enumerate() {
            agg.observe(sample.shard_attacker_pps.get(i).copied().unwrap_or(0.0));
        }
        for (i, agg) in self.shard_masks.iter_mut().enumerate() {
            agg.observe(sample.shard_masks.get(i).copied().unwrap_or(0) as f64);
        }
        self.total_victim_gbps.observe(sample.total_victim_gbps());
        self.total_attacker_pps.observe(sample.attacker_pps);
        self.background_pps.observe(sample.background_pps);
        self.malformed_pps.observe(sample.malformed_pps);
        self.mask_count.observe(sample.mask_count as f64);
        self.entry_count.observe(sample.entry_count as f64);
        for (i, tracker) in self.slo.iter_mut().enumerate() {
            if victim_active.get(i).copied().unwrap_or(true) {
                let gbps = sample.victim_gbps.get(i).copied().unwrap_or(0.0);
                tracker.observe(sample.time, self.sample_interval, gbps);
            }
        }
        // Hot tier: bounded ring; overflow ages the oldest sample out (to the spill
        // file, when configured).
        if self.hot.len() == self.config.hot_capacity {
            let old = self.hot.pop_front().expect("ring is full");
            self.aged += 1;
            self.spill_sample(&old);
        }
        self.hot.push_back(sample);
        self.recorded += 1;
    }

    /// Push one interval's per-shard attack rates into the pressure window. The
    /// runner calls this *before* running the mitigation stack, so adaptive stages
    /// see the interval just measured.
    pub fn note_pressure(&mut self, shard_attack_pps: &[f64]) {
        self.pressure.push(shard_attack_pps);
    }

    /// The pressure window handed to adaptive mitigation stages.
    pub fn pressure(&self) -> &PressureWindow {
        &self.pressure
    }

    /// Close open SLO episodes and flush the spill file (end of run).
    pub fn finish(&mut self) {
        for tracker in &mut self.slo {
            tracker.finish();
        }
        if let Some(w) = &mut self.spill {
            if let Err(e) = w.flush() {
                self.spill_error = Some(e.to_string());
                self.spill = None;
            }
        }
    }

    /// The recent window as a classic [`Timeline`] — the compatibility view. When the
    /// run fit the hot ring entirely ([`TelemetryStore::aged_out`] == 0), this is
    /// bit-for-bit the timeline the unbounded runner produced.
    pub fn recent_timeline(&self) -> Timeline {
        Timeline {
            victim_names: self.victim_names.clone(),
            attacker_names: self.attacker_names.clone(),
            shard_count: self.shard_count,
            samples: self.hot.iter().cloned().collect(),
        }
    }

    /// The store's configuration.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// Victim source names, in series order.
    pub fn victim_names(&self) -> &[String] {
        &self.victim_names
    }

    /// Attacker source names, in series order.
    pub fn attacker_names(&self) -> &[String] {
        &self.attacker_names
    }

    /// Number of datapath shards.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Samples currently in the hot ring.
    pub fn hot_len(&self) -> usize {
        self.hot.len()
    }

    /// Samples aged out of the hot ring into the cold tier (and spill, if any).
    pub fn aged_out(&self) -> u64 {
        self.aged
    }

    /// Total samples recorded (`hot_len() as u64 + aged_out()`).
    pub fn samples_recorded(&self) -> u64 {
        self.recorded
    }

    /// Cold aggregate of victim `i`'s delivered Gbps over the whole run.
    pub fn victim_series(&self, i: usize) -> Option<&SeriesAgg> {
        self.victim_gbps.get(i)
    }

    /// Cold aggregate of attacker `i`'s delivered pps over the whole run.
    pub fn attacker_series(&self, i: usize) -> Option<&SeriesAgg> {
        self.attacker_pps.get(i)
    }

    /// Cold aggregate of shard `s`'s attack pps over the whole run.
    pub fn shard_attack_series(&self, s: usize) -> Option<&SeriesAgg> {
        self.shard_attacker_pps.get(s)
    }

    /// Cold aggregate of shard `s`'s mask count over the whole run.
    pub fn shard_mask_series(&self, s: usize) -> Option<&SeriesAgg> {
        self.shard_masks.get(s)
    }

    /// Cold aggregate of the victims' summed Gbps.
    pub fn total_victim_series(&self) -> &SeriesAgg {
        &self.total_victim_gbps
    }

    /// Cold aggregate of total attack pps.
    pub fn total_attacker_series(&self) -> &SeriesAgg {
        &self.total_attacker_pps
    }

    /// Cold aggregate of background (benign churn) pps.
    pub fn background_series(&self) -> &SeriesAgg {
        &self.background_pps
    }

    /// Cold aggregate of the malformed-frame rate (wire-level frames per second the
    /// parser could not classify; identically zero for key-level mixes).
    pub fn malformed_series(&self) -> &SeriesAgg {
        &self.malformed_pps
    }

    /// Cold aggregate of the switch-wide mask count.
    pub fn mask_series(&self) -> &SeriesAgg {
        &self.mask_count
    }

    /// Cold aggregate of the switch-wide entry count.
    pub fn entry_series(&self) -> &SeriesAgg {
        &self.entry_count
    }

    /// The per-tenant SLO trackers (empty unless [`TelemetryConfig::slo`] is set),
    /// in victim series order.
    pub fn slo_trackers(&self) -> &[SloTracker] {
        &self.slo
    }

    /// The SLO tracker for the named victim.
    pub fn slo_for(&self, name: &str) -> Option<&SloTracker> {
        self.slo.iter().find(|t| t.name() == name)
    }

    /// Deterministic memory footprint, in retained scalar slots: hot samples at their
    /// actual widths plus the (constant) cold tier, SLO trackers and pressure window.
    /// This is the metric the bench reports gate on — it is a pure function of the
    /// recorded samples, so it is bit-identical across executors and re-runs, and for
    /// any horizon `h ≥ hot_capacity` it is independent of `h`.
    pub fn footprint_units(&self) -> u64 {
        let hot: u64 = self.hot.iter().map(sample_units).sum();
        hot + self.cold_units() + self.slo_units() + self.pressure_units()
    }

    /// Upper bound on [`TelemetryStore::footprint_units`] for *any* horizon, given
    /// that no interval ever logs more than `max_actions_per_interval` mitigation
    /// actions: the hot ring at capacity × the maximal per-sample width, plus the
    /// constant cold/SLO/pressure tiers. This is what "provably bounded memory"
    /// means operationally: `footprint_units() ≤ footprint_ceiling(m)` holds at every
    /// instant of an arbitrarily long run.
    pub fn footprint_ceiling(&self, max_actions_per_interval: usize) -> u64 {
        let width = 7
            + self.victim_names.len()
            + self.attacker_names.len()
            + 3 * self.shard_count
            + 4 * max_actions_per_interval;
        let slo_ceiling = self.slo.len() as u64 * (AGG_UNITS + 8 + 2 * MAX_STORED_EPISODES as u64);
        self.config.hot_capacity as u64 * width as u64
            + self.cold_units()
            + slo_ceiling
            + self.pressure_units_ceiling()
    }

    fn cold_units(&self) -> u64 {
        let series = self.victim_gbps.len() + self.attacker_pps.len() + 2 * self.shard_count + 6;
        series as u64 * AGG_UNITS
    }

    fn slo_units(&self) -> u64 {
        self.slo
            .iter()
            .map(|t| AGG_UNITS + 8 + 2 * t.episodes.len() as u64)
            .sum()
    }

    fn pressure_units(&self) -> u64 {
        (self.pressure.len() * self.shard_count) as u64
    }

    fn pressure_units_ceiling(&self) -> u64 {
        (self.pressure.depth() * self.shard_count) as u64
    }

    /// The spill I/O error, if writing the cold spill ever failed (spilling is
    /// best-effort: the first error disables it and is recorded here).
    pub fn spill_error(&self) -> Option<&str> {
        self.spill_error.as_deref()
    }

    fn spill_sample(&mut self, s: &TimelineSample) {
        let Some(path) = &self.config.spill else {
            return;
        };
        if self.spill.is_none() && self.spill_error.is_none() {
            match std::fs::File::create(path) {
                Ok(f) => self.spill = Some(std::io::BufWriter::new(f)),
                Err(e) => {
                    self.spill_error = Some(e.to_string());
                    return;
                }
            }
        }
        let Some(w) = &mut self.spill else {
            return;
        };
        let mut line = String::with_capacity(256);
        line.push_str(&format!("{{\"time\":{}", s.time));
        push_array(&mut line, "victim_gbps", &s.victim_gbps);
        line.push_str(&format!(",\"attacker_pps\":{}", s.attacker_pps));
        push_array(
            &mut line,
            "attacker_pps_by_source",
            &s.attacker_pps_by_source,
        );
        line.push_str(&format!(",\"background_pps\":{}", s.background_pps));
        line.push_str(&format!(",\"malformed_pps\":{}", s.malformed_pps));
        line.push_str(&format!(
            ",\"mask_count\":{},\"entry_count\":{},\"victim_masks_scanned\":{}",
            s.mask_count, s.entry_count, s.victim_masks_scanned
        ));
        push_usize_array(&mut line, "shard_masks", &s.shard_masks);
        push_usize_array(&mut line, "shard_entries", &s.shard_entries);
        push_array(&mut line, "shard_attacker_pps", &s.shard_attacker_pps);
        line.push_str(&format!(
            ",\"mitigation_actions\":{}}}\n",
            s.mitigation_actions.len()
        ));
        if let Err(e) = w.write_all(line.as_bytes()) {
            self.spill_error = Some(e.to_string());
            self.spill = None;
        }
    }
}

fn push_array(out: &mut String, name: &str, vals: &[f64]) {
    out.push_str(&format!(",\"{name}\":["));
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{v}"));
    }
    out.push(']');
}

fn push_usize_array(out: &mut String, name: &str, vals: &[usize]) {
    out.push_str(&format!(",\"{name}\":["));
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{v}"));
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, gbps: f64) -> TimelineSample {
        TimelineSample {
            time: t,
            victim_gbps: vec![gbps],
            attacker_pps: 100.0,
            attacker_pps_by_source: vec![100.0],
            background_pps: 0.0,
            malformed_pps: 0.0,
            mask_count: 10,
            entry_count: 20,
            victim_masks_scanned: 3,
            shard_masks: vec![10],
            shard_entries: vec![20],
            shard_attacker_pps: vec![100.0],
            mitigation_actions: Vec::new(),
        }
    }

    #[test]
    fn histogram_buckets_are_deterministic_and_bounded() {
        let mut h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        for v in [0.0, -3.0, f64::NAN, 1e-300] {
            h.record(v); // all collapse into the underflow bucket
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.quantile(1.0), 0.0);
        h.record(1e300); // overflow bucket
        assert_eq!(h.quantile(1.0), MAX_TRACKED);
        // An in-domain value: the estimate underestimates by < 12.5 %.
        let mut h = LogHistogram::new();
        h.record(9.3);
        let est = h.quantile(0.5);
        assert!(est <= 9.3 && 9.3 < est * 9.0 / 8.0, "estimate {est}");
    }

    #[test]
    fn histogram_quantiles_walk_ranks() {
        let mut h = LogHistogram::new();
        for v in [1.0, 2.0, 4.0, 8.0] {
            h.record(v);
        }
        // Exact powers of two are bucket lower bounds: the estimates are exact.
        assert_eq!(h.quantile(0.25), 1.0);
        assert_eq!(h.quantile(0.5), 2.0);
        assert_eq!(h.quantile(0.75), 4.0);
        assert_eq!(h.quantile(1.0), 8.0);
        assert_eq!(h.quantile(0.0), 1.0, "q=0 clamps to rank 1");
    }

    #[test]
    fn slo_tracker_counts_episodes_and_recovery() {
        let mut t = SloTracker::new("tenant-0", 5.0);
        // 3 good, 2 bad, 2 good, 3 bad (open at finish).
        let series = [9.0, 9.0, 8.0, 1.0, 2.0, 9.0, 9.0, 0.5, 0.5, 0.5];
        for (i, v) in series.iter().enumerate() {
            t.observe(i as f64, 1.0, *v);
        }
        t.finish();
        assert_eq!(t.episode_count(), 2);
        assert_eq!(t.violating_intervals(), 5);
        assert_eq!(t.first_violation(), Some(3.0));
        assert_eq!(t.time_to_detect(1.0), Some(2.0));
        assert_eq!(t.longest_episode_seconds(), 3.0);
        assert_eq!(t.total_violation_seconds(), 5.0);
        assert_eq!(t.episodes(), &[(3.0, 5.0), (7.0, 10.0)]);
        assert_eq!(t.delivered().count(), 10);
    }

    #[test]
    fn store_ages_out_but_cold_tier_sees_everything() {
        let config = TelemetryConfig::with_hot_capacity(4).with_slo_floor(5.0);
        let mut store = TelemetryStore::new(config, 1.0, vec!["v".into()], vec!["a".into()], 1);
        for i in 0..10 {
            let gbps = if i >= 6 { 1.0 } else { 9.0 };
            store.record(sample(i as f64, gbps), &[true]);
        }
        store.finish();
        assert_eq!(store.hot_len(), 4);
        assert_eq!(store.aged_out(), 6);
        assert_eq!(store.samples_recorded(), 10);
        // The compatibility view holds the most recent window only …
        let tl = store.recent_timeline();
        assert_eq!(tl.samples.len(), 4);
        assert_eq!(tl.samples[0].time, 6.0);
        // … while the cold tier streamed all 10 samples.
        assert_eq!(store.victim_series(0).unwrap().count(), 10);
        assert_eq!(store.victim_series(0).unwrap().max(), 9.0);
        assert_eq!(store.victim_series(0).unwrap().min(), 1.0);
        assert_eq!(store.total_attacker_series().mean(), 100.0);
        let slo = &store.slo_trackers()[0];
        assert_eq!(slo.violating_intervals(), 4);
        assert_eq!(slo.episode_count(), 1);
        // The footprint never exceeds the ceiling, whatever the horizon.
        assert!(store.footprint_units() <= store.footprint_ceiling(0));
    }

    #[test]
    fn footprint_is_horizon_independent_past_capacity() {
        let mk = |steps: usize| {
            let mut store = TelemetryStore::new(
                TelemetryConfig::with_hot_capacity(8),
                1.0,
                vec!["v".into()],
                vec!["a".into()],
                1,
            );
            for i in 0..steps {
                store.record_sample(sample(i as f64, 9.0));
            }
            store.footprint_units()
        };
        let at_capacity = mk(8);
        assert_eq!(mk(100), at_capacity, "constant memory past the ring");
        assert_eq!(mk(10_000), at_capacity);
        assert!(mk(4) < at_capacity);
    }

    #[test]
    fn spill_writes_aged_samples_as_json_lines() {
        let dir = std::env::temp_dir().join("tse_telemetry_spill_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spill.jsonl");
        let config = TelemetryConfig::with_hot_capacity(2).with_spill(&path);
        let mut store = TelemetryStore::new(config, 1.0, vec!["v".into()], vec!["a".into()], 1);
        for i in 0..5 {
            store.record_sample(sample(i as f64, 9.0));
        }
        store.finish();
        assert_eq!(store.spill_error(), None);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "3 of 5 samples aged out");
        assert!(lines[0].starts_with("{\"time\":0"));
        assert!(lines[0].contains("\"victim_gbps\":[9]"));
        assert!(lines[2].contains("\"mitigation_actions\":0"));
        std::fs::remove_file(&path).ok();
    }
}
