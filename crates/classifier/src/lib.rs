//! # tse-classifier
//!
//! The packet-classification substrate of the Tuple Space Explosion reproduction:
//!
//! * [`rule`] / [`flowtable`] — OVS-style wildcard rules, actions and the ordered,
//!   priority-based flow table that the slow path consults (§2.1);
//! * [`tss`] — the Tuple Space Search megaflow cache: distinct masks, one hash per mask,
//!   and the Alg. 1 lookup whose cost grows linearly with the number of masks
//!   (Observation 1) — the data structure the TSE attack explodes;
//! * [`strategy`] — slow-path megaflow generation under the Cover and Independence
//!   invariants, with the exact-match / wildcarding / chunked / per-field strategies that
//!   realise the Theorem 4.1–4.2 space–time trade-offs;
//! * [`microflow`] — the small exact-match first-level cache;
//! * [`baseline`] — attack-immune alternatives (linear search, hierarchical tries,
//!   HyperCuts) recommended by §7 as long-term mitigations.
//!
//! The crate is deterministic and allocation-friendly: no traffic I/O happens here, only
//! pure classification logic, which is what makes the higher-level switch simulation and
//! the benchmark harness reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod baseline;
pub mod flowtable;
pub mod microflow;
pub mod rule;
pub mod strategy;
pub mod tss;

pub use backend::{
    BaselineBackend, FastPathBackend, HyperCutsBackend, LinearSearchBackend, TableBacked,
    TrieBackend,
};
pub use baseline::{Classification, Classifier, HierarchicalTrie, HyperCuts, LinearSearch};
pub use flowtable::{FlowTable, TableMatch};
pub use microflow::MicroflowCache;
pub use rule::{Action, Rule};
pub use strategy::{
    generate_megaflow, FieldStrategy, GeneratedMegaflow, GenerationError, MegaflowStrategy,
};
pub use tss::{InsertError, LookupOutcome, MaskOrdering, MegaflowEntry, TupleSpace};

#[cfg(test)]
mod proptests {
    //! Property-based tests over the classifier invariants.

    use proptest::prelude::*;
    use tse_packet::fields::{FieldDef, FieldSchema, Key};

    use crate::flowtable::FlowTable;
    use crate::strategy::{generate_megaflow, GenerationError, MegaflowStrategy};
    use crate::tss::TupleSpace;

    fn small_schema() -> FieldSchema {
        FieldSchema::new(vec![FieldDef::new("a", 5), FieldDef::new("b", 4)])
    }

    fn arb_header() -> impl Strategy<Value = (u128, u128)> {
        (0u128..32, 0u128..16)
    }

    proptest! {
        /// Populating the cache from any packet sequence keeps the Independence
        /// invariant and never mis-classifies relative to the flow table.
        #[test]
        fn cache_always_agrees_with_table(headers in proptest::collection::vec(arb_header(), 1..60),
                                          allow_a in 0u128..32, allow_b in 0u128..16) {
            let schema = small_schema();
            let table = FlowTable::whitelist_default_deny(&schema, &[(0, allow_a), (1, allow_b)]);
            let strategy = MegaflowStrategy::wildcarding(&schema);
            let mut cache = TupleSpace::new(schema.clone());
            for &(a, b) in &headers {
                let h = Key::from_values(&schema, &[a, b]);
                if cache.lookup(&h, 0.0).action.is_some() {
                    continue;
                }
                match generate_megaflow(&table, &cache, &h, &strategy) {
                    Ok(g) => { cache.insert(g.key, g.mask, g.action, 0.0).unwrap(); }
                    Err(GenerationError::AlreadyCovered) => {}
                    Err(e) => panic!("unexpected generation error: {e}"),
                }
            }
            prop_assert!(cache.check_independence());
            for &(a, b) in &headers {
                let h = Key::from_values(&schema, &[a, b]);
                let expect = table.lookup(&h).unwrap().action;
                let got = cache.lookup(&h, 0.0).action;
                prop_assert_eq!(got, Some(expect));
            }
        }

        /// The mask count is bounded by the product of the field widths plus the allow
        /// tuples (Theorem 4.2 with k_i = w_i), no matter what traffic arrives.
        #[test]
        fn mask_count_bounded_by_width_product(headers in proptest::collection::vec(arb_header(), 1..200)) {
            let schema = small_schema();
            let table = FlowTable::whitelist_default_deny(&schema, &[(0, 7), (1, 3)]);
            let strategy = MegaflowStrategy::wildcarding(&schema);
            let mut cache = TupleSpace::new(schema.clone());
            for &(a, b) in &headers {
                let h = Key::from_values(&schema, &[a, b]);
                if cache.lookup(&h, 0.0).action.is_some() {
                    continue;
                }
                if let Ok(g) = generate_megaflow(&table, &cache, &h, &strategy) {
                    cache.insert(g.key, g.mask, g.action, 0.0).unwrap();
                }
            }
            let bound = (5 * 4 + 1 + 1) as usize; // prod(w_i) + allow tuples
            prop_assert!(cache.mask_count() <= bound,
                         "mask count {} exceeds bound {}", cache.mask_count(), bound);
        }

        /// Baseline classifiers always agree with the flow table on arbitrary headers.
        #[test]
        fn baselines_agree_with_table(queries in proptest::collection::vec(arb_header(), 1..50),
                                      allow_a in 0u128..32, allow_b in 0u128..16) {
            use crate::baseline::{Classifier, HierarchicalTrie, HyperCuts, LinearSearch};
            let schema = small_schema();
            let table = FlowTable::whitelist_default_deny(&schema, &[(0, allow_a), (1, allow_b)]);
            let linear = LinearSearch::build(&table);
            let trie = HierarchicalTrie::build(&table);
            let hc = HyperCuts::build(&table);
            for &(a, b) in &queries {
                let h = Key::from_values(&schema, &[a, b]);
                let expect = table.lookup(&h).map(|m| m.action);
                prop_assert_eq!(linear.classify(&h).action, expect);
                prop_assert_eq!(trie.classify(&h).action, expect);
                prop_assert_eq!(hc.classify(&h).action, expect);
            }
        }
    }
}
