//! Wildcard rules and actions — the elements of an OVS-style flow table (§2.1).

use std::fmt;

use tse_packet::fields::{self, FieldSchema, Key, Mask};

/// The action a rule or cache entry applies to matching packets.
///
/// The reproduction needs only the actions the paper's ACLs use: *allow* (forward to the
/// tenant's port), *deny* (drop) and an explicit *forward to port* used by the switch
/// examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Accept / forward the packet to its destination tenant.
    Allow,
    /// Drop the packet.
    Deny,
    /// Forward to an explicit output port.
    Forward(u16),
}

impl Action {
    /// True for any action that lets the packet through ([`Action::Allow`] or
    /// [`Action::Forward`]).
    pub fn permits(self) -> bool {
        !matches!(self, Action::Deny)
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Allow => write!(f, "allow"),
            Action::Deny => write!(f, "deny"),
            Action::Forward(p) => write!(f, "output:{p}"),
        }
    }
}

/// A single wildcard flow rule: a key/mask match over the schema's fields, a priority
/// and an action. Two rules *overlap* if some packet matches both; the higher priority
/// wins (§2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Values of the matched bits.
    pub key: Key,
    /// Which header bits the rule examines (all-zero = match-all).
    pub mask: Mask,
    /// Priority; larger values win. The DefaultDeny rule uses priority 0.
    pub priority: u32,
    /// Action applied to matching packets.
    pub action: Action,
}

impl Rule {
    /// Create a rule. The key is canonicalised (`key & mask`) so that bits outside the
    /// mask can never influence equality or matching.
    pub fn new(key: Key, mask: Mask, priority: u32, action: Action) -> Self {
        let key = key.apply_mask(&mask);
        Rule {
            key,
            mask,
            priority,
            action,
        }
    }

    /// A match-everything rule (used for DefaultDeny).
    pub fn match_all(schema: &FieldSchema, priority: u32, action: Action) -> Self {
        Rule::new(schema.zero_value(), schema.empty_mask(), priority, action)
    }

    /// A rule that exact-matches a single field and wildcards everything else — the shape
    /// of every allow rule in the paper's ACLs ("each exact-matching on a single header
    /// field", Theorem 4.2).
    pub fn exact_on_field(
        schema: &FieldSchema,
        field: usize,
        value: u128,
        priority: u32,
        action: Action,
    ) -> Self {
        let mut key = schema.zero_value();
        let mut mask = schema.empty_mask();
        key.set(field, value);
        mask.set(field, schema.fields()[field].full_mask());
        Rule::new(key, mask, priority, action)
    }

    /// Does `header` match this rule?
    pub fn matches(&self, header: &Key) -> bool {
        fields::matches(header, &self.key, &self.mask)
    }

    /// Do this rule and `other` overlap (some packet matches both)?
    pub fn overlaps(&self, other: &Rule) -> bool {
        !fields::disjoint(&self.key, &self.mask, &other.key, &other.mask)
    }

    /// Number of examined (non-wildcarded) bits.
    pub fn examined_bits(&self) -> u32 {
        self.mask.popcount()
    }

    /// Render in the style of the paper's figures (binary per field, `*` for fully
    /// wildcarded fields).
    pub fn render(&self, schema: &FieldSchema) -> String {
        let mut parts = Vec::new();
        for (i, f) in schema.fields().iter().enumerate() {
            let m = self.mask.get(i);
            if m == 0 {
                parts.push("*".repeat(f.width.min(8) as usize));
            } else {
                let width = f.width as usize;
                let key_bits = format!("{:0width$b}", self.key.get(i));
                let mask_bits = format!("{:0width$b}", m);
                let rendered: String = key_bits
                    .chars()
                    .zip(mask_bits.chars())
                    .map(|(k, m)| if m == '1' { k } else { '*' })
                    .collect();
                parts.push(rendered);
            }
        }
        format!("{} -> {}", parts.join(" "), self.action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_permits() {
        assert!(Action::Allow.permits());
        assert!(Action::Forward(3).permits());
        assert!(!Action::Deny.permits());
    }

    #[test]
    fn exact_on_field_builds_fig1_allow_rule() {
        let s = FieldSchema::hyp();
        let r = Rule::exact_on_field(&s, 0, 0b001, 10, Action::Allow);
        assert!(r.matches(&Key::from_values(&s, &[0b001])));
        assert!(!r.matches(&Key::from_values(&s, &[0b101])));
        assert_eq!(r.examined_bits(), 3);
    }

    #[test]
    fn match_all_matches_everything() {
        let s = FieldSchema::hyp2();
        let r = Rule::match_all(&s, 0, Action::Deny);
        for hyp in 0..8u128 {
            for hyp2 in 0..16u128 {
                assert!(r.matches(&Key::from_values(&s, &[hyp, hyp2])));
            }
        }
    }

    #[test]
    fn overlap_between_allow_and_default_deny() {
        let s = FieldSchema::hyp();
        let allow = Rule::exact_on_field(&s, 0, 0b001, 10, Action::Allow);
        let deny = Rule::match_all(&s, 0, Action::Deny);
        assert!(allow.overlaps(&deny));
        assert!(deny.overlaps(&allow));
    }

    #[test]
    fn key_canonicalised_to_mask() {
        let s = FieldSchema::hyp();
        let key = Key::from_values(&s, &[0b111]);
        let mask = Mask::from_values(&s, &[0b100]);
        let r = Rule::new(key, mask, 1, Action::Deny);
        assert_eq!(r.key.get(0), 0b100);
    }

    #[test]
    fn render_matches_paper_style() {
        let s = FieldSchema::hyp2();
        let r = Rule::exact_on_field(&s, 0, 0b001, 10, Action::Allow);
        assert_eq!(r.render(&s), "001 **** -> allow");
        let d = Rule::match_all(&s, 0, Action::Deny);
        assert_eq!(d.render(&s), "*** **** -> deny");
    }

    #[test]
    fn render_partial_mask() {
        let s = FieldSchema::hyp();
        let r = Rule::new(
            Key::from_values(&s, &[0b100]),
            Mask::from_values(&s, &[0b100]),
            1,
            Action::Deny,
        );
        assert_eq!(r.render(&s), "1** -> deny");
    }
}
