//! Slow-path megaflow generation: turning a flow-table decision for one packet into a
//! megaflow cache entry.
//!
//! §3.2 explains that when the slow path installs a new MFC entry `C` for a packet with
//! header `h` it maintains two invariants — *Cover* (`h` matches `C`) and *Independence*
//! (`C` is disjoint from every existing entry) — and that within those constraints there
//! are multiple valid choices, "each striking a different balance between space- and
//! time-complexity":
//!
//! * the **exact-match** strategy (Fig. 2): one mask, exponentially many entries
//!   (optimal time, `O(2^w)` space — the `k = 1` end of Theorem 4.1);
//! * the **wildcarding** strategy (Fig. 3): wildcard as many bits as possible, giving the
//!   smallest cache but one mask per tested bit (`k = w`, the strategy OVS leans toward);
//! * intermediate, **chunked** constructions that un-wildcard `c` bits at a time
//!   (`k = ⌈w/c⌉`, the general Theorem 4.1 trade-off).
//!
//! OVS additionally mixes strategies per field — e.g. it exact-matches IPv6 source
//! addresses while bit-level wildcarding TCP ports, producing the §5.4 memory-explosion
//! anomaly — which is modelled by per-field strategies.

use tse_packet::fields::{FieldSchema, Key, Mask};

use crate::backend::FastPathBackend;
use crate::flowtable::FlowTable;
use crate::rule::Action;

/// How un-wildcarding is performed within one header field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldStrategy {
    /// Un-wildcard individual bits, most-significant first (OVS's usual behaviour;
    /// `k_i = w_i`).
    BitLevel,
    /// Any touch of the field un-wildcards the whole field (`k_i = 1`); this is what OVS
    /// does to IPv6 addresses in the §5.4 anomaly.
    Exact,
    /// Un-wildcard whole chunks of the given number of bits (`k_i = ⌈w_i / c⌉`), the
    /// intermediate points of Theorem 4.1.
    Chunked(u32),
}

/// The megaflow-generation strategy: one [`FieldStrategy`] per schema field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MegaflowStrategy {
    per_field: Vec<FieldStrategy>,
}

impl MegaflowStrategy {
    /// The OVS default: bit-level wildcarding on every field.
    pub fn wildcarding(schema: &FieldSchema) -> Self {
        Self::uniform(schema, FieldStrategy::BitLevel)
    }

    /// Exact-match on every field (the Fig. 2 construction).
    pub fn exact_match(schema: &FieldSchema) -> Self {
        Self::uniform(schema, FieldStrategy::Exact)
    }

    /// Chunked un-wildcarding with the same chunk size on every field.
    pub fn chunked(schema: &FieldSchema, chunk_bits: u32) -> Self {
        assert!(chunk_bits >= 1);
        Self::uniform(schema, FieldStrategy::Chunked(chunk_bits))
    }

    /// The same strategy for every field.
    pub fn uniform(schema: &FieldSchema, strategy: FieldStrategy) -> Self {
        MegaflowStrategy {
            per_field: vec![strategy; schema.field_count()],
        }
    }

    /// Explicit per-field strategies (must match the schema's field count).
    pub fn per_field(strategies: Vec<FieldStrategy>) -> Self {
        MegaflowStrategy {
            per_field: strategies,
        }
    }

    /// The OVS IPv6 behaviour observed in §5.4: exact-match the 128-bit address fields,
    /// bit-level wildcard everything else.
    pub fn ovs_ipv6_anomaly(schema: &FieldSchema) -> Self {
        let per_field = schema
            .fields()
            .iter()
            .map(|f| {
                if f.width >= 64 {
                    FieldStrategy::Exact
                } else {
                    FieldStrategy::BitLevel
                }
            })
            .collect();
        MegaflowStrategy { per_field }
    }

    /// Strategy for field `idx`.
    pub fn field(&self, idx: usize) -> FieldStrategy {
        self.per_field[idx]
    }

    /// Expand a single-bit un-wildcarding request into the strategy's granularity: the
    /// returned bitmap covers the whole field (Exact), the chunk containing `bit`
    /// (Chunked), or just `bit` (BitLevel).
    fn expand_bit(&self, schema: &FieldSchema, field: usize, bit: u32) -> u128 {
        let width = schema.width(field);
        match self.per_field[field] {
            FieldStrategy::BitLevel => 1u128 << bit,
            FieldStrategy::Exact => schema.fields()[field].full_mask(),
            FieldStrategy::Chunked(c) => {
                let chunk_index = bit / c;
                let lo = chunk_index * c;
                let hi = ((chunk_index + 1) * c).min(width);
                let ones = if hi - lo == 128 {
                    u128::MAX
                } else {
                    (1u128 << (hi - lo)) - 1
                };
                ones << lo
            }
        }
    }

    /// Expand a whole-field mask value through the strategy (used for the matched rule's
    /// own mask).
    fn expand_mask_field(&self, schema: &FieldSchema, field: usize, mask_bits: u128) -> u128 {
        if mask_bits == 0 {
            return 0;
        }
        match self.per_field[field] {
            FieldStrategy::BitLevel => mask_bits,
            FieldStrategy::Exact => schema.fields()[field].full_mask(),
            FieldStrategy::Chunked(_) => {
                let mut out = 0u128;
                for bit in 0..schema.width(field) {
                    if mask_bits >> bit & 1 == 1 {
                        out |= self.expand_bit(schema, field, bit);
                    }
                }
                out
            }
        }
    }
}

/// A megaflow entry produced by the slow path, ready for insertion into the MFC.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedMegaflow {
    /// The masked key.
    pub key: Key,
    /// The generated mask.
    pub mask: Mask,
    /// The action of the matched flow-table rule.
    pub action: Action,
    /// Index of the matched rule in the flow table.
    pub rule_index: usize,
}

/// Errors from megaflow generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerationError {
    /// The flow table has no matching rule for the header (no DefaultDeny installed).
    NoMatchingRule,
    /// An existing cache entry already covers this header (the fast path should have hit;
    /// the caller usually treats this as "nothing to install").
    AlreadyCovered,
    /// Could not make the new entry disjoint from the existing cache (should not happen
    /// for well-formed tables; kept as a defensive error).
    CannotDisambiguate,
}

impl std::fmt::Display for GenerationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenerationError::NoMatchingRule => write!(f, "no matching rule in the flow table"),
            GenerationError::AlreadyCovered => {
                write!(f, "an existing megaflow already covers the header")
            }
            GenerationError::CannotDisambiguate => {
                write!(f, "unable to construct a disjoint megaflow entry")
            }
        }
    }
}

impl std::error::Error for GenerationError {}

/// Generate a megaflow entry for `header` against `table`, disjoint from everything in
/// `cache`, under the given `strategy`.
///
/// The construction follows the OVS heuristic the paper describes:
///
/// 1. start from the matched rule's own mask (so every packet covered by the new entry
///    also matches that rule — Cover plus action-correctness);
/// 2. for every higher-priority rule the header *fails* to match, un-wildcard the bits of
///    that rule's mask scanned (field order, most-significant bit first) up to and
///    including the first bit on which the header differs — the "test the bits one by
///    one" decomposition that yields Fig. 3 and Fig. 5;
/// 3. as a safety net, while the candidate still overlaps an existing cache entry,
///    un-wildcard one more differing bit (this loop does not fire for the
///    WhiteList+DefaultDeny ACLs the paper studies, but keeps generation correct for
///    arbitrary rule sets).
pub fn generate_megaflow<B: FastPathBackend + ?Sized>(
    table: &FlowTable,
    cache: &B,
    header: &Key,
    strategy: &MegaflowStrategy,
) -> Result<GeneratedMegaflow, GenerationError> {
    let schema = table.schema();
    let matched = table
        .lookup(header)
        .ok_or(GenerationError::NoMatchingRule)?;
    let rule = &table.rules()[matched.rule_index];

    // Step 1: the matched rule's mask, expanded through the strategy.
    let mut mask = schema.empty_mask();
    for f in 0..schema.field_count() {
        mask.set(f, strategy.expand_mask_field(schema, f, rule.mask.get(f)));
    }

    // Step 2: differentiate from every higher-priority rule.
    for &hp_index in &table.higher_priority_than(matched.rule_index) {
        let hp = &table.rules()[hp_index];
        debug_assert!(
            !hp.matches(header),
            "higher-priority rule would have matched first"
        );
        let mut found = false;
        'fields: for f in 0..schema.field_count() {
            let rule_mask = hp.mask.get(f);
            if rule_mask == 0 {
                continue;
            }
            let width = schema.width(f);
            for bit in (0..width).rev() {
                if rule_mask >> bit & 1 == 0 {
                    continue;
                }
                // Un-wildcard this examined bit of the higher-priority rule.
                let add = strategy.expand_bit(schema, f, bit);
                mask.set(f, mask.get(f) | add);
                let differs = (header.get(f) ^ hp.key.get(f)) >> bit & 1 == 1;
                if differs {
                    found = true;
                    break 'fields;
                }
            }
        }
        // `found` can only be false if the header actually matches `hp`, which the
        // debug_assert above excludes; in release builds fall through harmlessly.
        let _ = found;
    }

    // Step 3: safety net — resolve any residual overlap with existing cache entries.
    let total_bits = schema.total_width();
    let mut iterations = 0;
    loop {
        let key = header.apply_mask(&mask);
        match cache.find_conflict(&key, &mask) {
            None => {
                return Ok(GeneratedMegaflow {
                    key,
                    mask,
                    action: matched.action,
                    rule_index: matched.rule_index,
                });
            }
            Some((conflict_key, conflict_mask)) => {
                iterations += 1;
                if iterations > total_bits {
                    return Err(GenerationError::CannotDisambiguate);
                }
                // Find a bit examined by the conflicting entry on which the header
                // differs and which we have not yet un-wildcarded.
                let mut added = false;
                'outer: for f in 0..schema.field_count() {
                    let candidate_bits =
                        conflict_mask.get(f) & !mask.get(f) & (header.get(f) ^ conflict_key.get(f));
                    if candidate_bits != 0 {
                        let bit = 127 - candidate_bits.leading_zeros();
                        mask.set(f, mask.get(f) | strategy.expand_bit(schema, f, bit));
                        added = true;
                        break 'outer;
                    }
                }
                if !added {
                    // No differing bit exists: the conflicting entry already covers this
                    // header, so the fast path would have hit it.
                    return Err(GenerationError::AlreadyCovered);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowtable::FlowTable;
    use crate::tss::TupleSpace;

    fn hyp_key(v: u128) -> Key {
        Key::from_values(&FieldSchema::hyp(), &[v])
    }

    /// Drive the slow path for a sequence of headers and return the resulting cache.
    fn populate(table: &FlowTable, strategy: &MegaflowStrategy, headers: &[Key]) -> TupleSpace {
        let mut cache = TupleSpace::new(table.schema().clone());
        for h in headers {
            if cache.lookup(h, 0.0).action.is_some() {
                continue;
            }
            match generate_megaflow(table, &cache, h, strategy) {
                Ok(g) => cache.insert(g.key, g.mask, g.action, 0.0).unwrap(),
                Err(GenerationError::AlreadyCovered) => {}
                Err(e) => panic!("generation failed: {e}"),
            }
        }
        cache
    }

    #[test]
    fn wildcarding_reproduces_fig3() {
        // §5.1 single-header adversarial trace: { 001, 101, 011, 000 }.
        let table = FlowTable::fig1_hyp();
        let strategy = MegaflowStrategy::wildcarding(table.schema());
        let trace: Vec<Key> = [0b001u128, 0b101, 0b011, 0b000]
            .iter()
            .map(|&v| hyp_key(v))
            .collect();
        let cache = populate(&table, &strategy, &trace);
        assert_eq!(cache.entry_count(), 4, "Fig. 3 has 4 entries");
        assert_eq!(cache.mask_count(), 3, "Fig. 3 has 3 masks");
        assert!(cache.check_independence());
        // The exact entries of Fig. 3.
        let rendered = cache.render();
        assert!(rendered.contains("key=001 mask=111 -> allow"));
        assert!(rendered.contains("key=100 mask=100 -> deny"));
        assert!(rendered.contains("key=010 mask=110 -> deny"));
        assert!(rendered.contains("key=000 mask=111 -> deny"));
    }

    #[test]
    fn exact_match_reproduces_fig2() {
        let table = FlowTable::fig1_hyp();
        let strategy = MegaflowStrategy::exact_match(table.schema());
        let trace: Vec<Key> = (0..8u128).map(hyp_key).collect();
        let cache = populate(&table, &strategy, &trace);
        assert_eq!(cache.mask_count(), 1, "Fig. 2 uses a single exact mask");
        assert_eq!(cache.entry_count(), 8, "Fig. 2 has all 2^3 keys");
    }

    #[test]
    fn generated_cache_agrees_with_flow_table() {
        // Semantic equivalence: after populating with every possible header, the cache
        // gives the same verdict as the slow path for every header.
        let table = FlowTable::fig4_hyp2();
        let schema = table.schema().clone();
        let strategy = MegaflowStrategy::wildcarding(&schema);
        let all: Vec<Key> = (0..8u128)
            .flat_map(|a| (0..16u128).map(move |b| (a, b)))
            .map(|(a, b)| Key::from_values(&schema, &[a, b]))
            .collect();
        let mut cache = populate(&table, &strategy, &all);
        for h in &all {
            let expect = table.lookup(h).unwrap().action;
            let got = cache.lookup(h, 0.0).action.unwrap();
            assert_eq!(got, expect, "header {}", h.to_binary_string(&schema));
        }
        assert!(cache.check_independence());
    }

    #[test]
    fn two_field_acl_yields_13_masks() {
        // §4.2: the Fig. 4 ACL yields 3*4 + 1 = 13 masks under the wildcarding strategy
        // when the whole header space is exercised.
        let table = FlowTable::fig4_hyp2();
        let schema = table.schema().clone();
        let strategy = MegaflowStrategy::wildcarding(&schema);
        let all: Vec<Key> = (0..8u128)
            .flat_map(|a| (0..16u128).map(move |b| (a, b)))
            .map(|(a, b)| Key::from_values(&schema, &[a, b]))
            .collect();
        let cache = populate(&table, &strategy, &all);
        assert_eq!(cache.mask_count(), 13);
    }

    #[test]
    fn chunked_strategy_trades_masks_for_entries() {
        // Theorem 4.1 in executable form on an 8-bit field: k = w/c masks, ~k * 2^c
        // entries when the whole space is exercised.
        let schema = FieldSchema::new(vec![tse_packet::fields::FieldDef::new("f", 8)]);
        let table = FlowTable::whitelist_default_deny(&schema, &[(0, 0x55)]);
        let all: Vec<Key> = (0..256u128)
            .map(|v| Key::from_values(&schema, &[v]))
            .collect();

        let wild = populate(&table, &MegaflowStrategy::wildcarding(&schema), &all);
        let chunk4 = populate(&table, &MegaflowStrategy::chunked(&schema, 4), &all);
        let exact = populate(&table, &MegaflowStrategy::exact_match(&schema), &all);

        // Masks: 8 (+1 for the allow tuple shared) >= 2 >= 1.
        assert!(wild.mask_count() > chunk4.mask_count());
        assert!(chunk4.mask_count() > exact.mask_count());
        // Entries go the other way.
        assert!(wild.entry_count() < chunk4.entry_count());
        assert!(chunk4.entry_count() < exact.entry_count());
        assert_eq!(exact.entry_count(), 256);
    }

    #[test]
    fn per_field_exact_explodes_entries_not_masks() {
        // The IPv6 anomaly in miniature: exact-match the first field, wildcard the second.
        let schema = FieldSchema::new(vec![
            tse_packet::fields::FieldDef::new("addr", 8),
            tse_packet::fields::FieldDef::new("port", 4),
        ]);
        let table = FlowTable::whitelist_default_deny(&schema, &[(0, 1), (1, 2)]);
        let strategy =
            MegaflowStrategy::per_field(vec![FieldStrategy::Exact, FieldStrategy::BitLevel]);
        let all: Vec<Key> = (0..256u128)
            .flat_map(|a| (0..16u128).map(move |b| (a, b)))
            .map(|(a, b)| Key::from_values(&schema, &[a, b]))
            .collect();
        let cache = populate(&table, &strategy, &all);
        let wild = populate(&table, &MegaflowStrategy::wildcarding(&schema), &all);
        assert!(cache.mask_count() < wild.mask_count());
        assert!(cache.entry_count() > 10 * wild.entry_count());
    }

    #[test]
    fn already_covered_reported() {
        let table = FlowTable::fig1_hyp();
        let strategy = MegaflowStrategy::wildcarding(table.schema());
        let mut cache = TupleSpace::new(table.schema().clone());
        let g = generate_megaflow(&table, &cache, &hyp_key(0b111), &strategy).unwrap();
        cache.insert(g.key, g.mask, g.action, 0.0).unwrap();
        // 101 is covered by the (1**, deny) entry.
        let err = generate_megaflow(&table, &cache, &hyp_key(0b101), &strategy);
        assert_eq!(err, Err(GenerationError::AlreadyCovered));
    }

    #[test]
    fn empty_table_is_an_error() {
        let schema = FieldSchema::hyp();
        let table = FlowTable::new(schema.clone());
        let cache = TupleSpace::new(schema.clone());
        let err = generate_megaflow(
            &table,
            &cache,
            &hyp_key(0),
            &MegaflowStrategy::wildcarding(&schema),
        );
        assert_eq!(err, Err(GenerationError::NoMatchingRule));
    }

    #[test]
    fn ovs_ipv6_anomaly_strategy_selects_exact_for_wide_fields() {
        let schema = FieldSchema::ovs_ipv6();
        let s = MegaflowStrategy::ovs_ipv6_anomaly(&schema);
        assert_eq!(s.field(0), FieldStrategy::Exact); // ip6_src
        assert_eq!(s.field(5), FieldStrategy::BitLevel); // tp_dst
    }
}
