//! The Tuple Space Search megaflow cache (MFC).
//!
//! The MFC is an unordered set of key/mask pairs `C = {(K, M)}` (§3.2). TSS maintains
//! the list of distinct masks `M` (the "tuple space") and, for each mask, a hash map
//! from masked keys to entries. Lookup (Alg. 1) iterates over the masks in order and
//! performs one hash probe per mask, early-exiting on the first hit — which is only
//! correct because entries are kept pairwise disjoint (Inv(2)).
//!
//! > *Observation 1: the time-complexity of TSS lookup grows linearly with the number of
//! > distinct masks O(|M|) and the space-complexity linearly with the number of entries
//! > O(|C|).*
//!
//! This module exposes exactly those two quantities ([`TupleSpace::mask_count`] /
//! [`TupleSpace::entry_count`]) plus the per-lookup work ([`LookupOutcome::masks_scanned`])
//! that the switch's cost model converts into throughput.

use std::collections::HashMap;

use tse_packet::fields::{self, FieldSchema, Key, Mask};

use crate::rule::Action;

/// One megaflow entry: a key under a mask, its action, and bookkeeping used by the
/// eviction policy and MFCGuard.
#[derive(Debug, Clone, PartialEq)]
pub struct MegaflowEntry {
    /// Masked key (always stored canonicalised: `key & mask`).
    pub key: Key,
    /// The entry's mask (shared with every other entry in the same tuple).
    pub mask: Mask,
    /// Cached action.
    pub action: Action,
    /// Number of fast-path hits.
    pub hits: u64,
    /// Simulation time (seconds) of the last hit or of insertion.
    pub last_used: f64,
    /// Simulation time the entry was installed.
    pub installed_at: f64,
}

/// Result of a TSS lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct LookupOutcome {
    /// The matched action, or `None` on a cache miss.
    pub action: Option<Action>,
    /// Number of masks scanned (= number of hash probes). On a miss this equals the
    /// total number of masks — the attacker's whole point.
    pub masks_scanned: usize,
}

/// How the mask list is ordered during lookup. Real OVS periodically sorts masks by hit
/// count so that frequently hit tuples are probed first; this is exposed as an ablation
/// (it helps benign traffic a little but cannot help the deny-miss path the attack
/// exercises, because a miss always scans every mask).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaskOrdering {
    /// Probe masks in insertion order (simplest; the paper's model).
    #[default]
    Insertion,
    /// Probe masks newest-first: a newly created mask is prepended to the probe order.
    /// This models the observed OVS datapath behaviour that a long-established flow's
    /// mask does not stay at the front of the scan once an attack starts spawning masks,
    /// so victim traffic pays the (near-)full scan — the regime measured in Fig. 8a/9a.
    NewestFirst,
    /// Probe masks in decreasing hit-count order (OVS's periodic re-sort).
    HitCount,
}

/// One tuple (all entries sharing a mask) plus the conflict-index summaries that let
/// [`TupleSpace::find_conflict`] rule the whole tuple out without scanning its entries.
///
/// The summaries are the bitwise AND / OR of every stored (masked) key, maintained
/// incrementally on insert and recomputed on removal. A prospective entry `(K, M)` can
/// conflict with some entry of this tuple only if an entry agrees with `K` on every bit
/// of `M AND mask`; if `K` has a 1 where *no* stored key does (`!key_or`), or a 0 where
/// *every* stored key has a 1 (`key_and`), no entry can agree and the tuple is skipped
/// in O(fields) instead of O(entries).
#[derive(Debug, Clone)]
struct TupleBucket {
    /// Masked key -> entry.
    entries: HashMap<Key, MegaflowEntry>,
    /// Bitwise AND of all stored keys (all-ones where every entry agrees on 1).
    key_and: Key,
    /// Bitwise OR of all stored keys (zero where every entry agrees on 0).
    key_or: Key,
}

impl TupleBucket {
    fn new(first_key: &Key) -> Self {
        TupleBucket {
            entries: HashMap::new(),
            key_and: first_key.clone(),
            key_or: first_key.clone(),
        }
    }

    /// Fold one more key into the summaries (call before/after inserting it).
    fn absorb(&mut self, key: &Key) {
        self.key_and = self.key_and.and(key);
        self.key_or = self.key_or.or(key);
    }

    /// Recompute the summaries from scratch (after removals). No-op on an empty bucket
    /// (it is about to be dropped).
    fn rebuild_summary(&mut self) {
        // lint: allow(nondet-iteration) — commutative AND/OR folds, order-free summary
        let mut it = self.entries.keys();
        let Some(first) = it.next() else { return };
        let mut key_and = first.clone();
        let mut key_or = first.clone();
        for k in it {
            key_and = key_and.and(k);
            key_or = key_or.or(k);
        }
        self.key_and = key_and;
        self.key_or = key_or;
    }
}

/// The TSS megaflow cache.
#[derive(Debug, Clone)]
pub struct TupleSpace {
    schema: FieldSchema,
    ordering: MaskOrdering,
    /// Distinct masks in probe order.
    masks: Vec<Mask>,
    /// Per-mask hit counters (parallel to `masks`), used by [`MaskOrdering::HitCount`].
    mask_hits: Vec<u64>,
    /// Per-mask buckets: entries plus the conflict-index summaries.
    tuples: HashMap<Mask, TupleBucket>,
}

impl TupleSpace {
    /// Create an empty cache.
    pub fn new(schema: FieldSchema) -> Self {
        TupleSpace {
            schema,
            ordering: MaskOrdering::Insertion,
            masks: Vec::new(),
            mask_hits: Vec::new(),
            tuples: HashMap::new(),
        }
    }

    /// Create an empty cache with an explicit mask-ordering policy.
    pub fn with_ordering(schema: FieldSchema, ordering: MaskOrdering) -> Self {
        TupleSpace {
            ordering,
            ..TupleSpace::new(schema)
        }
    }

    /// The schema of keys stored in the cache.
    pub fn schema(&self) -> &FieldSchema {
        &self.schema
    }

    /// The probe-order policy in effect.
    pub fn ordering(&self) -> MaskOrdering {
        self.ordering
    }

    /// Change the probe-order policy. Takes effect for subsequent inserts/lookups; the
    /// existing probe order is left as-is (callers normally set this on an empty cache).
    pub fn set_ordering(&mut self, ordering: MaskOrdering) {
        self.ordering = ordering;
    }

    /// Number of distinct masks |M| — the attacker's target metric.
    pub fn mask_count(&self) -> usize {
        self.masks.len()
    }

    /// Number of entries |C|.
    pub fn entry_count(&self) -> usize {
        // lint: allow(nondet-iteration) — integer sum of bucket sizes, order-free
        self.tuples.values().map(|t| t.entries.len()).sum()
    }

    /// The distinct masks in current probe order.
    pub fn masks(&self) -> &[Mask] {
        &self.masks
    }

    /// The distinct masks in probe order, each with its cumulative fast-path hit count
    /// — the signal a mask-pressure eviction policy ranks on (attack masks accumulate
    /// hits slowly because every adversarial key is fresh; a victim's long-lived mask
    /// is hit once per packet).
    pub fn mask_usage(&self) -> Vec<(Mask, u64)> {
        self.masks
            .iter()
            .cloned()
            .zip(self.mask_hits.iter().copied())
            .collect()
    }

    /// Remove one mask and every entry of its tuple (shrinking |M| by one); returns
    /// the number of entries removed (0 if the mask is not present).
    pub fn remove_mask(&mut self, mask: &Mask) -> usize {
        let Some(bucket) = self.tuples.remove(mask) else {
            return 0;
        };
        if let Some(pos) = self.masks.iter().position(|m| m == mask) {
            self.masks.remove(pos);
            self.mask_hits.remove(pos);
        }
        bucket.entries.len()
    }

    /// Iterate over all entries, in unspecified order — callers that need a stable
    /// order (e.g. [`TupleSpace::render`]) must sort what they collect.
    pub fn entries(&self) -> impl Iterator<Item = &MegaflowEntry> {
        // lint: allow(nondet-iteration) — unordered passthrough; ordered consumers sort
        self.tuples.values().flat_map(|t| t.entries.values())
    }

    /// Megaflow lookup — Algorithm 1 of the paper.
    ///
    /// For each mask `M` in the mask list, compute `h AND M` and probe the mask's hash.
    /// Return a hit on the first match (correct thanks to entry disjointness); a miss
    /// after all masks have been probed.
    pub fn lookup(&mut self, header: &Key, now: f64) -> LookupOutcome {
        let mut scanned = 0;
        // Collect the hit (if any) first to keep the borrow checker happy, then update
        // the entry's statistics.
        let mut hit: Option<(usize, Mask, Key)> = None;
        for (idx, mask) in self.masks.iter().enumerate() {
            scanned += 1;
            let masked = header.apply_mask(mask);
            if let Some(tuple) = self.tuples.get(mask) {
                if tuple.entries.contains_key(&masked) {
                    hit = Some((idx, mask.clone(), masked));
                    break;
                }
            }
        }
        match hit {
            Some((idx, mask, masked)) => {
                self.mask_hits[idx] += 1;
                // The scan above just saw this entry and the `&mut self` receiver rules
                // out concurrent mutation, so the re-probe can only miss if the cache
                // invariants are already broken — degrade to a miss instead of tearing
                // down the datapath.
                let Some(entry) = self
                    .tuples
                    .get_mut(&mask)
                    .and_then(|t| t.entries.get_mut(&masked))
                else {
                    debug_assert!(false, "hit entry vanished between scan and update");
                    return LookupOutcome {
                        action: None,
                        masks_scanned: scanned,
                    };
                };
                entry.hits += 1;
                entry.last_used = now;
                let action = entry.action;
                if self.ordering == MaskOrdering::HitCount {
                    self.resort_masks();
                }
                LookupOutcome {
                    action: Some(action),
                    masks_scanned: scanned,
                }
            }
            None => LookupOutcome {
                action: None,
                masks_scanned: scanned,
            },
        }
    }

    /// Read-only lookup that does not update statistics (used by tests and MFCGuard).
    pub fn peek(&self, header: &Key) -> Option<&MegaflowEntry> {
        for mask in &self.masks {
            let masked = header.apply_mask(mask);
            if let Some(entry) = self.tuples.get(mask).and_then(|t| t.entries.get(&masked)) {
                return Some(entry);
            }
        }
        None
    }

    /// Insert a new megaflow entry. Enforces the two slow-path invariants of §3.2:
    ///
    /// * **Inv(1) Cover** is the caller's responsibility (the generation strategy always
    ///   derives `key` from the header that sparked the entry);
    /// * **Inv(2) Independence** is checked here: inserting an entry that overlaps an
    ///   existing one returns [`InsertError::Overlap`] (a real OVS bug class this
    ///   reproduction treats as a hard error).
    pub fn insert(
        &mut self,
        key: Key,
        mask: Mask,
        action: Action,
        now: f64,
    ) -> Result<(), InsertError> {
        let key = key.apply_mask(&mask);
        if let Some((existing_key, existing_mask)) = self.find_conflict(&key, &mask) {
            return Err(InsertError::Overlap {
                existing_key,
                existing_mask,
            });
        }
        if !self.tuples.contains_key(&mask) {
            if self.ordering == MaskOrdering::NewestFirst {
                self.masks.insert(0, mask.clone());
                self.mask_hits.insert(0, 0);
            } else {
                self.masks.push(mask.clone());
                self.mask_hits.push(0);
            }
        }
        let entry = MegaflowEntry {
            key: key.clone(),
            mask: mask.clone(),
            action,
            hits: 0,
            last_used: now,
            installed_at: now,
        };
        let bucket = self
            .tuples
            .entry(mask)
            .or_insert_with(|| TupleBucket::new(&key));
        bucket.absorb(&key);
        bucket.entries.insert(key, entry);
        Ok(())
    }

    /// Find an existing entry that overlaps a prospective `(key, mask)` entry, i.e. one
    /// that would violate the Independence invariant. Returns the conflicting entry's
    /// key and mask.
    ///
    /// This is both the guard used by [`TupleSpace::insert`] and the primitive the
    /// slow-path megaflow generation uses to decide which extra bits to un-wildcard
    /// (§3.2): while a conflict exists, the generator narrows the new entry.
    ///
    /// Complexity note — the comparable-mask conflict index: tuples are visited in
    /// probe order, and each is first checked against its per-tuple key-bit
    /// summaries, field-wise and without allocating: a conflicting entry must agree
    /// with the new key on every bit of `M AND mask`, so a common bit where the key
    /// has a 1 and *no* stored key does (or a 0 where *every* stored key has a 1)
    /// rules the whole tuple out in O(fields). Only surviving tuples are touched:
    ///
    /// * a tuple whose mask is entirely covered by the new mask is answered by a
    ///   **single hash probe** (comparable entries conflict only if they agree on
    ///   every common bit), which stays fast even when the tuple holds hundreds of
    ///   thousands of entries (the IPv6 exact-match anomaly of §5.4);
    /// * an incomparable tuple falls back to an entry scan — but since most tuples
    ///   were already excluded by their summaries, the common no-conflict case of
    ///   megaflow generation never reaches it.
    ///
    /// The `tss_conflict_index` group of the `classifier_compare` criterion bench
    /// measures this path against the index-less full entry scan.
    pub fn find_conflict(&self, key: &Key, mask: &Mask) -> Option<(Key, Mask)> {
        let key = key.apply_mask(mask);
        for existing_mask in &self.masks {
            let tuple = &self.tuples[existing_mask];
            // Summary prefilter over common = mask & existing_mask, computed inline.
            // `comparable` tracks whether existing_mask ⊆ mask along the way.
            let mut excluded = false;
            let mut comparable = true;
            for (((k, m), e), (and, or)) in key
                .values()
                .iter()
                .zip(mask.values())
                .zip(existing_mask.values())
                .zip(tuple.key_and.values().iter().zip(tuple.key_or.values()))
            {
                let c = m & e;
                comparable &= c == *e;
                if (k & c & !or) | (!k & c & and) != 0 {
                    excluded = true;
                    break;
                }
            }
            if excluded {
                continue;
            }
            if comparable {
                // Conflict iff the tuple holds exactly the new key projected onto the
                // existing mask.
                let probe = key.apply_mask(existing_mask);
                if tuple.entries.contains_key(&probe) {
                    return Some((probe, existing_mask.clone()));
                }
            } else {
                // Report the smallest conflicting key, not the first in hash order:
                // the generation strategy narrows wildcards against the returned
                // conflict, so the choice must not depend on bucket layout.
                let conflict = tuple
                    .entries
                    .values()
                    .filter(|e| !fields::disjoint(&key, mask, &e.key, &e.mask))
                    .min_by(|a, b| a.key.cmp(&b.key));
                if let Some(e) = conflict {
                    return Some((e.key.clone(), e.mask.clone()));
                }
            }
        }
        None
    }

    /// Remove every entry for which `predicate` returns true; returns the number of
    /// removed entries. Masks whose tuple becomes empty are dropped from the mask list —
    /// this is what shrinks |M| back down (the entire point of MFCGuard).
    pub fn remove_where<F: FnMut(&MegaflowEntry) -> bool>(&mut self, mut predicate: F) -> usize {
        let mut removed = 0;
        // lint: allow(nondet-iteration) — per-entry predicate + integer count, order-free
        for tuple in self.tuples.values_mut() {
            let before = tuple.entries.len();
            tuple.entries.retain(|_, e| !predicate(e));
            if tuple.entries.len() < before {
                removed += before - tuple.entries.len();
                tuple.rebuild_summary();
            }
        }
        self.drop_empty_masks();
        removed
    }

    /// Expire entries idle for longer than `idle_timeout` seconds (OVS's 10 s policy,
    /// §5.4: "the 10 sec idle MFC timeout in OVS, keeping the attacker's entries alive
    /// for an extended time"). Returns the number of expired entries.
    pub fn expire_idle(&mut self, now: f64, idle_timeout: f64) -> usize {
        self.remove_where(|e| now - e.last_used > idle_timeout)
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.masks.clear();
        self.mask_hits.clear();
        self.tuples.clear();
    }

    /// Verify the Independence invariant over the whole cache (O(n²); used by tests and
    /// property checks, not by the data path).
    pub fn check_independence(&self) -> bool {
        let entries: Vec<&MegaflowEntry> = self.entries().collect();
        for i in 0..entries.len() {
            for j in (i + 1)..entries.len() {
                if !fields::disjoint(
                    &entries[i].key,
                    &entries[i].mask,
                    &entries[j].key,
                    &entries[j].mask,
                ) {
                    return false;
                }
            }
        }
        true
    }

    fn drop_empty_masks(&mut self) {
        let tuples = &mut self.tuples;
        let mut kept_hits = Vec::with_capacity(self.masks.len());
        let mut kept_masks = Vec::with_capacity(self.masks.len());
        for (mask, hits) in self.masks.drain(..).zip(self.mask_hits.drain(..)) {
            let empty = tuples
                .get(&mask)
                .map(|t| t.entries.is_empty())
                .unwrap_or(true);
            if empty {
                tuples.remove(&mask);
            } else {
                kept_masks.push(mask);
                kept_hits.push(hits);
            }
        }
        self.masks = kept_masks;
        self.mask_hits = kept_hits;
    }

    fn resort_masks(&mut self) {
        let mut order: Vec<usize> = (0..self.masks.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.mask_hits[i]));
        self.masks = order.iter().map(|&i| self.masks[i].clone()).collect();
        self.mask_hits = order.iter().map(|&i| self.mask_hits[i]).collect();
    }

    /// Render the cache in the style of Fig. 2 / Fig. 3 / Fig. 5 (one line per entry,
    /// binary key and mask).
    pub fn render(&self) -> String {
        let mut lines = Vec::new();
        for (i, mask) in self.masks.iter().enumerate() {
            // lint: allow(nondet-iteration) — collected then sorted by key on the next line
            let mut keys: Vec<&MegaflowEntry> = self.tuples[mask].entries.values().collect();
            keys.sort_by(|a, b| a.key.cmp(&b.key));
            for e in keys {
                lines.push(format!(
                    "mask[{i}] key={} mask={} -> {}",
                    e.key.to_binary_string(&self.schema),
                    e.mask.to_binary_string(&self.schema),
                    e.action
                ));
            }
        }
        lines.join("\n")
    }
}

/// Errors from [`TupleSpace::insert`].
#[derive(Debug, Clone, PartialEq)]
pub enum InsertError {
    /// The new entry overlaps an existing entry, violating Inv(2).
    Overlap {
        /// Key of the conflicting entry.
        existing_key: Key,
        /// Mask of the conflicting entry.
        existing_mask: Mask,
    },
}

impl std::fmt::Display for InsertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InsertError::Overlap {
                existing_key,
                existing_mask,
            } => write!(
                f,
                "entry overlaps existing megaflow (key {existing_key}, mask {existing_mask})"
            ),
        }
    }
}

impl std::error::Error for InsertError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn hyp_schema() -> FieldSchema {
        FieldSchema::hyp()
    }

    fn k(v: u128) -> Key {
        Key::from_values(&hyp_schema(), &[v])
    }

    /// Build the Fig. 3 wildcarded MFC by hand.
    fn fig3_cache() -> TupleSpace {
        let mut c = TupleSpace::new(hyp_schema());
        c.insert(k(0b001), k(0b111), Action::Allow, 0.0).unwrap();
        c.insert(k(0b100), k(0b100), Action::Deny, 0.0).unwrap();
        c.insert(k(0b010), k(0b110), Action::Deny, 0.0).unwrap();
        c.insert(k(0b000), k(0b111), Action::Deny, 0.0).unwrap();
        c
    }

    #[test]
    fn fig3_has_4_entries_and_3_masks() {
        let c = fig3_cache();
        assert_eq!(c.entry_count(), 4);
        assert_eq!(c.mask_count(), 3); // 111 is shared by two entries
        assert!(c.check_independence());
    }

    #[test]
    fn fig3_classifies_whole_header_space_like_fig1_acl() {
        let mut c = fig3_cache();
        for h in 0..8u128 {
            let out = c.lookup(&k(h), 0.0);
            let expected = if h == 0b001 {
                Action::Allow
            } else {
                Action::Deny
            };
            assert_eq!(out.action, Some(expected), "header {h:03b}");
        }
    }

    #[test]
    fn fig2_exact_match_uses_single_mask() {
        // The exact-match strategy of Fig. 2: all 8 keys under the single mask 111.
        let mut c = TupleSpace::new(hyp_schema());
        for h in 0..8u128 {
            let action = if h == 0b001 {
                Action::Allow
            } else {
                Action::Deny
            };
            c.insert(k(h), k(0b111), action, 0.0).unwrap();
        }
        assert_eq!(c.mask_count(), 1);
        assert_eq!(c.entry_count(), 8);
        // Every lookup scans exactly one mask: optimal time, exponential space.
        for h in 0..8u128 {
            assert_eq!(c.lookup(&k(h), 0.0).masks_scanned, 1);
        }
    }

    #[test]
    fn miss_scans_all_masks() {
        let mut c = TupleSpace::new(hyp_schema());
        c.insert(k(0b001), k(0b111), Action::Allow, 0.0).unwrap();
        c.insert(k(0b110), k(0b110), Action::Deny, 0.0).unwrap();
        let out = c.lookup(&k(0b010), 0.0);
        assert_eq!(out.action, None);
        assert_eq!(out.masks_scanned, 2);
    }

    #[test]
    fn overlap_rejected() {
        let mut c = TupleSpace::new(hyp_schema());
        c.insert(k(0b001), k(0b111), Action::Allow, 0.0).unwrap();
        // (000, 000) covers everything, including 001 -> overlap.
        let err = c.insert(k(0b000), k(0b000), Action::Deny, 0.0);
        assert!(matches!(err, Err(InsertError::Overlap { .. })));
        assert_eq!(c.entry_count(), 1);
    }

    #[test]
    fn idle_timeout_expires_only_stale_entries() {
        let mut c = fig3_cache();
        // Touch the allow entry at t=9.
        assert_eq!(c.lookup(&k(0b001), 9.0).action, Some(Action::Allow));
        // At t=15 with a 10 s timeout: entries last used at t=0 are stale (15 > 10),
        // the refreshed allow entry survives.
        let removed = c.expire_idle(15.0, 10.0);
        assert_eq!(removed, 3);
        assert_eq!(c.entry_count(), 1);
        assert_eq!(c.mask_count(), 1);
        assert_eq!(c.peek(&k(0b001)).unwrap().action, Action::Allow);
    }

    #[test]
    fn mask_usage_tracks_probe_order_and_hits() {
        let mut c = fig3_cache();
        // Hit the allow entry (mask 111) twice and the 1** deny entry once.
        c.lookup(&k(0b001), 1.0);
        c.lookup(&k(0b001), 2.0);
        c.lookup(&k(0b100), 3.0);
        let usage = c.mask_usage();
        assert_eq!(usage.len(), 3);
        assert_eq!(
            usage.iter().map(|(m, _)| m.clone()).collect::<Vec<_>>(),
            c.masks().to_vec(),
            "usage reports masks in probe order"
        );
        let hits_of = |mask: u128| {
            usage
                .iter()
                .find(|(m, _)| *m == k(mask))
                .map(|(_, h)| *h)
                .unwrap()
        };
        assert_eq!(hits_of(0b111), 2);
        assert_eq!(hits_of(0b100), 1);
        assert_eq!(hits_of(0b110), 0);
    }

    #[test]
    fn remove_mask_drops_the_whole_tuple() {
        let mut c = fig3_cache();
        assert_eq!(c.remove_mask(&k(0b111)), 2, "111 is shared by two entries");
        assert_eq!(c.mask_count(), 2);
        assert_eq!(c.entry_count(), 2);
        assert!(c.lookup(&k(0b001), 0.0).action.is_none());
        // Removing an absent mask is a no-op.
        assert_eq!(c.remove_mask(&k(0b111)), 0);
        assert_eq!(c.mask_count(), 2);
    }

    #[test]
    fn remove_where_drops_empty_masks() {
        let mut c = fig3_cache();
        let removed = c.remove_where(|e| e.action == Action::Deny);
        assert_eq!(removed, 3);
        assert_eq!(c.mask_count(), 1);
        assert_eq!(c.entry_count(), 1);
        // Deny traffic now misses (goes back to the slow path) but the allow entry is
        // untouched — MFCGuard's requirement (i).
        assert_eq!(c.lookup(&k(0b000), 0.0).action, None);
        assert_eq!(c.lookup(&k(0b001), 0.0).action, Some(Action::Allow));
    }

    #[test]
    fn hit_count_ordering_moves_hot_mask_forward() {
        let mut c = TupleSpace::with_ordering(hyp_schema(), MaskOrdering::HitCount);
        c.insert(k(0b100), k(0b100), Action::Deny, 0.0).unwrap();
        c.insert(k(0b001), k(0b111), Action::Allow, 0.0).unwrap();
        // Initially the deny mask (insertion order) is probed first: allow costs 2.
        assert_eq!(c.lookup(&k(0b001), 0.0).masks_scanned, 2);
        // Hit it a few times; the hot mask gets sorted to the front.
        for _ in 0..3 {
            c.lookup(&k(0b001), 0.0);
        }
        assert_eq!(c.lookup(&k(0b001), 0.0).masks_scanned, 1);
    }

    #[test]
    fn newest_first_ordering_pushes_old_masks_back() {
        let mut c = TupleSpace::with_ordering(hyp_schema(), MaskOrdering::NewestFirst);
        // "Victim" entry installed first.
        c.insert(k(0b001), k(0b111), Action::Allow, 0.0).unwrap();
        assert_eq!(c.lookup(&k(0b001), 0.0).masks_scanned, 1);
        // Attack masks arrive later but are probed first.
        c.insert(k(0b100), k(0b100), Action::Deny, 1.0).unwrap();
        c.insert(k(0b010), k(0b110), Action::Deny, 1.0).unwrap();
        assert_eq!(c.lookup(&k(0b001), 2.0).masks_scanned, 3);
    }

    #[test]
    fn lookup_statistics_updated() {
        let mut c = fig3_cache();
        c.lookup(&k(0b001), 5.0);
        c.lookup(&k(0b001), 7.0);
        let e = c.peek(&k(0b001)).unwrap();
        assert_eq!(e.hits, 2);
        assert!((e.last_used - 7.0).abs() < 1e-9);
        assert_eq!(e.installed_at, 0.0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = fig3_cache();
        c.clear();
        assert_eq!(c.mask_count(), 0);
        assert_eq!(c.entry_count(), 0);
        assert_eq!(c.lookup(&k(0b001), 0.0).masks_scanned, 0);
    }

    /// Reference implementation: scan every entry (what `find_conflict` did before the
    /// comparable-mask index).
    fn find_conflict_scan(c: &TupleSpace, key: &Key, mask: &Mask) -> Option<(Key, Mask)> {
        let key = key.apply_mask(mask);
        c.entries()
            .find(|e| !fields::disjoint(&key, mask, &e.key, &e.mask))
            .map(|e| (e.key.clone(), e.mask.clone()))
    }

    #[test]
    fn conflict_index_agrees_with_full_scan() {
        // Exhaustively compare the indexed find_conflict with the entry scan over every
        // (key, mask) pair of the 3-bit space, on a populated cache, after a lookup
        // refresh, and after removals (which rebuild the summaries).
        let mut c = fig3_cache();
        for phase in 0..3 {
            if phase == 1 {
                c.lookup(&k(0b001), 1.0);
            }
            if phase == 2 {
                c.remove_where(|e| e.mask == k(0b110));
            }
            for key in 0..8u128 {
                for mask in 0..8u128 {
                    let fast = c.find_conflict(&k(key), &k(mask)).is_some();
                    let slow = find_conflict_scan(&c, &k(key), &k(mask)).is_some();
                    assert_eq!(fast, slow, "phase {phase} key {key:03b} mask {mask:03b}");
                }
            }
        }
    }

    #[test]
    fn conflict_index_summary_excludes_incomparable_tuples() {
        // Two entries under mask 011 agree on bit 0 = 1; a query under the incomparable
        // mask 101 with bit 0 = 0 is excluded by the summary (key_and has bit 0 set).
        let mut c = TupleSpace::new(hyp_schema());
        c.insert(k(0b001), k(0b011), Action::Deny, 0.0).unwrap();
        c.insert(k(0b011), k(0b011), Action::Deny, 0.0).unwrap();
        assert_eq!(c.find_conflict(&k(0b100), &k(0b101)), None);
        // Flipping the query's bit 0 to 1 re-enables the conflict.
        assert!(c.find_conflict(&k(0b101), &k(0b101)).is_some());
    }

    #[test]
    fn render_lists_entries() {
        let c = fig3_cache();
        let r = c.render();
        assert!(r.contains("key=001 mask=111 -> allow"));
        assert!(r.contains("deny"));
        assert_eq!(r.lines().count(), 4);
    }
}
