//! Priority-ordered linear search — the trivial, attack-immune baseline.

use tse_packet::fields::Key;

use crate::flowtable::FlowTable;
use crate::rule::Rule;

use super::{Classification, Classifier};

/// A classifier that scans rules in decreasing priority and returns the first match.
/// Lookup cost is `O(#rules)` — independent of any traffic history.
#[derive(Debug, Clone)]
pub struct LinearSearch {
    /// Rules sorted by decreasing priority (stable).
    rules: Vec<(usize, Rule)>,
}

impl LinearSearch {
    /// Build from a flow table (the table is copied; later table edits are not seen).
    pub fn build(table: &FlowTable) -> Self {
        let mut rules: Vec<(usize, Rule)> = table.rules().iter().cloned().enumerate().collect();
        rules.sort_by_key(|(i, r)| (std::cmp::Reverse(r.priority), *i));
        LinearSearch { rules }
    }
}

impl Classifier for LinearSearch {
    fn classify(&self, header: &Key) -> Classification {
        let mut work = 0;
        for (index, rule) in &self.rules {
            work += 1;
            if rule.matches(header) {
                return Classification {
                    action: Some(rule.action),
                    rule_index: Some(*index),
                    work,
                };
            }
        }
        Classification {
            action: None,
            rule_index: None,
            work,
        }
    }

    fn name(&self) -> &'static str {
        "linear-search"
    }

    fn size_units(&self) -> usize {
        self.rules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::test_support;
    use crate::flowtable::FlowTable;
    use crate::rule::Action;
    use tse_packet::fields::{FieldSchema, Key};

    #[test]
    fn agrees_with_reference_on_fig1() {
        let table = FlowTable::fig1_hyp();
        test_support::agrees_with_table_exhaustively(&LinearSearch::build(&table), &table);
    }

    #[test]
    fn agrees_with_reference_on_fig4() {
        let table = FlowTable::fig4_hyp2();
        test_support::agrees_with_table_exhaustively(&LinearSearch::build(&table), &table);
    }

    #[test]
    fn agrees_on_multi_field_whitelist() {
        let table = test_support::small_multi_field_table();
        test_support::agrees_with_table_exhaustively(&LinearSearch::build(&table), &table);
    }

    #[test]
    fn work_bounded_by_rule_count() {
        let table = FlowTable::fig4_hyp2();
        let c = LinearSearch::build(&table);
        let schema = FieldSchema::hyp2();
        for hyp in 0..8u128 {
            for hyp2 in 0..16u128 {
                let w = c.classify(&Key::from_values(&schema, &[hyp, hyp2])).work;
                assert!(w <= table.len());
            }
        }
        assert_eq!(c.size_units(), 3);
    }

    #[test]
    fn priority_respected() {
        let table = FlowTable::fig4_hyp2();
        let c = LinearSearch::build(&table);
        let schema = FieldSchema::hyp2();
        // 001/1111 matches both allow rules; rule 0 (higher priority) must win.
        let r = c.classify(&Key::from_values(&schema, &[0b001, 0b1111]));
        assert_eq!(r.rule_index, Some(0));
        assert_eq!(r.action, Some(Action::Allow));
    }
}
